//! `sample::Index` — a length-agnostic index.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An index drawn before the collection's length is known; scale it with
/// [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Maps this draw uniformly onto `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        ((self.0 as u128 * len as u128) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}
