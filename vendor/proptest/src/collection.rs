//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// An inclusive-minimum, inclusive-maximum size band for collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let width = (self.max - self.min) as u64 + 1;
        self.min + rng.below(width) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `BTreeSet`s whose cardinality lies in `size`.
///
/// Duplicate draws are retried; an element domain too small for the
/// requested cardinality panics after a bounded number of attempts.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target {
            out.insert(self.element.generate(rng));
            attempts += 1;
            assert!(
                attempts < 100 * target + 100,
                "btree_set: element domain too small for {target} distinct values"
            );
        }
        out
    }
}
