//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the API subset the workspace's test suites use:
//!
//! * [`Strategy`] with `prop_map` and `boxed`, implemented for integer and
//!   `f64` ranges, tuples, [`Just`] and [`any`];
//! * [`collection::vec`] and [`collection::btree_set`];
//! * [`sample::Index`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`] macros;
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Semantics match real proptest for passing suites: each test body runs
//! for `cases` generated inputs, `prop_assume!` rejections are retried
//! without counting, and any failure panics with the offending case's
//! values. **Shrinking is not implemented** — a failing case is reported
//! as drawn. Case generation is deterministic per test name, so failures
//! reproduce across runs; set `PROPTEST_RERUN_SALT` to explore different
//! streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// `proptest!` — declares property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in strategy, y in other_strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(#[test] fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_property(
                    __config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &($strat),
                                __proptest_rng,
                            );
                        )+
                        let __case = format!(
                            concat!($(stringify!($arg), " = {:?}, ",)+),
                            $(&$arg),+
                        );
                        let __outcome: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        (__outcome, __case)
                    },
                );
            }
        )*
    };
}

/// `prop_oneof!` — a strategy choosing uniformly among the listed
/// strategies (weights are not supported by this stand-in).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// `prop_assert!` — like `assert!`, but reported through the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!` — like `assert_eq!`, reported through the runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n{}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!` — like `assert_ne!`, reported through the runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: {:?}",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: {:?}\n{}",
            l,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assume!` — rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
