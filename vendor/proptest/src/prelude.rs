//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Namespace alias matching real proptest's `prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}
