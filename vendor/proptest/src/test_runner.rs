//! Case generation and the test-runner loop.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration. Only `cases` is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: draw a fresh case, don't count this one.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with `message`.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError::Fail(message)
    }
}

/// The deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot draw below 0");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash
}

/// Runs `case` until `config.cases` accepted cases pass, panicking on the
/// first failure. The per-case closure returns its outcome plus a rendered
/// description of the drawn values for failure reports.
///
/// Case seeds derive from the test's fully qualified name (plus the
/// optional `PROPTEST_RERUN_SALT` environment variable), so runs are
/// reproducible by default.
///
/// # Panics
///
/// Panics when a case fails, or when more than `100 × cases + 1000`
/// consecutive-case rejections suggest an over-restrictive `prop_assume!`.
pub fn run_property<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let salt = std::env::var("PROPTEST_RERUN_SALT")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let base = fnv1a(name.as_bytes()) ^ salt;
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let reject_budget = config.cases as u64 * 100 + 1000;
    let mut case_index = 0u64;
    while accepted < config.cases {
        let seed = base ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        case_index += 1;
        let mut rng = TestRng::from_seed(seed);
        let (outcome, values) = case(&mut rng);
        match outcome {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "{name}: too many prop_assume! rejections \
                     ({rejected} rejects for {accepted} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(message)) => panic!(
                "proptest property {name} failed at case #{case_index} \
                 (seed {seed:#x}):\n{message}\nwith values: {values}"
            ),
        }
    }
}
