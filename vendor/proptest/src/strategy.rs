//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among its component strategies ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * width) >> 64) as i128;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
