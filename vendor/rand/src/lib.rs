//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_bool` and `Rng::gen_range` over
//! integer and `f64` ranges — with the same statistical contract (uniform,
//! independent draws from a deterministically seeded generator).
//!
//! The generator is xoshiro256++ seeded through SplitMix64, the
//! construction recommended by its authors. Streams are **not** identical
//! to the real `rand` crate's ChaCha12-based `StdRng`; everything in this
//! repository treats seeded streams as an implementation detail and only
//! relies on determinism and uniformity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 significant bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic seeding. The real trait seeds from byte arrays too; this
/// workspace only ever uses `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: the seed-expansion generator used to key xoshiro.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        self.next_f64() < p
    }

    /// Returns a uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, width)` by widening multiply (Lemire's method
/// without the rejection step; the ≤ 2⁻⁶⁴ bias is far below anything the
/// workspace's statistics can resolve).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), width: u128) -> u128 {
    debug_assert!(width > 0 && width <= 1 << 64);
    (rng.next_u64() as u128 * width) >> 64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add(uniform_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                start.wrapping_add(uniform_below(rng, width) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        assert!(span.is_finite(), "range span must be finite");
        let x = self.start + rng.next_f64() * span;
        // Floating rounding can land exactly on `end`; clamp back inside.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but stay defensive.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts={counts:?}");
        }
        for _ in 0..10_000 {
            let v = rng.gen_range(3u16..=7);
            assert!((3..=7).contains(&v));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }
}
