//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — with a simple measurement loop instead of criterion's
//! statistical machinery:
//!
//! * under `cargo bench` (cargo passes `--bench`) each benchmark is warmed
//!   up, run for a time budget, and reported as mean wall-clock per
//!   iteration (plus throughput when configured);
//! * under `cargo test` each benchmark body runs exactly once, keeping the
//!   tier-1 gate fast while still smoke-testing every bench target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from the standard library.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Units processed per iteration, reported as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The measurement handle passed to bench closures.
pub struct Bencher {
    bench_mode: bool,
    /// Mean wall-clock duration per iteration, filled in by [`Bencher::iter`].
    measured: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`: timed loop under `cargo bench`, a single
    /// smoke-test call under `cargo test`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if !self.bench_mode {
            black_box(routine());
            return;
        }
        // Warm-up: estimate per-iteration cost on a ~100 ms budget.
        let warmup_budget = Duration::from_millis(100);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // Measure on a ~1 s budget, at least 5 iterations.
        let iters = ((1.0 / per_iter.max(1e-9)) as u64).clamp(5, 5_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some(start.elapsed() / iters as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(
    bench_mode: bool,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        bench_mode,
        measured: None,
    };
    f(&mut bencher);
    match bencher.measured {
        Some(per_iter) => {
            let rate = throughput.map(|t| {
                let (count, unit) = match t {
                    Throughput::Elements(n) => (n, "elem"),
                    Throughput::Bytes(n) => (n, "B"),
                };
                format!("  ({:.3e} {unit}/s)", count as f64 / per_iter.as_secs_f64())
            });
            println!(
                "{label:<50} time: [{}]{}",
                format_duration(per_iter),
                rate.unwrap_or_default()
            );
        }
        None => println!("{label:<50} ok (smoke run)"),
    }
}

/// The harness entry point handed to each `criterion_group!` function.
pub struct Criterion {
    bench_mode: bool,
}

impl Criterion {
    /// Builds a harness, detecting `cargo bench` vs `cargo test` from the
    /// `--bench` argument cargo passes to bench binaries.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Criterion {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(self.bench_mode, &id.into().id, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stand-in sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this stand-in sizes runs by time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Reports a throughput rate alongside each measurement.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(self.criterion.bench_mode, &label, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(
            self.criterion.bench_mode,
            &label,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (report flushing is immediate in this stand-in).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
