//! Quickstart: broadcast a frame over a 4-node MajorCAN_5 bus and verify
//! Atomic Broadcast end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use majorcan::abcast::trace_from_can_events;
use majorcan::can::{CanEvent, Frame, FrameId};
use majorcan::sim::NodeId;
use majorcan::testbed::{ProtocolSpec, Testbed};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fault-free bus with four MajorCAN_5 controllers.
    let mut tb = Testbed::builder(ProtocolSpec::MajorCan { m: 5 })
        .nodes(4)
        .build();

    // Queue one frame on the transmitter and run the bus.
    let frame = Frame::new(FrameId::new(0x0B5)?, b"brake!")?;
    tb.enqueue(0, frame.clone());
    tb.run(300);

    // Every receiver delivered exactly once.
    for n in 1..4 {
        let deliveries = tb
            .can_events()
            .iter()
            .filter(|e| e.node == NodeId(n))
            .filter(|e| matches!(&e.event, CanEvent::Delivered { frame: f, .. } if *f == frame))
            .count();
        println!("node {n}: delivered {deliveries} copy(ies) of {frame}");
        assert_eq!(deliveries, 1);
    }

    // And the full Atomic Broadcast property suite holds.
    let report = trace_from_can_events(tb.can_events(), 4).check();
    println!("\n{report}");
    assert!(report.atomic_broadcast());
    Ok(())
}
