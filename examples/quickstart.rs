//! Quickstart: broadcast a frame over a 4-node MajorCAN_5 bus and verify
//! Atomic Broadcast end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use majorcan::abcast::trace_from_can_events;
use majorcan::can::{CanEvent, Controller, Frame, FrameId};
use majorcan::protocols::MajorCan;
use majorcan::sim::{NoFaults, NodeId, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fault-free bus with four MajorCAN_5 controllers.
    let mut sim = Simulator::new(NoFaults);
    let tx = sim.attach(Controller::new(MajorCan::proposed()));
    for _ in 0..3 {
        sim.attach(Controller::new(MajorCan::proposed()));
    }

    // Queue one frame on the transmitter and run the bus.
    let frame = Frame::new(FrameId::new(0x0B5)?, b"brake!")?;
    sim.node_mut(tx).enqueue(frame.clone());
    sim.run(300);

    // Every receiver delivered exactly once.
    for n in 1..4 {
        let deliveries = sim
            .events()
            .iter()
            .filter(|e| e.node == NodeId(n))
            .filter(|e| matches!(&e.event, CanEvent::Delivered { frame: f, .. } if *f == frame))
            .count();
        println!("node {n}: delivered {deliveries} copy(ies) of {frame}");
        assert_eq!(deliveries, 1);
    }

    // And the full Atomic Broadcast property suite holds.
    let report = trace_from_can_events(sim.events(), 4).check();
    println!("\n{report}");
    assert!(report.atomic_broadcast());
    Ok(())
}
