//! The whole paper in one run: every inconsistency scenario executed under
//! standard CAN, MinorCAN and MajorCAN_5, with bit-level traces and Atomic
//! Broadcast verdicts.
//!
//! ```text
//! cargo run --example inconsistency_gallery
//! ```

use majorcan::abcast::{render_delivery_matrix, trace_from_can_events};
use majorcan::can::{StandardCan, Variant};
use majorcan::faults::Scenario;
use majorcan::protocols::{MajorCan, MinorCan};
use majorcan::testbed::{spec_of, ScenarioRun, Testbed};

fn run_scenario<V: Variant>(variant: &V, scenario: &Scenario, budget: u64) -> ScenarioRun {
    Testbed::builder(spec_of(variant))
        .nodes(scenario.n_nodes)
        .budget(budget)
        .build()
        .run_scenario(scenario)
}

fn verdict<V: Variant>(variant: &V, scenario: &Scenario) -> String {
    let run = run_scenario(variant, scenario, 1_200);
    let report = trace_from_can_events(&run.events, run.n_nodes).check();
    match (report.agreement.holds, report.at_most_once.holds) {
        (true, true) => "consistent".into(),
        (true, false) => "DOUBLE RECEPTION".into(),
        (false, _) => "OMISSION (AB2 broken)".into(),
    }
}

fn main() {
    println!("Scenario gallery — node 0 = transmitter, node 1 = X set, node 2 = Y set\n");
    println!(
        "{:<8} {:<58} | {:<22} | {:<22} | MajorCAN_5",
        "figure", "disturbances", "CAN", "MinorCAN"
    );
    for scenario in [
        Scenario::fig1a(),
        Scenario::fig1b(),
        Scenario::fig1c(),
        Scenario::fig3a(),
    ] {
        let disturbances: Vec<String> = scenario
            .disturbances
            .iter()
            .map(|d| d.to_string())
            .collect();
        let mut line = format!(
            "{:<8} {:<58} | {:<22} | {:<22} | {}",
            scenario.name,
            disturbances.join(" + ")
                + if scenario.crash.is_some() {
                    " + tx crash"
                } else {
                    ""
                },
            verdict(&StandardCan, &scenario),
            verdict(&MinorCan, &scenario),
            verdict(&MajorCan::proposed(), &scenario),
        );
        line.truncate(160);
        println!("{line}");
    }

    // Fig. 5 only exists in MajorCAN's geometry (its disturbances address
    // the 2m-bit EOF and the agreement window).
    let fig5 = Scenario::fig5();
    println!(
        "{:<8} {:<58} | {:<22} | {:<22} | {}",
        fig5.name,
        "five scattered errors (see paper Fig. 5)",
        "-",
        "-",
        verdict(&MajorCan::proposed(), &fig5),
    );

    // The Fig. 3a delivery matrix, node by node (· = never delivered).
    println!("\nDelivery matrix for fig3a under standard CAN (the omission, cell by cell):");
    let run = run_scenario(&StandardCan, &Scenario::fig3a(), 1_200);
    let trace = trace_from_can_events(&run.events, run.n_nodes);
    print!("{}", render_delivery_matrix(&trace));

    println!("\nThe paper's claims, reproduced:");
    println!("  * CAN:       double receptions (1b) and omissions (1c, 3a)");
    println!("  * MinorCAN:  fixes every single-disturbance scenario, still fails 3a/3b");
    println!("  * MajorCAN:  consistent everywhere, up to 5 errors per frame");
}
