//! Protocol shoot-out: goodput and wire cost of every Atomic/Reliable
//! Broadcast option on the same bus.
//!
//! Link-layer variants (CAN, MinorCAN, MajorCAN_5) carry a periodic
//! workload and are measured in delivered messages and bus bits per
//! message; the higher-level protocols (EDCAN, RELCAN, TOTCAN) run their
//! full machinery over standard CAN. This regenerates the substance of the
//! paper's Section 6 comparison: MajorCAN pays a handful of bits where the
//! higher-level protocols pay whole frames.
//!
//! ```text
//! cargo run --release --example protocol_shootout
//! ```

use majorcan::can::{CanEvent, Controller, Variant};
use majorcan::hlp::{EdCan, HlpEvent, HlpLayer, HlpNode, RelCan, TotCan};
use majorcan::protocols::{MajorCan, MinorCan};
use majorcan::sim::{NoFaults, NodeId, Simulator};
use majorcan::workload::{drive, plan_periodic_load, BusStats, Workload};

const NODES: usize = 4;
const HORIZON: u64 = 60_000;

fn shootout_link<V: Variant>(variant: &V) -> (usize, f64) {
    let mut sim = Simulator::new(NoFaults);
    for _ in 0..NODES {
        sim.attach(Controller::new(variant.clone()));
    }
    let sources = plan_periodic_load(NODES, 0.5, 110);
    let mut releases = Vec::new();
    for s in &sources {
        releases.extend(s.releases(HORIZON - 2_000));
    }
    let mut workload = Workload::new(releases);
    let sent = drive(&mut sim, &mut workload, HORIZON);
    let stats = BusStats::from_events(sim.events());
    assert_eq!(
        sent, stats.successes,
        "fault-free bus completes the schedule"
    );
    (stats.successes, stats.bits_per_message())
}

fn shootout_hlp<L: HlpLayer, F: Fn() -> L>(make: F) -> (usize, usize) {
    let mut sim = Simulator::new(NoFaults);
    for i in 0..NODES {
        sim.attach(HlpNode::new(make(), i));
    }
    // One broadcast per node per round, several rounds.
    let rounds = 30;
    for round in 0..rounds {
        for n in 0..NODES {
            sim.node_mut(NodeId(n)).broadcast(&[round as u8, n as u8]);
        }
        sim.run(3_000);
    }
    sim.run(6_000);
    let messages = rounds * NODES;
    let frames = sim
        .events()
        .iter()
        .filter(|e| matches!(&e.event, HlpEvent::Link(CanEvent::TxSucceeded { .. })))
        .count();
    (messages, frames)
}

fn main() {
    println!("Link-layer variants, periodic workload at 50% offered load:");
    println!(
        "{:<12} | {:>10} | {:>14}",
        "protocol", "delivered", "bus bits/msg"
    );
    for (name, result) in [
        ("CAN", shootout_link(&majorcan::can::StandardCan)),
        ("MinorCAN", shootout_link(&MinorCan)),
        ("MajorCAN_5", shootout_link(&MajorCan::proposed())),
    ] {
        println!("{:<12} | {:>10} | {:>14.1}", name, result.0, result.1);
    }

    println!("\nHigher-level protocols over standard CAN (failure-free):");
    println!(
        "{:<12} | {:>10} | {:>14} | {:>16}",
        "protocol", "messages", "frames on bus", "frames/message"
    );
    for (name, (messages, frames)) in [
        ("EDCAN", shootout_hlp(EdCan::new)),
        ("RELCAN", shootout_hlp(RelCan::new)),
        ("TOTCAN", shootout_hlp(TotCan::new)),
    ] {
        println!(
            "{:<12} | {:>10} | {:>14} | {:>16.2}",
            name,
            messages,
            frames,
            frames as f64 / messages as f64
        );
    }
    println!(
        "\nMajorCAN_5's worst case costs 11 extra BITS per message; every higher-level\n\
         protocol costs at least one extra FRAME (≥ 50 bits) — the paper's Section 6 point."
    );
}
