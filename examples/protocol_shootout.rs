//! Protocol shoot-out: goodput and wire cost of every Atomic/Reliable
//! Broadcast option on the same bus.
//!
//! Link-layer variants (CAN, MinorCAN, MajorCAN_5) carry a periodic
//! workload and are measured in delivered messages and bus bits per
//! message; the higher-level protocols (EDCAN, RELCAN, TOTCAN) run their
//! full machinery over standard CAN. This regenerates the substance of the
//! paper's Section 6 comparison: MajorCAN pays a handful of bits where the
//! higher-level protocols pay whole frames.
//!
//! ```text
//! cargo run --release --example protocol_shootout
//! ```

use majorcan::can::CanEvent;
use majorcan::hlp::HlpEvent;
use majorcan::testbed::{ProtocolSpec, Testbed};
use majorcan::workload::{plan_periodic_load, BusStats, Workload};

const NODES: usize = 4;
const HORIZON: u64 = 60_000;

fn shootout_link(protocol: ProtocolSpec) -> (usize, f64) {
    let mut tb = Testbed::builder(protocol).nodes(NODES).build();
    let sources = plan_periodic_load(NODES, 0.5, 110);
    let mut releases = Vec::new();
    for s in &sources {
        releases.extend(s.releases(HORIZON - 2_000));
    }
    let mut workload = Workload::new(releases);
    let sent = tb.drive_workload(&mut workload, HORIZON);
    let stats = BusStats::from_events(tb.can_events());
    assert_eq!(
        sent, stats.successes,
        "fault-free bus completes the schedule"
    );
    (stats.successes, stats.bits_per_message())
}

fn shootout_hlp(protocol: ProtocolSpec) -> (usize, usize) {
    let mut tb = Testbed::builder(protocol).nodes(NODES).build();
    // One broadcast per node per round, several rounds.
    let rounds = 30;
    for round in 0..rounds {
        for n in 0..NODES {
            tb.broadcast(n, &[round as u8, n as u8]);
        }
        tb.run(3_000);
    }
    tb.run(6_000);
    let messages = rounds * NODES;
    let frames = tb
        .hlp_events()
        .iter()
        .filter(|e| matches!(&e.event, HlpEvent::Link(CanEvent::TxSucceeded { .. })))
        .count();
    (messages, frames)
}

fn main() {
    println!("Link-layer variants, periodic workload at 50% offered load:");
    println!(
        "{:<12} | {:>10} | {:>14}",
        "protocol", "delivered", "bus bits/msg"
    );
    for protocol in [
        ProtocolSpec::StandardCan,
        ProtocolSpec::MinorCan,
        ProtocolSpec::MajorCan { m: 5 },
    ] {
        let result = shootout_link(protocol);
        println!(
            "{:<12} | {:>10} | {:>14.1}",
            protocol.to_string(),
            result.0,
            result.1
        );
    }

    println!("\nHigher-level protocols over standard CAN (failure-free):");
    println!(
        "{:<12} | {:>10} | {:>14} | {:>16}",
        "protocol", "messages", "frames on bus", "frames/message"
    );
    for protocol in [
        ProtocolSpec::EdCan,
        ProtocolSpec::RelCan,
        ProtocolSpec::TotCan,
    ] {
        let (messages, frames) = shootout_hlp(protocol);
        println!(
            "{:<12} | {:>10} | {:>14} | {:>16.2}",
            protocol.to_string(),
            messages,
            frames,
            frames as f64 / messages as f64
        );
    }
    println!(
        "\nMajorCAN_5's worst case costs 11 extra BITS per message; every higher-level\n\
         protocol costs at least one extra FRAME (≥ 50 bits) — the paper's Section 6 point."
    );
}
