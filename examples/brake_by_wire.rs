//! A brake-by-wire vignette: why inconsistent message omissions matter.
//!
//! The paper motivates MajorCAN with distributed control systems —
//! "especially in automotive applications". Here a pedal node broadcasts a
//! brake command to four wheel controllers over a bus suffering exactly the
//! paper's Fig. 3a disturbance pattern (two corrupted bit-views, the
//! transmitter stays healthy):
//!
//! * under standard CAN, one wheel never receives the command — three
//!   wheels brake, one does not: the failure mode the 10⁻⁹/h safety bound
//!   exists to prevent;
//! * under MajorCAN_5 the same disturbances are absorbed by the agreement
//!   phase and all four wheels brake.
//!
//! ```text
//! cargo run --example brake_by_wire
//! ```

use majorcan::can::{CanEvent, Frame, FrameId, StandardCan, Variant};
use majorcan::faults::Disturbance;
use majorcan::protocols::MajorCan;
use majorcan::sim::NodeId;
use majorcan::testbed::{spec_of, Testbed};

const PEDAL: usize = 0;
const WHEELS: [&str; 4] = ["front-left", "front-right", "rear-left", "rear-right"];

/// Runs the brake broadcast under one protocol and returns which wheels
/// actuated.
fn drive<V: Variant>(variant: &V) -> Vec<bool> {
    // Fig. 3a: the front-left wheel's view is hit at the last-but-one EOF
    // bit; a second disturbance hides its error flag from the pedal node.
    let last = variant.eof_len() as u16;
    let mut tb = Testbed::builder(spec_of(variant))
        .nodes(1 + WHEELS.len())
        .build();
    tb.load_script(&[Disturbance::eof(1, last - 1), Disturbance::eof(PEDAL, last)]);
    let brake = Frame::new(FrameId::new(0x010).unwrap(), b"BRAKE!").expect("valid brake command");
    tb.enqueue(PEDAL, brake.clone());
    tb.run(1_500);

    (1..=WHEELS.len())
        .map(|wheel| {
            tb.can_events().iter().any(|e| {
                e.node == NodeId(wheel)
                    && matches!(&e.event, CanEvent::Delivered { frame, .. } if *frame == brake)
            })
        })
        .collect()
}

fn report<V: Variant>(variant: &V) {
    println!("--- {} ---", variant.name());
    let actuated = drive(variant);
    for (wheel, did) in WHEELS.iter().zip(&actuated) {
        println!(
            "  {wheel:<12} {}",
            if *did {
                "BRAKING"
            } else {
                "*** NOT BRAKING ***"
            }
        );
    }
    let all = actuated.iter().all(|&b| b);
    println!(
        "  => {}\n",
        if all {
            "vehicle decelerates symmetrically"
        } else {
            "asymmetric braking: the inconsistency the paper sets out to eliminate"
        }
    );
}

fn main() {
    println!(
        "Brake-by-wire under the Fig. 3a disturbance pattern\n\
         (pedal node broadcasts, wheel 1's view corrupted at EOF, pedal's view blinded)\n"
    );
    report(&StandardCan);
    report(&MajorCan::proposed());

    // Make the contrast machine-checkable too.
    assert!(
        drive(&StandardCan).contains(&false),
        "CAN must drop a wheel"
    );
    assert!(
        drive(&MajorCan::proposed()).iter().all(|&b| b),
        "MajorCAN must reach every wheel"
    );
}
