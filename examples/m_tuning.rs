//! Choosing MajorCAN's error tolerance `m` for a given channel.
//!
//! The paper proposes `m = 5` (matching the CRC's 5-random-error detection
//! capability) but keeps the protocol "parametrisable in m to make the
//! upgrade simpler" for noisier buses. This example turns that remark into
//! numbers: for each channel quality, the smallest `m` whose residual risk
//! (a conservative bound: *every* frame with more than `m` disturbed
//! bit-views counted as an incident) clears the aerospace reference bound
//! of 10⁻⁹ incidents/hour, and what that `m` costs on the wire.
//!
//! ```text
//! cargo run --example m_tuning
//! ```

use majorcan::analysis::{recommend_m, residual_incidents_per_hour, NetworkParams};

fn main() {
    let params = NetworkParams::paper_reference();
    println!(
        "Choosing m for N={} nodes at {} Mbps, {:.0}% load, target 1e-9 incidents/hour\n",
        params.n_nodes,
        params.bitrate / 1e6,
        params.load * 100.0
    );
    println!(
        "{:>8} | {:>13} | {:>15} | residual at that m (/hour)",
        "ber", "recommended m", "overhead (bits)"
    );
    for ber in [1e-6, 1e-5, 1e-4, 1e-3, 1e-2] {
        let (choice, _) = recommend_m(&params, ber, 1e-9);
        match choice {
            Some(c) => println!(
                "{ber:>8.0e} | {:>13} | {:>+15} | {:.2e}",
                c.m, c.overhead_bits, c.residual_per_hour
            ),
            None => println!("{ber:>8.0e} | {:>13} | {:>15} | -", "> 40", "-"),
        }
    }

    println!("\nResidual risk of the paper's m = 5 across channel qualities:");
    for ber in [1e-6, 1e-5, 1e-4, 1e-3] {
        println!(
            "  ber = {ber:.0e}: {:.3e} incidents/hour{}",
            residual_incidents_per_hour(5, &params, ber),
            if residual_incidents_per_hour(5, &params, ber) < 1e-9 {
                "  (clears 1e-9)"
            } else {
                "  (needs larger m)"
            }
        );
    }
    println!(
        "\nThe paper's caveat quantified: m = 5 is comfortable for ber ≤ 1e-5; an\n\
         aggressive ber = 1e-4 channel already warrants m = 6 under this bound."
    );
}
