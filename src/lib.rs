//! # majorcan — Atomic Broadcast on the Controller Area Network
//!
//! Facade crate re-exporting the full public API of the MajorCAN
//! reproduction workspace. See the individual crates for details:
//!
//! * [`sim`] — bit-synchronous wired-AND bus simulator.
//! * [`can`] — standard CAN data-link controller.
//! * [`protocols`] — the paper's contribution: MinorCAN and MajorCAN.
//! * [`hlp`] — higher-level baselines: EDCAN, RELCAN, TOTCAN.
//! * [`faults`] — fault injection and the scripted paper scenarios.
//! * [`testbed`] — the one way to assemble and run a protocol cluster
//!   (scenarios, oracle schedules, workloads) with allocation reuse.
//! * [`abcast`] — Atomic Broadcast property checking.
//! * [`analysis`] — the paper's analytic probability model (Table 1).
//! * [`workload`] — traffic generation.
//! * [`campaign`] — parallel deterministic experiment-campaign runner
//!   (JSONL results, checkpoint/resume, live progress).

#![forbid(unsafe_code)]

pub use majorcan_abcast as abcast;
pub use majorcan_analysis as analysis;
pub use majorcan_campaign as campaign;
pub use majorcan_can as can;
pub use majorcan_core as protocols;
pub use majorcan_falsify as falsify;
pub use majorcan_faults as faults;
pub use majorcan_hlp as hlp;
pub use majorcan_sim as sim;
pub use majorcan_testbed as testbed;
pub use majorcan_workload as workload;
