//! The node wrapper combining a standard CAN controller with a
//! higher-level protocol layer.

use crate::{BroadcastId, HlpMessage};
use majorcan_can::{CanEvent, Controller, ControllerConfig, Frame, StandardCan, WirePos};
use majorcan_sim::{BitNode, Level};
use std::fmt;

/// Host-visible events of a higher-level protocol node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HlpEvent {
    /// The local host initiated a broadcast.
    Broadcast {
        /// Broadcast identity (origin = this node).
        id: BroadcastId,
    },
    /// A broadcast message was delivered to the local host.
    Delivered {
        /// Broadcast identity.
        id: BroadcastId,
        /// User payload.
        payload: Vec<u8>,
    },
    /// TOTCAN discarded a queued message whose ACCEPT never arrived.
    Dropped {
        /// Broadcast identity.
        id: BroadcastId,
    },
    /// The node crashed.
    Crashed,
    /// A link-layer event (passed through for diagnostics).
    Link(CanEvent),
}

impl fmt::Display for HlpEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlpEvent::Broadcast { id } => write!(f, "broadcast {id}"),
            HlpEvent::Delivered { id, payload } => {
                write!(f, "delivered {id} ({} byte(s))", payload.len())
            }
            HlpEvent::Dropped { id } => write!(f, "dropped {id} (no ACCEPT)"),
            HlpEvent::Crashed => f.write_str("crashed"),
            HlpEvent::Link(e) => write!(f, "link: {e}"),
        }
    }
}

/// What a layer can do in reaction to link events: queue protocol frames
/// and emit host events.
#[derive(Debug, Default)]
pub struct LayerActions {
    /// Frames to enqueue on the local controller.
    pub outbox: Vec<Frame>,
    /// Host events to emit.
    pub events: Vec<HlpEvent>,
}

impl LayerActions {
    /// Queues `message` for transmission by `sender`.
    ///
    /// # Panics
    ///
    /// Panics if the message cannot be encoded (sender or payload out of
    /// range) — layer code always builds messages within range.
    pub fn send(&mut self, message: &HlpMessage, sender: usize) {
        self.outbox
            .push(message.encode(sender).expect("layer-built message encodes"));
    }

    /// Emits a delivery to the host.
    pub fn deliver(&mut self, id: BroadcastId, payload: Vec<u8>) {
        self.events.push(HlpEvent::Delivered { id, payload });
    }
}

/// A higher-level broadcast protocol running above the CAN data-link layer.
pub trait HlpLayer: fmt::Debug {
    /// Protocol name (e.g. `"EDCAN"`).
    fn name(&self) -> &'static str;

    /// The local host requests a broadcast. The layer builds and queues the
    /// protocol frames.
    fn broadcast(&mut self, id: BroadcastId, payload: &[u8], actions: &mut LayerActions);

    /// A link-layer event occurred (frame delivered, transmission
    /// succeeded, …).
    fn on_link_event(
        &mut self,
        now: u64,
        self_index: usize,
        event: &CanEvent,
        actions: &mut LayerActions,
    );

    /// Called once per bit time for timeout processing.
    fn on_tick(&mut self, now: u64, self_index: usize, actions: &mut LayerActions);

    /// Rewinds the layer to its freshly-constructed state (same
    /// configuration, no delivery history) so a node can be reused across
    /// independent runs.
    fn reset(&mut self);
}

/// A CAN node running a higher-level broadcast protocol layer `L`.
///
/// Implements [`BitNode`], so it attaches to the same simulator as raw
/// controllers; experiment code assembles whole clusters through the
/// `majorcan-testbed` facade. Host-level activity is reported as
/// [`HlpEvent`]s.
///
/// # Examples
///
/// ```
/// use majorcan_hlp::HlpEvent;
/// use majorcan_testbed::{ProtocolSpec, Testbed};
///
/// let mut tb = Testbed::builder(ProtocolSpec::EdCan).build();
/// tb.broadcast(0, b"stop");
/// tb.run(1500);
/// let delivered = tb
///     .hlp_events()
///     .iter()
///     .filter(|e| matches!(e.event, HlpEvent::Delivered { .. }))
///     .count();
/// assert_eq!(delivered, 3, "all three nodes deliver (tx included)");
/// ```
#[derive(Debug, Clone)]
pub struct HlpNode<L: HlpLayer> {
    ctrl: Controller<StandardCan>,
    layer: L,
    index: usize,
    next_seq: u16,
    link_buf: Vec<CanEvent>,
    pending: Vec<HlpEvent>,
}

impl<L: HlpLayer> HlpNode<L> {
    /// Creates a node with index `index` (its protocol-level identity,
    /// 0–127) running `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 128` (the encoding limit of the sender field).
    pub fn new(layer: L, index: usize) -> HlpNode<L> {
        HlpNode::with_config(layer, index, ControllerConfig::default())
    }

    /// Creates a node with an explicit link-layer configuration (crash
    /// injection, confinement policy).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 128`.
    pub fn with_config(layer: L, index: usize, config: ControllerConfig) -> HlpNode<L> {
        assert!(
            index < crate::MAX_NODES,
            "node index {index} exceeds the 7-bit sender field"
        );
        HlpNode {
            ctrl: Controller::with_config(StandardCan, config),
            layer,
            index,
            next_seq: 0,
            link_buf: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Rewinds the node — controller, protocol layer, sequence counter and
    /// event buffers — to its freshly-constructed state, keeping heap
    /// allocations for reuse across runs.
    pub fn reset(&mut self) {
        self.ctrl.reset();
        self.layer.reset();
        self.next_seq = 0;
        self.link_buf.clear();
        self.pending.clear();
    }

    /// Re-arms (or clears) the scripted fail-silent bit time for the next
    /// run of a reused node.
    pub fn set_fail_at(&mut self, fail_at: Option<u64>) {
        self.ctrl.set_fail_at(fail_at);
    }

    /// The protocol layer (for inspection in tests).
    pub fn layer(&self) -> &L {
        &self.layer
    }

    /// The underlying CAN controller.
    pub fn controller(&self) -> &Controller<StandardCan> {
        &self.ctrl
    }

    /// This node's protocol-level index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Broadcasts `payload` (at most 4 bytes) to all nodes, returning the
    /// assigned identity.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_PAYLOAD`](crate::MAX_PAYLOAD).
    pub fn broadcast(&mut self, payload: &[u8]) -> BroadcastId {
        assert!(
            payload.len() <= crate::MAX_PAYLOAD,
            "payload of {} bytes exceeds the {}-byte protocol limit",
            payload.len(),
            crate::MAX_PAYLOAD
        );
        let id = BroadcastId {
            origin: self.index as u8,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        let mut actions = LayerActions::default();
        self.layer.broadcast(id, payload, &mut actions);
        self.apply(actions);
        self.pending.push(HlpEvent::Broadcast { id });
        id
    }

    /// Crashes the node (fail silent).
    pub fn crash(&mut self) {
        self.ctrl.crash();
    }

    fn apply(&mut self, actions: LayerActions) {
        for frame in actions.outbox {
            self.ctrl.enqueue(frame);
        }
        self.pending.extend(actions.events);
    }
}

impl<L: HlpLayer> BitNode for HlpNode<L> {
    type Tag = WirePos;
    type Event = HlpEvent;

    fn drive(&mut self, now: u64) -> Level {
        self.ctrl.drive(now)
    }

    fn tag(&self) -> WirePos {
        self.ctrl.tag()
    }

    fn observe(&mut self, now: u64, seen: Level, events: &mut Vec<HlpEvent>) {
        events.append(&mut self.pending);
        self.ctrl.observe(now, seen, &mut self.link_buf);
        let link_events = std::mem::take(&mut self.link_buf);
        let mut actions = LayerActions::default();
        for ev in &link_events {
            if matches!(ev, CanEvent::Crashed) {
                events.push(HlpEvent::Crashed);
            }
            self.layer.on_link_event(now, self.index, ev, &mut actions);
            events.push(HlpEvent::Link(ev.clone()));
        }
        self.link_buf = link_events;
        self.link_buf.clear();
        self.layer.on_tick(now, self.index, &mut actions);
        for frame in actions.outbox {
            self.ctrl.enqueue(frame);
        }
        events.extend(actions.events);
    }
}

/// Convenience: decode a delivered link frame into a protocol message and
/// its sender, ignoring non-protocol traffic.
pub(crate) fn decode_delivery(event: &CanEvent) -> Option<(HlpMessage, usize)> {
    match event {
        CanEvent::Delivered { frame, .. } => {
            HlpMessage::decode(frame).map(|m| (m, HlpMessage::sender_of(frame)))
        }
        _ => None,
    }
}

/// Convenience: decode a successful own transmission into the protocol
/// message that was sent.
pub(crate) fn decode_tx_success(event: &CanEvent) -> Option<HlpMessage> {
    match event {
        CanEvent::TxSucceeded { frame, .. } => HlpMessage::decode(frame),
        _ => None,
    }
}
