//! # majorcan-hlp — the higher-level broadcast protocols over standard CAN
//!
//! The baselines the MajorCAN paper argues against: the three protocols of
//! Rufino et al. (*Fault-tolerant broadcast in CAN*, FTCS'98), which recover
//! from CAN's inconsistent message omissions **above** the data-link layer,
//! at the cost of extra frames, memory and CPU:
//!
//! * [`EdCan`] — every receiver retransmits every message (Reliable
//!   Broadcast; survives even the paper's new Fig. 3 scenarios, but costs
//!   at least one full extra frame per message and provides no order);
//! * [`RelCan`] — the transmitter CONFIRMs each message; receivers
//!   retransmit only on CONFIRM timeout (Reliable Broadcast; recovery is
//!   keyed to transmitter failure, so Fig. 3 breaks it);
//! * [`TotCan`] — delivery waits for the transmitter's ACCEPT frame, whose
//!   bus order is the total order (Atomic Broadcast under FTCS'98
//!   assumptions; Fig. 3 breaks it the same way).
//!
//! Each runs as an [`HlpLayer`] inside an [`HlpNode`] wrapping a
//! [`Controller<StandardCan>`](majorcan_can::Controller) — protocol frames
//! are ordinary CAN frames subject to arbitration, errors and
//! retransmission like any other traffic.
//!
//! # Examples
//!
//! ```
//! use majorcan_hlp::trace_from_hlp_events;
//! use majorcan_testbed::{ProtocolSpec, Testbed};
//!
//! let mut tb = Testbed::builder(ProtocolSpec::TotCan).build();
//! tb.broadcast(0, b"go");
//! tb.run(3000);
//! let trace = trace_from_hlp_events(tb.hlp_events(), 3);
//! assert!(trace.check().atomic_broadcast());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod common;
mod edcan;
mod node;
mod relcan;
mod totcan;

pub use adapter::{msg_id_of_broadcast, trace_from_hlp_events};
pub use common::{BroadcastId, HlpConfig, HlpMessage, MsgKind, MAX_NODES, MAX_PAYLOAD};
pub use edcan::EdCan;
pub use node::{HlpEvent, HlpLayer, HlpNode, LayerActions};
pub use relcan::RelCan;
pub use totcan::TotCan;
