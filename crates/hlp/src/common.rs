//! Shared machinery of the higher-level protocols: message encoding over
//! CAN frames, identities, and configuration.
//!
//! Every protocol message travels in one CAN data frame laid out as:
//!
//! ```text
//! data[0] = kind  (DATA / DUP / CONFIRM / ACCEPT)
//! data[1] = origin node index
//! data[2..4] = sequence number (big endian)
//! data[4..]  = user payload (0–4 bytes)
//! ```
//!
//! The 11-bit frame identifier encodes `(priority class << 7) | sender`, so
//! no two nodes ever transmit the same identifier simultaneously (a CAN
//! requirement for arbitration to stay collision-free) and control frames
//! (CONFIRM/ACCEPT) outrank data, which outranks duplicates.

use majorcan_can::{Frame, FrameError, FrameId};
use std::fmt;

/// Maximum user payload per protocol message (8-byte CAN frame minus the
/// 4-byte protocol header).
pub const MAX_PAYLOAD: usize = 4;

/// Maximum number of nodes addressable by the 7-bit sender field.
pub const MAX_NODES: usize = 128;

/// The protocol message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// An original broadcast payload.
    Data,
    /// A receiver-retransmitted duplicate (EDCAN always; RELCAN on
    /// CONFIRM timeout).
    Dup,
    /// RELCAN's transmission confirmation.
    Confirm,
    /// TOTCAN's delivery go-ahead, fixing the total order.
    Accept,
}

impl MsgKind {
    fn code(self) -> u8 {
        match self {
            MsgKind::Data => 0,
            MsgKind::Dup => 1,
            MsgKind::Confirm => 2,
            MsgKind::Accept => 3,
        }
    }

    fn from_code(code: u8) -> Option<MsgKind> {
        Some(match code {
            0 => MsgKind::Data,
            1 => MsgKind::Dup,
            2 => MsgKind::Confirm,
            3 => MsgKind::Accept,
            _ => return None,
        })
    }

    /// Arbitration priority class (lower wins the bus).
    fn priority_class(self) -> u16 {
        match self {
            MsgKind::Confirm | MsgKind::Accept => 1,
            MsgKind::Data => 2,
            MsgKind::Dup => 3,
        }
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MsgKind::Data => "DATA",
            MsgKind::Dup => "DUP",
            MsgKind::Confirm => "CONFIRM",
            MsgKind::Accept => "ACCEPT",
        })
    }
}

/// The network-wide identity of a broadcast: who originated it and its
/// per-origin sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BroadcastId {
    /// Originating node index.
    pub origin: u8,
    /// Per-origin sequence number.
    pub seq: u16,
}

impl fmt::Display for BroadcastId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:{}", self.origin, self.seq)
    }
}

/// A decoded protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HlpMessage {
    /// Message kind.
    pub kind: MsgKind,
    /// Broadcast identity this message refers to.
    pub id: BroadcastId,
    /// User payload (empty for CONFIRM/ACCEPT).
    pub payload: Vec<u8>,
}

impl HlpMessage {
    /// Encodes this message into a CAN frame sent by node `sender`.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameError`] if the sender index or payload exceed the
    /// encodable ranges.
    pub fn encode(&self, sender: usize) -> Result<Frame, FrameError> {
        if sender >= MAX_NODES {
            return Err(FrameError::IdOutOfRange(sender as u16));
        }
        if self.payload.len() > MAX_PAYLOAD {
            return Err(FrameError::PayloadTooLong(self.payload.len()));
        }
        let id = FrameId::new((self.kind.priority_class() << 7) | sender as u16)?;
        let mut data = Vec::with_capacity(4 + self.payload.len());
        data.push(self.kind.code());
        data.push(self.id.origin);
        data.extend_from_slice(&self.id.seq.to_be_bytes());
        data.extend_from_slice(&self.payload);
        Frame::new(id, &data)
    }

    /// Decodes a protocol message from a received CAN frame. Returns `None`
    /// for frames that are not valid protocol messages (foreign traffic).
    pub fn decode(frame: &Frame) -> Option<HlpMessage> {
        let data = frame.data();
        if data.len() < 4 {
            return None;
        }
        let kind = MsgKind::from_code(data[0])?;
        Some(HlpMessage {
            kind,
            id: BroadcastId {
                origin: data[1],
                seq: u16::from_be_bytes([data[2], data[3]]),
            },
            payload: data[4..].to_vec(),
        })
    }

    /// The sender encoded in a received protocol frame's identifier.
    pub fn sender_of(frame: &Frame) -> usize {
        (frame.id().raw() & 0x7F) as usize
    }
}

/// Configuration shared by the protocol layers.
#[derive(Debug, Clone)]
pub struct HlpConfig {
    /// RELCAN: bits a receiver waits for the CONFIRM before retransmitting
    /// the main message itself.
    pub confirm_timeout_bits: u64,
    /// TOTCAN: bits a receiver keeps an unaccepted message queued before
    /// discarding it.
    pub accept_timeout_bits: u64,
}

impl Default for HlpConfig {
    fn default() -> Self {
        // Generous relative to one ~60-bit control frame plus interframe
        // gaps; tight enough that scenario runs resolve within a few
        // thousand bits.
        HlpConfig {
            confirm_timeout_bits: 600,
            accept_timeout_bits: 600,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(kind: MsgKind, origin: u8, seq: u16, payload: &[u8]) -> HlpMessage {
        HlpMessage {
            kind,
            id: BroadcastId { origin, seq },
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        for kind in [
            MsgKind::Data,
            MsgKind::Dup,
            MsgKind::Confirm,
            MsgKind::Accept,
        ] {
            for payload in [&[][..], &[1u8, 2, 3, 4][..]] {
                let m = msg(kind, 17, 0xBEEF, payload);
                let f = m.encode(5).unwrap();
                assert_eq!(HlpMessage::decode(&f), Some(m), "{kind}");
                assert_eq!(HlpMessage::sender_of(&f), 5);
            }
        }
    }

    #[test]
    fn priority_classes_order_the_bus() {
        let confirm = msg(MsgKind::Confirm, 0, 1, &[]).encode(3).unwrap();
        let data = msg(MsgKind::Data, 0, 1, &[]).encode(3).unwrap();
        let dup = msg(MsgKind::Dup, 0, 1, &[]).encode(3).unwrap();
        assert!(confirm.id().outranks(data.id()));
        assert!(data.id().outranks(dup.id()));
    }

    #[test]
    fn sender_uniqueness_in_identifier() {
        let a = msg(MsgKind::Dup, 0, 1, &[]).encode(3).unwrap();
        let b = msg(MsgKind::Dup, 0, 1, &[]).encode(4).unwrap();
        assert_ne!(a.id(), b.id(), "same message from two senders must differ");
    }

    #[test]
    fn rejects_oversized() {
        assert!(msg(MsgKind::Data, 0, 1, &[0; 5]).encode(0).is_err());
        assert!(msg(MsgKind::Data, 0, 1, &[]).encode(128).is_err());
    }

    #[test]
    fn decode_rejects_foreign_frames() {
        let raw = Frame::new(FrameId::new(0x42).unwrap(), &[9]).unwrap();
        assert_eq!(HlpMessage::decode(&raw), None);
        let bad_kind = Frame::new(FrameId::new(0x42).unwrap(), &[77, 0, 0, 0]).unwrap();
        assert_eq!(HlpMessage::decode(&bad_kind), None);
    }

    #[test]
    fn broadcast_id_display() {
        assert_eq!(BroadcastId { origin: 3, seq: 9 }.to_string(), "n3:9");
    }
}
