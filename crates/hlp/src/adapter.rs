//! Adapter from higher-level protocol event logs to Atomic Broadcast
//! traces.

use crate::HlpEvent;
use majorcan_abcast::{AbTrace, MsgId};
use majorcan_sim::TimedEvent;

/// The message identity of a protocol broadcast, for the AB checker:
/// channel = origin node, payload = sequence number bytes followed by the
/// user payload.
pub fn msg_id_of_broadcast(origin: u8, seq: u16, payload: &[u8]) -> MsgId {
    let mut bytes = seq.to_be_bytes().to_vec();
    bytes.extend_from_slice(payload);
    MsgId::new(origin as u16, bytes)
}

/// Builds an [`AbTrace`] from a higher-level protocol event log:
/// `Broadcast` / `Delivered` / `Crashed` map one-to-one; link-layer
/// pass-through events are ignored (the HLP layer defines delivery).
pub fn trace_from_hlp_events(events: &[TimedEvent<HlpEvent>], n_nodes: usize) -> AbTrace {
    let mut trace = AbTrace::new(n_nodes);
    for e in events {
        let node = e.node.index();
        match &e.event {
            HlpEvent::Broadcast { id } => {
                // Payload is not part of the Broadcast event; identity by
                // (origin, seq) suffices — Deliver events must use the same
                // scheme, so both sides drop the payload component here.
                trace.broadcast(e.at, node, msg_id_of_broadcast(id.origin, id.seq, &[]));
            }
            HlpEvent::Delivered { id, .. } => {
                trace.deliver(e.at, node, msg_id_of_broadcast(id.origin, id.seq, &[]));
            }
            HlpEvent::Crashed => {
                trace.crash(e.at, node);
            }
            HlpEvent::Dropped { .. } | HlpEvent::Link(_) => {}
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BroadcastId;
    use majorcan_sim::NodeId;

    fn ev(at: u64, node: usize, event: HlpEvent) -> TimedEvent<HlpEvent> {
        TimedEvent {
            at,
            node: NodeId(node),
            event,
        }
    }

    #[test]
    fn maps_protocol_events() {
        let id = BroadcastId { origin: 0, seq: 3 };
        let events = vec![
            ev(0, 0, HlpEvent::Broadcast { id }),
            ev(
                10,
                0,
                HlpEvent::Delivered {
                    id,
                    payload: vec![1],
                },
            ),
            ev(
                11,
                1,
                HlpEvent::Delivered {
                    id,
                    payload: vec![1],
                },
            ),
            ev(20, 2, HlpEvent::Crashed),
        ];
        let trace = trace_from_hlp_events(&events, 3);
        assert_eq!(trace.correct_nodes(), vec![0, 1]);
        assert!(trace.check().atomic_broadcast());
    }

    #[test]
    fn identity_scheme_is_consistent() {
        assert_eq!(msg_id_of_broadcast(2, 7, &[]), MsgId::new(2, vec![0, 7]));
        assert_ne!(
            msg_id_of_broadcast(2, 7, &[]),
            msg_id_of_broadcast(2, 8, &[])
        );
        assert_ne!(
            msg_id_of_broadcast(2, 7, &[]),
            msg_id_of_broadcast(3, 7, &[])
        );
    }
}
