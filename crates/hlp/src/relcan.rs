//! RELCAN — CONFIRM-based reliable broadcast (Rufino et al., FTCS'98).
//!
//! A cheaper take on EDCAN: the transmitter follows every successful DATA
//! transmission with a short CONFIRM frame. Receivers deliver on first
//! reception of DATA and arm a timeout: if the CONFIRM fails to arrive in
//! time (the transmitter must have died), *they* retransmit the message as
//! duplicates. In the failure-free case the cost is one extra (short)
//! frame, not one per receiver.
//!
//! Properties: AB1–AB4 (Reliable Broadcast), no Total Order. The paper's
//! Fig. 3 point: RELCAN's recovery triggers **only on transmitter
//! failure** — in the new scenarios the transmitter stays correct and
//! happily CONFIRMs a frame that part of the bus never accepted, so the
//! omission goes unrepaired and Agreement breaks.

use crate::node::{decode_delivery, decode_tx_success, HlpLayer, LayerActions};
use crate::{BroadcastId, HlpConfig, HlpMessage, MsgKind};
use majorcan_can::CanEvent;
use std::collections::{BTreeMap, BTreeSet};

/// The RELCAN protocol layer.
#[derive(Debug, Clone)]
pub struct RelCan {
    config: HlpConfig,
    delivered: BTreeSet<BroadcastId>,
    /// Messages delivered but not yet confirmed: identity → (payload,
    /// deadline).
    awaiting_confirm: BTreeMap<BroadcastId, (Vec<u8>, u64)>,
    /// Duplicates this node already pushed out on timeout.
    duplicated: BTreeSet<BroadcastId>,
}

impl RelCan {
    /// Creates the layer with default timeouts.
    pub fn new() -> RelCan {
        RelCan::with_config(HlpConfig::default())
    }

    /// Creates the layer with explicit timeouts.
    pub fn with_config(config: HlpConfig) -> RelCan {
        RelCan {
            config,
            delivered: BTreeSet::new(),
            awaiting_confirm: BTreeMap::new(),
            duplicated: BTreeSet::new(),
        }
    }

    /// Identities delivered so far (test introspection).
    pub fn delivered(&self) -> &BTreeSet<BroadcastId> {
        &self.delivered
    }
}

impl Default for RelCan {
    fn default() -> Self {
        RelCan::new()
    }
}

impl HlpLayer for RelCan {
    fn name(&self) -> &'static str {
        "RELCAN"
    }

    fn broadcast(&mut self, id: BroadcastId, payload: &[u8], actions: &mut LayerActions) {
        actions.send(
            &HlpMessage {
                kind: MsgKind::Data,
                id,
                payload: payload.to_vec(),
            },
            id.origin as usize,
        );
    }

    fn on_link_event(
        &mut self,
        now: u64,
        self_index: usize,
        event: &CanEvent,
        actions: &mut LayerActions,
    ) {
        if let Some(msg) = decode_tx_success(event) {
            if msg.kind == MsgKind::Data && msg.id.origin as usize == self_index {
                // Own DATA out: deliver to self and send the CONFIRM.
                if self.delivered.insert(msg.id) {
                    actions.deliver(msg.id, msg.payload);
                }
                actions.send(
                    &HlpMessage {
                        kind: MsgKind::Confirm,
                        id: msg.id,
                        payload: Vec::new(),
                    },
                    self_index,
                );
            }
            return;
        }
        let Some((msg, _sender)) = decode_delivery(event) else {
            return;
        };
        match msg.kind {
            MsgKind::Data => {
                if self.delivered.insert(msg.id) {
                    actions.deliver(msg.id, msg.payload.clone());
                    self.awaiting_confirm.insert(
                        msg.id,
                        (msg.payload, now + self.config.confirm_timeout_bits),
                    );
                }
            }
            MsgKind::Dup => {
                if self.delivered.insert(msg.id) {
                    actions.deliver(msg.id, msg.payload);
                }
                // A duplicate is as good as a CONFIRM: somebody recovered.
                self.awaiting_confirm.remove(&msg.id);
            }
            MsgKind::Confirm => {
                self.awaiting_confirm.remove(&msg.id);
            }
            MsgKind::Accept => {}
        }
    }

    fn on_tick(&mut self, now: u64, self_index: usize, actions: &mut LayerActions) {
        let expired: Vec<BroadcastId> = self
            .awaiting_confirm
            .iter()
            .filter(|(_, (_, deadline))| now >= *deadline)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            let (payload, _) = self
                .awaiting_confirm
                .remove(&id)
                .expect("expired entry present");
            // CONFIRM never came: the transmitter must have failed —
            // retransmit the main message ourselves (once).
            if self.duplicated.insert(id) {
                actions.send(
                    &HlpMessage {
                        kind: MsgKind::Dup,
                        id,
                        payload,
                    },
                    self_index,
                );
            }
        }
    }

    fn reset(&mut self) {
        self.delivered.clear();
        self.awaiting_confirm.clear();
        self.duplicated.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HlpEvent, HlpNode};
    use majorcan_sim::{NoFaults, NodeId, Simulator};

    #[test]
    fn failure_free_costs_one_confirm_and_no_duplicates() {
        let mut sim = Simulator::new(NoFaults);
        for i in 0..3 {
            sim.attach(HlpNode::new(RelCan::new(), i));
        }
        let id = sim.node_mut(NodeId(0)).broadcast(&[1, 2]);
        sim.run(3000);
        for n in 0..3 {
            assert!(sim.node(NodeId(n)).layer().delivered().contains(&id));
        }
        let kinds: Vec<MsgKind> = sim
            .events()
            .iter()
            .filter_map(|e| match &e.event {
                HlpEvent::Link(CanEvent::TxSucceeded { frame, .. }) => {
                    HlpMessage::decode(frame).map(|m| m.kind)
                }
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![MsgKind::Data, MsgKind::Confirm]);
    }

    #[test]
    fn confirm_timeout_triggers_receiver_duplicates() {
        // Crash the transmitter right after its DATA succeeds, before the
        // CONFIRM goes out: receivers must time out and flood duplicates.
        let mut sim = Simulator::new(NoFaults);
        for i in 0..3 {
            sim.attach(HlpNode::new(RelCan::new(), i));
        }
        sim.node_mut(NodeId(0)).broadcast(&[7]);
        // Run until the DATA tx success, then crash node 0.
        sim.run_until(5000, |s| {
            s.events()
                .iter()
                .any(|e| matches!(&e.event, HlpEvent::Link(CanEvent::TxSucceeded { .. })))
        });
        sim.node_mut(NodeId(0)).crash();
        sim.run(4000);
        let dups = sim
            .events()
            .iter()
            .filter(|e| match &e.event {
                HlpEvent::Link(CanEvent::TxSucceeded { frame, .. }) => {
                    HlpMessage::decode(frame).is_some_and(|m| m.kind == MsgKind::Dup)
                }
                _ => false,
            })
            .count();
        assert!(dups >= 1, "at least one receiver retransmitted");
        // All surviving receivers delivered.
        for n in 1..3 {
            assert_eq!(sim.node(NodeId(n)).layer().delivered().len(), 1);
        }
    }

    #[test]
    fn layer_name() {
        assert_eq!(RelCan::new().name(), "RELCAN");
    }
}
