//! TOTCAN — ACCEPT-based atomic broadcast (Rufino et al., FTCS'98).
//!
//! The only one of the three higher-level protocols claiming Total Order.
//! Receivers never deliver a DATA message directly: they queue it and wait.
//! After the transmitter sees its DATA succeed it sends an ACCEPT frame;
//! the bus order of ACCEPT frames *is* the total order, so receivers
//! deliver on ACCEPT. If no ACCEPT arrives within a timeout (transmitter
//! died), the queued message is discarded everywhere — agreement on
//! non-delivery.
//!
//! Properties: AB1–AB5 under the failure assumptions of FTCS'98. The
//! paper's Fig. 3 point: like RELCAN, TOTCAN's recovery is keyed to
//! transmitter failure. In the new scenarios the correct transmitter
//! ACCEPTs a message that some receivers never queued — they cannot deliver
//! what they do not have, and Agreement breaks.

use crate::node::{decode_delivery, decode_tx_success, HlpLayer, LayerActions};
use crate::{BroadcastId, HlpConfig, HlpMessage, MsgKind};
use majorcan_can::CanEvent;
use std::collections::{BTreeMap, BTreeSet};

/// The TOTCAN protocol layer.
#[derive(Debug, Clone)]
pub struct TotCan {
    config: HlpConfig,
    delivered: BTreeSet<BroadcastId>,
    /// Queued messages awaiting their ACCEPT: identity → (payload,
    /// deadline).
    pending: BTreeMap<BroadcastId, (Vec<u8>, u64)>,
    /// Own broadcasts whose ACCEPT is pending (for self-delivery).
    own_unaccepted: BTreeMap<BroadcastId, Vec<u8>>,
}

impl TotCan {
    /// Creates the layer with default timeouts.
    pub fn new() -> TotCan {
        TotCan::with_config(HlpConfig::default())
    }

    /// Creates the layer with explicit timeouts.
    pub fn with_config(config: HlpConfig) -> TotCan {
        TotCan {
            config,
            delivered: BTreeSet::new(),
            pending: BTreeMap::new(),
            own_unaccepted: BTreeMap::new(),
        }
    }

    /// Identities delivered so far (test introspection).
    pub fn delivered(&self) -> &BTreeSet<BroadcastId> {
        &self.delivered
    }

    /// Identities currently queued awaiting ACCEPT (test introspection).
    pub fn pending(&self) -> Vec<BroadcastId> {
        self.pending.keys().copied().collect()
    }
}

impl Default for TotCan {
    fn default() -> Self {
        TotCan::new()
    }
}

impl HlpLayer for TotCan {
    fn name(&self) -> &'static str {
        "TOTCAN"
    }

    fn broadcast(&mut self, id: BroadcastId, payload: &[u8], actions: &mut LayerActions) {
        self.own_unaccepted.insert(id, payload.to_vec());
        actions.send(
            &HlpMessage {
                kind: MsgKind::Data,
                id,
                payload: payload.to_vec(),
            },
            id.origin as usize,
        );
    }

    fn on_link_event(
        &mut self,
        now: u64,
        self_index: usize,
        event: &CanEvent,
        actions: &mut LayerActions,
    ) {
        if let Some(msg) = decode_tx_success(event) {
            match msg.kind {
                MsgKind::Data if msg.id.origin as usize == self_index => {
                    // DATA out: send the ACCEPT that fixes the order.
                    actions.send(
                        &HlpMessage {
                            kind: MsgKind::Accept,
                            id: msg.id,
                            payload: Vec::new(),
                        },
                        self_index,
                    );
                }
                MsgKind::Accept if msg.id.origin as usize == self_index => {
                    // Our ACCEPT is on the bus: deliver to self at the same
                    // point in the total order as everyone else.
                    if let Some(payload) = self.own_unaccepted.remove(&msg.id) {
                        if self.delivered.insert(msg.id) {
                            actions.deliver(msg.id, payload);
                        }
                    }
                }
                _ => {}
            }
            return;
        }
        let Some((msg, _sender)) = decode_delivery(event) else {
            return;
        };
        match msg.kind {
            MsgKind::Data | MsgKind::Dup => {
                if !self.delivered.contains(&msg.id) {
                    // Queue at the tail; the ACCEPT will fix the position.
                    self.pending
                        .entry(msg.id)
                        .or_insert((msg.payload, now + self.config.accept_timeout_bits));
                }
            }
            MsgKind::Accept => {
                if let Some((payload, _)) = self.pending.remove(&msg.id) {
                    if self.delivered.insert(msg.id) {
                        actions.deliver(msg.id, payload);
                    }
                }
                // ACCEPT for a message we never queued: nothing we can do —
                // this is exactly how the Fig. 3 omission persists.
            }
            MsgKind::Confirm => {}
        }
    }

    fn on_tick(&mut self, now: u64, _self_index: usize, actions: &mut LayerActions) {
        let expired: Vec<BroadcastId> = self
            .pending
            .iter()
            .filter(|(_, (_, deadline))| now >= *deadline)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            self.pending.remove(&id);
            actions.events.push(crate::HlpEvent::Dropped { id });
        }
    }

    fn reset(&mut self) {
        self.delivered.clear();
        self.pending.clear();
        self.own_unaccepted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HlpEvent, HlpNode};
    use majorcan_sim::{NoFaults, NodeId, Simulator};

    #[test]
    fn delivery_waits_for_accept() {
        let mut sim = Simulator::new(NoFaults);
        for i in 0..3 {
            sim.attach(HlpNode::new(TotCan::new(), i));
        }
        let id = sim.node_mut(NodeId(0)).broadcast(&[5]);
        sim.run(3000);
        for n in 0..3 {
            assert!(
                sim.node(NodeId(n)).layer().delivered().contains(&id),
                "node {n}"
            );
            assert!(sim.node(NodeId(n)).layer().pending().is_empty());
        }
        // Receivers deliver strictly after the ACCEPT appears on the bus.
        let accept_at = sim
            .events()
            .iter()
            .find(|e| match &e.event {
                HlpEvent::Link(CanEvent::TxStarted { frame, .. }) => {
                    HlpMessage::decode(frame).is_some_and(|m| m.kind == MsgKind::Accept)
                }
                _ => false,
            })
            .expect("accept sent")
            .at;
        let rx_delivery_at = sim
            .events()
            .iter()
            .find(|e| e.node != NodeId(0) && matches!(e.event, HlpEvent::Delivered { .. }))
            .expect("rx delivered")
            .at;
        assert!(rx_delivery_at > accept_at);
    }

    #[test]
    fn missing_accept_drops_the_message_everywhere() {
        let mut sim = Simulator::new(NoFaults);
        for i in 0..3 {
            sim.attach(HlpNode::new(TotCan::new(), i));
        }
        sim.node_mut(NodeId(0)).broadcast(&[5]);
        // Crash the transmitter right after the DATA succeeds (before the
        // ACCEPT transmission completes).
        sim.run_until(5000, |s| {
            s.events()
                .iter()
                .any(|e| matches!(&e.event, HlpEvent::Link(CanEvent::TxSucceeded { .. })))
        });
        sim.node_mut(NodeId(0)).crash();
        sim.run(4000);
        for n in 1..3 {
            assert!(
                sim.node(NodeId(n)).layer().delivered().is_empty(),
                "node {n} must not deliver"
            );
            assert!(sim.node(NodeId(n)).layer().pending().is_empty());
        }
        let drops = sim
            .events()
            .iter()
            .filter(|e| matches!(e.event, HlpEvent::Dropped { .. }))
            .count();
        assert_eq!(
            drops, 2,
            "both receivers dropped: agreement on non-delivery"
        );
    }

    #[test]
    fn two_broadcasters_deliver_in_accept_order_everywhere() {
        let mut sim = Simulator::new(NoFaults);
        for i in 0..4 {
            sim.attach(HlpNode::new(TotCan::new(), i));
        }
        sim.node_mut(NodeId(0)).broadcast(&[0xA]);
        sim.node_mut(NodeId(1)).broadcast(&[0xB]);
        sim.run(6000);
        let mut orders: Vec<Vec<BroadcastId>> = Vec::new();
        for n in 0..4 {
            let order: Vec<BroadcastId> = sim
                .events()
                .iter()
                .filter(|e| e.node == NodeId(n))
                .filter_map(|e| match &e.event {
                    HlpEvent::Delivered { id, .. } => Some(*id),
                    _ => None,
                })
                .collect();
            assert_eq!(order.len(), 2, "node {n} delivered both");
            orders.push(order);
        }
        for w in orders.windows(2) {
            assert_eq!(w[0], w[1], "identical delivery order everywhere");
        }
    }

    #[test]
    fn layer_name() {
        assert_eq!(TotCan::new().name(), "TOTCAN");
    }
}
