//! EDCAN — Error-Detection-based reliable broadcast (Rufino et al.,
//! FTCS'98).
//!
//! The brute-force baseline: **every receiver retransmits every message it
//! receives**, so as long as one correct node got a copy, everyone
//! eventually does — transmitter failures and single-view acceptance
//! asymmetries alike are papered over by the flood of duplicates. Delivery
//! happens on first reception (no ordering), duplicates are recognised by
//! `(origin, seq)` and ignored.
//!
//! Properties: AB1–AB4 (Reliable Broadcast) but **not** AB5 Total Order.
//! Cost: each message is transmitted at least twice (once per receiver in
//! the worst case) — the paper's performance argument against it. It is
//! also the only one of the three higher-level protocols that still works
//! in the paper's new Fig. 3 scenarios, precisely because its recovery does
//! not depend on detecting a transmitter failure.

use crate::node::{decode_delivery, decode_tx_success, HlpLayer, LayerActions};
use crate::{BroadcastId, HlpMessage, MsgKind};
use majorcan_can::CanEvent;
use std::collections::BTreeSet;

/// The EDCAN protocol layer.
#[derive(Debug, Clone, Default)]
pub struct EdCan {
    delivered: BTreeSet<BroadcastId>,
    duplicated: BTreeSet<BroadcastId>,
}

impl EdCan {
    /// Creates the layer.
    pub fn new() -> EdCan {
        EdCan::default()
    }

    /// Identities delivered so far (test introspection).
    pub fn delivered(&self) -> &BTreeSet<BroadcastId> {
        &self.delivered
    }
}

impl HlpLayer for EdCan {
    fn name(&self) -> &'static str {
        "EDCAN"
    }

    fn broadcast(&mut self, id: BroadcastId, payload: &[u8], actions: &mut LayerActions) {
        actions.send(
            &HlpMessage {
                kind: MsgKind::Data,
                id,
                payload: payload.to_vec(),
            },
            id.origin as usize,
        );
    }

    fn on_link_event(
        &mut self,
        _now: u64,
        self_index: usize,
        event: &CanEvent,
        actions: &mut LayerActions,
    ) {
        // Own DATA went out: deliver to self.
        if let Some(msg) = decode_tx_success(event) {
            if msg.kind == MsgKind::Data && self.delivered.insert(msg.id) {
                actions.deliver(msg.id, msg.payload);
            }
            return;
        }
        let Some((msg, _sender)) = decode_delivery(event) else {
            return;
        };
        match msg.kind {
            MsgKind::Data | MsgKind::Dup => {
                if self.delivered.insert(msg.id) {
                    actions.deliver(msg.id, msg.payload.clone());
                }
                // Every receiver retransmits each message once, whether the
                // copy it saw was the original or already a duplicate.
                if msg.id.origin as usize != self_index && self.duplicated.insert(msg.id) {
                    actions.send(
                        &HlpMessage {
                            kind: MsgKind::Dup,
                            id: msg.id,
                            payload: msg.payload,
                        },
                        self_index,
                    );
                }
            }
            MsgKind::Confirm | MsgKind::Accept => {}
        }
    }

    fn on_tick(&mut self, _now: u64, _self_index: usize, _actions: &mut LayerActions) {}

    fn reset(&mut self) {
        self.delivered.clear();
        self.duplicated.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HlpNode;
    use majorcan_sim::{NoFaults, NodeId, Simulator};

    #[test]
    fn every_node_delivers_once_and_duplicates_flood() {
        let mut sim = Simulator::new(NoFaults);
        for i in 0..4 {
            sim.attach(HlpNode::new(EdCan::new(), i));
        }
        let id = sim.node_mut(NodeId(0)).broadcast(&[0xAB]);
        sim.run(3000);
        for n in 0..4 {
            let delivered = sim.node(NodeId(n)).layer().delivered();
            assert!(delivered.contains(&id), "node {n} delivered");
            assert_eq!(delivered.len(), 1, "node {n} delivered exactly one id");
        }
        // Three receivers ⇒ three duplicates on the bus.
        let dups = sim
            .events()
            .iter()
            .filter(|e| match &e.event {
                crate::HlpEvent::Link(CanEvent::TxSucceeded { frame, .. }) => {
                    HlpMessage::decode(frame).is_some_and(|m| m.kind == MsgKind::Dup)
                }
                _ => false,
            })
            .count();
        assert_eq!(dups, 3, "each receiver retransmitted once");
    }

    #[test]
    fn layer_name() {
        assert_eq!(EdCan::new().name(), "EDCAN");
    }
}
