//! Property-based tests of the higher-level protocols: message codec
//! round-trips and reliable-broadcast invariants under arbitrary
//! fault-free broadcast mixes.

use majorcan_hlp::{
    trace_from_hlp_events, BroadcastId, EdCan, HlpLayer, HlpMessage, HlpNode, MsgKind, RelCan,
    TotCan,
};
use majorcan_sim::{NoFaults, NodeId, Simulator};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = MsgKind> {
    prop_oneof![
        Just(MsgKind::Data),
        Just(MsgKind::Dup),
        Just(MsgKind::Confirm),
        Just(MsgKind::Accept),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn message_codec_round_trips(
        kind in arb_kind(),
        origin in 0u8..128,
        seq in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..=4),
        sender in 0usize..128,
    ) {
        let msg = HlpMessage {
            kind,
            id: BroadcastId { origin, seq },
            payload,
        };
        let frame = msg.encode(sender).expect("in-range message encodes");
        prop_assert_eq!(HlpMessage::decode(&frame), Some(msg));
        prop_assert_eq!(HlpMessage::sender_of(&frame), sender);
    }

    #[test]
    fn distinct_senders_never_collide_on_the_identifier(
        kind in arb_kind(),
        a in 0usize..128,
        b in 0usize..128,
    ) {
        prop_assume!(a != b);
        let msg = HlpMessage {
            kind,
            id: BroadcastId { origin: 0, seq: 1 },
            payload: vec![],
        };
        prop_assert_ne!(
            msg.encode(a).unwrap().id(),
            msg.encode(b).unwrap().id(),
            "two nodes transmitting the same message must use distinct ids"
        );
    }
}

/// Runs `broadcasts` (as `(node, payload)` pairs) under a protocol on a
/// fault-free bus and returns the checker report.
fn run_mix<L: HlpLayer, F: Fn() -> L>(
    make: F,
    n_nodes: usize,
    broadcasts: &[(usize, Vec<u8>)],
) -> majorcan_abcast::Report {
    let mut sim = Simulator::new(NoFaults);
    for i in 0..n_nodes {
        sim.attach(HlpNode::new(make(), i));
    }
    for (node, payload) in broadcasts {
        sim.node_mut(NodeId(*node)).broadcast(payload);
        sim.run(2_500);
    }
    sim.run(8_000);
    trace_from_hlp_events(sim.events(), n_nodes).check()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fault_free_mixes_are_reliable_broadcast_under_all_protocols(
        broadcasts in proptest::collection::vec(
            (0usize..3, proptest::collection::vec(any::<u8>(), 0..=4)),
            1..5,
        ),
    ) {
        let ed = run_mix(EdCan::new, 3, &broadcasts);
        prop_assert!(ed.reliable_broadcast(), "EDCAN: {}", ed);
        let rel = run_mix(RelCan::new, 3, &broadcasts);
        prop_assert!(rel.reliable_broadcast(), "RELCAN: {}", rel);
        let tot = run_mix(TotCan::new, 3, &broadcasts);
        prop_assert!(tot.atomic_broadcast(), "TOTCAN: {}", tot);
    }
}
