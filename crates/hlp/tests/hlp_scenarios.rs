//! The paper's Section 4 verdict on the higher-level protocols:
//!
//! * In the *old* scenario (Fig. 1c — transmitter fails) all three recover
//!   or agree on non-delivery.
//! * In the *new* scenario (Fig. 3a — transmitter stays correct) only EDCAN
//!   preserves Agreement; RELCAN and TOTCAN "only perform recovery actions
//!   in case the transmitter fails" and leave the X set without the
//!   message.
//!
//! Node 0 = transmitter, node 1 = X set, node 2 = Y set, exactly as in the
//! link-layer scenario tests.

use majorcan_can::{CanEvent, ControllerConfig};
use majorcan_faults::{Disturbance, ScriptedFaults};
use majorcan_hlp::{trace_from_hlp_events, EdCan, HlpEvent, HlpLayer, HlpNode, RelCan, TotCan};
use majorcan_sim::{NodeId, Simulator};

/// Fig. 3a's disturbance script: X's view of EOF bit 6 and the
/// transmitter's view of EOF bit 7, first frame on the bus (the DATA
/// frame).
fn fig3a_script() -> ScriptedFaults {
    ScriptedFaults::new(vec![Disturbance::eof(1, 6), Disturbance::eof(0, 7)])
}

/// Fig. 1b/1c's single disturbance: X's view of EOF bit 6.
fn fig1_script() -> ScriptedFaults {
    ScriptedFaults::new(vec![Disturbance::eof(1, 6)])
}

fn run_with_layer<L: HlpLayer, F: Fn() -> L>(
    make: F,
    script: ScriptedFaults,
    crash_tx_after_resched: bool,
    budget: u64,
) -> Simulator<HlpNode<L>, ScriptedFaults> {
    // Optional probe pass to locate the retransmission scheduling time.
    let fail_at = if crash_tx_after_resched {
        let mut probe = Simulator::new(script.clone());
        for i in 0..3 {
            probe.attach(HlpNode::new(make(), i));
        }
        probe.node_mut(NodeId(0)).broadcast(&[0x5A]);
        probe.run(budget);
        probe
            .events()
            .iter()
            .find(|e| {
                e.node == NodeId(0)
                    && matches!(
                        e.event,
                        HlpEvent::Link(CanEvent::RetransmissionScheduled { .. })
                    )
            })
            .map(|e| e.at + 1)
    } else {
        None
    };

    let mut sim = Simulator::new(script);
    for i in 0..3 {
        let config = ControllerConfig {
            fail_at: if i == 0 { fail_at } else { None },
            ..ControllerConfig::default()
        };
        sim.attach(HlpNode::with_config(make(), i, config));
    }
    sim.node_mut(NodeId(0)).broadcast(&[0x5A]);
    sim.run(budget);
    sim
}

fn delivered_at<L: HlpLayer>(sim: &Simulator<HlpNode<L>, ScriptedFaults>, node: usize) -> usize {
    sim.events()
        .iter()
        .filter(|e| e.node == NodeId(node) && matches!(e.event, HlpEvent::Delivered { .. }))
        .count()
}

// --------------------------------------------------------------------------
// Old scenario (Fig. 1c): transmitter fails. All three protocols stay
// consistent — that is what they were designed for.
// --------------------------------------------------------------------------

#[test]
fn edcan_recovers_from_tx_crash() {
    let sim = run_with_layer(EdCan::new, fig1_script(), true, 6000);
    assert_eq!(delivered_at(&sim, 1), 1, "X recovered via duplicates");
    assert_eq!(delivered_at(&sim, 2), 1);
    let trace = trace_from_hlp_events(sim.events(), 3);
    let report = trace.check();
    assert!(report.agreement.holds, "{report}");
    assert!(report.reliable_broadcast(), "{report}");
}

#[test]
fn relcan_recovers_from_tx_crash() {
    let sim = run_with_layer(RelCan::new, fig1_script(), true, 6000);
    assert_eq!(delivered_at(&sim, 1), 1, "X recovered: CONFIRM timed out");
    assert_eq!(delivered_at(&sim, 2), 1);
    let report = trace_from_hlp_events(sim.events(), 3).check();
    assert!(report.agreement.holds, "{report}");
}

#[test]
fn totcan_agrees_on_non_delivery_after_tx_crash() {
    let sim = run_with_layer(TotCan::new, fig1_script(), true, 6000);
    assert_eq!(delivered_at(&sim, 1), 0, "no ACCEPT ⇒ no delivery");
    assert_eq!(delivered_at(&sim, 2), 0, "agreement on non-delivery");
    let report = trace_from_hlp_events(sim.events(), 3).check();
    assert!(report.agreement.holds, "{report}");
    assert!(report.total_order.holds);
    // Y (the only receiver whose link layer accepted the frame) explicitly
    // dropped the unaccepted message; X never queued anything.
    let drops = sim
        .events()
        .iter()
        .filter(|e| matches!(e.event, HlpEvent::Dropped { .. }))
        .count();
    assert_eq!(drops, 1);
}

// --------------------------------------------------------------------------
// New scenario (Fig. 3a): the transmitter stays correct. Only EDCAN holds.
// --------------------------------------------------------------------------

#[test]
fn edcan_survives_the_new_scenario() {
    let sim = run_with_layer(EdCan::new, fig3a_script(), false, 6000);
    assert_eq!(delivered_at(&sim, 0), 1);
    assert_eq!(delivered_at(&sim, 1), 1, "X recovered via Y's duplicate");
    assert_eq!(delivered_at(&sim, 2), 1);
    let report = trace_from_hlp_events(sim.events(), 3).check();
    assert!(
        report.reliable_broadcast(),
        "EDCAN keeps AB1-AB4 in the new scenario: {report}"
    );
}

#[test]
fn relcan_fails_agreement_in_the_new_scenario() {
    let sim = run_with_layer(RelCan::new, fig3a_script(), false, 6000);
    assert_eq!(delivered_at(&sim, 2), 1, "Y delivered");
    assert_eq!(
        delivered_at(&sim, 1),
        0,
        "X never recovers: the CONFIRM arrives punctually, so no timeout fires"
    );
    let report = trace_from_hlp_events(sim.events(), 3).check();
    assert!(
        !report.agreement.holds,
        "RELCAN violates Agreement although the transmitter stayed correct"
    );
    assert_eq!(report.imo_messages.len(), 1);
}

#[test]
fn totcan_fails_agreement_in_the_new_scenario() {
    let sim = run_with_layer(TotCan::new, fig3a_script(), false, 6000);
    assert_eq!(delivered_at(&sim, 2), 1, "Y delivered on ACCEPT");
    assert_eq!(
        delivered_at(&sim, 1),
        0,
        "X holds an ACCEPT for a message it never queued"
    );
    let report = trace_from_hlp_events(sim.events(), 3).check();
    assert!(
        !report.agreement.holds,
        "TOTCAN violates Agreement although the transmitter stayed correct"
    );
}

// --------------------------------------------------------------------------
// Failure-free ordering properties.
// --------------------------------------------------------------------------

#[test]
fn edcan_provides_no_total_order_guarantee_but_totcan_does() {
    // Two concurrent broadcasts under heavy duplicate traffic: TOTCAN's
    // delivery order is the ACCEPT order at every node; EDCAN delivers on
    // first copy, which may interleave differently. (We assert TOTCAN's
    // guarantee; EDCAN's order is unconstrained — the checker may or may
    // not catch a divergence in any given run.)
    let mut sim = Simulator::new(majorcan_sim::NoFaults);
    for i in 0..4 {
        sim.attach(HlpNode::new(TotCan::new(), i));
    }
    sim.node_mut(NodeId(0)).broadcast(&[1]);
    sim.node_mut(NodeId(1)).broadcast(&[2]);
    sim.node_mut(NodeId(2)).broadcast(&[3]);
    sim.run(12_000);
    let report = trace_from_hlp_events(sim.events(), 4).check();
    assert!(report.atomic_broadcast(), "{report}");
}

#[test]
fn all_protocols_handle_many_messages_cleanly() {
    fn run_all<L: HlpLayer, F: Fn() -> L>(make: F) {
        let mut sim = Simulator::new(majorcan_sim::NoFaults);
        for i in 0..3 {
            sim.attach(HlpNode::new(make(), i));
        }
        for k in 0..5 {
            sim.node_mut(NodeId(k % 3)).broadcast(&[k as u8]);
        }
        sim.run(30_000);
        let report = trace_from_hlp_events(sim.events(), 3).check();
        assert!(report.reliable_broadcast(), "{report}");
    }
    run_all(EdCan::new);
    run_all(RelCan::new);
    run_all(TotCan::new);
}

// --------------------------------------------------------------------------
// Link-level double receptions (Fig. 1b) are masked by every protocol
// layer's (origin, seq) deduplication — the "common recommendation" the
// paper cites from Zeltwanger, implemented once in each layer.
// --------------------------------------------------------------------------

#[test]
fn hlp_layers_deduplicate_link_level_double_receptions() {
    fn run<L: HlpLayer, F: Fn() -> L>(name: &str, make: F) {
        // Fig. 1b: node 2's link layer delivers the DATA frame twice.
        let sim = run_with_layer(make, fig1_script(), false, 6000);
        // Link level: at least one double delivery of the DATA frame at Y.
        let link_deliveries = sim
            .events()
            .iter()
            .filter(|e| {
                e.node == NodeId(2)
                    && matches!(&e.event, HlpEvent::Link(CanEvent::Delivered { .. }))
            })
            .count();
        assert!(
            link_deliveries >= 2,
            "{name}: Y's link layer must see the Fig. 1b double reception \
             (got {link_deliveries})"
        );
        // Protocol level: exactly one host delivery per node.
        for n in 0..3 {
            let host = delivered_at(&sim, n);
            assert_eq!(host, 1, "{name}: node {n} host deliveries");
        }
        let report = trace_from_hlp_events(sim.events(), 3).check();
        assert!(report.at_most_once.holds, "{name}: {report}");
    }
    run("EDCAN", EdCan::new);
    run("RELCAN", RelCan::new);
    run("TOTCAN", TotCan::new);
}
