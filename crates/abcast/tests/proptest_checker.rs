//! Property-based tests of the AB1–AB5 checker: metamorphic properties
//! that must hold for arbitrary traces.

use majorcan_abcast::{AbTrace, MsgId};
use proptest::prelude::*;

fn arb_msg() -> impl Strategy<Value = MsgId> {
    (0u16..8, proptest::collection::vec(any::<u8>(), 0..3))
        .prop_map(|(ch, payload)| MsgId::new(ch, payload))
}

/// A small random trace over `n` nodes.
fn arb_trace(n: usize) -> impl Strategy<Value = AbTrace> {
    let event = (0u8..4, 0usize..n, arb_msg(), 0u64..1000);
    proptest::collection::vec(event, 0..40).prop_map(move |events| {
        let mut t = AbTrace::new(n);
        for (kind, node, msg, at) in events {
            match kind {
                0 => {
                    t.broadcast(at, node, msg);
                }
                1 | 2 => {
                    t.deliver(at, node, msg);
                }
                _ => {
                    t.crash(at, node);
                }
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn checker_never_panics(trace in arb_trace(4)) {
        let _ = trace.check();
    }

    #[test]
    fn atomic_implies_reliable(trace in arb_trace(4)) {
        let report = trace.check();
        if report.atomic_broadcast() {
            prop_assert!(report.reliable_broadcast());
        }
    }

    #[test]
    fn crashing_every_node_satisfies_everything_vacuously(trace in arb_trace(3)) {
        let mut t = trace.clone();
        for n in 0..3 {
            t.crash(2_000, n);
        }
        let report = t.check();
        prop_assert!(report.atomic_broadcast(), "{}", report);
    }

    #[test]
    fn completing_deliveries_repairs_agreement(trace in arb_trace(4)) {
        // Metamorphic repair: deliver every message already delivered by a
        // correct node to EVERY correct node — Agreement must then hold.
        let mut t = trace.clone();
        let correct = t.correct_nodes();
        let delivered: Vec<MsgId> = correct
            .iter()
            .flat_map(|&n| t.deliveries_of(n).into_iter().cloned().collect::<Vec<_>>())
            .collect();
        for msg in delivered {
            for &n in &correct {
                t.deliver(5_000, n, msg.clone());
            }
        }
        let report = t.check();
        prop_assert!(report.agreement.holds, "{}", report);
    }

    #[test]
    fn broadcasting_everything_repairs_non_triviality(trace in arb_trace(4)) {
        let mut t = AbTrace::new(4);
        // Prepend a broadcast for every message the original trace touches.
        for s in trace.events() {
            if let majorcan_abcast::AbEvent::Deliver { msg, .. } = &s.event {
                t.broadcast(0, 0, msg.clone());
            }
        }
        t.extend(trace.events().iter().cloned());
        prop_assert!(t.check().non_triviality.holds);
    }

    #[test]
    fn identical_delivery_sequences_have_total_order(
        msgs in proptest::collection::vec(arb_msg(), 0..10),
        n in 2usize..5,
    ) {
        // Same first-delivery sequence at every node ⇒ AB5 holds.
        let mut t = AbTrace::new(n);
        for m in &msgs {
            t.broadcast(0, 0, m.clone());
        }
        for node in 0..n {
            for (i, m) in msgs.iter().enumerate() {
                t.deliver(10 + i as u64, node, m.clone());
            }
        }
        let report = t.check();
        prop_assert!(report.total_order.holds, "{}", report);
        prop_assert!(report.agreement.holds);
    }

    #[test]
    fn single_node_systems_are_trivially_ordered(trace in arb_trace(1)) {
        let report = trace.check();
        prop_assert!(report.total_order.holds);
        prop_assert!(report.agreement.holds);
    }
}
