//! # majorcan-abcast — Atomic Broadcast property checking
//!
//! The MajorCAN paper's claims are claims about **properties**: standard CAN
//! violates Agreement and At-most-once delivery, MinorCAN still violates
//! Agreement under two disturbances, EDCAN lacks Total Order, and MajorCAN_m
//! satisfies all of AB1–AB5 under up to `m` disturbed bit-views per frame.
//! This crate turns every simulation run into such a verdict:
//!
//! * [`AbTrace`] — a protocol-agnostic log of `Broadcast` / `Deliver` /
//!   `Crash` events;
//! * [`check_trace`] / [`Report`] — the post-hoc AB1–AB5 checker with IMO
//!   and double-delivery diagnostics (a thin wrapper over
//!   [`TraceAccumulator`]);
//! * [`WindowedChecker`] — the incremental windowed checker: same event
//!   vocabulary, O(live messages) memory, verdicts flagged online — built
//!   for soak runs streaming millions of frames;
//! * [`trace_from_can_events`] — the adapter from raw CAN controller logs
//!   (link-layer semantics, transmitter self-delivery included);
//!   [`WindowedChecker::push_can`] is its streaming counterpart.
//!
//! # Examples
//!
//! ```
//! use majorcan_abcast::{AbTrace, MsgId};
//!
//! // The Fig. 1c shape: Y keeps a frame X never received.
//! let m = MsgId::new(0x0AA, vec![0xCD]);
//! let mut trace = AbTrace::new(3);
//! trace.broadcast(0, 0, m.clone());
//! trace.deliver(50, 2, m.clone()); // Y
//! trace.crash(60, 0);              // the transmitter dies
//! let report = trace.check();
//! assert!(!report.agreement.holds, "inconsistent message omission");
//! assert_eq!(report.imo_messages, vec![m]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod checker;
mod incremental;
mod render;
mod trace;

pub use adapter::{msg_id_of, trace_from_can_events};
pub use checker::{check_trace, PropertyResult, Report, TraceAccumulator, Verdict};
pub use incremental::{OnlineReport, WindowedChecker, MAX_NODES};
pub use render::render_delivery_matrix;
pub use trace::{AbEvent, AbTrace, MsgId, Stamped};
