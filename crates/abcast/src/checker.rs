//! The AB1–AB5 property checker.
//!
//! The paper (Section 2) adopts the Atomic Broadcast definition of
//! Hadzilacos & Toueg under benign (crash/omission/timing) failures:
//!
//! * **AB1 Validity** — a message broadcast by a correct node is eventually
//!   delivered to a correct node.
//! * **AB2 Agreement** — a message delivered to a correct node is delivered
//!   to all correct nodes.
//! * **AB3 At-most-once** — no correct node delivers a message twice.
//! * **AB4 Non-triviality** — every delivered message was broadcast.
//! * **AB5 Total order** — any two messages delivered at two correct nodes
//!   are delivered in the same order at both.
//!
//! The checker is purely trace-based: it never looks inside a protocol, so
//! the same verdict machinery judges raw CAN, MinorCAN, MajorCAN and the
//! higher-level protocols.

use crate::{AbEvent, AbTrace, MsgId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Outcome of one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyResult {
    /// `true` if no violation was found.
    pub holds: bool,
    /// Human-readable violation descriptions (empty when the property
    /// holds).
    pub violations: Vec<String>,
}

impl PropertyResult {
    fn ok() -> PropertyResult {
        PropertyResult {
            holds: true,
            violations: Vec::new(),
        }
    }

    fn violated(violations: Vec<String>) -> PropertyResult {
        PropertyResult {
            holds: violations.is_empty(),
            violations,
        }
    }
}

impl fmt::Display for PropertyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.holds {
            f.write_str("holds")
        } else {
            write!(f, "VIOLATED ({} case(s))", self.violations.len())
        }
    }
}

/// The full AB1–AB5 verdict for a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// AB1 — Validity.
    pub validity: PropertyResult,
    /// AB2 — Agreement.
    pub agreement: PropertyResult,
    /// AB3 — At-most-once delivery.
    pub at_most_once: PropertyResult,
    /// AB4 — Non-triviality.
    pub non_triviality: PropertyResult,
    /// AB5 — Total order.
    pub total_order: PropertyResult,
    /// Messages suffering an inconsistent message omission: delivered by
    /// some correct node but missed by at least one other correct node.
    pub imo_messages: Vec<MsgId>,
    /// `(node, message)` pairs delivered more than once.
    pub double_deliveries: Vec<(usize, MsgId)>,
}

/// A one-word summary of a [`Report`], graded by severity: the verdict is
/// the *worst* broken property (validity before agreement before
/// at-most-once). Campaign experiments key counters on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Verdict {
    /// All checked properties held.
    Consistent,
    /// AB3 broken: someone delivered a message twice.
    DoubleReception,
    /// AB2 broken: a correct node was left without a delivered message
    /// (an inconsistent message omission).
    Omission,
    /// AB1 broken: a correct transmitter's message reached nobody.
    ValidityLoss,
}

impl Verdict {
    /// Stable lower-case token (used as a counter-key segment in campaign
    /// JSONL artifacts — do not change spellings).
    pub fn token(&self) -> &'static str {
        match self {
            Verdict::Consistent => "consistent",
            Verdict::DoubleReception => "double",
            Verdict::Omission => "omission",
            Verdict::ValidityLoss => "validity",
        }
    }

    /// Parses what [`Verdict::token`] produced.
    pub fn from_token(token: &str) -> Option<Verdict> {
        Some(match token {
            "consistent" => Verdict::Consistent,
            "double" => Verdict::DoubleReception,
            "omission" => Verdict::Omission,
            "validity" => Verdict::ValidityLoss,
            _ => return None,
        })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Consistent => "consistent",
            Verdict::DoubleReception => "double reception",
            Verdict::Omission => "OMISSION",
            Verdict::ValidityLoss => "VALIDITY LOSS",
        })
    }
}

impl Report {
    /// Summarizes the report into a single [`Verdict`] (worst broken
    /// property wins).
    pub fn verdict(&self) -> Verdict {
        if !self.validity.holds {
            Verdict::ValidityLoss
        } else if !self.agreement.holds {
            Verdict::Omission
        } else if !self.at_most_once.holds {
            Verdict::DoubleReception
        } else {
            Verdict::Consistent
        }
    }

    /// `true` iff all five Atomic Broadcast properties hold.
    pub fn atomic_broadcast(&self) -> bool {
        self.validity.holds
            && self.agreement.holds
            && self.at_most_once.holds
            && self.non_triviality.holds
            && self.total_order.holds
    }

    /// `true` iff the trace satisfies Reliable Broadcast (AB1–AB4, i.e.
    /// everything except total order) — what EDCAN and RELCAN provide.
    pub fn reliable_broadcast(&self) -> bool {
        self.validity.holds
            && self.agreement.holds
            && self.at_most_once.holds
            && self.non_triviality.holds
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AB1 Validity:         {}", self.validity)?;
        writeln!(f, "AB2 Agreement:        {}", self.agreement)?;
        writeln!(f, "AB3 At-most-once:     {}", self.at_most_once)?;
        writeln!(f, "AB4 Non-triviality:   {}", self.non_triviality)?;
        writeln!(f, "AB5 Total order:      {}", self.total_order)?;
        write!(
            f,
            "=> {}",
            if self.atomic_broadcast() {
                "ATOMIC BROADCAST"
            } else if self.reliable_broadcast() {
                "reliable broadcast only (no total order)"
            } else {
                "NOT atomic broadcast"
            }
        )
    }
}

/// Post-hoc accumulator behind [`check_trace`]: consumes [`AbEvent`]s one
/// at a time and produces the detailed [`Report`] at the end.
///
/// This is the reference semantics of the checker. It retains the full
/// per-node delivery orders (O(trace) memory) so it can enumerate every
/// violating message pair; the windowed
/// [`WindowedChecker`](crate::WindowedChecker) consumes the same event
/// vocabulary in O(live messages) memory and is property-tested to agree
/// with this accumulator's verdicts.
#[derive(Debug, Clone, Default)]
pub struct TraceAccumulator {
    n_nodes: usize,
    crashed: BTreeSet<usize>,
    broadcasts: BTreeMap<MsgId, usize>,
    // Per node, per msg: delivery count; plus each node's first-delivery
    // order for the total-order check.
    delivery_counts: BTreeMap<(usize, MsgId), usize>,
    delivery_order: BTreeMap<usize, Vec<MsgId>>,
}

impl TraceAccumulator {
    /// An empty accumulator over `n_nodes` nodes.
    pub fn new(n_nodes: usize) -> TraceAccumulator {
        TraceAccumulator {
            n_nodes,
            ..TraceAccumulator::default()
        }
    }

    /// Consumes one event.
    pub fn push(&mut self, event: &AbEvent) {
        match event {
            AbEvent::Broadcast { node, msg } => {
                self.broadcasts.entry(msg.clone()).or_insert(*node);
            }
            AbEvent::Deliver { node, msg } => {
                let count = self
                    .delivery_counts
                    .entry((*node, msg.clone()))
                    .or_insert(0);
                *count += 1;
                if *count == 1 {
                    self.delivery_order
                        .entry(*node)
                        .or_default()
                        .push(msg.clone());
                }
            }
            AbEvent::Crash { node } => {
                self.crashed.insert(*node);
            }
        }
    }

    /// Runs the AB1–AB5 property checks over everything pushed so far.
    pub fn finish(&self) -> Report {
        let correct: BTreeSet<usize> = (0..self.n_nodes)
            .filter(|n| !self.crashed.contains(n))
            .collect();
        let broadcasts = &self.broadcasts;
        let delivery_counts = &self.delivery_counts;
        let delivery_order = &self.delivery_order;

        // AB1 Validity: broadcast by correct node ⇒ delivered by some
        // correct node.
        let mut validity = Vec::new();
        for (msg, origin) in broadcasts {
            if !correct.contains(origin) {
                continue;
            }
            let delivered_somewhere = correct
                .iter()
                .any(|n| delivery_counts.contains_key(&(*n, msg.clone())));
            if !delivered_somewhere {
                validity.push(format!(
                    "{msg} broadcast by correct n{origin} but never delivered to any correct node"
                ));
            }
        }

        // AB2 Agreement: delivered by one correct node ⇒ delivered by all.
        let mut agreement = Vec::new();
        let mut imo_messages = Vec::new();
        let delivered_msgs: BTreeSet<MsgId> = delivery_counts
            .keys()
            .filter(|(n, _)| correct.contains(n))
            .map(|(_, m)| m.clone())
            .collect();
        for msg in &delivered_msgs {
            let missing: Vec<usize> = correct
                .iter()
                .copied()
                .filter(|n| !delivery_counts.contains_key(&(*n, msg.clone())))
                .collect();
            if !missing.is_empty() {
                imo_messages.push(msg.clone());
                agreement.push(format!(
                    "{msg} delivered to some correct nodes but not to {}",
                    missing
                        .iter()
                        .map(|n| format!("n{n}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }

        // AB3 At-most-once.
        let mut at_most_once = Vec::new();
        let mut double_deliveries = Vec::new();
        for ((node, msg), count) in delivery_counts {
            if correct.contains(node) && *count > 1 {
                double_deliveries.push((*node, msg.clone()));
                at_most_once.push(format!("n{node} delivered {msg} {count} times"));
            }
        }

        // AB4 Non-triviality.
        let mut non_triviality = Vec::new();
        for (node, msg) in delivery_counts.keys() {
            if correct.contains(node) && !broadcasts.contains_key(msg) {
                non_triviality.push(format!("n{node} delivered {msg}, which nobody broadcast"));
            }
        }
        non_triviality.dedup();

        // AB5 Total order: pairwise consistency of first-delivery orders.
        let mut total_order = Vec::new();
        let correct_vec: Vec<usize> = correct.iter().copied().collect();
        for (i, &a) in correct_vec.iter().enumerate() {
            for &b in &correct_vec[i + 1..] {
                let empty = Vec::new();
                let oa = delivery_order.get(&a).unwrap_or(&empty);
                let ob = delivery_order.get(&b).unwrap_or(&empty);
                let pos_a: BTreeMap<&MsgId, usize> =
                    oa.iter().enumerate().map(|(i, m)| (m, i)).collect();
                let pos_b: BTreeMap<&MsgId, usize> =
                    ob.iter().enumerate().map(|(i, m)| (m, i)).collect();
                let common: Vec<&MsgId> = oa.iter().filter(|m| pos_b.contains_key(m)).collect();
                for (x, m1) in common.iter().enumerate() {
                    for m2 in &common[x + 1..] {
                        let fwd_a = pos_a[*m1] < pos_a[*m2];
                        let fwd_b = pos_b[*m1] < pos_b[*m2];
                        if fwd_a != fwd_b {
                            total_order.push(format!(
                                "n{a} delivers {m1} before {m2}, n{b} the other way around"
                            ));
                        }
                    }
                }
            }
        }

        Report {
            validity: PropertyResult::violated(validity),
            agreement: PropertyResult::violated(agreement),
            at_most_once: PropertyResult::violated(at_most_once),
            non_triviality: PropertyResult::violated(non_triviality),
            total_order: PropertyResult::violated(total_order),
            imo_messages,
            double_deliveries,
        }
    }
}

/// Checks AB1–AB5 over `trace`. See the module docs for the property
/// definitions; "correct" means never crashed within the trace.
///
/// This is the post-hoc wrapper around [`TraceAccumulator`]: the whole
/// trace is replayed into the accumulator and checked once at the end.
pub fn check_trace(trace: &AbTrace) -> Report {
    let mut acc = TraceAccumulator::new(trace.n_nodes());
    for stamped in trace.events() {
        acc.push(&stamped.event);
    }
    acc.finish()
}

impl PropertyResult {
    /// A passing result (used by tests of downstream crates).
    pub fn passing() -> PropertyResult {
        PropertyResult::ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(n: u16) -> MsgId {
        MsgId::new(n, vec![n as u8])
    }

    #[test]
    fn clean_broadcast_satisfies_all() {
        let m = msg(1);
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, m.clone());
        for n in 0..3 {
            t.deliver(10, n, m.clone());
        }
        let r = t.check();
        assert!(r.atomic_broadcast(), "{r}");
        assert!(r.imo_messages.is_empty());
    }

    #[test]
    fn empty_trace_is_trivially_atomic() {
        assert!(AbTrace::new(5).check().atomic_broadcast());
    }

    #[test]
    fn validity_violation_detected() {
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, msg(1)); // never delivered anywhere
        let r = t.check();
        assert!(!r.validity.holds);
        assert!(r.validity.violations[0].contains("never delivered"));
    }

    #[test]
    fn validity_excused_for_crashed_broadcaster() {
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, msg(1));
        t.crash(5, 0);
        let r = t.check();
        assert!(r.validity.holds, "a crashed broadcaster owes nothing");
    }

    #[test]
    fn agreement_violation_is_an_imo() {
        // The Fig. 1c / Fig. 3a shape: delivered at n2, missed at n1.
        let m = msg(1);
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, m.clone());
        t.deliver(9, 0, m.clone());
        t.deliver(10, 2, m.clone());
        let r = t.check();
        assert!(!r.agreement.holds);
        assert_eq!(r.imo_messages, vec![m]);
        assert!(!r.atomic_broadcast());
    }

    #[test]
    fn agreement_ignores_crashed_nodes() {
        let m = msg(1);
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, m.clone());
        t.deliver(9, 0, m.clone());
        t.deliver(10, 2, m.clone());
        t.crash(11, 1); // the missing node crashed: no violation
        assert!(t.check().agreement.holds);
    }

    #[test]
    fn double_delivery_breaks_at_most_once() {
        // The Fig. 1b shape: Y delivers twice.
        let m = msg(1);
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, m.clone());
        t.deliver(5, 0, m.clone());
        t.deliver(9, 1, m.clone());
        t.deliver(10, 2, m.clone());
        t.deliver(20, 2, m.clone());
        let r = t.check();
        assert!(!r.at_most_once.holds);
        assert_eq!(r.double_deliveries, vec![(2, m)]);
        assert!(r.agreement.holds, "everyone got it — only AB3 broken");
    }

    #[test]
    fn non_triviality_catches_spurious_delivery() {
        let mut t = AbTrace::new(2);
        t.deliver(1, 0, msg(9));
        let r = t.check();
        assert!(!r.non_triviality.holds);
        assert!(r.non_triviality.violations[0].contains("nobody broadcast"));
    }

    #[test]
    fn total_order_violation_detected() {
        // The CAN5 shape: n1 sees A,B — n2 sees B,A.
        let a = msg(1);
        let b = msg(2);
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, a.clone());
        t.broadcast(0, 0, b.clone());
        t.deliver(1, 0, a.clone());
        t.deliver(2, 0, b.clone());
        t.deliver(10, 1, a.clone());
        t.deliver(11, 1, b.clone());
        t.deliver(10, 2, b.clone());
        t.deliver(11, 2, a.clone());
        let r = t.check();
        assert!(!r.total_order.holds);
        assert!(r.reliable_broadcast(), "AB1-AB4 still hold");
        assert!(!r.atomic_broadcast());
    }

    #[test]
    fn total_order_with_disjoint_deliveries_holds() {
        let a = msg(1);
        let b = msg(2);
        let mut t = AbTrace::new(2);
        t.broadcast(0, 0, a.clone());
        t.broadcast(0, 1, b.clone());
        t.deliver(1, 0, a.clone());
        t.deliver(1, 1, b.clone());
        // Disjoint delivery sets: order is vacuously consistent, but
        // agreement fails (each message missing at the other node).
        let r = t.check();
        assert!(r.total_order.holds);
        assert!(!r.agreement.holds);
    }

    #[test]
    fn double_delivery_uses_first_occurrence_for_order() {
        // n1: A, B, A(dup). n2: A, B. Orders agree on first deliveries.
        let a = msg(1);
        let b = msg(2);
        let mut t = AbTrace::new(2);
        t.broadcast(0, 0, a.clone());
        t.broadcast(0, 0, b.clone());
        for n in 0..2 {
            t.deliver(1, n, a.clone());
            t.deliver(2, n, b.clone());
        }
        t.deliver(3, 0, a.clone());
        let r = t.check();
        assert!(r.total_order.holds);
        assert!(!r.at_most_once.holds);
    }

    #[test]
    fn report_display_readable() {
        let mut t = AbTrace::new(2);
        let m = msg(1);
        t.broadcast(0, 0, m.clone());
        t.deliver(1, 0, m.clone());
        t.deliver(1, 1, m);
        let text = t.check().to_string();
        assert!(text.contains("AB1 Validity:         holds"));
        assert!(text.contains("ATOMIC BROADCAST"));
    }
}
