//! Human-readable rendering of traces: the node × message delivery matrix.

use crate::{AbEvent, AbTrace, MsgId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders `trace` as a delivery matrix: one row per node, one column per
/// broadcast message (in broadcast order), each cell the delivery count.
/// Crashed nodes are marked with `†`; the originator of each message with
/// `*` next to its count.
///
/// # Examples
///
/// ```
/// use majorcan_abcast::{render_delivery_matrix, AbTrace, MsgId};
///
/// let m = MsgId::new(0x42, vec![1]);
/// let mut t = AbTrace::new(2);
/// t.broadcast(0, 0, m.clone());
/// t.deliver(5, 0, m.clone());
/// t.deliver(6, 1, m);
/// let text = render_delivery_matrix(&t);
/// assert!(text.contains("n0"));
/// assert!(text.contains("1*"), "originator marked: {text}");
/// ```
pub fn render_delivery_matrix(trace: &AbTrace) -> String {
    // Message columns in first-broadcast order; unbroadcast-but-delivered
    // messages appended after.
    let mut columns: Vec<MsgId> = Vec::new();
    let mut origin: BTreeMap<MsgId, usize> = BTreeMap::new();
    let mut counts: BTreeMap<(usize, MsgId), usize> = BTreeMap::new();
    let mut crashed: Vec<bool> = vec![false; trace.n_nodes()];
    for s in trace.events() {
        match &s.event {
            AbEvent::Broadcast { node, msg } => {
                if !origin.contains_key(msg) {
                    origin.insert(msg.clone(), *node);
                    columns.push(msg.clone());
                }
            }
            AbEvent::Deliver { node, msg } => {
                if !origin.contains_key(msg) && !columns.contains(msg) {
                    columns.push(msg.clone());
                }
                *counts.entry((*node, msg.clone())).or_insert(0) += 1;
            }
            AbEvent::Crash { node } => crashed[*node] = true,
        }
    }

    let mut out = String::new();
    let _ = write!(out, "{:>5} |", "");
    for (i, _) in columns.iter().enumerate() {
        let _ = write!(out, " {:>4}", format!("m{i}"));
    }
    out.push('\n');
    for (node, node_crashed) in crashed.iter().enumerate() {
        let _ = write!(
            out,
            "{:>5} |",
            format!("n{node}{}", if *node_crashed { "†" } else { "" })
        );
        for msg in &columns {
            let count = counts.get(&(node, msg.clone())).copied().unwrap_or(0);
            let star = origin.get(msg) == Some(&node);
            let cell = match (count, star) {
                (0, _) => "·".to_owned(),
                (c, true) => format!("{c}*"),
                (c, false) => c.to_string(),
            };
            let _ = write!(out, " {cell:>4}");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "legend:");
    for (i, msg) in columns.iter().enumerate() {
        let _ = writeln!(out, "  m{i} = {msg}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shows_counts_origin_and_crashes() {
        let a = MsgId::new(1, vec![0xAA]);
        let b = MsgId::new(2, vec![0xBB]);
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, a.clone());
        t.broadcast(1, 1, b.clone());
        t.deliver(5, 0, a.clone());
        t.deliver(6, 2, a.clone());
        t.deliver(7, 2, a.clone()); // double reception
        t.deliver(8, 2, b.clone());
        t.crash(9, 1);
        let text = render_delivery_matrix(&t);
        assert!(text.contains("n1†"), "crash marker: {text}");
        assert!(text.contains("1*"), "originator delivery: {text}");
        assert!(text.contains('2'), "double delivery count: {text}");
        assert!(text.contains('·'), "missing delivery dot: {text}");
        assert!(text.contains("m0 = 0x001#aa"));
    }

    #[test]
    fn empty_trace_renders() {
        let text = render_delivery_matrix(&AbTrace::new(2));
        assert!(text.contains("n0"));
        assert!(text.contains("n1"));
    }

    #[test]
    fn unbroadcast_deliveries_get_columns() {
        let ghost = MsgId::new(9, vec![]);
        let mut t = AbTrace::new(1);
        t.deliver(1, 0, ghost);
        let text = render_delivery_matrix(&t);
        assert!(text.contains("m0 = 0x009#"));
    }
}
