//! Broadcast/delivery traces: the protocol-agnostic input of the checker.

use std::fmt;

/// Identifies a broadcast message across the whole network.
///
/// Two deliveries are "the same message" iff their `MsgId`s are equal; the
/// identifier is structural (channel number plus payload bytes) so that a
/// retransmitted frame carries the same identity — which is exactly what
/// makes double receptions visible to the checker.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId {
    /// Logical channel (for CAN traces, the 11-bit frame identifier).
    pub channel: u16,
    /// Message payload bytes.
    pub payload: Vec<u8>,
}

impl MsgId {
    /// Creates a message identity from channel and payload.
    pub fn new(channel: u16, payload: impl Into<Vec<u8>>) -> MsgId {
        MsgId {
            channel,
            payload: payload.into(),
        }
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#05x}#", self.channel)?;
        for b in &self.payload {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// One observable protocol action, in the vocabulary of the Atomic
/// Broadcast definition (Hadzilacos & Toueg, as adapted by the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbEvent {
    /// `node` initiated the broadcast of `msg`.
    Broadcast {
        /// Originating node index.
        node: usize,
        /// Message identity.
        msg: MsgId,
    },
    /// `msg` was delivered to the host at `node`.
    Deliver {
        /// Delivering node index.
        node: usize,
        /// Message identity.
        msg: MsgId,
    },
    /// `node` crashed (fail silent); it is not *correct* from here on.
    Crash {
        /// Crashing node index.
        node: usize,
    },
}

impl AbEvent {
    /// The node the event concerns.
    pub fn node(&self) -> usize {
        match self {
            AbEvent::Broadcast { node, .. }
            | AbEvent::Deliver { node, .. }
            | AbEvent::Crash { node } => *node,
        }
    }
}

impl fmt::Display for AbEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbEvent::Broadcast { node, msg } => write!(f, "n{node} broadcast {msg}"),
            AbEvent::Deliver { node, msg } => write!(f, "n{node} deliver {msg}"),
            AbEvent::Crash { node } => write!(f, "n{node} crash"),
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamped {
    /// Bit time (or any monotone clock) of the event.
    pub at: u64,
    /// The event.
    pub event: AbEvent,
}

/// An ordered log of broadcast/delivery/crash events over `n_nodes` nodes.
///
/// # Examples
///
/// ```
/// use majorcan_abcast::{AbTrace, MsgId};
///
/// let m = MsgId::new(0x42, vec![1]);
/// let mut t = AbTrace::new(3);
/// t.broadcast(0, 0, m.clone());
/// t.deliver(10, 0, m.clone());
/// t.deliver(10, 1, m.clone());
/// t.deliver(10, 2, m);
/// assert!(t.check().atomic_broadcast());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AbTrace {
    events: Vec<Stamped>,
    n_nodes: usize,
}

impl AbTrace {
    /// An empty trace over `n_nodes` nodes.
    pub fn new(n_nodes: usize) -> AbTrace {
        AbTrace {
            events: Vec::new(),
            n_nodes,
        }
    }

    /// Number of nodes in the system.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The recorded events, in insertion (time) order.
    pub fn events(&self) -> &[Stamped] {
        &self.events
    }

    /// Records a broadcast.
    pub fn broadcast(&mut self, at: u64, node: usize, msg: MsgId) -> &mut Self {
        self.push(at, AbEvent::Broadcast { node, msg })
    }

    /// Records a delivery.
    pub fn deliver(&mut self, at: u64, node: usize, msg: MsgId) -> &mut Self {
        self.push(at, AbEvent::Deliver { node, msg })
    }

    /// Records a crash.
    pub fn crash(&mut self, at: u64, node: usize) -> &mut Self {
        self.push(at, AbEvent::Crash { node })
    }

    /// Appends an arbitrary event.
    pub fn push(&mut self, at: u64, event: AbEvent) -> &mut Self {
        debug_assert!(event.node() < self.n_nodes, "node out of range");
        self.events.push(Stamped { at, event });
        self
    }

    /// Nodes that never crashed — the *correct* nodes of the AB definition.
    pub fn correct_nodes(&self) -> Vec<usize> {
        let crashed: Vec<usize> = self
            .events
            .iter()
            .filter_map(|s| match s.event {
                AbEvent::Crash { node } => Some(node),
                _ => None,
            })
            .collect();
        (0..self.n_nodes).filter(|n| !crashed.contains(n)).collect()
    }

    /// Messages delivered by `node`, as `(first-delivery index, count)` per
    /// message, in delivery order.
    pub fn deliveries_of(&self, node: usize) -> Vec<&MsgId> {
        self.events
            .iter()
            .filter_map(|s| match &s.event {
                AbEvent::Deliver { node: n, msg } if *n == node => Some(msg),
                _ => None,
            })
            .collect()
    }

    /// Runs the full AB1–AB5 check. Convenience for
    /// [`check_trace`](crate::check_trace).
    pub fn check(&self) -> crate::Report {
        crate::check_trace(self)
    }
}

impl Extend<Stamped> for AbTrace {
    fn extend<T: IntoIterator<Item = Stamped>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_id_identity_and_display() {
        let a = MsgId::new(0x42, vec![1, 2]);
        let b = MsgId::new(0x42, vec![1, 2]);
        let c = MsgId::new(0x42, vec![1, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "0x042#0102");
    }

    #[test]
    fn correct_nodes_excludes_crashed() {
        let mut t = AbTrace::new(4);
        t.crash(5, 2);
        assert_eq!(t.correct_nodes(), vec![0, 1, 3]);
    }

    #[test]
    fn deliveries_in_order() {
        let m1 = MsgId::new(1, vec![]);
        let m2 = MsgId::new(2, vec![]);
        let mut t = AbTrace::new(2);
        t.deliver(0, 0, m2.clone());
        t.deliver(1, 0, m1.clone());
        t.deliver(2, 1, m1.clone());
        assert_eq!(t.deliveries_of(0), vec![&m2, &m1]);
        assert_eq!(t.deliveries_of(1), vec![&m1]);
    }

    #[test]
    fn event_accessors() {
        let e = AbEvent::Broadcast {
            node: 3,
            msg: MsgId::new(1, vec![]),
        };
        assert_eq!(e.node(), 3);
        assert!(e.to_string().contains("n3 broadcast"));
        assert_eq!(AbEvent::Crash { node: 1 }.to_string(), "n1 crash");
    }
}
