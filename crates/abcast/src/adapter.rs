//! Adapter from CAN controller event logs to Atomic Broadcast traces.

use crate::{AbTrace, MsgId};
use majorcan_can::{CanEvent, Frame};
use majorcan_sim::TimedEvent;
use std::collections::BTreeSet;

/// The message identity of a CAN frame: its 11-bit identifier plus payload.
///
/// Retransmissions of the same frame map to the same [`MsgId`], which is
/// what lets the checker recognise double receptions.
pub fn msg_id_of(frame: &Frame) -> MsgId {
    MsgId::new(frame.id().raw(), frame.data().to_vec())
}

/// Builds an [`AbTrace`] from a raw controller event log.
///
/// Mapping:
///
/// * the **first** `TxStarted` of a frame at a node ⇒ `Broadcast`;
/// * `Delivered` at a receiver ⇒ `Deliver`;
/// * `TxSucceeded` at the transmitter ⇒ `Deliver` to itself (the
///   link-layer transmitter keeps its own message — self-delivery);
/// * `Crashed` / `WentBusOff` ⇒ `Crash`.
///
/// This is the *link-layer* interpretation used for the CAN / MinorCAN /
/// MajorCAN experiments; the higher-level protocols build their own traces
/// from their own delivery events.
pub fn trace_from_can_events(events: &[TimedEvent<CanEvent>], n_nodes: usize) -> AbTrace {
    let mut trace = AbTrace::new(n_nodes);
    let mut broadcast_seen: BTreeSet<(usize, MsgId)> = BTreeSet::new();
    for e in events {
        let node = e.node.index();
        match &e.event {
            CanEvent::TxStarted { frame, .. } => {
                let msg = msg_id_of(frame);
                if broadcast_seen.insert((node, msg.clone())) {
                    trace.broadcast(e.at, node, msg);
                }
            }
            CanEvent::Delivered { frame, .. } => {
                trace.deliver(e.at, node, msg_id_of(frame));
            }
            CanEvent::TxSucceeded { frame, .. } => {
                trace.deliver(e.at, node, msg_id_of(frame));
            }
            CanEvent::Crashed | CanEvent::WentBusOff => {
                trace.crash(e.at, node);
            }
            _ => {}
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use majorcan_can::{DecisionBasis, FrameId};
    use majorcan_sim::NodeId;

    fn frame(id: u16, data: &[u8]) -> Frame {
        Frame::new(FrameId::new(id).unwrap(), data).unwrap()
    }

    fn ev(at: u64, node: usize, event: CanEvent) -> TimedEvent<CanEvent> {
        TimedEvent {
            at,
            node: NodeId(node),
            event,
        }
    }

    #[test]
    fn maps_clean_broadcast() {
        let f = frame(0x42, &[1]);
        let events = vec![
            ev(
                0,
                0,
                CanEvent::TxStarted {
                    frame: f.clone(),
                    attempt: 1,
                },
            ),
            ev(
                50,
                1,
                CanEvent::Delivered {
                    frame: f.clone(),
                    basis: DecisionBasis::CleanEof,
                },
            ),
            ev(
                51,
                0,
                CanEvent::TxSucceeded {
                    frame: f.clone(),
                    attempts: 1,
                    basis: DecisionBasis::CleanEof,
                },
            ),
        ];
        let trace = trace_from_can_events(&events, 2);
        assert!(trace.check().atomic_broadcast());
        assert_eq!(trace.deliveries_of(0), vec![&msg_id_of(&f)]);
        assert_eq!(trace.deliveries_of(1), vec![&msg_id_of(&f)]);
    }

    #[test]
    fn retransmission_maps_to_single_broadcast() {
        let f = frame(0x42, &[1]);
        let events = vec![
            ev(
                0,
                0,
                CanEvent::TxStarted {
                    frame: f.clone(),
                    attempt: 1,
                },
            ),
            ev(
                100,
                0,
                CanEvent::TxStarted {
                    frame: f.clone(),
                    attempt: 2,
                },
            ),
        ];
        let trace = trace_from_can_events(&events, 1);
        let broadcasts = trace
            .events()
            .iter()
            .filter(|s| matches!(s.event, crate::AbEvent::Broadcast { .. }))
            .count();
        assert_eq!(broadcasts, 1, "retransmissions are not new broadcasts");
    }

    #[test]
    fn crash_and_bus_off_map_to_crash() {
        let events = vec![ev(5, 0, CanEvent::Crashed), ev(9, 1, CanEvent::WentBusOff)];
        let trace = trace_from_can_events(&events, 3);
        assert_eq!(trace.correct_nodes(), vec![2]);
    }

    #[test]
    fn msg_identity_distinguishes_payloads() {
        assert_ne!(msg_id_of(&frame(0x42, &[1])), msg_id_of(&frame(0x42, &[2])));
        assert_eq!(msg_id_of(&frame(0x42, &[1])), msg_id_of(&frame(0x42, &[1])));
    }
}
