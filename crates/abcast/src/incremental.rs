//! The incremental windowed AB1–AB5 checker.
//!
//! [`check_trace`](crate::check_trace) retains every delivery order in the
//! trace — O(trace) memory, fine for single-transmission episodes but
//! unusable for soak runs sustaining millions of frames. [`WindowedChecker`]
//! consumes the same [`AbEvent`] vocabulary *online* and keeps only:
//!
//! * the **live window** — per-message state for messages that saw an event
//!   within the last `window` bits (bounded by in-flight traffic, not trace
//!   length);
//! * **signature aggregates** — retired messages folded into maps keyed by
//!   their correct-set-independent signatures (origin plus delivery
//!   bitmask), so the final crash set can be applied at [`finish`] time
//!   without remembering individual messages (crash-retroactivity: a crash
//!   *after* a message retires still excuses or creates its violations);
//! * **pairwise order state** — per ordered node pair `(a, b)`, the maximum
//!   first-delivery rank at `b` over messages common to both. A message's
//!   rank at the node that just completed the pair is maximal by
//!   construction, so an order inversion exists iff its rank at the *other*
//!   node is below that maximum. This detects every AB5 inversion the
//!   moment its fourth delivery happens, in O(nodes) per delivery and
//!   O(nodes²) total memory.
//!
//! # Window precondition
//!
//! Verdicts are bit-identical to the post-hoc checker **iff** no message
//! identity recurs after retiring, i.e. `window` exceeds the longest gap
//! between consecutive events of one message (queueing between
//! retransmission attempts included). Traffic generated with unique
//! `(origin, seq)` payload tags satisfies the no-recurrence half by
//! construction; [`WindowedChecker::max_observed_gap`] reports the largest
//! intra-message gap actually seen so soak runs can assert the margin.
//!
//! A recurrence splits the message's history into halves judged
//! independently, which can both mint violations the post-hoc checker
//! never sees *and* hide ones it does (the revived entry carries no rank
//! state, so an AB5 inversion straddling the split is invisible to the
//! pairwise order bookkeeping). Worse, the naive gap statistic is blind to
//! exactly this failure: the gap is computed against the *revived* entry's
//! `last_event`, which is the revival itself, so it reads as zero. The
//! checker therefore remembers every message retired *incomplete* (missing
//! deliveries, or delivered without a broadcast) in a suspect map; an event
//! on a suspect proves the precondition failed, and is counted in
//! [`OnlineReport::window_exceeded`] and folded into the gap statistic.
//! Messages retired complete need no entry: their only possible revival is
//! a re-delivery, which the fresh entry surfaces as a spurious delivery —
//! miscategorized, but never a silent `Consistent`. Suspects are bounded by
//! the number of incomplete retirements, each already a violation-in-waiting,
//! so healthy soaks hold none.

use crate::{AbEvent, MsgId, Report, Verdict};
use majorcan_can::CanEvent;
use majorcan_sim::TimedEvent;
use std::collections::BTreeMap;

/// Most nodes a windowed checker supports (node sets are `u64` bitmasks).
pub const MAX_NODES: usize = 64;

/// Per-message state while the message is inside the live window.
#[derive(Debug, Clone)]
struct LiveMsg {
    /// First broadcaster, if any broadcast was seen.
    origin: Option<usize>,
    /// Nodes that delivered at least once.
    delivered: u64,
    /// Nodes that delivered more than once.
    duplicated: u64,
    /// First-delivery rank per node (`u64::MAX` = not delivered there).
    ranks: Box<[u64]>,
    /// Time of the message's most recent event.
    last_event: u64,
}

impl LiveMsg {
    fn new(n_nodes: usize, at: u64) -> LiveMsg {
        LiveMsg {
            origin: None,
            delivered: 0,
            duplicated: 0,
            ranks: vec![u64::MAX; n_nodes].into_boxed_slice(),
            last_event: at,
        }
    }
}

/// Retired messages folded into signature → count aggregates. Evaluated
/// against the *final* correct set at [`WindowedChecker::finish`].
#[derive(Debug, Clone, Default)]
struct Retired {
    /// `(origin, delivered mask)` → broadcast messages with that signature.
    broadcast: BTreeMap<(usize, u64), u64>,
    /// `delivered mask` → messages (broadcast or not) delivered somewhere.
    delivered: BTreeMap<u64, u64>,
    /// `delivered mask` → never-broadcast messages delivered somewhere.
    spurious: BTreeMap<u64, u64>,
    /// `duplicated mask` → messages with double deliveries at those nodes.
    duplicated: BTreeMap<u64, u64>,
    /// Messages retired in total.
    messages: u64,
}

impl Retired {
    fn fold(&mut self, msg: &LiveMsg) {
        self.messages += 1;
        if let Some(origin) = msg.origin {
            *self.broadcast.entry((origin, msg.delivered)).or_insert(0) += 1;
        }
        if msg.delivered != 0 {
            *self.delivered.entry(msg.delivered).or_insert(0) += 1;
            if msg.origin.is_none() {
                *self.spurious.entry(msg.delivered).or_insert(0) += 1;
            }
        }
        if msg.duplicated != 0 {
            *self.duplicated.entry(msg.duplicated).or_insert(0) += 1;
        }
    }
}

/// Final (or provisional) verdict of a windowed check, with violation
/// counts matching the post-hoc [`Report`]'s violation-list lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineReport {
    /// Messages the checker saw (live plus retired).
    pub messages: u64,
    /// AB1 — broadcast messages by a correct origin that reached no
    /// correct node (one per message).
    pub validity_violations: u64,
    /// AB2 — messages delivered to some but not all correct nodes (one
    /// per message; the inconsistent message omissions).
    pub imo_messages: u64,
    /// AB3 — `(node, message)` pairs with more than one delivery at a
    /// correct node.
    pub double_deliveries: u64,
    /// AB4 — `(node, message)` pairs where a correct node delivered a
    /// message nobody broadcast.
    pub spurious_deliveries: u64,
    /// AB5 — `true` when two correct nodes delivered some message pair in
    /// opposite orders.
    pub order_violated: bool,
    /// Events that arrived for a message already retired *incomplete* —
    /// i.e. per-message gaps exceeding the window. Nonzero means the
    /// window precondition failed: the message's history was split across
    /// retirements, and the counts above may be wrong in **either**
    /// direction (split halves can mint spurious violations *or* hide an
    /// AB5 inversion whose rank state was retired). Callers must treat
    /// the verdict as unreliable and rerun with a larger window.
    pub window_exceeded: u64,
}

impl OnlineReport {
    /// `true` iff all five Atomic Broadcast properties hold.
    pub fn atomic_broadcast(&self) -> bool {
        self.reliable_broadcast() && !self.order_violated
    }

    /// `true` iff the window precondition held throughout, making this
    /// report bit-identical to the post-hoc checker's. A report that is
    /// not exact proves nothing — least of all consistency.
    pub fn exact(&self) -> bool {
        self.window_exceeded == 0
    }

    /// `true` iff AB1–AB4 hold (Reliable Broadcast).
    pub fn reliable_broadcast(&self) -> bool {
        self.validity_violations == 0
            && self.imo_messages == 0
            && self.double_deliveries == 0
            && self.spurious_deliveries == 0
    }

    /// Worst-broken-property summary, graded like [`Report::verdict`].
    pub fn verdict(&self) -> Verdict {
        if self.validity_violations > 0 {
            Verdict::ValidityLoss
        } else if self.imo_messages > 0 {
            Verdict::Omission
        } else if self.double_deliveries > 0 {
            Verdict::DoubleReception
        } else {
            Verdict::Consistent
        }
    }

    /// `true` iff this online verdict agrees with a post-hoc [`Report`]
    /// on every property *and* every violation count — the equivalence the
    /// windowed checker's property test asserts.
    pub fn matches(&self, report: &Report) -> bool {
        self.validity_violations == report.validity.violations.len() as u64
            && self.imo_messages == report.imo_messages.len() as u64
            && self.double_deliveries == report.double_deliveries.len() as u64
            && self.spurious_deliveries == report.non_triviality.violations.len() as u64
            && self.order_violated != report.total_order.holds
            && self.verdict() == report.verdict()
    }
}

/// The windowed online checker. See the module docs for the algorithm and
/// the window precondition.
#[derive(Debug, Clone)]
pub struct WindowedChecker {
    n_nodes: usize,
    window: u64,
    now: u64,
    next_sweep: u64,
    crashed: u64,
    live: BTreeMap<MsgId, LiveMsg>,
    peak_live: usize,
    max_observed_gap: u64,
    /// Next first-delivery rank per node.
    next_rank: Vec<u64>,
    /// `[a * n + b]` = max first-delivery rank at `b` over messages common
    /// to `a` and `b` (`u64::MAX` = none yet).
    max_common: Vec<u64>,
    /// `[a * n + b]`, `a < b`: the pair delivered some message pair in
    /// opposite orders.
    inverted: Vec<bool>,
    retired: Retired,
    /// First violation observed online, against the then-current crash
    /// set: `(time, description)`.
    first_violation: Option<(u64, String)>,
    /// Messages retired *incomplete* (missing deliveries or never
    /// broadcast) → their last event time. A later event on one of these
    /// proves its intra-message gap exceeded the window, which the plain
    /// `max_observed_gap` bookkeeping cannot see (the revived entry is
    /// fresh, so the gap computes as zero). Bounded by the number of
    /// incomplete retirements — each already a violation-in-waiting — so
    /// healthy soaks keep this empty.
    suspects: BTreeMap<MsgId, u64>,
    /// Suspect revivals seen (window-precondition failures).
    window_exceeded: u64,
    /// First revival: `(message, gap)`.
    first_exceedance: Option<(MsgId, u64)>,
}

impl WindowedChecker {
    /// A checker over `n_nodes` nodes retiring messages quiet for more
    /// than `window` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` exceeds [`MAX_NODES`] or `window` is zero.
    pub fn new(n_nodes: usize, window: u64) -> WindowedChecker {
        assert!(n_nodes <= MAX_NODES, "bitmask checker capped at 64 nodes");
        assert!(window > 0, "window must be positive");
        WindowedChecker {
            n_nodes,
            window,
            now: 0,
            next_sweep: window,
            crashed: 0,
            live: BTreeMap::new(),
            peak_live: 0,
            max_observed_gap: 0,
            next_rank: vec![0; n_nodes],
            max_common: vec![u64::MAX; n_nodes * n_nodes],
            inverted: vec![false; n_nodes * n_nodes],
            retired: Retired::default(),
            first_violation: None,
            suspects: BTreeMap::new(),
            window_exceeded: 0,
            first_exceedance: None,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The retirement window in bits.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Messages currently inside the live window.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Most messages ever live at once — the checker's actual memory
    /// high-water mark, independent of how many frames streamed through.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Messages seen so far (live plus retired).
    pub fn messages_seen(&self) -> u64 {
        self.retired.messages + self.live.len() as u64
    }

    /// Largest gap observed between consecutive events of one message,
    /// including gaps proven by a suspect revival. Must stay below
    /// [`window`](Self::window) for the window precondition to hold.
    pub fn max_observed_gap(&self) -> u64 {
        self.max_observed_gap
    }

    /// Number of window-precondition failures detected so far (events on
    /// messages already retired incomplete).
    pub fn window_exceeded(&self) -> u64 {
        self.window_exceeded
    }

    /// The first detected window exceedance, as `(message, gap)`.
    pub fn first_exceedance(&self) -> Option<&(MsgId, u64)> {
        self.first_exceedance.as_ref()
    }

    /// The first violation flagged online, as `(time, description)`,
    /// judged against the crash set known at that moment.
    pub fn first_violation(&self) -> Option<&(u64, String)> {
        self.first_violation.as_ref()
    }

    fn flag(&mut self, at: u64, describe: impl FnOnce() -> String) {
        if self.first_violation.is_none() {
            self.first_violation = Some((at, describe()));
        }
    }

    /// Checks an incoming event's message against the suspect map. A hit
    /// means the message recurred after retiring incomplete: the window
    /// precondition failed and the verdict is no longer trustworthy.
    fn note_revival(&mut self, at: u64, msg: &MsgId) {
        if self.suspects.is_empty() {
            return;
        }
        if let Some(last) = self.suspects.remove(msg) {
            let gap = at - last;
            self.window_exceeded += 1;
            self.max_observed_gap = self.max_observed_gap.max(gap);
            if self.first_exceedance.is_none() {
                self.first_exceedance = Some((msg.clone(), gap));
            }
            let window = self.window;
            let text = format!(
                "{msg} recurred {gap} bits after its last event, exceeding the \
                 {window}-bit window; the windowed verdict is unreliable"
            );
            self.flag(at, || text);
        }
    }

    /// Consumes one timestamped event. Timestamps should be
    /// non-decreasing; a stale timestamp is clamped to the current time.
    pub fn push(&mut self, at: u64, event: &AbEvent) {
        let at = at.max(self.now);
        self.now = at;
        match event {
            AbEvent::Broadcast { node, msg } => {
                self.note_revival(at, msg);
                let n_nodes = self.n_nodes;
                let entry = self
                    .live
                    .entry(msg.clone())
                    .or_insert_with(|| LiveMsg::new(n_nodes, at));
                if entry.origin.is_none() {
                    entry.origin = Some(*node);
                }
                self.max_observed_gap = self.max_observed_gap.max(at - entry.last_event);
                entry.last_event = at;
            }
            AbEvent::Deliver { node, msg } => self.deliver(at, *node, msg),
            AbEvent::Crash { node } => {
                self.crashed |= 1 << node;
            }
        }
        self.peak_live = self.peak_live.max(self.live.len());
        if at >= self.next_sweep {
            self.sweep(at);
        }
    }

    /// Consumes a whole stamped event (convenience over [`push`](Self::push)).
    pub fn push_stamped(&mut self, stamped: &crate::Stamped) {
        self.push(stamped.at, &stamped.event);
    }

    fn deliver(&mut self, at: u64, node: usize, msg: &MsgId) {
        self.note_revival(at, msg);
        let n = self.n_nodes;
        let bit = 1u64 << node;
        let n_nodes = self.n_nodes;
        let entry = self
            .live
            .entry(msg.clone())
            .or_insert_with(|| LiveMsg::new(n_nodes, at));
        self.max_observed_gap = self.max_observed_gap.max(at - entry.last_event);
        entry.last_event = at;
        if entry.delivered & bit != 0 {
            // A repeat delivery: AB3 territory, no new rank.
            entry.duplicated |= bit;
            if self.crashed & bit == 0 {
                let text = format!("n{node} delivered {msg} more than once");
                self.flag(at, || text);
            }
            return;
        }
        entry.delivered |= bit;
        let rank = self.next_rank[node];
        self.next_rank[node] += 1;
        entry.ranks[node] = rank;
        // The message just became common to `node` and every other node
        // that already delivered it. Its rank at `node` is the largest
        // rank `node` has assigned, so an inversion with some earlier
        // common message exists iff that message outranks this one at the
        // *other* node — i.e. iff the pair's max common rank there exceeds
        // this message's rank there.
        let mut inversions: Vec<usize> = Vec::new();
        for other in 0..n {
            if other == node || entry.delivered & (1 << other) == 0 {
                continue;
            }
            let rank_at_other = entry.ranks[other];
            let max_at_other = self.max_common[node * n + other];
            if max_at_other != u64::MAX && max_at_other > rank_at_other {
                let (a, b) = (node.min(other), node.max(other));
                if !self.inverted[a * n + b] {
                    self.inverted[a * n + b] = true;
                    if self.crashed & ((1 << a) | (1 << b)) == 0 {
                        inversions.push(other);
                    }
                }
            }
            let fwd = &mut self.max_common[node * n + other];
            *fwd = if *fwd == u64::MAX {
                rank_at_other
            } else {
                (*fwd).max(rank_at_other)
            };
            let rev = &mut self.max_common[other * n + node];
            *rev = if *rev == u64::MAX {
                rank
            } else {
                (*rev).max(rank)
            };
        }
        for other in inversions {
            let text = format!("n{node} and n{other} delivered {msg} in inverted order");
            self.flag(at, || text);
        }
    }

    /// Retires every message quiet for more than the window.
    fn sweep(&mut self, now: u64) {
        let window = self.window;
        let mut stale: Vec<MsgId> = self
            .live
            .iter()
            .filter(|(_, m)| now.saturating_sub(m.last_event) > window)
            .map(|(id, _)| id.clone())
            .collect();
        for id in stale.drain(..) {
            let msg = self.live.remove(&id).expect("stale id came from the map");
            self.retire(now, &id, &msg);
        }
        // Sweeping a quarter-window apart keeps the scan amortized O(1)
        // per event while bounding retirement latency.
        self.next_sweep = now + (window / 4).max(1);
    }

    fn retire(&mut self, now: u64, id: &MsgId, msg: &LiveMsg) {
        self.retired.fold(msg);
        // An incomplete message could see more events; if one arrives the
        // window precondition failed. Complete messages can only recur as
        // a re-delivery, which the fresh entry flags as spurious anyway.
        let all = if self.n_nodes == MAX_NODES {
            u64::MAX
        } else {
            (1u64 << self.n_nodes) - 1
        };
        if msg.origin.is_none() || msg.delivered != all {
            self.suspects.insert(id.clone(), msg.last_event);
        }
        // Provisional online flagging against the crash set known now;
        // the exact verdict against the final crash set comes at finish().
        let correct = self.correct_mask();
        if let Some(origin) = msg.origin {
            if correct & (1 << origin) != 0 && msg.delivered & correct == 0 {
                let text = format!("{id} broadcast by n{origin} but delivered to no correct node");
                self.flag(now, || text);
            }
        }
        if msg.delivered & correct != 0 && correct & !msg.delivered != 0 {
            let text = format!("{id} delivered to some correct nodes but not all");
            self.flag(now, || text);
        }
        if msg.origin.is_none() && msg.delivered & correct != 0 {
            let text = format!("{id} delivered but never broadcast");
            self.flag(now, || text);
        }
    }

    fn correct_mask(&self) -> u64 {
        let all = if self.n_nodes == 64 {
            u64::MAX
        } else {
            (1u64 << self.n_nodes) - 1
        };
        all & !self.crashed
    }

    /// Evaluates the aggregates against a correct-node mask.
    fn evaluate(&self, correct: u64) -> OnlineReport {
        let retired = &self.retired;
        let mut validity = 0;
        for (&(origin, delivered), &count) in &retired.broadcast {
            if correct & (1 << origin) != 0 && delivered & correct == 0 {
                validity += count;
            }
        }
        let mut imo = 0;
        for (&delivered, &count) in &retired.delivered {
            if delivered & correct != 0 && correct & !delivered != 0 {
                imo += count;
            }
        }
        let mut double = 0;
        for (&duplicated, &count) in &retired.duplicated {
            double += count * (duplicated & correct).count_ones() as u64;
        }
        let mut spurious = 0;
        for (&delivered, &count) in &retired.spurious {
            spurious += count * (delivered & correct).count_ones() as u64;
        }
        let n = self.n_nodes;
        let mut order_violated = false;
        for a in 0..n {
            for b in a + 1..n {
                if self.inverted[a * n + b]
                    && correct & ((1 << a) | (1 << b)) == (1 << a) | (1 << b)
                {
                    order_violated = true;
                }
            }
        }
        OnlineReport {
            messages: retired.messages,
            validity_violations: validity,
            imo_messages: imo,
            double_deliveries: double,
            spurious_deliveries: spurious,
            order_violated,
            window_exceeded: self.window_exceeded,
        }
    }

    /// Retires everything still live and returns the exact verdict against
    /// the final crash set — bit-identical to the post-hoc checker under
    /// the window precondition.
    pub fn finish(mut self) -> OnlineReport {
        let now = self.now;
        let live = std::mem::take(&mut self.live);
        for (id, msg) in &live {
            self.retire(now, id, msg);
        }
        self.evaluate(self.correct_mask())
    }

    /// A provisional verdict over everything *retired so far*, judged
    /// against the crash set known so far. Messages still in flight are
    /// not judged (they may yet complete), so a clean provisional report
    /// can still turn into a violation — but a violation seen here is one
    /// the post-hoc checker will see too unless a later crash excuses it.
    pub fn provisional(&self) -> OnlineReport {
        self.evaluate(self.correct_mask())
    }
}

/// Streaming equivalent of [`trace_from_can_events`]: maps one controller
/// event into the windowed checker using the identical link-layer
/// interpretation (first `TxStarted` ⇒ broadcast, `Delivered` /
/// `TxSucceeded` ⇒ delivery, `Crashed` / `WentBusOff` ⇒ crash).
/// Retransmission `TxStarted`s are absorbed by the live window instead of
/// a seen-set, which is what keeps the adapter O(1) in trace length.
///
/// [`trace_from_can_events`]: crate::trace_from_can_events
impl WindowedChecker {
    /// Consumes one raw CAN controller event.
    pub fn push_can(&mut self, e: &TimedEvent<CanEvent>) {
        let node = e.node.index();
        match &e.event {
            CanEvent::TxStarted { frame, .. } => {
                let msg = crate::msg_id_of(frame);
                self.push(e.at, &AbEvent::Broadcast { node, msg });
            }
            CanEvent::Delivered { frame, .. } | CanEvent::TxSucceeded { frame, .. } => {
                let msg = crate::msg_id_of(frame);
                self.push(e.at, &AbEvent::Deliver { node, msg });
            }
            CanEvent::Crashed | CanEvent::WentBusOff => {
                self.push(e.at, &AbEvent::Crash { node });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AbTrace;

    fn msg(n: u16) -> MsgId {
        MsgId::new(n, vec![n as u8])
    }

    fn run(trace: &AbTrace, window: u64) -> OnlineReport {
        let mut c = WindowedChecker::new(trace.n_nodes(), window);
        for s in trace.events() {
            c.push_stamped(s);
        }
        c.finish()
    }

    fn agree(trace: &AbTrace, window: u64) {
        let online = run(trace, window);
        let posthoc = trace.check();
        assert!(
            online.matches(&posthoc),
            "online {online:?} vs post-hoc {posthoc:?}"
        );
    }

    #[test]
    fn clean_broadcast_is_atomic() {
        let m = msg(1);
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, m.clone());
        for n in 0..3 {
            t.deliver(10, n, m.clone());
        }
        let r = run(&t, 100);
        assert!(r.atomic_broadcast());
        assert_eq!(r.messages, 1);
        agree(&t, 100);
    }

    #[test]
    fn validity_and_crash_retroactivity() {
        // Broadcast never delivered: violation — unless the origin
        // crashes, even long after the message retired.
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, msg(1));
        let mut c = WindowedChecker::new(3, 10);
        for s in t.events() {
            c.push_stamped(s);
        }
        // Push the clock far past retirement with an unrelated message.
        c.push(
            1_000,
            &AbEvent::Broadcast {
                node: 1,
                msg: msg(2),
            },
        );
        assert_eq!(c.live_len(), 1, "first message retired");
        assert!(c.first_violation().is_some(), "flagged at retirement");
        let mut crashed = c.clone();
        crashed.push(2_000, &AbEvent::Crash { node: 0 });
        crashed.push(2_000, &AbEvent::Crash { node: 1 });
        assert_eq!(crashed.finish().validity_violations, 0, "crash excuses");
        // Without the crash the violation stands (msg 2 also undelivered).
        assert_eq!(c.finish().validity_violations, 2);
    }

    #[test]
    fn agreement_violation_counted_after_retirement() {
        let m = msg(1);
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, m.clone());
        t.deliver(9, 0, m.clone());
        t.deliver(10, 2, m.clone());
        let r = run(&t, 50);
        assert_eq!(r.imo_messages, 1);
        assert_eq!(r.verdict(), Verdict::Omission);
        agree(&t, 50);
        // The missing node crashing later excuses the omission.
        let mut t2 = t.clone();
        t2.crash(11, 1);
        assert_eq!(run(&t2, 50).imo_messages, 0);
        agree(&t2, 50);
    }

    #[test]
    fn double_delivery_detected_the_moment_it_happens() {
        let m = msg(1);
        let mut c = WindowedChecker::new(2, 100);
        c.push(
            0,
            &AbEvent::Broadcast {
                node: 0,
                msg: m.clone(),
            },
        );
        c.push(
            5,
            &AbEvent::Deliver {
                node: 1,
                msg: m.clone(),
            },
        );
        assert!(c.first_violation().is_none());
        c.push(
            9,
            &AbEvent::Deliver {
                node: 1,
                msg: m.clone(),
            },
        );
        let (at, text) = c.first_violation().expect("flagged online").clone();
        assert_eq!(at, 9);
        assert!(text.contains("more than once"), "{text}");
    }

    #[test]
    fn order_inversion_detected_and_matches_posthoc() {
        let (a, b) = (msg(1), msg(2));
        let mut t = AbTrace::new(3);
        t.broadcast(0, 0, a.clone());
        t.broadcast(0, 0, b.clone());
        t.deliver(1, 0, a.clone());
        t.deliver(2, 0, b.clone());
        t.deliver(10, 1, a.clone());
        t.deliver(11, 1, b.clone());
        t.deliver(10, 2, b.clone());
        t.deliver(11, 2, a.clone());
        let r = run(&t, 100);
        assert!(r.order_violated);
        assert!(r.reliable_broadcast());
        agree(&t, 100);
        // An inversion involving a crashed node does not count.
        let mut t2 = t.clone();
        t2.crash(12, 2);
        assert!(!run(&t2, 100).order_violated);
        agree(&t2, 100);
    }

    #[test]
    fn order_inversion_flagged_at_fourth_delivery() {
        let (a, b) = (msg(1), msg(2));
        let mut c = WindowedChecker::new(2, 1000);
        c.push(
            1,
            &AbEvent::Deliver {
                node: 0,
                msg: a.clone(),
            },
        );
        c.push(
            2,
            &AbEvent::Deliver {
                node: 0,
                msg: b.clone(),
            },
        );
        c.push(
            3,
            &AbEvent::Deliver {
                node: 1,
                msg: b.clone(),
            },
        );
        assert!(c
            .first_violation()
            .map(|(_, t)| !t.contains("inverted"))
            .unwrap_or(true));
        c.push(
            4,
            &AbEvent::Deliver {
                node: 1,
                msg: a.clone(),
            },
        );
        let (at, text) = c.first_violation().expect("inversion flagged").clone();
        assert_eq!(at, 4);
        assert!(text.contains("inverted order"), "{text}");
    }

    #[test]
    fn window_boundary_keeps_slow_messages_alive() {
        // Events exactly `window` apart must NOT retire the message in
        // between (retirement needs strictly more than `window` of quiet).
        let m = msg(1);
        let mut c = WindowedChecker::new(2, 100);
        c.push(
            0,
            &AbEvent::Broadcast {
                node: 0,
                msg: m.clone(),
            },
        );
        c.push(
            100,
            &AbEvent::Deliver {
                node: 0,
                msg: m.clone(),
            },
        );
        c.push(
            200,
            &AbEvent::Deliver {
                node: 1,
                msg: m.clone(),
            },
        );
        assert_eq!(c.live_len(), 1);
        assert_eq!(c.max_observed_gap(), 100);
        let r = c.finish();
        assert!(r.atomic_broadcast(), "{r:?}");
        // One bit past the window, the message retires incomplete.
        let mut c = WindowedChecker::new(2, 100);
        c.push(
            0,
            &AbEvent::Broadcast {
                node: 0,
                msg: m.clone(),
            },
        );
        c.push(
            50,
            &AbEvent::Deliver {
                node: 0,
                msg: m.clone(),
            },
        );
        c.push(
            500,
            &AbEvent::Broadcast {
                node: 1,
                msg: msg(2),
            },
        );
        assert_eq!(c.live_len(), 1, "slow message retired");
    }

    #[test]
    fn memory_stays_bounded_over_a_long_stream() {
        // 10k sequential messages, each completing promptly: the live set
        // never grows with stream length.
        let mut c = WindowedChecker::new(3, 64);
        for i in 0..10_000u32 {
            let m = MsgId::new(0x100, i.to_be_bytes().to_vec());
            let at = i as u64 * 16;
            c.push(
                at,
                &AbEvent::Broadcast {
                    node: 0,
                    msg: m.clone(),
                },
            );
            for n in 0..3 {
                c.push(
                    at + 8,
                    &AbEvent::Deliver {
                        node: n,
                        msg: m.clone(),
                    },
                );
            }
        }
        assert!(c.peak_live() <= 8, "peak_live = {}", c.peak_live());
        let r = c.finish();
        assert_eq!(r.messages, 10_000);
        assert!(r.atomic_broadcast());
    }

    #[test]
    fn spurious_delivery_counted_per_node() {
        let mut t = AbTrace::new(3);
        t.deliver(1, 0, msg(9));
        t.deliver(2, 1, msg(9));
        let r = run(&t, 50);
        assert_eq!(r.spurious_deliveries, 2);
        agree(&t, 50);
    }

    #[test]
    fn provisional_ignores_messages_still_in_flight() {
        let m = msg(1);
        let mut c = WindowedChecker::new(3, 1_000);
        c.push(
            0,
            &AbEvent::Broadcast {
                node: 0,
                msg: m.clone(),
            },
        );
        c.push(
            5,
            &AbEvent::Deliver {
                node: 0,
                msg: m.clone(),
            },
        );
        let p = c.provisional();
        assert_eq!(p.imo_messages, 0, "in-flight message not judged");
        assert_eq!(c.finish().imo_messages, 1, "finish judges it");
    }

    #[test]
    #[should_panic(expected = "64 nodes")]
    fn rejects_too_many_nodes() {
        WindowedChecker::new(65, 10);
    }

    #[test]
    fn revival_after_incomplete_retirement_is_detected() {
        let m = msg(1);
        let mut c = WindowedChecker::new(2, 100);
        c.push(
            0,
            &AbEvent::Broadcast {
                node: 0,
                msg: m.clone(),
            },
        );
        c.push(
            5,
            &AbEvent::Deliver {
                node: 0,
                msg: m.clone(),
            },
        );
        // Unrelated complete message far later forces the sweep that
        // retires m incomplete.
        let filler = msg(2);
        c.push(
            400,
            &AbEvent::Broadcast {
                node: 0,
                msg: filler.clone(),
            },
        );
        for n in 0..2 {
            c.push(
                401,
                &AbEvent::Deliver {
                    node: n,
                    msg: filler.clone(),
                },
            );
        }
        assert_eq!(c.live_len(), 1, "m retired, filler live");
        assert_eq!(c.window_exceeded(), 0);
        // The late delivery revives m: the 495-bit gap — invisible to the
        // naive statistic, which would score the fresh entry as gap 0 —
        // must be proven by the suspect map.
        c.push(
            500,
            &AbEvent::Deliver {
                node: 1,
                msg: m.clone(),
            },
        );
        assert_eq!(c.window_exceeded(), 1);
        let (id, gap) = c.first_exceedance().expect("recorded").clone();
        assert_eq!(id, m);
        assert_eq!(gap, 495);
        assert!(c.max_observed_gap() >= 495, "gap folded into the statistic");
        assert!(c.first_violation().is_some(), "surfaced online");
        let r = c.finish();
        assert_eq!(r.window_exceeded, 1);
        assert!(!r.exact());
    }

    #[test]
    fn split_inversion_is_invisible_but_report_admits_inexactness() {
        // The latent bug this guards against: an AB5 inversion whose rank
        // state retired mid-history is invisible to the windowed order
        // bookkeeping, and before the suspect map the report would carry
        // no hint that it might be wrong.
        let (m1, m2, m3) = (msg(1), msg(2), msg(3));
        let mut t = AbTrace::new(2);
        t.broadcast(0, 0, m1.clone());
        t.deliver(1, 0, m1.clone());
        t.broadcast(2, 0, m2.clone());
        t.deliver(3, 0, m2.clone());
        t.deliver(4, 1, m2.clone());
        // Quiet stretch > window: m1 retires incomplete, m2 complete.
        t.broadcast(300, 0, m3.clone());
        t.deliver(301, 0, m3.clone());
        t.deliver(302, 1, m3.clone());
        // n1 finally delivers m1 after m2: post-hoc sees the inversion
        // (n0 ordered m1 before m2, n1 the reverse).
        t.deliver(500, 1, m1.clone());
        let posthoc = t.check();
        assert!(!posthoc.total_order.holds, "post-hoc sees the inversion");
        let online = run(&t, 100);
        assert!(
            !online.order_violated,
            "the split halves hide the inversion from the online checker"
        );
        assert_eq!(online.window_exceeded, 1, "...but the split is detected");
        assert!(!online.exact());
        assert!(!online.matches(&posthoc));
    }

    #[test]
    fn complete_retirement_is_not_a_suspect() {
        // A message retired complete never enters the suspect map, so the
        // map stays empty over a healthy stream (memory bound) — and a
        // re-delivery of a completed message still surfaces as spurious.
        let m = msg(1);
        let mut c = WindowedChecker::new(2, 50);
        c.push(
            0,
            &AbEvent::Broadcast {
                node: 0,
                msg: m.clone(),
            },
        );
        for n in 0..2 {
            c.push(
                1,
                &AbEvent::Deliver {
                    node: n,
                    msg: m.clone(),
                },
            );
        }
        // Push past retirement with a second complete message.
        let filler = msg(2);
        c.push(
            200,
            &AbEvent::Broadcast {
                node: 0,
                msg: filler.clone(),
            },
        );
        for n in 0..2 {
            c.push(
                201,
                &AbEvent::Deliver {
                    node: n,
                    msg: filler.clone(),
                },
            );
        }
        assert_eq!(c.live_len(), 1, "m retired complete");
        c.push(
            400,
            &AbEvent::Deliver {
                node: 1,
                msg: m.clone(),
            },
        );
        assert_eq!(c.window_exceeded(), 0, "complete messages are not suspects");
        let r = c.finish();
        assert!(r.exact());
        assert!(
            r.spurious_deliveries > 0,
            "the recurrence still shows up as a violation: {r:?}"
        );
    }
}
