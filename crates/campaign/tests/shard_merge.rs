//! The shard layer's correctness gate, run fully in-process with a
//! synthetic executor: merged output must be byte-identical to a
//! single-process campaign for any shard count; resume, retry and
//! scavenge must converge; and every corruption class must be detected
//! at merge time with the offending shard (and job) named.
//!
//! The crash modes that need a real `abort()` (SIGKILL mid-shard,
//! truncated tail) live in the spawned-bin chaos test
//! (`crates/falsify/tests/shard_chaos.rs`); here their aftermath is
//! simulated directly on the artifacts.

use majorcan_campaign::{
    merge_ready, merge_shards, run_campaign, run_fleet_worker, shard_of, CampaignOptions,
    ChaosMode, FaultSpec, FleetOptions, Job, JobResult, JsonlSink, Manifest, MergeError,
    ProtocolSpec, ShardOutcome, WorkloadSpec,
};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn jobs(campaign_seed: u64, n: u64) -> Vec<Job> {
    (0..n)
        .map(|id| {
            Job::new(
                id,
                campaign_seed,
                ProtocolSpec::MajorCan { m: 2 },
                FaultSpec::None,
                WorkloadSpec::SingleBroadcast,
                3,
                5 + id % 7,
            )
        })
        .collect()
}

/// A deterministic stand-in for the simulation: everything it records is
/// a pure function of the job.
fn synthetic(job: &Job) -> JobResult {
    let mut r = JobResult::for_job(job);
    r.frames = job.frames;
    r.bits = job.frames * (100 + job.seed % 55);
    r.counters.add("imo", job.seed % 3);
    r.counters.add("retx", job.seed % 11);
    r
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("majorcan-shard-merge-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fleet_opts() -> FleetOptions {
    FleetOptions {
        campaign: CampaignOptions::quiet(2),
        stale_after: Duration::from_millis(200),
        claim_backoff: Duration::from_millis(10),
        ..FleetOptions::default()
    }
}

fn sorted_lines(path: &Path) -> Vec<String> {
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

/// Runs every shard (one worker call per shard) and merges.
fn run_fleet_and_merge(
    dir: &Path,
    all: &[Job],
    manifest: &Manifest,
    shards: u64,
) -> Result<majorcan_campaign::MergeSummary, MergeError> {
    for k in 0..shards {
        let statuses = run_fleet_worker(
            dir,
            all,
            manifest,
            k,
            shards,
            &fleet_opts(),
            || (),
            |_, j| synthetic(j),
        )
        .unwrap();
        assert!(matches!(
            statuses[0].outcome,
            ShardOutcome::Completed(_) | ShardOutcome::AlreadyDone
        ));
    }
    assert!(merge_ready(dir, shards));
    merge_shards(dir, all, manifest, shards, &dir.join("merged.jsonl"))
}

#[test]
fn merged_artifact_is_byte_identical_to_single_process_for_any_shard_count() {
    let all = jobs(0xFEE7, 13);
    let manifest = Manifest::for_jobs("fleet", 0xFEE7, &all);

    // Single-process baseline through the ordinary runner.
    let base_dir = tmp_dir("baseline");
    let base = base_dir.join("results.jsonl");
    let mut sink = JsonlSink::open(&base, &manifest).unwrap();
    run_campaign(&all, &CampaignOptions::quiet(3), &mut sink, synthetic).unwrap();
    drop(sink);
    let baseline = sorted_lines(&base);

    let mut anchors = Vec::new();
    for shards in [1u64, 2, 3, 5] {
        let dir = tmp_dir(&format!("shards{shards}"));
        let summary = run_fleet_and_merge(&dir, &all, &manifest, shards).unwrap();
        assert_eq!(summary.jobs, 13);
        assert_eq!(sorted_lines(&dir.join("merged.jsonl")), baseline);
        anchors.push(summary.campaign_anchor);
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The campaign anchor covers shard anchors, so it varies with the
    // partition — but the merged bytes above never do.
    let _ = std::fs::remove_dir_all(&base_dir);
    drop(anchors);
}

#[test]
fn partial_shard_resumes_across_worker_generations() {
    let all = jobs(0xAB, 9);
    let manifest = Manifest::for_jobs("fleet", 0xAB, &all);
    let shards = 3u64;
    let dir = tmp_dir("resume");

    // Simulate a first worker that died after two jobs of shard 1: write
    // its partial artifact directly through the sink the worker would use.
    let mine: Vec<Job> = all
        .iter()
        .filter(|j| shard_of(j.id, shards) == 1)
        .cloned()
        .collect();
    let shard_manifest =
        Manifest::for_jobs(&format!("{}#shard1of{shards}", manifest.name), 0xAB, &mine);
    let mut sink = JsonlSink::open(&dir.join("shard-1.jsonl"), &shard_manifest).unwrap();
    for job in mine.iter().take(2) {
        sink.record(&synthetic(job)).unwrap();
    }
    drop(sink);

    // A fresh fleet run completes everything and the merge verifies.
    let summary = run_fleet_and_merge(&dir, &all, &manifest, shards).unwrap();
    assert_eq!(summary.jobs, 9);
    assert_eq!(summary.deduplicated, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scavenging_survivor_completes_a_dead_workers_shard() {
    let all = jobs(0x5CAF, 10);
    let manifest = Manifest::for_jobs("fleet", 0x5CAF, &all);
    let shards = 3u64;
    let dir = tmp_dir("scavenge");

    // Shard 0's worker "died": stale-lease chaos claims the shard, runs
    // nothing and leaves an ancient heartbeat behind.
    let mut chaos = fleet_opts();
    chaos.chaos = Some(ChaosMode::StaleLease);
    let statuses = run_fleet_worker(
        &dir,
        &all,
        &manifest,
        0,
        shards,
        &chaos,
        || (),
        |_, j| synthetic(j),
    )
    .unwrap();
    assert_eq!(statuses[0].outcome, ShardOutcome::Failed(0));

    // Merging now names shard 0 as unfinished with a stale lease.
    let err = merge_shards(&dir, &all, &manifest, shards, &dir.join("merged.jsonl")).unwrap_err();
    match &err {
        MergeError::Incomplete {
            shard,
            detail,
            live,
        } => {
            assert_eq!(*shard, 0);
            assert!(!live, "a stale lease is not live: {detail}");
            assert!(detail.contains("stale lease"), "{detail}");
        }
        other => panic!("expected Incomplete, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 3);

    // A survivor assigned shard 1 with scavenging on steals the stale
    // lease and finishes shards 1, 2 AND 0.
    let mut survivor = fleet_opts();
    survivor.scavenge = true;
    let statuses = run_fleet_worker(
        &dir,
        &all,
        &manifest,
        1,
        shards,
        &survivor,
        || (),
        |_, j| synthetic(j),
    )
    .unwrap();
    assert_eq!(statuses.len(), 3);
    assert!(statuses
        .iter()
        .all(|s| matches!(s.outcome, ShardOutcome::Completed(_))));

    let summary = merge_shards(&dir, &all, &manifest, shards, &dir.join("merged.jsonl")).unwrap();
    assert_eq!(summary.jobs, 10);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_byte_is_detected_and_names_shard_and_job() {
    let all = jobs(0xF11F, 8);
    let manifest = Manifest::for_jobs("fleet", 0xF11F, &all);
    let shards = 2u64;
    let dir = tmp_dir("flip");

    let mut chaos = fleet_opts();
    chaos.chaos = Some(ChaosMode::FlipByte);
    run_fleet_worker(
        &dir,
        &all,
        &manifest,
        1,
        shards,
        &chaos,
        || (),
        |_, j| synthetic(j),
    )
    .unwrap();
    run_fleet_worker(
        &dir,
        &all,
        &manifest,
        0,
        shards,
        &fleet_opts(),
        || (),
        |_, j| synthetic(j),
    )
    .unwrap();

    let err = merge_shards(&dir, &all, &manifest, shards, &dir.join("merged.jsonl")).unwrap_err();
    match &err {
        MergeError::Corrupt {
            shard,
            job_id,
            detail,
        } => {
            assert_eq!(*shard, 1);
            assert!(job_id.is_some(), "the flipped job must be named: {detail}");
            assert!(
                detail.contains("hash") || detail.contains("seed"),
                "{detail}"
            );
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 3);
    assert!(
        !dir.join("merged.jsonl").exists(),
        "a refused merge must write nothing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn divergent_duplicate_is_detected_with_both_transcripts() {
    let all = jobs(0xD0D0, 8);
    let manifest = Manifest::for_jobs("fleet", 0xD0D0, &all);
    let shards = 2u64;
    let dir = tmp_dir("dup");

    let mut chaos = fleet_opts();
    chaos.chaos = Some(ChaosMode::DuplicateClaim);
    run_fleet_worker(
        &dir,
        &all,
        &manifest,
        0,
        shards,
        &chaos,
        || (),
        |_, j| synthetic(j),
    )
    .unwrap();
    run_fleet_worker(
        &dir,
        &all,
        &manifest,
        1,
        shards,
        &fleet_opts(),
        || (),
        |_, j| synthetic(j),
    )
    .unwrap();

    let err = merge_shards(&dir, &all, &manifest, shards, &dir.join("merged.jsonl")).unwrap_err();
    match &err {
        MergeError::Corrupt { shard, detail, .. } => {
            assert_eq!(*shard, 0);
            assert!(detail.contains("divergent duplicate"), "{detail}");
            assert!(
                detail.contains("first:") && detail.contains("duplicate:"),
                "both transcripts must be printed: {detail}"
            );
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_identical_duplicates_from_a_raced_claim_are_deduplicated() {
    let all = jobs(0xBEBE, 6);
    let manifest = Manifest::for_jobs("fleet", 0xBEBE, &all);
    let shards = 2u64;
    let dir = tmp_dir("racedup");

    let summary = run_fleet_and_merge(&dir, &all, &manifest, shards).unwrap();
    let baseline = sorted_lines(&dir.join("merged.jsonl"));

    // A raced duplicate execution appends the same deterministic bytes
    // again; the merge dedups and produces identical output.
    let shard0 = dir.join("shard-0.jsonl");
    let text = std::fs::read_to_string(&shard0).unwrap();
    let first = text.lines().next().unwrap().to_string();
    std::fs::write(&shard0, format!("{text}{first}\n")).unwrap();

    let again = merge_shards(&dir, &all, &manifest, shards, &dir.join("merged.jsonl")).unwrap();
    assert_eq!(again.deduplicated, 1);
    assert_eq!(again.campaign_anchor, summary.campaign_anchor);
    assert_eq!(sorted_lines(&dir.join("merged.jsonl")), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unclaimed_incomplete_shard_blocks_the_merge() {
    let all = jobs(0x1D1E, 7);
    let manifest = Manifest::for_jobs("fleet", 0x1D1E, &all);
    let shards = 3u64;
    let dir = tmp_dir("unclaimed");

    // Only shard 2 ran.
    run_fleet_worker(
        &dir,
        &all,
        &manifest,
        2,
        shards,
        &fleet_opts(),
        || (),
        |_, j| synthetic(j),
    )
    .unwrap();
    assert!(!merge_ready(&dir, shards));
    let err = merge_shards(&dir, &all, &manifest, shards, &dir.join("merged.jsonl")).unwrap_err();
    match &err {
        MergeError::Incomplete { shard, detail, .. } => {
            assert_eq!(*shard, 0);
            assert!(detail.contains("unclaimed"), "{detail}");
        }
        other => panic!("expected Incomplete, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_shard_count_or_campaign_is_a_usage_error() {
    let all = jobs(0x2BAD, 6);
    let manifest = Manifest::for_jobs("fleet", 0x2BAD, &all);
    let dir = tmp_dir("mismatch");
    run_fleet_and_merge(&dir, &all, &manifest, 2).unwrap();

    let err = merge_shards(&dir, &all, &manifest, 3, &dir.join("merged.jsonl")).unwrap_err();
    assert!(matches!(err, MergeError::Mismatch { .. }), "{err:?}");
    assert_eq!(err.exit_code(), 2);

    let other = Manifest::for_jobs("fleet", 0x2BAE, &jobs(0x2BAE, 6));
    let err = merge_shards(&dir, &all, &other, 2, &dir.join("merged.jsonl")).unwrap_err();
    assert_eq!(err.exit_code(), 2);

    // A directory that is not a shard dir at all.
    let empty = tmp_dir("notashard");
    let err = merge_shards(&empty, &all, &manifest, 2, &empty.join("merged.jsonl")).unwrap_err();
    assert!(matches!(err, MergeError::Mismatch { .. }), "{err:?}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn truncated_tail_after_kill_recovers_on_the_next_worker() {
    let all = jobs(0x7A11, 9);
    let manifest = Manifest::for_jobs("fleet", 0x7A11, &all);
    let shards = 3u64;
    let dir = tmp_dir("truncrecover");

    // Shard 0 completed but its process was killed mid-append before the
    // anchor commit: chop the artifact inside the final line and delete
    // the anchor, like ChaosMode::Truncate's abort would leave it.
    run_fleet_worker(
        &dir,
        &all,
        &manifest,
        0,
        shards,
        &fleet_opts(),
        || (),
        |_, j| synthetic(j),
    )
    .unwrap();
    let shard0 = dir.join("shard-0.jsonl");
    let len = std::fs::metadata(&shard0).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&shard0)
        .unwrap()
        .set_len(len - 9)
        .unwrap();
    std::fs::remove_file(dir.join("shard-0.anchor.json")).unwrap();

    // The next worker resumes over the chopped artifact, re-runs the lost
    // job and the merge is byte-identical to an undisturbed fleet.
    let summary = run_fleet_and_merge(&dir, &all, &manifest, shards).unwrap();
    assert_eq!(summary.jobs, 9);

    let clean = tmp_dir("truncbaseline");
    run_fleet_and_merge(&clean, &all, &manifest, shards).unwrap();
    assert_eq!(
        sorted_lines(&dir.join("merged.jsonl")),
        sorted_lines(&clean.join("merged.jsonl"))
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean);
}

#[test]
fn live_lease_reports_busy_not_stolen() {
    let all = jobs(0x11FE, 4);
    let manifest = Manifest::for_jobs("fleet", 0x11FE, &all);
    let shards = 2u64;
    let dir = tmp_dir("busy");

    // Hold shard 0's lease with a live heartbeat, then ask a second
    // worker (zero claim retries so the test is fast) to run it.
    let claim = majorcan_campaign::shard::try_claim(&dir, 0, Duration::from_secs(30)).unwrap();
    let majorcan_campaign::shard::Claim::Claimed(guard) = claim else {
        panic!("fresh dir must claim");
    };
    std::fs::create_dir_all(&dir).unwrap();
    let mut opts = fleet_opts();
    opts.claim_retries = 0;
    let statuses = run_fleet_worker(
        &dir,
        &all,
        &manifest,
        0,
        shards,
        &opts,
        || (),
        |_, j| synthetic(j),
    )
    .unwrap();
    match &statuses[0].outcome {
        ShardOutcome::Busy(lease) => assert_eq!(lease.pid, std::process::id()),
        other => panic!("expected Busy, got {other:?}"),
    }

    // And the merge reports the shard as live, not reclaimable.
    let err = merge_shards(&dir, &all, &manifest, shards, &dir.join("merged.jsonl")).unwrap_err();
    match &err {
        MergeError::Incomplete { shard, live, .. } => {
            assert_eq!(*shard, 0);
            assert!(*live);
        }
        other => panic!("expected Incomplete, got {other:?}"),
    }
    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}
