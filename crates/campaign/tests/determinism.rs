//! The runner's core contracts, exercised with a synthetic executor:
//! worker-count invariance, resume-after-kill convergence, skip accounting
//! and panic containment.

use majorcan_campaign::{
    run_campaign, CampaignOptions, FaultSpec, Job, JobResult, JsonlSink, Manifest, ProtocolSpec,
    WorkloadSpec,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn jobs(campaign_seed: u64, n: u64) -> Vec<Job> {
    (0..n)
        .map(|id| {
            Job::new(
                id,
                campaign_seed,
                ProtocolSpec::MajorCan { m: 2 },
                FaultSpec::None,
                WorkloadSpec::SingleBroadcast,
                3,
                5 + id % 7,
            )
        })
        .collect()
}

/// A deterministic stand-in for the simulation: everything it records is a
/// pure function of the job (mostly its seed).
fn synthetic(job: &Job) -> JobResult {
    let mut r = JobResult::for_job(job);
    r.frames = job.frames;
    r.bits = job.frames * (100 + job.seed % 55);
    r.counters.add("imo", job.seed % 3);
    r.counters.add("retx", job.seed % 11);
    r
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "majorcan-campaign-det-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sorted_jsonl(path: &PathBuf) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.sort();
    lines
}

#[test]
fn worker_count_does_not_change_the_artifact() {
    let dir = tmp_dir("workers");
    let js = jobs(0xFEED, 40);
    let manifest = Manifest::for_jobs("workers", 0xFEED, &js);
    let mut artifacts = Vec::new();
    for workers in [1usize, 2, 8] {
        let out = dir.join(format!("w{workers}.jsonl"));
        let mut sink = JsonlSink::open(&out, &manifest).unwrap();
        let report =
            run_campaign(&js, &CampaignOptions::quiet(workers), &mut sink, synthetic).unwrap();
        assert_eq!(report.totals.jobs, 40);
        assert_eq!(report.skipped, 0);
        assert!(report.failures.is_empty());
        assert_eq!(report.worker_stats.len(), workers.min(js.len()));
        let executed: u64 = report.worker_stats.iter().map(|s| s.jobs).sum();
        assert_eq!(executed, 40);
        // Results are reported sorted by job id regardless of completion
        // order.
        let ids: Vec<u64> = report.results.iter().map(|r| r.job_id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<u64>>());
        artifacts.push(sorted_jsonl(&out));
    }
    assert_eq!(artifacts[0], artifacts[1]);
    assert_eq!(artifacts[0], artifacts[2]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_skips_completed_jobs_and_converges() {
    let dir = tmp_dir("resume");
    let js = jobs(7, 30);
    let manifest = Manifest::for_jobs("resume", 7, &js);

    // Reference: one uninterrupted run.
    let reference = dir.join("reference.jsonl");
    {
        let mut sink = JsonlSink::open(&reference, &manifest).unwrap();
        run_campaign(&js, &CampaignOptions::quiet(2), &mut sink, synthetic).unwrap();
    }

    // "Killed" run: only the first 11 jobs made it to disk.
    let out = dir.join("killed.jsonl");
    {
        let mut sink = JsonlSink::open(&out, &manifest).unwrap();
        run_campaign(&js[..11], &CampaignOptions::quiet(2), &mut sink, synthetic).unwrap();
    }

    // Resume: the executor must never see an already-completed job.
    let executions = AtomicU64::new(0);
    {
        let mut sink = JsonlSink::open(&out, &manifest).unwrap();
        assert_eq!(sink.completed().len(), 11);
        let report = run_campaign(&js, &CampaignOptions::quiet(4), &mut sink, |job| {
            executions.fetch_add(1, Ordering::Relaxed);
            assert!(job.id >= 11, "job {} recomputed after resume", job.id);
            synthetic(job)
        })
        .unwrap();
        assert_eq!(report.skipped, 11);
        assert_eq!(report.totals.jobs, 30);
    }
    assert_eq!(executions.load(Ordering::Relaxed), 19);
    assert_eq!(sorted_jsonl(&out), sorted_jsonl(&reference));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_is_recorded_and_campaign_continues() {
    let dir = tmp_dir("panic");
    let js = jobs(3, 12);
    let manifest = Manifest::for_jobs("panic", 3, &js);
    let out = dir.join("results.jsonl");
    let mut sink = JsonlSink::open(&out, &manifest).unwrap();
    let report = run_campaign(&js, &CampaignOptions::quiet(3), &mut sink, |job| {
        if job.id == 5 {
            panic!("injected failure in job {}", job.id);
        }
        synthetic(job)
    })
    .unwrap();

    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].job_id, 5);
    assert_eq!(report.failures[0].seed, js[5].seed);
    assert!(report.failures[0].message.contains("injected failure"));
    assert_eq!(report.totals.jobs, 11);
    assert!(report.results.iter().all(|r| r.job_id != 5));

    // The failures artifact names the job, its replay seed AND its full
    // payload, so the line is a standalone repro.
    let failures = std::fs::read_to_string(dir.join("results.jsonl.failures.jsonl")).unwrap();
    assert!(failures.contains("\"job_id\":5"));
    assert!(failures.contains("injected failure"));
    assert!(
        failures.contains("\"job\":{") && failures.contains("\"protocol\":\"MajorCAN_2\""),
        "failure line must embed the job payload: {failures}"
    );
    assert_eq!(
        report.failures[0]
            .job
            .get("frames")
            .and_then(|v| v.as_u64()),
        Some(js[5].frames)
    );

    // A rerun retries the failed job (it is not marked completed) and,
    // with a healthy executor, completes the campaign.
    let mut sink = JsonlSink::open(&out, &manifest).unwrap();
    let report = run_campaign(&js, &CampaignOptions::quiet(3), &mut sink, synthetic).unwrap();
    assert_eq!(report.skipped, 11);
    assert_eq!(report.totals.jobs, 12);
    assert!(report.failures.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
