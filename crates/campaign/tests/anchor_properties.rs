//! Property tests for transcript-anchor stability: the shard anchor must
//! be a pure function of the campaign's deterministic results —
//! invariant under worker count, shard visit order, job completion order
//! and resume/retry interleavings — while any single-byte substitution
//! in a committed transcript line must change it.

use majorcan_campaign::shard::ShardAnchor;
use majorcan_campaign::{
    merge_shards, run_fleet_worker, shard_of, CampaignOptions, FaultSpec, FleetOptions, Job,
    JobResult, JsonlSink, Manifest, ProtocolSpec, WorkloadSpec,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn jobs(campaign_seed: u64, n: u64) -> Vec<Job> {
    (0..n)
        .map(|id| {
            Job::new(
                id,
                campaign_seed,
                ProtocolSpec::MajorCan { m: 2 },
                FaultSpec::None,
                WorkloadSpec::SingleBroadcast,
                3,
                1 + id % 5,
            )
        })
        .collect()
}

fn synthetic(job: &Job) -> JobResult {
    let mut r = JobResult::for_job(job);
    r.frames = job.frames;
    r.bits = job.frames * (100 + job.seed % 55);
    r.counters.add("imo", job.seed % 3);
    r.counters.add("retx", job.seed % 11);
    r
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "majorcan-anchor-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(workers: usize) -> FleetOptions {
    FleetOptions {
        campaign: CampaignOptions::quiet(workers),
        stale_after: Duration::from_millis(500),
        claim_backoff: Duration::from_millis(5),
        ..FleetOptions::default()
    }
}

/// Runs a full fleet over `dir`, visiting shards in `order` with the
/// given per-shard thread count, and returns (shard anchors, campaign
/// anchor, merged bytes).
fn run_fleet(
    dir: &Path,
    all: &[Job],
    manifest: &Manifest,
    shards: u64,
    order: &[u64],
    workers: usize,
) -> (Vec<u64>, u64, String) {
    for &k in order {
        run_fleet_worker(
            dir,
            all,
            manifest,
            k,
            shards,
            &opts(workers),
            || (),
            |_, j| synthetic(j),
        )
        .unwrap();
    }
    let out = dir.join("merged.jsonl");
    let summary = merge_shards(dir, all, manifest, shards, &out).unwrap();
    let text = std::fs::read_to_string(&out).unwrap();
    (summary.shard_anchors, summary.campaign_anchor, text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The anchors and merged bytes are a pure function of (campaign,
    // shard count): worker threads, shard visit order, a resumed
    // partial shard and a retried (bit-identical duplicate) line all
    // leave them untouched.
    #[test]
    fn anchors_invariant_under_workers_order_resume_and_retry(
        seed in 0u64..1_000_000,
        n_jobs in 4u64..16,
        shards in 1u64..5,
        rotate in 0u64..5,
        prefix in 0usize..3,
        workers in 1usize..4,
    ) {
        let all = jobs(seed, n_jobs);
        let manifest = Manifest::for_jobs("prop", seed, &all);

        // Baseline: in-order visit, single-threaded shards.
        let base_dir = tmp_dir("base");
        let order: Vec<u64> = (0..shards).collect();
        let (base_anchors, base_campaign, base_text) =
            run_fleet(&base_dir, &all, &manifest, shards, &order, 1);

        // Variant: rotated+reversed visit order, multi-threaded shards,
        // with the last shard partially pre-recorded (a resumed worker
        // generation) and one line duplicated (a retried claim).
        let var_dir = tmp_dir("var");
        let resumed_shard = shards - 1;
        let mine: Vec<Job> = all
            .iter()
            .filter(|j| shard_of(j.id, shards) == resumed_shard)
            .cloned()
            .collect();
        let shard_manifest = Manifest::for_jobs(
            &format!("{}#shard{resumed_shard}of{shards}", manifest.name),
            seed,
            &mine,
        );
        let shard_path = var_dir.join(format!("shard-{resumed_shard}.jsonl"));
        let mut sink = JsonlSink::open(&shard_path, &shard_manifest).unwrap();
        for job in mine.iter().take(prefix.min(mine.len())) {
            sink.record(&synthetic(job)).unwrap();
        }
        drop(sink);
        if prefix > 0 && !mine.is_empty() {
            // Retry interleaving: the first recorded line is re-executed
            // bit-identically by a raced worker.
            let text = std::fs::read_to_string(&shard_path).unwrap();
            if let Some(first) = text.lines().next().map(str::to_string) {
                std::fs::write(&shard_path, format!("{text}{first}\n")).unwrap();
            }
        }
        let mut order: Vec<u64> = (0..shards).map(|i| (i + rotate) % shards).collect();
        order.reverse();
        let (var_anchors, var_campaign, var_text) =
            run_fleet(&var_dir, &all, &manifest, shards, &order, workers);

        prop_assert_eq!(base_anchors, var_anchors);
        prop_assert_eq!(base_campaign, var_campaign);
        prop_assert_eq!(base_text, var_text);

        let _ = std::fs::remove_dir_all(&base_dir);
        let _ = std::fs::remove_dir_all(&var_dir);
    }

    // Any single-byte substitution in any canonical result line changes
    // both that job's transcript hash and the shard anchor chain.
    #[test]
    fn any_single_byte_substitution_changes_the_anchor(
        seed in 0u64..1_000_000,
        n_jobs in 1u64..8,
        victim in 0u64..8,
        pos_salt in 0usize..10_000,
        byte_salt in 0u8..255,
    ) {
        let all = jobs(seed, n_jobs);
        let victim = victim % n_jobs;
        let mut results: BTreeMap<u64, JobResult> = all
            .iter()
            .map(|j| (j.id, synthetic(j)))
            .collect();
        let clean = ShardAnchor::over(0, &results);

        // Perturb one byte of the victim's canonical line by rewriting
        // the parsed result so the line re-encodes with exactly that
        // byte changed — covering every byte position via pos_salt.
        let line = results[&victim].to_json().to_string();
        let bytes = line.as_bytes();
        let pos = pos_salt % bytes.len();
        let old = bytes[pos];
        // Substitute with a different ASCII byte (printable, avoids
        // UTF-8 concerns); FNV-1a's per-byte ops are bijective, so any
        // substitution must change the hash.
        let candidates = (b' '..=b'~').filter(|&b| b != old);
        let replacement = candidates
            .clone()
            .nth(byte_salt as usize % candidates.count())
            .unwrap();
        let mut perturbed = bytes.to_vec();
        perturbed[pos] = replacement;
        let perturbed_line = String::from_utf8(perturbed).unwrap();

        prop_assert_ne!(
            majorcan_campaign::shard::result_line_hash(&line),
            majorcan_campaign::shard::result_line_hash(&perturbed_line),
            "substituting byte {} ({:?} -> {:?}) must change the line hash",
            pos, old as char, replacement as char
        );

        // And a semantic perturbation (any counter/field change that
        // alters the encoding) changes the shard chain and only the
        // victim's entry.
        results.get_mut(&victim).unwrap().bits ^= 1 << (byte_salt % 48);
        let dirty = ShardAnchor::over(0, &results);
        prop_assert_ne!(clean.anchor, dirty.anchor);
        for (&(id, a), &(_, b)) in clean.entries.iter().zip(dirty.entries.iter()) {
            prop_assert_eq!(a == b, id != victim, "entry {}", id);
        }
    }
}
