//! Crash-tolerant sharded campaign execution with verifiable transcript
//! anchors.
//!
//! A campaign's job list is partitioned into `N` shards by
//! [`shard_of`] (`job_id % N`). Independent **worker processes** claim
//! shards through atomic filesystem leases, run their jobs with the
//! ordinary [`run_campaign_scoped`] machinery (so per-shard resume,
//! panic isolation and determinism all carry over), and commit a
//! per-shard **anchor** — an FNV-1a chain over the shard's sorted
//! canonical [`JobResult`] lines, plus one hash per job for blame. A
//! **verified merge** ([`merge_shards`]) then recomputes every hash from
//! the raw artifacts, cross-checks duplicate job ids from raced or
//! retried claims for bit-identity, verifies the campaign-level anchor
//! over the shard anchors, and only then writes the final JSONL —
//! byte-identical (sorted by job id) to a single-process run.
//!
//! Failure matrix (see DESIGN.md §3h):
//!
//! * worker killed mid-shard → lease goes stale, a survivor reclaims and
//!   resumes; **recovered**;
//! * truncated trailing JSONL line → chopped on resume, job re-run;
//!   **recovered**;
//! * flipped byte in a committed shard → anchor hash mismatch naming the
//!   shard and job; **detected** (merge refuses, exit 3);
//! * duplicate claim race → both transcripts compared bit-for-bit;
//!   identical duplicates are deduped, divergence is **detected** with
//!   both lines printed;
//! * clock-stale lease / dead worker → merge names the unclaimed shard;
//!   **detected** until a worker reclaims it.
//!
//! The directory layout under `--shard-dir`:
//!
//! ```text
//! campaign.json            fleet manifest: campaign identity + shard count
//! shard-<k>.jsonl          shard results (a normal JsonlSink artifact)
//! shard-<k>.jsonl.manifest.json / .failures.jsonl
//! shard-<k>.lease          live worker lease (pid + heartbeat)
//! shard-<k>.anchor.json    committed shard anchor (written on completion)
//! merged.jsonl             verified merge output
//! campaign.anchor.json     campaign-level anchor over the shard anchors
//! ```

use crate::job::{Job, JobResult, Totals};
use crate::json::{parse, Value};
use crate::runner::{run_campaign_scoped, CampaignOptions};
use crate::sink::{fnv1a, JsonlSink, Manifest, FNV_OFFSET};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// The shard that owns `job_id` in an `N`-shard campaign.
pub fn shard_of(job_id: u64, shards: u64) -> u64 {
    job_id % shards.max(1)
}

/// Path of shard `k`'s result JSONL under `dir`.
pub fn shard_results_path(dir: &Path, shard: u64) -> PathBuf {
    dir.join(format!("shard-{shard}.jsonl"))
}

fn anchor_path(dir: &Path, shard: u64) -> PathBuf {
    dir.join(format!("shard-{shard}.anchor.json"))
}

fn lease_path(dir: &Path, shard: u64) -> PathBuf {
    dir.join(format!("shard-{shard}.lease"))
}

fn fleet_manifest_path(dir: &Path) -> PathBuf {
    dir.join("campaign.json")
}

fn campaign_anchor_path(dir: &Path) -> PathBuf {
    dir.join("campaign.anchor.json")
}

/// Writes `text` to `path` atomically (temp sibling + rename), so readers
/// never observe a half-written file.
fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    let tmp = path.with_file_name(format!("{name}.tmp{}", std::process::id()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn read_to_string(path: &Path) -> io::Result<String> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    Ok(text)
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Fleet manifest
// ---------------------------------------------------------------------------

/// The campaign identity shared by every worker of a fleet: the ordinary
/// [`Manifest`] plus the shard count. Stored as `campaign.json` in the
/// shard directory; every worker and the merge verify against it, so two
/// fleets can never interleave artifacts in one directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetManifest {
    /// The campaign's manifest (name, seed, job count, job-list digest).
    pub manifest: Manifest,
    /// Number of shards the job list is partitioned into.
    pub shards: u64,
}

impl FleetManifest {
    fn to_json(&self) -> Value {
        let mut v = self.manifest.to_json();
        v.set("shards", Value::U64(self.shards));
        v
    }

    fn from_json(v: &Value) -> Option<FleetManifest> {
        Some(FleetManifest {
            manifest: Manifest::from_json(v)?,
            shards: v.get("shards")?.as_u64()?,
        })
    }

    /// Writes the fleet manifest on first contact with `dir`, or verifies
    /// the stored one matches. Concurrent first-writers race benignly: the
    /// content is deterministic, so whichever rename lands last wrote the
    /// same bytes.
    pub fn init(dir: &Path, manifest: &Manifest, shards: u64) -> io::Result<FleetManifest> {
        let me = FleetManifest {
            manifest: manifest.clone(),
            shards,
        };
        let path = fleet_manifest_path(dir);
        if path.exists() {
            let stored = FleetManifest::load(dir)?;
            if stored != me {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "fleet manifest mismatch at {}: stored {stored:?}, requested {me:?}; \
                         refusing to join a different campaign",
                        path.display()
                    ),
                ));
            }
            return Ok(me);
        }
        write_atomic(&path, &format!("{}\n", me.to_json()))?;
        Ok(me)
    }

    /// Loads the fleet manifest stored in `dir`.
    pub fn load(dir: &Path) -> io::Result<FleetManifest> {
        let path = fleet_manifest_path(dir);
        let text = read_to_string(&path)?;
        parse(&text)
            .ok()
            .as_ref()
            .and_then(FleetManifest::from_json)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt fleet manifest {}", path.display()),
                )
            })
    }
}

// ---------------------------------------------------------------------------
// Anchors
// ---------------------------------------------------------------------------

/// FNV-1a hash of one canonical result line (the per-job transcript hash
/// recorded in the shard anchor, so a flipped byte names its exact job).
pub fn result_line_hash(line: &str) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, line.as_bytes());
    h
}

/// A shard's committed transcript anchor: one FNV-1a hash per job plus a
/// chain over the sorted canonical lines. Written (atomically) only when
/// every job of the shard has a result, so its presence doubles as the
/// shard's completion marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAnchor {
    /// The shard this anchor commits.
    pub shard: u64,
    /// `(job id, transcript hash)` sorted by job id.
    pub entries: Vec<(u64, u64)>,
    /// FNV-1a chain over the sorted canonical lines (each + `\n`).
    pub anchor: u64,
}

impl ShardAnchor {
    /// Computes the anchor over `results` (keyed by job id, so iteration
    /// is sorted — anchor value is independent of completion order).
    pub fn over(shard: u64, results: &BTreeMap<u64, JobResult>) -> ShardAnchor {
        let mut chain = FNV_OFFSET;
        let mut entries = Vec::with_capacity(results.len());
        for (id, result) in results {
            let line = result.to_json().to_string();
            entries.push((*id, result_line_hash(&line)));
            fnv1a(&mut chain, line.as_bytes());
            fnv1a(&mut chain, b"\n");
        }
        ShardAnchor {
            shard,
            entries,
            anchor: chain,
        }
    }

    fn to_json(&self) -> Value {
        let jobs = self
            .entries
            .iter()
            .map(|&(id, hash)| {
                let mut e = Value::obj();
                e.set("id", Value::U64(id)).set("hash", Value::U64(hash));
                e
            })
            .collect();
        let mut v = Value::obj();
        v.set("shard", Value::U64(self.shard))
            .set("jobs", Value::Arr(jobs))
            .set("anchor", Value::U64(self.anchor));
        v
    }

    fn from_json(v: &Value) -> Option<ShardAnchor> {
        let Value::Arr(items) = v.get("jobs")? else {
            return None;
        };
        let mut entries = Vec::with_capacity(items.len());
        for item in items {
            entries.push((item.get("id")?.as_u64()?, item.get("hash")?.as_u64()?));
        }
        Some(ShardAnchor {
            shard: v.get("shard")?.as_u64()?,
            entries,
            anchor: v.get("anchor")?.as_u64()?,
        })
    }

    /// Commits the anchor under `dir` (atomic write).
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        write_atomic(
            &anchor_path(dir, self.shard),
            &format!("{}\n", self.to_json()),
        )
    }

    /// Loads shard `k`'s committed anchor, `None` if not committed yet.
    pub fn load(dir: &Path, shard: u64) -> io::Result<Option<ShardAnchor>> {
        let path = anchor_path(dir, shard);
        if !path.exists() {
            return Ok(None);
        }
        let text = read_to_string(&path)?;
        parse(&text)
            .ok()
            .as_ref()
            .and_then(ShardAnchor::from_json)
            .map(Some)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt shard anchor {}", path.display()),
                )
            })
    }
}

/// The campaign-level anchor: an FNV-1a chain over the manifest's
/// job-list digest and every shard anchor in shard order. Any change to
/// any committed transcript — or to the job list itself — changes it.
pub fn campaign_anchor(manifest: &Manifest, shard_anchors: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &manifest.digest.to_le_bytes());
    for anchor in shard_anchors {
        fnv1a(&mut h, &anchor.to_le_bytes());
    }
    h
}

// ---------------------------------------------------------------------------
// Leases
// ---------------------------------------------------------------------------

/// A shard lease: who is (or was) executing a shard, and when they last
/// proved they were alive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The leased shard.
    pub shard: u64,
    /// Claiming process id.
    pub pid: u32,
    /// Last heartbeat, epoch milliseconds.
    pub heartbeat_ms: u64,
    /// Staleness threshold the claimer advertised.
    pub stale_after_ms: u64,
}

impl Lease {
    fn new(shard: u64, stale_after: Duration) -> Lease {
        Lease {
            shard,
            pid: std::process::id(),
            heartbeat_ms: now_ms(),
            stale_after_ms: stale_after.as_millis() as u64,
        }
    }

    fn to_json(&self) -> Value {
        let mut v = Value::obj();
        v.set("shard", Value::U64(self.shard))
            .set("pid", Value::U64(self.pid as u64))
            .set("heartbeat_ms", Value::U64(self.heartbeat_ms))
            .set("stale_after_ms", Value::U64(self.stale_after_ms));
        v
    }

    fn from_json(v: &Value) -> Option<Lease> {
        Some(Lease {
            shard: v.get("shard")?.as_u64()?,
            pid: v.get("pid")?.as_u64()? as u32,
            heartbeat_ms: v.get("heartbeat_ms")?.as_u64()?,
            stale_after_ms: v.get("stale_after_ms")?.as_u64()?,
        })
    }

    /// `true` once the heartbeat is older than the advertised threshold —
    /// the holder is presumed dead and the shard is reclaimable.
    pub fn is_stale(&self, now_ms: u64) -> bool {
        now_ms.saturating_sub(self.heartbeat_ms) > self.stale_after_ms
    }

    /// Loads the lease for shard `k`, `None` if absent. An unparseable
    /// lease (a torn write from a dying claimer) reads as `None` too: it
    /// carries no liveness evidence, so it is treated like a stale one.
    pub fn load(dir: &Path, shard: u64) -> Option<Lease> {
        let text = read_to_string(&lease_path(dir, shard)).ok()?;
        parse(&text).ok().as_ref().and_then(Lease::from_json)
    }
}

/// Holding a claimed lease: refreshes the heartbeat on a background
/// thread and removes the lease file on drop (normal completion). A
/// SIGKILLed holder leaves the file behind with a decaying heartbeat —
/// exactly the signal survivors reclaim on.
#[derive(Debug)]
pub struct LeaseGuard {
    path: PathBuf,
    lease: Lease,
    stop: Arc<AtomicBool>,
    beat: Option<std::thread::JoinHandle<()>>,
    keep: bool,
}

impl LeaseGuard {
    fn start(path: PathBuf, lease: Lease, stale_after: Duration) -> LeaseGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let beat = {
            let stop = Arc::clone(&stop);
            let path = path.clone();
            let mut lease = lease.clone();
            let interval = (stale_after / 3).max(Duration::from_millis(25));
            std::thread::spawn(move || {
                'beat: while !stop.load(Ordering::Relaxed) {
                    // Sleep in short slices so dropping the guard never
                    // blocks for a full heartbeat interval.
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        if stop.load(Ordering::Relaxed) {
                            break 'beat;
                        }
                        let step = (interval - slept).min(Duration::from_millis(25));
                        std::thread::sleep(step);
                        slept += step;
                    }
                    // Refresh only while the file still names us: if a
                    // reclaimer decided we were dead and stole the lease,
                    // stop advertising liveness — duplicate execution is
                    // benign (deterministic results, merge dedups), but
                    // fighting over the file is not.
                    let current = read_to_string(&path)
                        .ok()
                        .and_then(|t| parse(&t).ok().as_ref().and_then(Lease::from_json));
                    match current {
                        Some(l) if l.pid == lease.pid => {
                            lease.heartbeat_ms = now_ms();
                            let _ = write_atomic(&path, &format!("{}\n", lease.to_json()));
                        }
                        _ => break,
                    }
                }
            })
        };
        LeaseGuard {
            path,
            lease,
            stop,
            beat: Some(beat),
            keep: false,
        }
    }

    /// The lease being held.
    pub fn lease(&self) -> &Lease {
        &self.lease
    }

    fn stop_heartbeat(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(beat) = self.beat.take() {
            let _ = beat.join();
        }
    }

    /// Stops the heartbeat but leaves the lease file in place — test and
    /// chaos hook for simulating a worker that stopped proving liveness.
    pub fn abandon(mut self) {
        self.stop_heartbeat();
        self.keep = true;
    }
}

impl Drop for LeaseGuard {
    fn drop(&mut self) {
        self.stop_heartbeat();
        if self.keep {
            return;
        }
        // Release only if the file still names us (a reclaimer may have
        // legitimately stolen a lease we let go stale under load).
        let ours = read_to_string(&self.path)
            .ok()
            .and_then(|t| parse(&t).ok().as_ref().and_then(Lease::from_json))
            .is_some_and(|l| l.pid == self.lease.pid);
        if ours {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Outcome of one claim attempt.
#[derive(Debug)]
pub enum Claim {
    /// The shard is ours; the guard heartbeats until dropped.
    Claimed(LeaseGuard),
    /// A live worker holds the shard.
    Busy(Lease),
}

/// Tries to claim shard `k`'s lease.
///
/// The claim itself is atomic: the lease content is written to a private
/// temp file and `hard_link`ed to the lease path, so the lease either
/// appears fully formed or not at all (no empty-file window for readers).
/// A stale or unreadable existing lease is stolen by renaming it to a
/// tombstone first — `rename` picks exactly one winner among racing
/// reclaimers.
pub fn try_claim(dir: &Path, shard: u64, stale_after: Duration) -> io::Result<Claim> {
    let path = lease_path(dir, shard);
    let pid = std::process::id();
    for _ in 0..4 {
        let lease = Lease::new(shard, stale_after);
        let tmp = dir.join(format!("shard-{shard}.lease.claim{pid}"));
        {
            let mut f = File::create(&tmp)?;
            writeln!(f, "{}", lease.to_json())?;
            f.sync_all()?;
        }
        let linked = std::fs::hard_link(&tmp, &path);
        let _ = std::fs::remove_file(&tmp);
        match linked {
            Ok(()) => return Ok(Claim::Claimed(LeaseGuard::start(path, lease, stale_after))),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                match Lease::load(dir, shard) {
                    Some(held) if !held.is_stale(now_ms()) => return Ok(Claim::Busy(held)),
                    _ => {
                        // Stale or torn: steal via rename (single winner),
                        // then loop to claim the now-vacant path. Losing
                        // the rename race just means someone else is
                        // reclaiming; the next iteration sees their lease.
                        let tomb = dir.join(format!("shard-{shard}.lease.stale{pid}"));
                        if std::fs::rename(&path, &tomb).is_ok() {
                            let _ = std::fs::remove_file(&tomb);
                        }
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    // Persistent contention: report whoever holds it now as busy.
    match Lease::load(dir, shard) {
        Some(held) => Ok(Claim::Busy(held)),
        None => Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!("shard {shard} lease contended at {}", path.display()),
        )),
    }
}

// ---------------------------------------------------------------------------
// Chaos harness
// ---------------------------------------------------------------------------

/// Fault injection for the chaos harness (`--chaos <mode>` on the shard
/// drivers): each mode simulates one failure the shard layer must either
/// recover from or loudly detect at merge time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// SIGKILL mid-shard: run half the pending jobs, then `abort()`.
    /// Recovered — the lease goes stale and a survivor resumes the rest.
    Kill,
    /// Kill mid-append: run everything, chop the artifact mid-line, then
    /// `abort()` before committing the anchor. Recovered — resume
    /// tolerates the truncated tail and re-runs that job.
    Truncate,
    /// Bit rot after commit: complete the shard, then flip one byte in
    /// the committed JSONL. Detected — merge names the shard and job.
    FlipByte,
    /// Duplicate claim race gone wrong: complete the shard, then append
    /// a divergent duplicate of an existing result line. Detected —
    /// merge prints both transcripts.
    DuplicateClaim,
    /// Clock-stale lease: claim the shard, run nothing, leave an ancient
    /// heartbeat behind. Detected at merge as an unfinished shard until
    /// a worker reclaims it.
    StaleLease,
}

impl ChaosMode {
    /// Parses the CLI token (`kill`, `truncate`, `flip`, `dup`, `stale`).
    pub fn from_name(name: &str) -> Option<ChaosMode> {
        match name {
            "kill" => Some(ChaosMode::Kill),
            "truncate" => Some(ChaosMode::Truncate),
            "flip" => Some(ChaosMode::FlipByte),
            "dup" => Some(ChaosMode::DuplicateClaim),
            "stale" => Some(ChaosMode::StaleLease),
            _ => None,
        }
    }
}

/// Flips the last ASCII digit in `path` (wrapping `9` to `0`), i.e. a
/// single-byte perturbation of a committed value that keeps the line
/// parseable — the hardest corruption to notice without hashes.
fn flip_last_digit(path: &Path) -> io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    let Some(pos) = bytes.iter().rposition(|b| b.is_ascii_digit()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("no digit to flip in {}", path.display()),
        ));
    };
    bytes[pos] = if bytes[pos] == b'9' {
        b'0'
    } else {
        bytes[pos] + 1
    };
    write_atomic(path, std::str::from_utf8(&bytes).unwrap_or(""))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// The shard worker
// ---------------------------------------------------------------------------

/// Knobs for [`run_fleet_worker`].
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Per-shard campaign options (worker threads, progress). The shard
    /// label is stamped over `label` automatically.
    pub campaign: CampaignOptions,
    /// Heartbeat age after which a lease counts as stale.
    pub stale_after: Duration,
    /// Claim attempts on a busy shard before giving up on it.
    pub claim_retries: u32,
    /// Initial backoff between claim attempts (doubles per retry).
    pub claim_backoff: Duration,
    /// After finishing the assigned shard, sweep the remaining shards and
    /// reclaim any unclaimed or stale-leased incomplete one — the
    /// "survivor retries a killed worker's shard" behaviour.
    pub scavenge: bool,
    /// Fault injection (applied to the assigned shard only).
    pub chaos: Option<ChaosMode>,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            campaign: CampaignOptions::default(),
            stale_after: Duration::from_secs(30),
            claim_retries: 3,
            claim_backoff: Duration::from_millis(200),
            scavenge: false,
            chaos: None,
        }
    }
}

/// What happened to one shard during a worker's sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOutcome {
    /// This worker ran (or resumed) the shard to completion and committed
    /// its anchor. Carries the number of freshly executed jobs.
    Completed(u64),
    /// The shard's anchor was already committed; nothing to do.
    AlreadyDone,
    /// A live worker holds the lease.
    Busy(Lease),
    /// The shard ran but some jobs failed (panicked); no anchor committed.
    Failed(u64),
}

/// One shard's status line in a worker's report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard.
    pub shard: u64,
    /// What happened.
    pub outcome: ShardOutcome,
}

/// Runs one fleet worker: claims and executes shard `shard` of `shards`,
/// then (with [`FleetOptions::scavenge`]) sweeps the other shards for
/// unclaimed or stale-leased work. Returns a status per shard visited.
///
/// Jobs are executed through the ordinary campaign runner, so per-shard
/// artifacts resume across worker generations and results are
/// bit-identical to a single-process run of the same job list.
///
/// # Errors
///
/// Shard-artifact I/O errors. A busy shard is a status, not an error.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_worker<S, I, F>(
    dir: &Path,
    jobs: &[Job],
    manifest: &Manifest,
    shard: u64,
    shards: u64,
    opts: &FleetOptions,
    init: I,
    run_job: F,
) -> io::Result<Vec<ShardStatus>>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &Job) -> JobResult + Sync,
{
    if shards == 0 || shard >= shards {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("shard {shard} out of range for {shards} shards"),
        ));
    }
    std::fs::create_dir_all(dir)?;
    FleetManifest::init(dir, manifest, shards)?;

    let mut statuses = Vec::new();
    let sweep: Vec<u64> = if opts.scavenge {
        (0..shards).map(|i| (shard + i) % shards).collect()
    } else {
        vec![shard]
    };
    for k in sweep {
        let chaos = opts.chaos.filter(|_| k == shard);
        let status = run_one_shard(dir, jobs, manifest, k, shards, opts, chaos, &init, &run_job)?;
        statuses.push(status);
    }
    Ok(statuses)
}

#[allow(clippy::too_many_arguments)]
fn run_one_shard<S, I, F>(
    dir: &Path,
    jobs: &[Job],
    manifest: &Manifest,
    k: u64,
    shards: u64,
    opts: &FleetOptions,
    chaos: Option<ChaosMode>,
    init: &I,
    run_job: &F,
) -> io::Result<ShardStatus>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &Job) -> JobResult + Sync,
{
    let done = |outcome| ShardStatus { shard: k, outcome };
    if chaos.is_none() && anchor_path(dir, k).exists() {
        return Ok(done(ShardOutcome::AlreadyDone));
    }

    // Claim with bounded backoff: a busy shard is retried a few times
    // (its holder may be finishing), then left to them.
    let mut backoff = opts.claim_backoff;
    let mut attempt = 0;
    let guard = loop {
        match try_claim(dir, k, opts.stale_after)? {
            Claim::Claimed(guard) => break guard,
            Claim::Busy(lease) => {
                if attempt >= opts.claim_retries {
                    return Ok(done(ShardOutcome::Busy(lease)));
                }
                attempt += 1;
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }
    };

    if chaos == Some(ChaosMode::StaleLease) {
        // Simulate a claimer whose clock heartbeat never advanced: leave
        // an ancient lease behind and run nothing.
        let ancient = Lease {
            heartbeat_ms: 0,
            ..guard.lease().clone()
        };
        write_atomic(&lease_path(dir, k), &format!("{}\n", ancient.to_json()))?;
        guard.abandon();
        return Ok(done(ShardOutcome::Failed(0)));
    }

    let my_jobs: Vec<Job> = jobs
        .iter()
        .filter(|j| shard_of(j.id, shards) == k)
        .cloned()
        .collect();
    let shard_manifest = Manifest::for_jobs(
        &format!("{}#shard{k}of{shards}", manifest.name),
        manifest.campaign_seed,
        &my_jobs,
    );
    let results_path = shard_results_path(dir, k);
    let mut sink = JsonlSink::open(&results_path, &shard_manifest)?;
    let mut campaign_opts = opts.campaign.clone();
    campaign_opts.label = Some(format!("shard{k}"));

    if chaos == Some(ChaosMode::Kill) {
        // Run half of what's pending, then die like a SIGKILL: no anchor,
        // no lease release, heartbeat stops — survivors reclaim.
        let pending: Vec<Job> = my_jobs
            .iter()
            .filter(|j| !sink.completed().contains_key(&j.id))
            .cloned()
            .collect();
        let half: Vec<Job> = pending.iter().take(pending.len() / 2).cloned().collect();
        run_campaign_scoped(&half, &campaign_opts, &mut sink, init, run_job)?;
        eprintln!("chaos: aborting mid-shard {k} after {} jobs", half.len());
        std::process::abort();
    }

    let report = run_campaign_scoped(&my_jobs, &campaign_opts, &mut sink, init, run_job)?;

    if chaos == Some(ChaosMode::Truncate) {
        // Die mid-append: chop the artifact inside its final line, then
        // abort before the anchor commit.
        drop(sink);
        let len = std::fs::metadata(&results_path)?.len();
        OpenOptions::new()
            .write(true)
            .open(&results_path)?
            .set_len(len.saturating_sub(9))?;
        eprintln!("chaos: aborting shard {k} with a truncated trailing line");
        std::process::abort();
    }

    if sink.completed().len() != my_jobs.len() {
        // Some jobs panicked: leave the shard uncommitted so the merge
        // reports it (and a later worker retries the failures).
        return Ok(done(ShardOutcome::Failed(report.failures.len() as u64)));
    }

    let anchor = ShardAnchor::over(k, sink.completed());
    anchor.write(dir)?;
    drop(sink);

    match chaos {
        Some(ChaosMode::FlipByte) => flip_last_digit(&results_path)?,
        Some(ChaosMode::DuplicateClaim) => {
            // A raced duplicate execution that somehow diverged: append a
            // copy of the first line with one counter bumped. The merge
            // must print both transcripts and refuse.
            let text = read_to_string(&results_path)?;
            let first = text.lines().next().unwrap_or_default();
            let mut result = parse(first)
                .ok()
                .as_ref()
                .and_then(JobResult::from_json)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty shard"))?;
            result.frames += 1;
            let mut f = OpenOptions::new().append(true).open(&results_path)?;
            writeln!(f, "{}", result.to_json())?;
        }
        _ => {}
    }

    Ok(done(ShardOutcome::Completed(
        report.totals.jobs - report.skipped,
    )))
}

// ---------------------------------------------------------------------------
// Verified merge
// ---------------------------------------------------------------------------

/// Why a merge refused.
#[derive(Debug)]
pub enum MergeError {
    /// Filesystem trouble (exit 1).
    Io(io::Error),
    /// The directory belongs to a different campaign or shard count —
    /// a usage error (exit 2).
    Mismatch {
        /// What differed.
        detail: String,
    },
    /// A shard has no committed anchor or is missing results (exit 3
    /// when merge is demanded; workers treat `live` shards as "not yet").
    Incomplete {
        /// The unfinished shard.
        shard: u64,
        /// Missing jobs / lease state.
        detail: String,
        /// `true` if a live worker currently holds the shard's lease.
        live: bool,
    },
    /// A committed transcript failed verification (exit 3).
    Corrupt {
        /// The offending shard.
        shard: u64,
        /// The offending job, when one can be named.
        job_id: Option<u64>,
        /// What the cross-check found.
        detail: String,
    },
}

impl From<io::Error> for MergeError {
    fn from(e: io::Error) -> MergeError {
        MergeError::Io(e)
    }
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Io(e) => write!(f, "merge i/o error: {e}"),
            MergeError::Mismatch { detail } => write!(f, "campaign mismatch: {detail}"),
            MergeError::Incomplete {
                shard,
                detail,
                live,
            } => {
                let state = if *live { "still running" } else { "unfinished" };
                write!(f, "shard {shard} {state}: {detail}")
            }
            MergeError::Corrupt {
                shard,
                job_id,
                detail,
            } => match job_id {
                Some(id) => write!(f, "shard {shard} corrupt at job {id}: {detail}"),
                None => write!(f, "shard {shard} corrupt: {detail}"),
            },
        }
    }
}

impl MergeError {
    /// The shard drivers' exit-code contract: 1 io, 2 usage, 3 integrity.
    pub fn exit_code(&self) -> i32 {
        match self {
            MergeError::Io(_) => 1,
            MergeError::Mismatch { .. } => 2,
            MergeError::Incomplete { .. } | MergeError::Corrupt { .. } => 3,
        }
    }
}

/// What a verified merge produced.
#[derive(Debug, Clone)]
pub struct MergeSummary {
    /// Jobs in the merged artifact.
    pub jobs: u64,
    /// Campaign totals over the merged results.
    pub totals: Totals,
    /// Verified per-shard anchors, in shard order.
    pub shard_anchors: Vec<u64>,
    /// The campaign-level anchor.
    pub campaign_anchor: u64,
    /// Duplicate result lines deduplicated (bit-identical re-executions
    /// from raced or retried claims).
    pub deduplicated: u64,
}

/// `true` once every shard's anchor is committed (cheap merge-readiness
/// probe for workers deciding whether to attempt the final merge).
pub fn merge_ready(dir: &Path, shards: u64) -> bool {
    (0..shards).all(|k| anchor_path(dir, k).exists())
}

fn lease_state(dir: &Path, shard: u64) -> (String, bool) {
    match Lease::load(dir, shard) {
        Some(l) => {
            let age = now_ms().saturating_sub(l.heartbeat_ms);
            if l.is_stale(now_ms()) {
                (
                    format!(
                        "stale lease from pid {} (heartbeat {age}ms ago) — \
                         re-run a worker to reclaim it",
                        l.pid
                    ),
                    false,
                )
            } else {
                (
                    format!("leased by live pid {} (heartbeat {age}ms ago)", l.pid),
                    true,
                )
            }
        }
        None => ("unclaimed".to_string(), false),
    }
}

/// Verifies every shard transcript against its committed anchor and, on
/// success, writes the merged campaign JSONL to `out` plus the
/// campaign-level anchor to `campaign.anchor.json`.
///
/// Verification recomputes every per-job hash and shard chain from the
/// raw artifact bytes, cross-checks duplicate job ids (from raced or
/// retried claims) for bit-identity, and rejects any line that is not
/// the canonical encoding of a job in this campaign. The merged file is
/// byte-identical (sorted by job id) to a single-process campaign run.
///
/// # Errors
///
/// See [`MergeError`]; nothing is written unless every check passes.
pub fn merge_shards(
    dir: &Path,
    jobs: &[Job],
    manifest: &Manifest,
    shards: u64,
    out: &Path,
) -> Result<MergeSummary, MergeError> {
    let fleet = FleetManifest::load(dir).map_err(|e| {
        if e.kind() == io::ErrorKind::NotFound {
            MergeError::Mismatch {
                detail: format!(
                    "{} is not a shard directory (no campaign.json)",
                    dir.display()
                ),
            }
        } else {
            MergeError::Io(e)
        }
    })?;
    let me = FleetManifest {
        manifest: manifest.clone(),
        shards,
    };
    if fleet != me {
        return Err(MergeError::Mismatch {
            detail: format!("directory holds {fleet:?}, merge requested {me:?}"),
        });
    }

    let seeds: BTreeMap<u64, u64> = jobs.iter().map(|j| (j.id, j.seed)).collect();
    let mut merged: BTreeMap<u64, (String, JobResult)> = BTreeMap::new();
    let mut anchors = Vec::with_capacity(shards as usize);
    let mut deduplicated = 0u64;

    for k in 0..shards {
        let incomplete = |detail: String| {
            let (state, live) = lease_state(dir, k);
            MergeError::Incomplete {
                shard: k,
                detail: format!("{detail} ({state})"),
                live,
            }
        };
        let Some(committed) = ShardAnchor::load(dir, k)? else {
            return Err(incomplete("no committed anchor".to_string()));
        };
        let path = shard_results_path(dir, k);
        let text = match read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(MergeError::Corrupt {
                    shard: k,
                    job_id: None,
                    detail: format!("anchor committed but {} is missing", path.display()),
                });
            }
            Err(e) => return Err(MergeError::Io(e)),
        };

        let expected: BTreeSet<u64> = seeds
            .keys()
            .copied()
            .filter(|&id| shard_of(id, shards) == k)
            .collect();
        let mut seen: BTreeMap<u64, (String, JobResult)> = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let result = parse(raw)
                .ok()
                .as_ref()
                .and_then(JobResult::from_json)
                .ok_or_else(|| MergeError::Corrupt {
                    shard: k,
                    job_id: None,
                    detail: format!("unparseable line {lineno} in {}", path.display()),
                })?;
            let id = result.job_id;
            let corrupt = |detail: String| MergeError::Corrupt {
                shard: k,
                job_id: Some(id),
                detail,
            };
            let canonical = result.to_json().to_string();
            if canonical != raw {
                return Err(corrupt(format!(
                    "line {lineno} is not canonical JSON (tampered whitespace or key order)"
                )));
            }
            if !expected.contains(&id) {
                return Err(corrupt(if seeds.contains_key(&id) {
                    format!("job {id} belongs to shard {}", shard_of(id, shards))
                } else {
                    format!("job {id} is not in this campaign")
                }));
            }
            if result.seed != seeds[&id] {
                return Err(corrupt(format!(
                    "recorded seed {:#x} does not match the campaign's {:#x}",
                    result.seed, seeds[&id]
                )));
            }
            let existing: Option<String> = seen.get(&id).map(|(first, _)| first.clone());
            match existing {
                Some(first) if first == raw => deduplicated += 1,
                Some(first) => {
                    let detail = format!(
                        "divergent duplicate transcripts for job {id} — a determinism bug, \
                         not a retry:\n  first:     {first}\n  duplicate: {raw}"
                    );
                    return Err(corrupt(detail));
                }
                None => {
                    seen.insert(id, (raw.to_string(), result));
                }
            }
        }

        if let Some(&missing) = expected.iter().find(|id| !seen.contains_key(id)) {
            let n = expected.iter().filter(|id| !seen.contains_key(id)).count();
            return Err(incomplete(format!(
                "{n} job(s) missing, first is job {missing}"
            )));
        }

        let results: BTreeMap<u64, JobResult> =
            seen.iter().map(|(id, (_, r))| (*id, r.clone())).collect();
        let recomputed = ShardAnchor::over(k, &results);
        if recomputed != committed {
            // Name the first diverging job, or the chain itself.
            let blame = committed
                .entries
                .iter()
                .zip(recomputed.entries.iter())
                .find(|(c, r)| c != r);
            return Err(match blame {
                Some((&(id, want), &(_, got))) => MergeError::Corrupt {
                    shard: k,
                    job_id: Some(id),
                    detail: format!(
                        "transcript hash {got:#018x} does not match the committed \
                         anchor entry {want:#018x}"
                    ),
                },
                None => MergeError::Corrupt {
                    shard: k,
                    job_id: None,
                    detail: format!(
                        "shard anchor {:#018x} does not match the committed {:#018x}",
                        recomputed.anchor, committed.anchor
                    ),
                },
            });
        }
        anchors.push(committed.anchor);
        merged.extend(seen);
    }

    let campaign = campaign_anchor(manifest, &anchors);
    let anchor_file = campaign_anchor_path(dir);
    if anchor_file.exists() {
        let text = read_to_string(&anchor_file)?;
        let stored = parse(&text)
            .ok()
            .as_ref()
            .and_then(|v| v.get("anchor")?.as_u64());
        if let Some(stored) = stored {
            if stored != campaign {
                return Err(MergeError::Corrupt {
                    shard: anchors.len() as u64,
                    job_id: None,
                    detail: format!(
                        "campaign anchor changed since the last merge: \
                         stored {stored:#018x}, recomputed {campaign:#018x}"
                    ),
                });
            }
        }
    }

    let mut text = String::new();
    let mut totals = Totals::default();
    for (line, result) in merged.values() {
        text.push_str(line);
        text.push('\n');
        totals.absorb(result);
    }
    write_atomic(out, &text)?;

    let mut v = Value::obj();
    v.set("anchor", Value::U64(campaign))
        .set("jobs", Value::U64(merged.len() as u64))
        .set(
            "shard_anchors",
            Value::Arr(anchors.iter().map(|&a| Value::U64(a)).collect()),
        );
    write_atomic(&anchor_file, &format!("{v}\n"))?;

    Ok(MergeSummary {
        jobs: merged.len() as u64,
        totals,
        shard_anchors: anchors,
        campaign_anchor: campaign,
        deduplicated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{FaultSpec, ProtocolSpec, WorkloadSpec};

    fn sample_jobs(n: u64) -> Vec<Job> {
        (0..n)
            .map(|id| {
                Job::new(
                    id,
                    7,
                    ProtocolSpec::StandardCan,
                    FaultSpec::None,
                    WorkloadSpec::SingleBroadcast,
                    3,
                    10,
                )
            })
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "majorcan-campaign-shard-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn synthetic(job: &Job) -> JobResult {
        let mut r = JobResult::for_job(job);
        r.frames = job.frames;
        r.bits = job.seed % 1000;
        r.counters.add("ok", job.frames);
        r
    }

    #[test]
    fn shard_of_partitions_every_id_exactly_once() {
        for shards in 1..6u64 {
            for id in 0..50u64 {
                let k = shard_of(id, shards);
                assert!(k < shards);
            }
            let count: usize = (0..shards)
                .map(|k| (0..50u64).filter(|&id| shard_of(id, shards) == k).count())
                .sum();
            assert_eq!(count, 50);
        }
    }

    #[test]
    fn lease_claim_is_exclusive_and_released_on_drop() {
        let dir = tmp_dir("lease");
        let claim = try_claim(&dir, 0, Duration::from_secs(30)).unwrap();
        let Claim::Claimed(guard) = claim else {
            panic!("fresh dir must claim");
        };
        match try_claim(&dir, 0, Duration::from_secs(30)).unwrap() {
            Claim::Busy(l) => assert_eq!(l.pid, std::process::id()),
            Claim::Claimed(_) => panic!("second claim must see busy"),
        }
        drop(guard);
        assert!(!lease_path(&dir, 0).exists(), "drop releases the lease");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lease_is_stolen() {
        let dir = tmp_dir("steal");
        let ancient = Lease {
            shard: 0,
            pid: 999_999,
            heartbeat_ms: 0,
            stale_after_ms: 1,
        };
        write_atomic(&lease_path(&dir, 0), &format!("{}\n", ancient.to_json())).unwrap();
        match try_claim(&dir, 0, Duration::from_secs(30)).unwrap() {
            Claim::Claimed(guard) => {
                assert_eq!(guard.lease().pid, std::process::id());
            }
            Claim::Busy(l) => panic!("stale lease must be stolen, got busy with {l:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lease_reads_as_reclaimable() {
        let dir = tmp_dir("torn");
        std::fs::write(lease_path(&dir, 2), "{\"shard\":2,\"pi").unwrap();
        match try_claim(&dir, 2, Duration::from_secs(30)).unwrap() {
            Claim::Claimed(_) => {}
            Claim::Busy(l) => panic!("torn lease must be reclaimable, got {l:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_refreshes_the_lease() {
        let dir = tmp_dir("beat");
        let stale_after = Duration::from_millis(120);
        let Claim::Claimed(guard) = try_claim(&dir, 0, stale_after).unwrap() else {
            panic!("must claim");
        };
        let first = Lease::load(&dir, 0).unwrap();
        std::thread::sleep(stale_after * 2);
        let later = Lease::load(&dir, 0).unwrap();
        assert!(
            later.heartbeat_ms > first.heartbeat_ms,
            "heartbeat must advance: {first:?} vs {later:?}"
        );
        assert!(!later.is_stale(now_ms()));
        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn anchor_is_order_independent_and_byte_sensitive() {
        let jobs = sample_jobs(6);
        let mut forward = BTreeMap::new();
        for job in &jobs {
            forward.insert(job.id, synthetic(job));
        }
        // BTreeMap iteration is sorted regardless of insertion order, so
        // feed the same results in reverse and compare.
        let mut reverse = BTreeMap::new();
        for job in jobs.iter().rev() {
            reverse.insert(job.id, synthetic(job));
        }
        let a = ShardAnchor::over(0, &forward);
        let b = ShardAnchor::over(0, &reverse);
        assert_eq!(a, b);

        let mut perturbed = forward.clone();
        perturbed.get_mut(&3).unwrap().bits ^= 1;
        let c = ShardAnchor::over(0, &perturbed);
        assert_ne!(a.anchor, c.anchor);
        // Only job 3's entry changed.
        for (&(id, ha), &(_, hc)) in a.entries.iter().zip(c.entries.iter()) {
            assert_eq!(ha == hc, id != 3, "entry {id}");
        }
    }

    #[test]
    fn shard_anchor_file_round_trips() {
        let dir = tmp_dir("anchorfile");
        let jobs = sample_jobs(4);
        let mut results = BTreeMap::new();
        for job in &jobs {
            results.insert(job.id, synthetic(job));
        }
        let anchor = ShardAnchor::over(2, &results);
        anchor.write(&dir).unwrap();
        let back = ShardAnchor::load(&dir, 2).unwrap().unwrap();
        assert_eq!(back, anchor);
        assert_eq!(ShardAnchor::load(&dir, 3).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_anchor_depends_on_every_shard_and_the_manifest() {
        let jobs = sample_jobs(4);
        let manifest = Manifest::for_jobs("t", 7, &jobs);
        let a = campaign_anchor(&manifest, &[1, 2, 3]);
        assert_eq!(a, campaign_anchor(&manifest, &[1, 2, 3]));
        assert_ne!(a, campaign_anchor(&manifest, &[1, 2, 4]));
        assert_ne!(a, campaign_anchor(&manifest, &[2, 1, 3]));
        // A different job list (extra job → different digest) re-anchors.
        let other = Manifest::for_jobs("t", 7, &sample_jobs(5));
        assert_ne!(a, campaign_anchor(&other, &[1, 2, 3]));
    }

    #[test]
    fn chaos_mode_tokens_parse() {
        for (token, mode) in [
            ("kill", ChaosMode::Kill),
            ("truncate", ChaosMode::Truncate),
            ("flip", ChaosMode::FlipByte),
            ("dup", ChaosMode::DuplicateClaim),
            ("stale", ChaosMode::StaleLease),
        ] {
            assert_eq!(ChaosMode::from_name(token), Some(mode));
        }
        assert_eq!(ChaosMode::from_name("nuke"), None);
    }
}
