//! The work-queue runner: fans jobs across a `std::thread` worker pool.
//!
//! Determinism contract: the runner never feeds scheduling information back
//! into a job. Each job's randomness comes entirely from its own recorded
//! seed, each result is an associative counter bag, and the report sorts
//! results by job id — so the artifact of a campaign is identical for any
//! worker count, and a resumed campaign converges on the same final file
//! as an uninterrupted one.

use crate::job::{Job, JobFailure, JobResult, Totals};
use crate::sink::JsonlSink;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Knobs for [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads. `0` means "one per available CPU".
    pub workers: usize,
    /// Emit periodic progress lines on stderr.
    pub progress: bool,
    /// Minimum interval between progress lines.
    pub progress_every: Duration,
    /// Identity stamped into [`JobFailure::origin`] as
    /// `"<label>/worker<i>"` — shard workers set `"shard<k>"`; `None`
    /// falls back to `"pid<p>/worker<i>"` so a failure always names the
    /// process that hit it.
    pub label: Option<String>,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            workers: 0,
            progress: true,
            progress_every: Duration::from_secs(2),
            label: None,
        }
    }
}

impl CampaignOptions {
    /// Quiet options with a fixed worker count (used by tests and benches).
    pub fn quiet(workers: usize) -> CampaignOptions {
        CampaignOptions {
            workers,
            progress: false,
            ..CampaignOptions::default()
        }
    }

    /// The failure-origin prefix for this run (label or `pid<p>`).
    fn origin_prefix(&self) -> String {
        match &self.label {
            Some(label) => label.clone(),
            None => format!("pid{}", std::process::id()),
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Wall-clock accounting for one worker thread (in-memory only; never part
/// of the JSONL artifact, which must not depend on timing).
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Jobs this worker completed (including ones that panicked).
    pub jobs: u64,
    /// Trials summed over its completed jobs.
    pub frames: u64,
    /// Simulated bit times summed over its completed jobs.
    pub bits: u64,
    /// Time spent inside job executions.
    pub busy: Duration,
}

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// Aggregated totals over all results, including resumed ones.
    pub totals: Totals,
    /// Every result (fresh and resumed), sorted by job id.
    pub results: Vec<JobResult>,
    /// Jobs that panicked this run.
    pub failures: Vec<JobFailure>,
    /// Jobs skipped because the sink already held their results.
    pub skipped: u64,
    /// Wall-clock time of this run (excludes previous runs on resume).
    pub elapsed: Duration,
    /// Per-worker accounting, indexed by worker id.
    pub worker_stats: Vec<WorkerStats>,
}

enum Outcome {
    Done(JobResult),
    Panicked(JobFailure),
}

struct Completion {
    worker: usize,
    busy: Duration,
    outcome: Outcome,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct Progress {
    started: Instant,
    last: Instant,
    every: Duration,
    done: u64,
    total: u64,
    bits: u64,
}

impl Progress {
    fn new(total: u64, skipped: u64, every: Duration) -> Progress {
        let now = Instant::now();
        Progress {
            started: now,
            last: now,
            every,
            done: skipped,
            total,
            bits: 0,
        }
    }

    fn on_done(&mut self, result: Option<&JobResult>) {
        self.done += 1;
        if let Some(r) = result {
            self.bits += r.bits;
        }
        let now = Instant::now();
        if now.duration_since(self.last) < self.every && self.done < self.total {
            return;
        }
        self.emit(now);
    }

    fn finish(&mut self) {
        self.emit(Instant::now());
    }

    fn emit(&mut self, now: Instant) {
        self.last = now;
        let secs = now.duration_since(self.started).as_secs_f64().max(1e-9);
        let jobs_per_sec = self.done as f64 / secs;
        let eta = if jobs_per_sec > 0.0 {
            (self.total - self.done) as f64 / jobs_per_sec
        } else {
            f64::INFINITY
        };
        eprintln!(
            "campaign: {}/{} jobs ({:.1}%), {:.1} jobs/s, {:.2e} sim bits/s, ETA {:.0}s",
            self.done,
            self.total,
            100.0 * self.done as f64 / self.total.max(1) as f64,
            jobs_per_sec,
            self.bits as f64 / secs,
            eta
        );
    }
}

/// Runs an ephemeral campaign with no durable artifact: no JSONL file, no
/// manifest, no resume. Library entry points (`measure_imo_rate`-style
/// one-shot measurements) use this; the result is identical to a sink-backed
/// run of the same jobs.
pub fn run_campaign_in_memory<F>(jobs: &[Job], opts: &CampaignOptions, run_job: F) -> CampaignReport
where
    F: Fn(&Job) -> JobResult + Sync,
{
    run_campaign_impl(jobs, opts, None, || (), |(), job| run_job(job))
        .expect("in-memory campaigns cannot fail on I/O")
}

/// Like [`run_campaign_in_memory`], but each worker thread owns a reusable
/// state `S` built by `init` — typically a testbed whose allocations are
/// recycled across every job the worker executes. The determinism contract
/// is unchanged: state reuse must not leak information between jobs (the
/// state is an allocation cache, not a data channel), and after a job
/// panics the worker's state is rebuilt from `init` so a poisoned state
/// can't corrupt later jobs.
pub fn run_campaign_in_memory_scoped<S, I, F>(
    jobs: &[Job],
    opts: &CampaignOptions,
    init: I,
    run_job: F,
) -> CampaignReport
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &Job) -> JobResult + Sync,
{
    run_campaign_impl(jobs, opts, None, init, run_job)
        .expect("in-memory campaigns cannot fail on I/O")
}

/// Like [`run_campaign`], but with per-worker reusable state (see
/// [`run_campaign_in_memory_scoped`]).
///
/// # Errors
///
/// Only sink I/O errors abort a campaign; job panics never do.
pub fn run_campaign_scoped<S, I, F>(
    jobs: &[Job],
    opts: &CampaignOptions,
    sink: &mut JsonlSink,
    init: I,
    run_job: F,
) -> io::Result<CampaignReport>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &Job) -> JobResult + Sync,
{
    run_campaign_impl(jobs, opts, Some(sink), init, run_job)
}

/// Runs `jobs` through `run_job` on a worker pool, streaming results into
/// `sink`.
///
/// Jobs whose ids the sink already holds are skipped (resume). A panicking
/// job is caught, written to the failures artifact with its replay seed,
/// and the campaign continues. The returned report's `results` are sorted
/// by job id and include resumed results, so callers always see the full
/// campaign regardless of where the previous run stopped.
///
/// # Errors
///
/// Only sink I/O errors abort a campaign; job panics never do.
pub fn run_campaign<F>(
    jobs: &[Job],
    opts: &CampaignOptions,
    sink: &mut JsonlSink,
    run_job: F,
) -> io::Result<CampaignReport>
where
    F: Fn(&Job) -> JobResult + Sync,
{
    run_campaign_impl(jobs, opts, Some(sink), || (), |(), job| run_job(job))
}

fn run_campaign_impl<S, I, F>(
    jobs: &[Job],
    opts: &CampaignOptions,
    mut sink: Option<&mut JsonlSink>,
    init: I,
    run_job: F,
) -> io::Result<CampaignReport>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &Job) -> JobResult + Sync,
{
    let started = Instant::now();
    let resumed: Vec<JobResult> = sink
        .as_ref()
        .map(|s| s.completed().values().cloned().collect())
        .unwrap_or_default();
    let pending: Vec<&Job> = jobs
        .iter()
        .filter(|j| {
            sink.as_ref()
                .is_none_or(|s| !s.completed().contains_key(&j.id))
        })
        .collect();
    let skipped = (jobs.len() - pending.len()) as u64;
    let workers = opts.effective_workers().min(pending.len()).max(1);

    let mut worker_stats = vec![WorkerStats::default(); workers];
    let mut failures = Vec::new();
    let mut fresh = Vec::new();
    let mut progress = Progress::new(jobs.len() as u64, skipped, opts.progress_every);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Completion>();
    let origin_prefix = opts.origin_prefix();

    std::thread::scope(|scope| -> io::Result<()> {
        for worker in 0..workers {
            let tx = tx.clone();
            let pending = &pending;
            let next = &next;
            let run_job = &run_job;
            let init = &init;
            let origin_prefix = &origin_prefix;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = pending.get(i) else { break };
                    let t0 = Instant::now();
                    let outcome = match catch_unwind(AssertUnwindSafe(|| run_job(&mut state, job)))
                    {
                        Ok(result) => Outcome::Done(result),
                        Err(payload) => {
                            // The panic may have left the reusable state
                            // mid-mutation; rebuild it before the next job.
                            state = init();
                            Outcome::Panicked(
                                JobFailure::for_job(job, panic_message(payload))
                                    .with_origin(format!("{origin_prefix}/worker{worker}")),
                            )
                        }
                    };
                    let completion = Completion {
                        worker,
                        busy: t0.elapsed(),
                        outcome,
                    };
                    if tx.send(completion).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Collector: the only writer to the sink, so result lines are
        // whole even though jobs finish concurrently.
        for completion in rx {
            let stats = &mut worker_stats[completion.worker];
            stats.jobs += 1;
            stats.busy += completion.busy;
            match completion.outcome {
                Outcome::Done(result) => {
                    stats.frames += result.frames;
                    stats.bits += result.bits;
                    if let Some(sink) = sink.as_mut() {
                        sink.record(&result)?;
                    }
                    if opts.progress {
                        progress.on_done(Some(&result));
                    }
                    fresh.push(result);
                }
                Outcome::Panicked(failure) => {
                    if let Some(sink) = sink.as_mut() {
                        sink.record_failure(&failure)?;
                    }
                    if opts.progress {
                        eprintln!(
                            "campaign: job {} panicked ({}); replay seed {:#x}",
                            failure.job_id, failure.message, failure.seed
                        );
                        progress.on_done(None);
                    }
                    failures.push(failure);
                }
            }
        }
        Ok(())
    })?;

    let mut results = resumed;
    results.extend(fresh);
    results.sort_by_key(|r| r.job_id);
    let mut totals = Totals::default();
    for r in &results {
        totals.absorb(r);
    }
    if opts.progress {
        progress.finish();
    }
    Ok(CampaignReport {
        totals,
        results,
        failures,
        skipped,
        elapsed: started.elapsed(),
        worker_stats,
    })
}
