//! A deliberately small JSON layer for the campaign's durable artifacts.
//!
//! The build environment has no crates.io access, so instead of serde the
//! campaign serialises through this module. It is not a general-purpose
//! JSON library: objects preserve insertion order (output is byte-stable
//! across runs, which the determinism guarantees rely on), numbers are
//! kept in three exact lanes (`u64`, `i64`, `f64`), and the parser accepts
//! exactly what [`Value`]'s `Display` emits plus insignificant whitespace.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (u64 seeds and counters stay exact).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered so serialisation is reproducible.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Appends `key: value` to an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Value) -> &mut Value {
        match self {
            Value::Obj(pairs) => pairs.push((key.to_string(), value)),
            other => panic!("Value::set on non-object {other:?}"),
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object pairs, if the value is an object.
    pub fn pairs(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::U64(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::U64(n as u64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&BTreeMap<String, u64>> for Value {
    fn from(map: &BTreeMap<String, u64>) -> Value {
        Value::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), Value::U64(*v)))
                .collect(),
        )
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::F64(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a trailing `.0` on whole floats, so a
                    // reparse stays in the float lane.
                    write!(f, "{x:?}")
                } else {
                    // JSON has no Inf/NaN; the campaign never emits them,
                    // but degrade to null rather than invalid output.
                    f.write_str("null")
                }
            }
            Value::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a description of the first syntax error, with its byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| e.to_string())
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| e.to_string())
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_result_shapes() {
        let mut v = Value::obj();
        v.set("job_id", Value::U64(u64::MAX))
            .set("ber", Value::F64(3.125e-6))
            .set("name", Value::from("MajorCAN_5 \"quoted\"\n"))
            .set("ok", Value::Bool(true))
            .set("list", Value::Arr(vec![Value::U64(1), Value::I64(-2)]));
        let text = v.to_string();
        let back = parse(&text).expect("round trip parses");
        assert_eq!(v, back);
        // Stability: re-serialising the parse is byte-identical.
        assert_eq!(text, back.to_string());
    }

    #[test]
    fn u64_precision_is_exact() {
        let seed = 0xDEAD_BEEF_F00D_D00Du64;
        let text = Value::U64(seed).to_string();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = Value::F64(2.0).to_string();
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Value::F64(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} extra").is_err());
    }
}
