//! Job and result schemas.
//!
//! A [`Job`] is one independent unit of simulation work: a protocol
//! variant, a fault model, a workload, a bus size and a trial budget, plus
//! a per-job RNG seed derived deterministically from
//! `(campaign seed, job id)` — see [`derive_job_seed`]. Because every job
//! carries its whole random universe in that one seed, results are
//! bit-identical regardless of worker count or scheduling order, and a
//! failed job can be replayed in isolation from its recorded seed.
//!
//! A [`JobResult`] is an associative bag of counters: merging shard
//! results in any grouping or order produces the same totals.

use crate::json::Value;
use majorcan_can::Field;
use std::collections::BTreeMap;
use std::fmt;

/// SplitMix64's output mixing function: a bijective avalanche on `u64`.
fn splitmix_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of job `job_id` within a campaign.
///
/// The derivation is a two-round SplitMix64 mix over the campaign seed and
/// the job id, so neighbouring ids map to statistically independent
/// streams and the mapping never changes with worker count, scheduling, or
/// resume boundaries.
pub fn derive_job_seed(campaign_seed: u64, job_id: u64) -> u64 {
    splitmix_mix(
        campaign_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(splitmix_mix(job_id.wrapping_mul(0xA24B_AED4_963E_E407))),
    )
}

/// Derives a per-trial seed inside a job (same construction, one level
/// down: executors use this to give every trial its own stream).
pub fn derive_trial_seed(job_seed: u64, trial: u64) -> u64 {
    derive_job_seed(job_seed, trial ^ 0x5851_F42D_4C95_7F2D)
}

/// Which protocol a job simulates: a link-layer variant, or one of the
/// FTCS'98 higher-level protocols layered over standard CAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// Standard CAN.
    StandardCan,
    /// MinorCAN (the Primary_error rule).
    MinorCan,
    /// MajorCAN with EOF majority parameter `m`.
    MajorCan {
        /// The paper's `m` (tolerated disturbed views per frame).
        m: usize,
    },
    /// EDCAN over standard CAN (every receiver retransmits).
    EdCan,
    /// RELCAN over standard CAN (CONFIRM frames, timeout recovery).
    RelCan,
    /// TOTCAN over standard CAN (ACCEPT frames define the total order).
    TotCan,
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolSpec::StandardCan => f.write_str("CAN"),
            ProtocolSpec::MinorCan => f.write_str("MinorCAN"),
            ProtocolSpec::MajorCan { m } => write!(f, "MajorCAN_{m}"),
            ProtocolSpec::EdCan => f.write_str("EDCAN"),
            ProtocolSpec::RelCan => f.write_str("RELCAN"),
            ProtocolSpec::TotCan => f.write_str("TOTCAN"),
        }
    }
}

impl ProtocolSpec {
    /// Parses the names this type's `Display` produces. For the link-layer
    /// variants these are exactly the `Variant::name()` strings (`CAN`,
    /// `MinorCAN`, `MajorCAN_<m>`), so experiment code can map a variant to
    /// its spec; the higher-level protocols use their paper names
    /// (`EDCAN`, `RELCAN`, `TOTCAN`).
    pub fn from_name(name: &str) -> Option<ProtocolSpec> {
        match name {
            "CAN" => Some(ProtocolSpec::StandardCan),
            "MinorCAN" => Some(ProtocolSpec::MinorCan),
            "EDCAN" => Some(ProtocolSpec::EdCan),
            "RELCAN" => Some(ProtocolSpec::RelCan),
            "TOTCAN" => Some(ProtocolSpec::TotCan),
            _ => {
                let m = name.strip_prefix("MajorCAN_")?.parse().ok()?;
                Some(ProtocolSpec::MajorCan { m })
            }
        }
    }

    /// `true` for the higher-level protocols (EDCAN/RELCAN/TOTCAN), which
    /// run over a standard-CAN link layer rather than being one.
    pub fn is_hlp(&self) -> bool {
        matches!(
            self,
            ProtocolSpec::EdCan | ProtocolSpec::RelCan | ProtocolSpec::TotCan
        )
    }
}

/// Where a random channel is allowed to strike (mirrors the montecarlo
/// experiment's error domains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainSpec {
    /// Anywhere in the frame.
    FullFrame,
    /// Confined to the EOF bits.
    EofOnly,
}

impl DomainSpec {
    fn from_debug(text: &str) -> Option<DomainSpec> {
        match text {
            "FullFrame" => Some(DomainSpec::FullFrame),
            "EofOnly" => Some(DomainSpec::EofOnly),
            _ => None,
        }
    }
}

/// Splits a derived-`Debug` rendering `Name { k: v, k: v }` (or a bare
/// `Name`) into the variant name and its `(key, value)` fields. Commas
/// nested inside parentheses/braces/brackets do not split fields, so
/// tuple-struct values survive.
fn split_debug(text: &str) -> Option<(&str, Vec<(&str, &str)>)> {
    let text = text.trim();
    let Some(brace) = text.find(" { ") else {
        return Some((text, Vec::new()));
    };
    let name = &text[..brace];
    let body = text[brace + 3..].strip_suffix(" }")?;
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, b) in body.bytes().enumerate() {
        match b {
            b'(' | b'{' | b'[' => depth += 1,
            b')' | b'}' | b']' => depth = depth.checked_sub(1)?,
            b',' if depth == 0 => {
                fields.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    fields.push(&body[start..]);
    let mut pairs = Vec::with_capacity(fields.len());
    for field in fields {
        let field = field.trim();
        let colon = field.find(": ")?;
        pairs.push((&field[..colon], field[colon + 2..].trim()));
    }
    Some((name, pairs))
}

/// Looks up `key` among `split_debug` pairs and parses it with `parse`.
fn debug_field<'a, T>(
    pairs: &[(&str, &'a str)],
    key: &str,
    parse: impl FnOnce(&'a str) -> Option<T>,
) -> Option<T> {
    pairs
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| parse(v))
}

fn field_from_debug(text: &str) -> Option<Field> {
    Field::ALL.into_iter().find(|f| format!("{f:?}") == text)
}

/// The fault model a job runs under.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// A clean bus.
    None,
    /// Independent per-view bit errors at `ber_star` (Eq. 3's product
    /// model), armed after bus integration.
    IndependentBitErrors {
        /// Per-view bit error probability.
        ber_star: f64,
        /// Where flips may land.
        domain: DomainSpec,
    },
    /// Charzinski's two-stage model: global events at `ber`, effective per
    /// node with probability `1/n_nodes`, EOF-confined.
    GlobalEventErrors {
        /// Global per-bit error-event probability.
        ber: f64,
    },
    /// Exactly `errors_per_frame` random tail-region view-flips per trial
    /// (the §5 sweep's adversary).
    RandomTail {
        /// Error budget per frame.
        errors_per_frame: usize,
    },
    /// One deterministic view-flip (the single-error atlas).
    SingleFlip {
        /// Victim node.
        node: usize,
        /// Disturbed field.
        field: Field,
        /// Bit index within the field.
        index: u16,
        /// `true` to hit the stuff bit after `index` instead.
        stuff: bool,
    },
    /// Adversarial schedule search: each trial synthesizes a fresh
    /// disturbance schedule of up to `max_errors` view-flips from the
    /// trial seed and hunts for Agreement/Validity violations. Interpreted
    /// by the `majorcan-falsify` crate's job executor, not by the standard
    /// experiment interpreter.
    AdversarialSearch {
        /// Maximum disturbances per synthesized schedule.
        max_errors: usize,
    },
    /// Periodic full-frame error bursts: `len` disturbed bits every
    /// `period` bits, flipping views at `ber_star` inside a burst — the
    /// clustered EMI shape that walks TEC/REC in sustained traffic.
    /// Interpreted by the `majorcan-traffic` soak executor, not by the
    /// standard experiment interpreter.
    ErrorBursts {
        /// Burst repetition period in bits.
        period: u64,
        /// Burst length in bits.
        len: u64,
        /// Per-view flip probability inside a burst.
        ber_star: f64,
    },
    /// Cost-aware attack search: each trial synthesizes a budgeted
    /// dominant-injection attack schedule from the trial seed, classifies
    /// the outcome (including victim bus-off), and shrinks findings to
    /// their cheapest form. Interpreted by the `majorcan-falsify` crate's
    /// attack-search executor, not by the standard experiment interpreter.
    AttackSearch {
        /// Maximum nominal schedule cost in budget units.
        max_cost: u64,
    },
    /// A sustained bus-off attack on one victim transmitter: the attacker
    /// hammers the victim's view of its CRC delimiter on every
    /// (re)transmission until `budget` injections are spent. Interpreted by
    /// the `majorcan-traffic` soak executor, not by the standard experiment
    /// interpreter.
    BusOffAttack {
        /// The victim transmitter.
        victim: usize,
        /// Total injection budget in cost units.
        budget: u64,
    },
}

impl FaultSpec {
    /// Parses the rendering `format!("{spec:?}")` produces — the encoding
    /// [`Job::to_json`] has always written into manifests and failure
    /// artifacts. This is what makes a [`JobFailure`] line (and a shard's
    /// job slice) replayable without the generating binary's job list.
    pub fn from_debug(text: &str) -> Option<FaultSpec> {
        let (name, f) = split_debug(text)?;
        let p_f64 = |v: &str| v.parse::<f64>().ok();
        let p_u64 = |v: &str| v.parse::<u64>().ok();
        let p_usize = |v: &str| v.parse::<usize>().ok();
        match name {
            "None" => Some(FaultSpec::None),
            "IndependentBitErrors" => Some(FaultSpec::IndependentBitErrors {
                ber_star: debug_field(&f, "ber_star", p_f64)?,
                domain: debug_field(&f, "domain", DomainSpec::from_debug)?,
            }),
            "GlobalEventErrors" => Some(FaultSpec::GlobalEventErrors {
                ber: debug_field(&f, "ber", p_f64)?,
            }),
            "RandomTail" => Some(FaultSpec::RandomTail {
                errors_per_frame: debug_field(&f, "errors_per_frame", p_usize)?,
            }),
            "SingleFlip" => Some(FaultSpec::SingleFlip {
                node: debug_field(&f, "node", p_usize)?,
                field: debug_field(&f, "field", field_from_debug)?,
                index: debug_field(&f, "index", |v| v.parse::<u16>().ok())?,
                stuff: debug_field(&f, "stuff", |v| v.parse::<bool>().ok())?,
            }),
            "AdversarialSearch" => Some(FaultSpec::AdversarialSearch {
                max_errors: debug_field(&f, "max_errors", p_usize)?,
            }),
            "ErrorBursts" => Some(FaultSpec::ErrorBursts {
                period: debug_field(&f, "period", p_u64)?,
                len: debug_field(&f, "len", p_u64)?,
                ber_star: debug_field(&f, "ber_star", p_f64)?,
            }),
            "AttackSearch" => Some(FaultSpec::AttackSearch {
                max_cost: debug_field(&f, "max_cost", p_u64)?,
            }),
            "BusOffAttack" => Some(FaultSpec::BusOffAttack {
                victim: debug_field(&f, "victim", p_usize)?,
                budget: debug_field(&f, "budget", p_u64)?,
            }),
            _ => None,
        }
    }
}

/// The traffic pattern a job drives.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Node 0 broadcasts one reference frame per trial on a fresh bus.
    SingleBroadcast,
    /// Every node runs a periodic source at a joint target `load` for
    /// `horizon` bit times (one trial per job).
    PeriodicLoad {
        /// Joint bus load in `(0, 1]`.
        load: f64,
        /// Simulated bit times per trial.
        horizon: u64,
    },
    /// Streaming mixed periodic/sporadic traffic releasing `frames`
    /// frames at joint target `load`, with `sporadic_permille` ‰ of the
    /// load carried by Poisson senders and the rest by jittered periodic
    /// senders. One sustained run per job, checked online. Interpreted by
    /// the `majorcan-traffic` soak executor, not by the standard
    /// experiment interpreter.
    SustainedTraffic {
        /// Joint bus load in `(0, 1]`.
        load: f64,
        /// Frames to release before draining.
        frames: u64,
        /// Per-mille of senders that are sporadic (0–1000).
        sporadic_permille: u16,
    },
}

impl WorkloadSpec {
    /// Parses the rendering `format!("{spec:?}")` produces (the manifest /
    /// failure-artifact encoding). See [`FaultSpec::from_debug`].
    pub fn from_debug(text: &str) -> Option<WorkloadSpec> {
        let (name, f) = split_debug(text)?;
        match name {
            "SingleBroadcast" => Some(WorkloadSpec::SingleBroadcast),
            "PeriodicLoad" => Some(WorkloadSpec::PeriodicLoad {
                load: debug_field(&f, "load", |v| v.parse().ok())?,
                horizon: debug_field(&f, "horizon", |v| v.parse().ok())?,
            }),
            "SustainedTraffic" => Some(WorkloadSpec::SustainedTraffic {
                load: debug_field(&f, "load", |v| v.parse().ok())?,
                frames: debug_field(&f, "frames", |v| v.parse().ok())?,
                sporadic_permille: debug_field(&f, "sporadic_permille", |v| v.parse().ok())?,
            }),
            _ => None,
        }
    }
}

/// One independent unit of campaign work.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Campaign-unique id; also the resume key.
    pub id: u64,
    /// This job's whole random universe, derived via [`derive_job_seed`].
    pub seed: u64,
    /// Protocol variant under test.
    pub protocol: ProtocolSpec,
    /// Fault model.
    pub fault: FaultSpec,
    /// Traffic pattern.
    pub workload: WorkloadSpec,
    /// Bus size.
    pub n_nodes: usize,
    /// Trials (frames) this job runs.
    pub frames: u64,
}

impl Job {
    /// Builds a job, deriving its seed from `(campaign_seed, id)`.
    pub fn new(
        id: u64,
        campaign_seed: u64,
        protocol: ProtocolSpec,
        fault: FaultSpec,
        workload: WorkloadSpec,
        n_nodes: usize,
        frames: u64,
    ) -> Job {
        Job {
            id,
            seed: derive_job_seed(campaign_seed, id),
            protocol,
            fault,
            workload,
            n_nodes,
            frames,
        }
    }

    /// The job's JSON description (used for the manifest digest and for
    /// human inspection; resume keys on ids, not on this encoding).
    pub fn to_json(&self) -> Value {
        let mut v = Value::obj();
        v.set("id", Value::U64(self.id))
            .set("seed", Value::U64(self.seed))
            .set("protocol", Value::from(self.protocol.to_string()))
            .set("fault", Value::from(format!("{:?}", self.fault)))
            .set("workload", Value::from(format!("{:?}", self.workload)))
            .set("n_nodes", Value::from(self.n_nodes))
            .set("frames", Value::U64(self.frames));
        v
    }

    /// Parses a description written by [`Job::to_json`] back into a full
    /// `Job` — the inverse that makes failure artifacts and shard job
    /// slices self-contained repros. The recorded seed is taken verbatim
    /// (not re-derived), so a parsed job replays the exact random universe
    /// the original ran.
    pub fn from_json(v: &Value) -> Option<Job> {
        Some(Job {
            id: v.get("id")?.as_u64()?,
            seed: v.get("seed")?.as_u64()?,
            protocol: ProtocolSpec::from_name(v.get("protocol")?.as_str()?)?,
            fault: FaultSpec::from_debug(v.get("fault")?.as_str()?)?,
            workload: WorkloadSpec::from_debug(v.get("workload")?.as_str()?)?,
            n_nodes: v.get("n_nodes")?.as_u64()? as usize,
            frames: v.get("frames")?.as_u64()?,
        })
    }
}

/// An associative, commutative bag of named `u64` counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters(BTreeMap<String, u64>);

impl Counters {
    /// An empty bag.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `by` to `key`.
    pub fn add(&mut self, key: &str, by: u64) {
        if by > 0 {
            *self.0.entry(key.to_string()).or_insert(0) += by;
        }
    }

    /// The count under `key` (0 when absent).
    pub fn get(&self, key: &str) -> u64 {
        self.0.get(key).copied().unwrap_or(0)
    }

    /// Sums `other` into `self`. Associative and commutative, so shard
    /// merge order never matters.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.0 {
            *self.0.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterates `(key, count)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.0.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn to_json(&self) -> Value {
        Value::from(&self.0)
    }

    fn from_json(v: &Value) -> Option<Counters> {
        let mut out = BTreeMap::new();
        for (k, v) in v.pairs()? {
            out.insert(k.clone(), v.as_u64()?);
        }
        Some(Counters(out))
    }
}

/// The outcome of one completed job.
///
/// Deliberately **free of timing fields**: the JSONL artifact of a
/// campaign is byte-identical (after sorting by job id) for any worker
/// count. Wall-clock accounting lives in the runner's in-memory
/// [`WorkerStats`](crate::runner::WorkerStats) instead.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The finished job.
    pub job_id: u64,
    /// The job's seed, recorded for replay.
    pub seed: u64,
    /// Trials executed.
    pub frames: u64,
    /// Simulated bit times (drives the runner's bits/sec telemetry).
    pub bits: u64,
    /// Experiment-defined counters.
    pub counters: Counters,
}

impl JobResult {
    /// An empty result for `job`.
    pub fn for_job(job: &Job) -> JobResult {
        JobResult {
            job_id: job.id,
            seed: job.seed,
            frames: 0,
            bits: 0,
            counters: Counters::new(),
        }
    }

    /// One JSONL line.
    pub fn to_json(&self) -> Value {
        let mut v = Value::obj();
        v.set("job_id", Value::U64(self.job_id))
            .set("seed", Value::U64(self.seed))
            .set("frames", Value::U64(self.frames))
            .set("bits", Value::U64(self.bits))
            .set("counters", self.counters.to_json());
        v
    }

    /// Parses a line written by [`JobResult::to_json`].
    pub fn from_json(v: &Value) -> Option<JobResult> {
        Some(JobResult {
            job_id: v.get("job_id")?.as_u64()?,
            seed: v.get("seed")?.as_u64()?,
            frames: v.get("frames")?.as_u64()?,
            bits: v.get("bits")?.as_u64()?,
            counters: Counters::from_json(v.get("counters")?)?,
        })
    }
}

/// A job that panicked: recorded with its replay seed **and its full
/// payload**, never merged into totals.
///
/// The payload matters for schedule-searching campaigns (the
/// `majorcan-falsify` fuzzer): a crashing job must be replayable
/// standalone from the failures artifact alone — protocol, fault model,
/// workload, bus size and trial count included — without consulting the
/// (possibly regenerated) job list that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobFailure {
    /// The failed job.
    pub job_id: u64,
    /// Replay seed.
    pub seed: u64,
    /// The panic payload, if it was a string.
    pub message: String,
    /// Who was executing when the job died: `"<label>/worker<i>"` in fleet
    /// mode (e.g. `"shard3/worker0"`), `"pid<p>/worker<i>"` otherwise.
    /// Empty on artifacts predating fleet execution.
    pub origin: String,
    /// The failed job's full JSON description ([`Job::to_json`]), so the
    /// failure line is a standalone repro.
    pub job: Value,
}

impl JobFailure {
    /// Builds the failure record for `job`, capturing its full payload.
    pub fn for_job(job: &Job, message: String) -> JobFailure {
        JobFailure {
            job_id: job.id,
            seed: job.seed,
            message,
            origin: String::new(),
            job: job.to_json(),
        }
    }

    /// Stamps the worker/shard identity that hit the failure.
    pub fn with_origin(mut self, origin: impl Into<String>) -> JobFailure {
        self.origin = origin.into();
        self
    }

    /// Reconstructs the failed [`Job`] from the embedded payload, if the
    /// line carries one ([`Job::from_json`]).
    pub fn job_repro(&self) -> Option<Job> {
        Job::from_json(&self.job)
    }

    /// One JSONL line for the failures artifact.
    pub fn to_json(&self) -> Value {
        let mut v = Value::obj();
        v.set("job_id", Value::U64(self.job_id))
            .set("seed", Value::U64(self.seed))
            .set("error", Value::from(self.message.as_str()))
            .set("origin", Value::from(self.origin.as_str()))
            .set("job", self.job.clone());
        v
    }

    /// Parses a line written by [`JobFailure::to_json`]. Lines from
    /// artifacts predating the embedded payload (no `"job"` key) or the
    /// origin stamp load with a `Null` payload / empty origin rather than
    /// failing.
    pub fn from_json(v: &Value) -> Option<JobFailure> {
        Some(JobFailure {
            job_id: v.get("job_id")?.as_u64()?,
            seed: v.get("seed")?.as_u64()?,
            message: v.get("error")?.as_str()?.to_string(),
            origin: v
                .get("origin")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            job: v.get("job").cloned().unwrap_or(Value::Null),
        })
    }
}

/// Campaign-wide totals, built by associatively absorbing job results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Totals {
    /// Jobs merged in.
    pub jobs: u64,
    /// Total trials.
    pub frames: u64,
    /// Total simulated bit times.
    pub bits: u64,
    /// Merged counters.
    pub counters: Counters,
}

impl Totals {
    /// Merges one job result in.
    pub fn absorb(&mut self, result: &JobResult) {
        self.jobs += 1;
        self.frames += result.frames;
        self.bits += result.bits;
        self.counters.merge(&result.counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_stable_and_spread_out() {
        // Pinned values: changing the derivation silently would break
        // resume compatibility of existing artifacts.
        assert_eq!(derive_job_seed(0, 0), derive_job_seed(0, 0));
        let a = derive_job_seed(42, 0);
        let b = derive_job_seed(42, 1);
        let c = derive_job_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Neighbouring ids differ in many bits (avalanche sanity).
        assert!((a ^ b).count_ones() > 10, "{a:#x} vs {b:#x}");
    }

    #[test]
    fn counters_merge_is_associative_and_commutative() {
        let mut a = Counters::new();
        a.add("imo", 2);
        a.add("retx", 7);
        let mut b = Counters::new();
        b.add("imo", 1);
        b.add("double", 5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("imo"), 3);
        assert_eq!(ab.get("double"), 5);
        assert_eq!(ab.get("missing"), 0);
    }

    #[test]
    fn protocol_specs_round_trip_including_hlps() {
        for spec in [
            ProtocolSpec::StandardCan,
            ProtocolSpec::MinorCan,
            ProtocolSpec::MajorCan { m: 3 },
            ProtocolSpec::EdCan,
            ProtocolSpec::RelCan,
            ProtocolSpec::TotCan,
        ] {
            assert_eq!(ProtocolSpec::from_name(&spec.to_string()), Some(spec));
        }
        assert!(!ProtocolSpec::StandardCan.is_hlp());
        assert!(ProtocolSpec::EdCan.is_hlp());
        assert_eq!(ProtocolSpec::from_name("FooCAN"), None);
    }

    #[test]
    fn failure_record_is_a_standalone_repro() {
        let job = Job::new(
            4,
            0xFA15,
            ProtocolSpec::MinorCan,
            FaultSpec::AdversarialSearch { max_errors: 4 },
            WorkloadSpec::SingleBroadcast,
            3,
            100,
        );
        let failure = JobFailure::for_job(&job, "boom".to_string());
        let line = failure.to_json().to_string();
        assert!(line.contains("\"protocol\":\"MinorCAN\""), "{line}");
        assert!(line.contains("AdversarialSearch"), "{line}");
        assert!(line.contains("\"frames\":100"), "{line}");
        let back = JobFailure::from_json(&crate::json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, failure);
        assert_eq!(back.job.get("seed").and_then(Value::as_u64), Some(job.seed));
    }

    #[test]
    fn legacy_failure_lines_without_payload_still_parse() {
        let legacy = "{\"job_id\":5,\"seed\":9,\"error\":\"old\"}";
        let back = JobFailure::from_json(&crate::json::parse(legacy).unwrap()).unwrap();
        assert_eq!(back.job_id, 5);
        assert_eq!(back.job, Value::Null);
        assert_eq!(back.origin, "");
    }

    #[test]
    fn failure_origin_round_trips_and_yields_a_replayable_job() {
        let job = Job::new(
            11,
            0xFA15,
            ProtocolSpec::MajorCan { m: 5 },
            FaultSpec::AdversarialSearch { max_errors: 4 },
            WorkloadSpec::SingleBroadcast,
            3,
            50,
        );
        let failure = JobFailure::for_job(&job, "boom".to_string()).with_origin("shard2/worker1");
        let line = failure.to_json().to_string();
        assert!(line.contains("\"origin\":\"shard2/worker1\""), "{line}");
        let back = JobFailure::from_json(&crate::json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, failure);
        // The embedded payload alone reconstructs the exact job — fleet
        // failures replay without the generating manifest.
        assert_eq!(back.job_repro(), Some(job));
    }

    #[test]
    fn every_fault_spec_round_trips_through_debug() {
        let specs = [
            FaultSpec::None,
            FaultSpec::IndependentBitErrors {
                ber_star: 0.02,
                domain: DomainSpec::EofOnly,
            },
            FaultSpec::IndependentBitErrors {
                ber_star: 1e-4,
                domain: DomainSpec::FullFrame,
            },
            FaultSpec::GlobalEventErrors { ber: 0.001 },
            FaultSpec::RandomTail {
                errors_per_frame: 3,
            },
            FaultSpec::SingleFlip {
                node: 2,
                field: Field::AckDelim,
                index: 0,
                stuff: true,
            },
            FaultSpec::AdversarialSearch { max_errors: 8 },
            FaultSpec::ErrorBursts {
                period: 1500,
                len: 30,
                ber_star: 0.5,
            },
            FaultSpec::AttackSearch { max_cost: 16 },
            FaultSpec::BusOffAttack {
                victim: 1,
                budget: 4000,
            },
        ];
        for spec in specs {
            let text = format!("{spec:?}");
            assert_eq!(FaultSpec::from_debug(&text), Some(spec), "{text}");
        }
        assert_eq!(FaultSpec::from_debug("Bogus { x: 1 }"), None);
        assert_eq!(FaultSpec::from_debug("GlobalEventErrors { }"), None);
    }

    #[test]
    fn every_workload_spec_round_trips_through_debug() {
        let specs = [
            WorkloadSpec::SingleBroadcast,
            WorkloadSpec::PeriodicLoad {
                load: 0.35,
                horizon: 200_000,
            },
            WorkloadSpec::SustainedTraffic {
                load: 0.5,
                frames: 1000,
                sporadic_permille: 250,
            },
        ];
        for spec in specs {
            let text = format!("{spec:?}");
            assert_eq!(WorkloadSpec::from_debug(&text), Some(spec), "{text}");
        }
        assert_eq!(WorkloadSpec::from_debug("PeriodicLoad"), None);
    }

    #[test]
    fn job_json_round_trips_for_every_field_variant() {
        for (i, field) in Field::ALL.into_iter().enumerate() {
            let job = Job::new(
                i as u64,
                7,
                ProtocolSpec::MajorCan { m: 3 },
                FaultSpec::SingleFlip {
                    node: 1,
                    field,
                    index: 2,
                    stuff: false,
                },
                WorkloadSpec::SingleBroadcast,
                3,
                10,
            );
            let line = job.to_json().to_string();
            let back = Job::from_json(&crate::json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, job, "{line}");
        }
    }

    #[test]
    fn job_result_json_round_trips() {
        let job = Job::new(
            9,
            0xC0FFEE,
            ProtocolSpec::MajorCan { m: 5 },
            FaultSpec::IndependentBitErrors {
                ber_star: 0.02,
                domain: DomainSpec::EofOnly,
            },
            WorkloadSpec::SingleBroadcast,
            4,
            500,
        );
        let mut result = JobResult::for_job(&job);
        result.frames = 500;
        result.bits = 123_456;
        result.counters.add("imo", 3);
        let line = result.to_json().to_string();
        let back = JobResult::from_json(&crate::json::parse(&line).unwrap()).unwrap();
        assert_eq!(result, back);
    }
}
