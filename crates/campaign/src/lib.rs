//! Parallel deterministic experiment-campaign runner.
//!
//! Monte-Carlo style experiments over the MajorCAN simulator decompose
//! into many independent jobs: run N trials of protocol P under fault
//! model F and count what happened. This crate turns such a job list into
//! a campaign:
//!
//! * **Determinism** — every [`Job`] carries a seed derived from
//!   `(campaign seed, job id)` ([`derive_job_seed`]); counters merge
//!   associatively; the report sorts by job id. The result artifact is
//!   bit-identical for 1, 2 or 8 workers.
//! * **Durability** — results stream into a JSONL file ([`JsonlSink`]),
//!   one flushed line per job, guarded by a [`Manifest`]. Re-running the
//!   same campaign resumes: completed job ids are skipped.
//! * **Robustness** — a panicking job is caught ([`run_campaign`] uses
//!   `catch_unwind`), recorded in a failures artifact with its replay
//!   seed, and the campaign continues.
//! * **Observability** — periodic progress lines (jobs done, jobs/sec,
//!   simulated bits/sec, ETA) and per-worker [`WorkerStats`].
//!
//! The crate knows nothing about how jobs execute: callers hand
//! [`run_campaign`] a `Fn(&Job) -> JobResult` (see `majorcan-bench`'s job
//! interpreter for the canonical one).
//!
//! ```
//! use majorcan_campaign::{
//!     CampaignOptions, Job, JobResult, JsonlSink, Manifest, ProtocolSpec,
//!     FaultSpec, WorkloadSpec, run_campaign,
//! };
//!
//! let jobs: Vec<Job> = (0..4)
//!     .map(|id| Job::new(
//!         id, 42, ProtocolSpec::StandardCan, FaultSpec::None,
//!         WorkloadSpec::SingleBroadcast, 3, 10,
//!     ))
//!     .collect();
//! let dir = std::env::temp_dir().join("majorcan-campaign-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let out = dir.join("results.jsonl");
//! let _ = std::fs::remove_file(&out);
//! let _ = std::fs::remove_file(dir.join("results.jsonl.manifest.json"));
//! let manifest = Manifest::for_jobs("doc", 42, &jobs);
//! let mut sink = JsonlSink::open(&out, &manifest).unwrap();
//! let report = run_campaign(&jobs, &CampaignOptions::quiet(2), &mut sink, |job| {
//!     let mut r = JobResult::for_job(job);
//!     r.frames = job.frames;
//!     r.counters.add("ok", job.frames);
//!     r
//! })
//! .unwrap();
//! assert_eq!(report.totals.jobs, 4);
//! assert_eq!(report.totals.counters.get("ok"), 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod job;
mod runner;
pub mod shard;
mod sink;

pub use job::{
    derive_job_seed, derive_trial_seed, Counters, DomainSpec, FaultSpec, Job, JobFailure,
    JobResult, ProtocolSpec, Totals, WorkloadSpec,
};
pub use runner::{
    run_campaign, run_campaign_in_memory, run_campaign_in_memory_scoped, run_campaign_scoped,
    CampaignOptions, CampaignReport, WorkerStats,
};
pub use shard::{
    campaign_anchor, merge_ready, merge_shards, run_fleet_worker, shard_of, ChaosMode,
    FleetManifest, FleetOptions, MergeError, MergeSummary, ShardAnchor, ShardOutcome, ShardStatus,
};
pub use sink::{JsonlSink, Manifest};
