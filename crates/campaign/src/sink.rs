//! Durable campaign artifacts: the JSONL result sink, the failures file
//! and the manifest that makes checkpoint/resume safe.
//!
//! Layout for `--out results.jsonl`:
//!
//! * `results.jsonl` — one [`JobResult`] JSON object per line, appended
//!   and flushed as jobs complete (completion order, **not** id order —
//!   sort by `job_id` to compare runs);
//! * `results.jsonl.manifest.json` — the campaign's identity: name,
//!   campaign seed, job count and a digest of the full job list. A resume
//!   against a mismatched manifest is refused instead of silently mixing
//!   incompatible result sets;
//! * `results.jsonl.failures.jsonl` — one [`JobFailure`] per panicked
//!   job, carrying the replay seed. Failed jobs are *not* treated as
//!   completed: a resumed campaign retries them.
//!
//! A process killed mid-write leaves at most one truncated trailing line;
//! the loader ignores it (and any other unparseable line) and the job is
//! simply re-run on resume.

use crate::job::{Job, JobFailure, JobResult};
use crate::json::{parse, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Identity of a campaign, stored next to its results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Human-readable campaign name.
    pub name: String,
    /// The seed every job seed was derived from.
    pub campaign_seed: u64,
    /// Total number of jobs in the campaign.
    pub jobs: u64,
    /// FNV-1a digest of every job's JSON description, order-sensitive.
    pub digest: u64,
}

/// FNV-1a offset basis (shared by the manifest digest and the shard
/// anchor chain).
pub(crate) const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

pub(crate) fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
}

impl Manifest {
    /// Builds the manifest describing `jobs`.
    pub fn for_jobs(name: &str, campaign_seed: u64, jobs: &[Job]) -> Manifest {
        let mut digest = FNV_OFFSET;
        for job in jobs {
            fnv1a(&mut digest, job.to_json().to_string().as_bytes());
            fnv1a(&mut digest, b"\n");
        }
        Manifest {
            name: name.to_string(),
            campaign_seed,
            jobs: jobs.len() as u64,
            digest,
        }
    }

    pub(crate) fn to_json(&self) -> Value {
        let mut v = Value::obj();
        v.set("name", Value::from(self.name.as_str()))
            .set("campaign_seed", Value::U64(self.campaign_seed))
            .set("jobs", Value::U64(self.jobs))
            .set("digest", Value::U64(self.digest));
        v
    }

    pub(crate) fn from_json(v: &Value) -> Option<Manifest> {
        Some(Manifest {
            name: v.get("name")?.as_str()?.to_string(),
            campaign_seed: v.get("campaign_seed")?.as_u64()?,
            jobs: v.get("jobs")?.as_u64()?,
            digest: v.get("digest")?.as_u64()?,
        })
    }
}

/// Append-only JSONL sink with resume support.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
    failures_path: PathBuf,
    failures: Option<BufWriter<File>>,
    completed: BTreeMap<u64, JobResult>,
}

pub(crate) fn side_path(results: &Path, suffix: &str) -> PathBuf {
    let mut name = results
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "results.jsonl".to_string());
    name.push_str(suffix);
    results.with_file_name(name)
}

impl JsonlSink {
    /// Opens (or resumes) the sink at `path` for the campaign described by
    /// `manifest`.
    ///
    /// * First run: writes the manifest, starts an empty results file.
    /// * Resume: verifies the stored manifest matches and loads every
    ///   parseable result line so the runner can skip those job ids.
    ///
    /// # Errors
    ///
    /// I/O errors, a corrupt stored manifest, or a manifest mismatch
    /// (different name, seed, job count or job-list digest).
    pub fn open(path: &Path, manifest: &Manifest) -> io::Result<JsonlSink> {
        let manifest_path = side_path(path, ".manifest.json");
        if manifest_path.exists() {
            let mut text = String::new();
            File::open(&manifest_path)?.read_to_string(&mut text)?;
            let stored = parse(&text)
                .ok()
                .as_ref()
                .and_then(Manifest::from_json)
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt campaign manifest {}", manifest_path.display()),
                    )
                })?;
            if stored != *manifest {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "campaign manifest mismatch at {}: stored {stored:?}, \
                         requested {manifest:?}; refusing to resume a different campaign",
                        manifest_path.display()
                    ),
                ));
            }
        } else {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)?;
            }
            // Write-to-temp + rename: a kill mid-write must never leave a
            // half-written manifest that wedges every later resume.
            let tmp = side_path(path, &format!(".manifest.json.tmp{}", std::process::id()));
            {
                let mut f = File::create(&tmp)?;
                writeln!(f, "{}", manifest.to_json())?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, &manifest_path)?;
        }

        let mut completed = BTreeMap::new();
        if path.exists() {
            let mut text = String::new();
            File::open(path)?.read_to_string(&mut text)?;
            // A process killed mid-append leaves at most one truncated
            // trailing line; tolerate it (log + chop, so the artifact stays
            // clean JSONL) and re-run its job. An unparseable line in the
            // *interior* is corruption, not a kill artifact — fail loudly
            // instead of silently absorbing it into the numbers.
            let mut offset = 0usize;
            let mut valid_len = 0usize;
            let mut bad: Option<(usize, usize)> = None; // (line number, byte offset)
            for (idx, seg) in text.split_inclusive('\n').enumerate() {
                let start = offset;
                offset += seg.len();
                let line = seg.trim_end_matches(['\n', '\r']);
                if line.is_empty() {
                    valid_len = offset;
                    continue;
                }
                match parse(line).ok().as_ref().and_then(JobResult::from_json) {
                    Some(result) => {
                        if let Some((bad_line, _)) = bad {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "corrupt interior line {} in {} (parseable results follow \
                                     it); refusing to resume over a damaged artifact",
                                    bad_line,
                                    path.display()
                                ),
                            ));
                        }
                        completed.insert(result.job_id, result);
                        valid_len = offset;
                    }
                    None => bad = Some((idx + 1, start)),
                }
            }
            if let Some((bad_line, bad_offset)) = bad {
                eprintln!(
                    "campaign: tolerating truncated trailing line {} in {} \
                     (mid-write kill); its job will be re-run",
                    bad_line,
                    path.display()
                );
                debug_assert!(bad_offset >= valid_len || valid_len == 0);
                OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(bad_offset as u64)?;
            }
        }

        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            writer: BufWriter::new(file),
            failures_path: side_path(path, ".failures.jsonl"),
            failures: None,
            completed,
        })
    }

    /// Results already present in the file (resume state).
    pub fn completed(&self) -> &BTreeMap<u64, JobResult> {
        &self.completed
    }

    /// Appends one result line and flushes it to the OS, so a kill loses
    /// at most the line being written. The result also joins
    /// [`completed`](JsonlSink::completed).
    pub fn record(&mut self, result: &JobResult) -> io::Result<()> {
        writeln!(self.writer, "{}", result.to_json())?;
        self.writer.flush()?;
        self.completed.insert(result.job_id, result.clone());
        Ok(())
    }

    /// Appends one failure line to the failures artifact (created lazily,
    /// so clean campaigns leave no failures file).
    pub fn record_failure(&mut self, failure: &JobFailure) -> io::Result<()> {
        if self.failures.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.failures_path)?;
            self.failures = Some(BufWriter::new(file));
        }
        let w = self.failures.as_mut().expect("just created");
        writeln!(w, "{}", failure.to_json())?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{FaultSpec, ProtocolSpec, WorkloadSpec};

    fn sample_jobs(n: u64) -> Vec<Job> {
        (0..n)
            .map(|id| {
                Job::new(
                    id,
                    7,
                    ProtocolSpec::StandardCan,
                    FaultSpec::None,
                    WorkloadSpec::SingleBroadcast,
                    3,
                    10,
                )
            })
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "majorcan-campaign-sink-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn resume_reloads_completed_and_ignores_truncated_tail() {
        let dir = tmp_dir("resume");
        let path = dir.join("results.jsonl");
        let jobs = sample_jobs(3);
        let manifest = Manifest::for_jobs("t", 7, &jobs);
        {
            let mut sink = JsonlSink::open(&path, &manifest).unwrap();
            let mut r = JobResult::for_job(&jobs[0]);
            r.frames = 10;
            sink.record(&r).unwrap();
        }
        // Simulate a kill mid-write: a truncated trailing line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"job_id\":1,\"seed\":2,\"fra").unwrap();
        }
        let sink = JsonlSink::open(&path, &manifest).unwrap();
        assert_eq!(sink.completed().len(), 1);
        assert!(sink.completed().contains_key(&0));
        // The truncated tail is physically removed, so the artifact is
        // clean JSONL again (merge/anchor tooling hashes raw lines).
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            !text.contains("\"seed\":2,"),
            "truncated tail must be chopped on resume: {text:?}"
        );
        assert!(text.ends_with('\n') || text.is_empty(), "{text:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_corruption_is_refused_not_absorbed() {
        let dir = tmp_dir("interior");
        let path = dir.join("results.jsonl");
        let jobs = sample_jobs(3);
        let manifest = Manifest::for_jobs("t", 7, &jobs);
        {
            let mut sink = JsonlSink::open(&path, &manifest).unwrap();
            let mut r = JobResult::for_job(&jobs[0]);
            r.frames = 10;
            sink.record(&r).unwrap();
            let mut r1 = JobResult::for_job(&jobs[1]);
            r1.frames = 10;
            sink.record(&r1).unwrap();
        }
        // Corrupt the FIRST line (not the tail): that is damage, not a
        // mid-write kill, and resume must refuse rather than silently
        // re-run job 0 over a poisoned artifact.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[0] = "{\"job_id\":0,\"seed";
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let err = JsonlSink::open(&path, &manifest).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("interior"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_write_is_atomic_no_temp_left_behind() {
        let dir = tmp_dir("atomic");
        let path = dir.join("results.jsonl");
        let jobs = sample_jobs(2);
        let manifest = Manifest::for_jobs("t", 7, &jobs);
        JsonlSink::open(&path, &manifest).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        assert!(path.with_file_name("results.jsonl.manifest.json").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_manifest_is_refused() {
        let dir = tmp_dir("mismatch");
        let path = dir.join("results.jsonl");
        let jobs = sample_jobs(3);
        JsonlSink::open(&path, &Manifest::for_jobs("t", 7, &jobs)).unwrap();
        let other = Manifest::for_jobs("t", 8, &sample_jobs(3));
        let err = JsonlSink::open(&path, &other).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
