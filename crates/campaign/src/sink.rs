//! Durable campaign artifacts: the JSONL result sink, the failures file
//! and the manifest that makes checkpoint/resume safe.
//!
//! Layout for `--out results.jsonl`:
//!
//! * `results.jsonl` — one [`JobResult`] JSON object per line, appended
//!   and flushed as jobs complete (completion order, **not** id order —
//!   sort by `job_id` to compare runs);
//! * `results.jsonl.manifest.json` — the campaign's identity: name,
//!   campaign seed, job count and a digest of the full job list. A resume
//!   against a mismatched manifest is refused instead of silently mixing
//!   incompatible result sets;
//! * `results.jsonl.failures.jsonl` — one [`JobFailure`] per panicked
//!   job, carrying the replay seed. Failed jobs are *not* treated as
//!   completed: a resumed campaign retries them.
//!
//! A process killed mid-write leaves at most one truncated trailing line;
//! the loader ignores it (and any other unparseable line) and the job is
//! simply re-run on resume.

use crate::job::{Job, JobFailure, JobResult};
use crate::json::{parse, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Identity of a campaign, stored next to its results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Human-readable campaign name.
    pub name: String,
    /// The seed every job seed was derived from.
    pub campaign_seed: u64,
    /// Total number of jobs in the campaign.
    pub jobs: u64,
    /// FNV-1a digest of every job's JSON description, order-sensitive.
    pub digest: u64,
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
}

impl Manifest {
    /// Builds the manifest describing `jobs`.
    pub fn for_jobs(name: &str, campaign_seed: u64, jobs: &[Job]) -> Manifest {
        let mut digest = 0xCBF2_9CE4_8422_2325u64;
        for job in jobs {
            fnv1a(&mut digest, job.to_json().to_string().as_bytes());
            fnv1a(&mut digest, b"\n");
        }
        Manifest {
            name: name.to_string(),
            campaign_seed,
            jobs: jobs.len() as u64,
            digest,
        }
    }

    fn to_json(&self) -> Value {
        let mut v = Value::obj();
        v.set("name", Value::from(self.name.as_str()))
            .set("campaign_seed", Value::U64(self.campaign_seed))
            .set("jobs", Value::U64(self.jobs))
            .set("digest", Value::U64(self.digest));
        v
    }

    fn from_json(v: &Value) -> Option<Manifest> {
        Some(Manifest {
            name: v.get("name")?.as_str()?.to_string(),
            campaign_seed: v.get("campaign_seed")?.as_u64()?,
            jobs: v.get("jobs")?.as_u64()?,
            digest: v.get("digest")?.as_u64()?,
        })
    }
}

/// Append-only JSONL sink with resume support.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
    failures_path: PathBuf,
    failures: Option<BufWriter<File>>,
    completed: BTreeMap<u64, JobResult>,
}

fn side_path(results: &Path, suffix: &str) -> PathBuf {
    let mut name = results
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "results.jsonl".to_string());
    name.push_str(suffix);
    results.with_file_name(name)
}

impl JsonlSink {
    /// Opens (or resumes) the sink at `path` for the campaign described by
    /// `manifest`.
    ///
    /// * First run: writes the manifest, starts an empty results file.
    /// * Resume: verifies the stored manifest matches and loads every
    ///   parseable result line so the runner can skip those job ids.
    ///
    /// # Errors
    ///
    /// I/O errors, a corrupt stored manifest, or a manifest mismatch
    /// (different name, seed, job count or job-list digest).
    pub fn open(path: &Path, manifest: &Manifest) -> io::Result<JsonlSink> {
        let manifest_path = side_path(path, ".manifest.json");
        if manifest_path.exists() {
            let mut text = String::new();
            File::open(&manifest_path)?.read_to_string(&mut text)?;
            let stored = parse(&text)
                .ok()
                .as_ref()
                .and_then(Manifest::from_json)
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt campaign manifest {}", manifest_path.display()),
                    )
                })?;
            if stored != *manifest {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "campaign manifest mismatch at {}: stored {stored:?}, \
                         requested {manifest:?}; refusing to resume a different campaign",
                        manifest_path.display()
                    ),
                ));
            }
        } else {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)?;
            }
            let mut f = File::create(&manifest_path)?;
            writeln!(f, "{}", manifest.to_json())?;
        }

        let mut completed = BTreeMap::new();
        if path.exists() {
            let mut text = String::new();
            File::open(path)?.read_to_string(&mut text)?;
            for line in text.lines() {
                if let Some(result) = parse(line).ok().as_ref().and_then(JobResult::from_json) {
                    completed.insert(result.job_id, result);
                }
            }
        }

        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            writer: BufWriter::new(file),
            failures_path: side_path(path, ".failures.jsonl"),
            failures: None,
            completed,
        })
    }

    /// Results already present in the file (resume state).
    pub fn completed(&self) -> &BTreeMap<u64, JobResult> {
        &self.completed
    }

    /// Appends one result line and flushes it to the OS, so a kill loses
    /// at most the line being written. The result also joins
    /// [`completed`](JsonlSink::completed).
    pub fn record(&mut self, result: &JobResult) -> io::Result<()> {
        writeln!(self.writer, "{}", result.to_json())?;
        self.writer.flush()?;
        self.completed.insert(result.job_id, result.clone());
        Ok(())
    }

    /// Appends one failure line to the failures artifact (created lazily,
    /// so clean campaigns leave no failures file).
    pub fn record_failure(&mut self, failure: &JobFailure) -> io::Result<()> {
        if self.failures.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.failures_path)?;
            self.failures = Some(BufWriter::new(file));
        }
        let w = self.failures.as_mut().expect("just created");
        writeln!(w, "{}", failure.to_json())?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{FaultSpec, ProtocolSpec, WorkloadSpec};

    fn sample_jobs(n: u64) -> Vec<Job> {
        (0..n)
            .map(|id| {
                Job::new(
                    id,
                    7,
                    ProtocolSpec::StandardCan,
                    FaultSpec::None,
                    WorkloadSpec::SingleBroadcast,
                    3,
                    10,
                )
            })
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "majorcan-campaign-sink-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn resume_reloads_completed_and_ignores_truncated_tail() {
        let dir = tmp_dir("resume");
        let path = dir.join("results.jsonl");
        let jobs = sample_jobs(3);
        let manifest = Manifest::for_jobs("t", 7, &jobs);
        {
            let mut sink = JsonlSink::open(&path, &manifest).unwrap();
            let mut r = JobResult::for_job(&jobs[0]);
            r.frames = 10;
            sink.record(&r).unwrap();
        }
        // Simulate a kill mid-write: a truncated trailing line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"job_id\":1,\"seed\":2,\"fra").unwrap();
        }
        let sink = JsonlSink::open(&path, &manifest).unwrap();
        assert_eq!(sink.completed().len(), 1);
        assert!(sink.completed().contains_key(&0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_manifest_is_refused() {
        let dir = tmp_dir("mismatch");
        let path = dir.join("results.jsonl");
        let jobs = sample_jobs(3);
        JsonlSink::open(&path, &Manifest::for_jobs("t", 7, &jobs)).unwrap();
        let other = Manifest::for_jobs("t", 8, &sample_jobs(3));
        let err = JsonlSink::open(&path, &other).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
