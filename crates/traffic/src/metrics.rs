//! Constant-memory measurement of a sustained run: latency/jitter
//! histograms and error-regime residency, all integer-valued so campaign
//! artifacts stay bit-identical across worker counts and platforms.

use majorcan_abcast::{msg_id_of, MsgId};
use majorcan_can::CanEvent;
use majorcan_sim::TimedEvent;
use std::collections::BTreeMap;

/// Buckets: exact below 16, then 16 log-linear sub-buckets per octave
/// (≈6 % relative resolution) up to `2^63`.
const EXACT: usize = 16;
const SUBS: usize = 16;
const N_BUCKETS: usize = EXACT + (64 - 4) * SUBS;

/// A fixed-size log-linear histogram of `u64` samples.
///
/// Quantiles are reported as the upper bound of the covering bucket, so
/// they are deterministic integers; the mean is exact (sums in `u128`).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < EXACT as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (octave - 4)) & 0xF) as usize;
    EXACT + (octave - 4) * SUBS + sub
}

fn upper_bound(bucket: usize) -> u64 {
    if bucket < EXACT {
        return bucket as u64;
    }
    let octave = 4 + (bucket - EXACT) / SUBS;
    let sub = ((bucket - EXACT) % SUBS) as u64;
    let width = 1u64 << (octave - 4);
    (1u64 << octave) + (sub + 1) * width - 1
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; N_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean scaled by 1000 (integer, deterministic).
    pub fn mean_milli(&self) -> u64 {
        if self.total == 0 {
            return 0;
        }
        (self.sum * 1000 / self.total as u128) as u64
    }

    /// The `p`-per-mille quantile (`500` = median, `990` = p99), as the
    /// upper bound of the covering bucket.
    pub fn quantile_permille(&self, p: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (self.total * p).div_ceil(1000).max(1);
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// Streams per-message latency out of the raw event log.
///
/// Release times are held in a window-pruned map (the same O(live
/// messages) bound as the checker); deliveries landing after their
/// release record was pruned are counted in [`unmatched`] rather than
/// silently mis-measured.
///
/// [`unmatched`]: LatencyTracker::unmatched
#[derive(Debug, Clone)]
pub struct LatencyTracker {
    window: u64,
    pending: BTreeMap<MsgId, u64>,
    next_sweep: u64,
    peak_pending: usize,
    unmatched: u64,
    /// Release → `Delivered` at each receiver.
    pub delivery: Histogram,
    /// Release → `TxSucceeded` at the transmitter (commit latency,
    /// including queueing, arbitration losses and retransmissions).
    pub commit: Histogram,
}

impl LatencyTracker {
    /// A tracker pruning release records `2·window` bits after release.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> LatencyTracker {
        assert!(window > 0, "window must be positive");
        LatencyTracker {
            window,
            pending: BTreeMap::new(),
            next_sweep: window,
            peak_pending: 0,
            unmatched: 0,
            delivery: Histogram::new(),
            commit: Histogram::new(),
        }
    }

    /// Notes a frame release (call once per queued frame).
    pub fn note_release(&mut self, at: u64, msg: MsgId) {
        self.pending.insert(msg, at);
        self.peak_pending = self.peak_pending.max(self.pending.len());
    }

    /// Feeds one controller event.
    pub fn observe(&mut self, e: &TimedEvent<CanEvent>) {
        match &e.event {
            CanEvent::Delivered { frame, .. } => match self.pending.get(&msg_id_of(frame)) {
                Some(&rel) => self.delivery.record(e.at.saturating_sub(rel)),
                None => self.unmatched += 1,
            },
            CanEvent::TxSucceeded { frame, .. } => match self.pending.get(&msg_id_of(frame)) {
                Some(&rel) => self.commit.record(e.at.saturating_sub(rel)),
                None => self.unmatched += 1,
            },
            _ => {}
        }
        if e.at >= self.next_sweep {
            let horizon = e.at.saturating_sub(2 * self.window);
            self.pending.retain(|_, &mut rel| rel >= horizon);
            self.next_sweep = e.at + (self.window / 4).max(1);
        }
    }

    /// Deliveries whose release record was already pruned (0 when the
    /// window covers every message lifetime).
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// High-water mark of tracked in-flight messages.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }
}

/// A node's fault-confinement regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    Active,
    Passive,
    BusOff,
    Crashed,
}

/// Bits spent per error regime plus transition counts, summed over nodes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Residency {
    /// Bits of error-active residency.
    pub active_bits: u64,
    /// Bits of error-passive residency.
    pub passive_bits: u64,
    /// Bits of bus-off residency.
    pub busoff_bits: u64,
    /// `ErrorWarning` events (TEC/REC reached 96).
    pub warnings: u64,
    /// Entries into the error-passive state.
    pub passive_entries: u64,
    /// Bus-off events.
    pub bus_offs: u64,
    /// Crashes (injected or warning-shutoff).
    pub crashes: u64,
}

/// Accumulates [`Residency`] from the event stream.
#[derive(Debug, Clone)]
pub struct ResidencyTracker {
    nodes: Vec<(Regime, u64)>,
    totals: Residency,
}

impl ResidencyTracker {
    /// All nodes start error-active at bit 0.
    pub fn new(n_nodes: usize) -> ResidencyTracker {
        ResidencyTracker {
            nodes: vec![(Regime::Active, 0); n_nodes],
            totals: Residency::default(),
        }
    }

    fn transition(&mut self, node: usize, at: u64, to: Regime) {
        let (regime, since) = self.nodes[node];
        let span = at.saturating_sub(since);
        match regime {
            Regime::Active => self.totals.active_bits += span,
            Regime::Passive => self.totals.passive_bits += span,
            Regime::BusOff => self.totals.busoff_bits += span,
            Regime::Crashed => return, // crashed nodes are off the books
        }
        self.nodes[node] = (to, at);
    }

    /// Feeds one controller event.
    pub fn observe(&mut self, e: &TimedEvent<CanEvent>) {
        let node = e.node.index();
        match e.event {
            CanEvent::ErrorWarning => self.totals.warnings += 1,
            CanEvent::EnteredErrorPassive => {
                self.totals.passive_entries += 1;
                self.transition(node, e.at, Regime::Passive);
            }
            CanEvent::ReturnedErrorActive => self.transition(node, e.at, Regime::Active),
            CanEvent::WentBusOff => {
                self.totals.bus_offs += 1;
                self.transition(node, e.at, Regime::BusOff);
            }
            CanEvent::Crashed => {
                self.totals.crashes += 1;
                self.transition(node, e.at, Regime::Crashed);
            }
            _ => {}
        }
    }

    /// Closes every open span at `end` and returns the totals.
    pub fn finish(mut self, end: u64) -> Residency {
        for node in 0..self.nodes.len() {
            self.transition(node, end, Regime::Crashed);
        }
        self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majorcan_can::{DecisionBasis, Frame, FrameId};
    use majorcan_sim::NodeId;

    #[test]
    fn histogram_buckets_cover_and_order() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 15, 16, 100, 1_000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert!(h.quantile_permille(500) >= 15);
        assert!(h.quantile_permille(500) <= 16);
        assert_eq!(h.quantile_permille(1000), 1_000_000);
        // Bucket upper bounds are within ~6.25 % of the sample.
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let q = h.quantile_permille(900);
        assert!((1_000..1_070).contains(&q), "p90={q}");
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(31);
        assert_eq!(h.mean_milli(), 20_333);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 12345, u64::MAX >> 1]) {
            let b = bucket_of(v);
            assert!(upper_bound(b) >= v, "v={v} bucket={b}");
            if b > 0 {
                assert!(upper_bound(b - 1) < v || b < EXACT, "v={v} bucket={b}");
            }
        }
    }

    #[test]
    fn latency_tracker_measures_and_prunes() {
        let f = Frame::new(FrameId::new(0x123).unwrap(), &[1, 2]).unwrap();
        let mut t = LatencyTracker::new(1_000);
        t.note_release(100, msg_id_of(&f));
        t.observe(&TimedEvent {
            at: 350,
            node: NodeId(1),
            event: CanEvent::Delivered {
                frame: f.clone(),
                basis: DecisionBasis::CleanEof,
            },
        });
        assert_eq!(t.delivery.total(), 1);
        assert_eq!(t.delivery.max(), 250);
        // Long after 2·window the record is pruned; a late delivery is
        // counted as unmatched, not mis-measured.
        t.observe(&TimedEvent {
            at: 10_000,
            node: NodeId(2),
            event: CanEvent::Delivered {
                frame: f.clone(),
                basis: DecisionBasis::CleanEof,
            },
        });
        t.observe(&TimedEvent {
            at: 10_001,
            node: NodeId(2),
            event: CanEvent::Delivered {
                frame: f,
                basis: DecisionBasis::CleanEof,
            },
        });
        assert_eq!(t.unmatched(), 1, "first late event sweeps, second misses");
    }

    #[test]
    fn residency_splits_regimes_at_transitions() {
        let mut r = ResidencyTracker::new(2);
        let ev = |at, node, event| TimedEvent {
            at,
            node: NodeId(node),
            event,
        };
        r.observe(&ev(100, 0, CanEvent::ErrorWarning));
        r.observe(&ev(100, 0, CanEvent::EnteredErrorPassive));
        r.observe(&ev(400, 0, CanEvent::ReturnedErrorActive));
        r.observe(&ev(600, 1, CanEvent::WentBusOff));
        let totals = r.finish(1_000);
        // Node 0: active [0,100)+[400,1000), passive [100,400).
        // Node 1: active [0,600), bus-off [600,1000).
        assert_eq!(
            totals,
            Residency {
                active_bits: 100 + 600 + 600,
                passive_bits: 300,
                busoff_bits: 400,
                warnings: 1,
                passive_entries: 1,
                bus_offs: 1,
                crashes: 0,
            }
        );
    }
}
