//! # majorcan-traffic — sustained multi-sender bus traffic
//!
//! The scripted experiments exercise one frame at a time; this crate
//! stresses the protocols the way a fielded bus would — many senders,
//! mixed periodic/sporadic release patterns, real arbitration
//! contention, error bursts walking the TEC/REC counters — for millions
//! of frames, with the Atomic Broadcast properties checked **online**:
//!
//! * [`TrafficSpec`] / [`SenderSpec`] — message-set descriptions
//!   (per-node identifier, period, jitter, payload distribution);
//! * [`TrafficStream`] — the lazy generator: a spec plus a seed becomes
//!   a [`ReleaseSource`](majorcan_workload::ReleaseSource) in O(senders)
//!   memory;
//! * [`run_soak`] / [`SoakSpec`] — the soak runner, draining events
//!   chunk-wise into the
//!   [`WindowedChecker`](majorcan_abcast::WindowedChecker), the
//!   [`LatencyTracker`] and [`ResidencyTracker`], and optionally a
//!   [`TraceExporter`];
//! * [`Histogram`] — integer log-linear latency/jitter statistics,
//!   deterministic across platforms and worker counts;
//! * [`TraceExporter`] — timestamped JSONL/CSV bus logs comparable to
//!   the arXiv:2307.04561 captures (see `docs/TRACE_FORMAT.md`).
//!
//! The `traffic` binary runs the E17 soak campaign on the
//! `majorcan-campaign` runner; `bench_traffic` regenerates
//! `BENCH_traffic.json` (sustained frames/sec and online-checker
//! overhead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod soak;
mod spec;
mod stream;

pub use export::{ExportFormat, TraceExporter, US_PER_BIT};
pub use metrics::{Histogram, LatencyTracker, Residency, ResidencyTracker};
pub use soak::{run_soak, AttackSpec, BurstSpec, SoakOutcome, SoakSpec, DEFAULT_WINDOW};
pub use spec::{SenderPattern, SenderSpec, TrafficSpec, DEFAULT_FRAME_BITS};
pub use stream::TrafficStream;
