//! The soak runner: sustain a message set over a cluster, check it
//! online, measure it, and optionally export the bus log — all in
//! constant memory.
//!
//! One [`SoakSpec`] describes one campaign cell; [`run_soak`] executes it
//! chunk by chunk, draining the testbed's event log into the
//! [`WindowedChecker`], the latency/residency trackers and the exporter
//! after every chunk, so a million-frame run never holds more than a few
//! thousand events at once.

use crate::export::TraceExporter;
use crate::metrics::{LatencyTracker, Residency, ResidencyTracker};
use crate::spec::{TrafficSpec, DEFAULT_FRAME_BITS};
use crate::stream::TrafficStream;
use majorcan_abcast::{msg_id_of, MsgId, OnlineReport, WindowedChecker, MAX_NODES};
use majorcan_campaign::{derive_trial_seed, FaultSpec, Job, JobResult, ProtocolSpec, WorkloadSpec};
use majorcan_can::CanEvent;
use majorcan_faults::Attacker;
use majorcan_testbed::{BusChannel, Testbed};
use majorcan_workload::{Release, ReleaseSource};
use std::io;

/// Default checker/latency window: comfortably above any message
/// lifetime the soak workloads produce (observed gaps stay below ~10 k
/// bits even at 90 % load under error bursts), small enough that the
/// live set stays in the hundreds.
pub const DEFAULT_WINDOW: u64 = 50_000;

/// Bits simulated per chunk between event-log drains.
const CHUNK: u64 = 2_048;

/// An error-burst channel shape (see
/// [`BurstErrors`](majorcan_faults::BurstErrors)).
#[derive(Debug, Clone, PartialEq)]
pub struct BurstSpec {
    /// Burst repetition period in bits.
    pub period: u64,
    /// Burst length in bits.
    pub len: u64,
    /// Per-view flip probability inside a burst.
    pub ber_star: f64,
}

/// A sustained bus-off attacker riding a soak cell (see
/// [`Attacker::sustained_bus_off`]): dominant injections on the victim's
/// CRC-delimiter view, re-knocking it after every recovery, until the
/// attack budget runs dry.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSpec {
    /// Node whose error counters the attacker drives.
    pub victim: usize,
    /// Attack budget in injected dominant bits.
    pub budget: u64,
}

/// One soak cell: protocol × traffic shape × fault shape × seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakSpec {
    /// Link-layer protocol under test.
    pub protocol: ProtocolSpec,
    /// Bus size.
    pub n_nodes: usize,
    /// Joint target bus load in `(0, 1]`.
    pub load: f64,
    /// Frames to release before draining.
    pub frames: u64,
    /// Per-mille of senders that are sporadic.
    pub sporadic_permille: u16,
    /// Error-burst channel, or `None` for a clean bus.
    pub burst: Option<BurstSpec>,
    /// Sustained bus-off attacker, or `None` for an unattacked bus.
    /// Mutually exclusive with `burst` — one channel shape per cell.
    pub attack: Option<AttackSpec>,
    /// Seed of the whole cell (stream and channel lanes are derived).
    pub seed: u64,
    /// Checker / latency window in bits.
    pub window: u64,
    /// Fail-silent policy: crash nodes at the error-warning level. The
    /// soak default is **off** so error-passive and bus-off residency is
    /// observable (the paper's fail-silent policy would crash the node
    /// first).
    pub shutoff_at_warning: bool,
    /// Run the incremental checker online (off only for overhead
    /// benchmarking).
    pub online_check: bool,
}

impl SoakSpec {
    /// A clean-bus soak cell with the default window and policies.
    pub fn new(
        protocol: ProtocolSpec,
        n_nodes: usize,
        load: f64,
        frames: u64,
        seed: u64,
    ) -> SoakSpec {
        SoakSpec {
            protocol,
            n_nodes,
            load,
            frames,
            sporadic_permille: 250,
            burst: None,
            attack: None,
            seed,
            window: DEFAULT_WINDOW,
            shutoff_at_warning: false,
            online_check: true,
        }
    }

    /// The cell a campaign [`Job`] describes.
    ///
    /// # Panics
    ///
    /// Panics if the job's workload is not
    /// [`WorkloadSpec::SustainedTraffic`], its fault is none of
    /// [`FaultSpec::None`], [`FaultSpec::ErrorBursts`] or
    /// [`FaultSpec::BusOffAttack`], or its protocol is a higher-level
    /// protocol (the soak runner drives link-layer clusters).
    pub fn for_job(job: &Job) -> SoakSpec {
        let WorkloadSpec::SustainedTraffic {
            load,
            frames,
            sporadic_permille,
        } = job.workload
        else {
            panic!(
                "soak runner wants WorkloadSpec::SustainedTraffic, job {} has {:?}",
                job.id, job.workload
            );
        };
        let (burst, attack) = match job.fault {
            FaultSpec::None => (None, None),
            FaultSpec::ErrorBursts {
                period,
                len,
                ber_star,
            } => (
                Some(BurstSpec {
                    period,
                    len,
                    ber_star,
                }),
                None,
            ),
            FaultSpec::BusOffAttack { victim, budget } => {
                assert!(
                    victim < job.n_nodes,
                    "job {}: attack victim {victim} outside the {}-node bus",
                    job.id,
                    job.n_nodes
                );
                (None, Some(AttackSpec { victim, budget }))
            }
            ref other => panic!(
                "soak runner wants FaultSpec::None, ErrorBursts or BusOffAttack, job {} has {other:?}",
                job.id
            ),
        };
        assert!(
            !job.protocol.is_hlp(),
            "soak runner drives link-layer clusters, not {}",
            job.protocol
        );
        SoakSpec {
            protocol: job.protocol,
            n_nodes: job.n_nodes,
            load,
            frames,
            sporadic_permille,
            burst,
            attack,
            seed: job.seed,
            window: DEFAULT_WINDOW,
            shutoff_at_warning: false,
            online_check: true,
        }
    }
}

/// Everything one soak run produced.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Frames released by the generator.
    pub released: u64,
    /// `TxStarted` events (attempts, including retransmissions).
    pub attempts: u64,
    /// `TxSucceeded` events (committed broadcasts).
    pub successes: u64,
    /// `RetransmissionScheduled` events.
    pub retransmissions: u64,
    /// `Delivered` events (receiver-side deliveries).
    pub deliveries: u64,
    /// `ArbitrationLost` events (real bus contention at work).
    pub arb_losses: u64,
    /// `ErrorDetected` events.
    pub errors: u64,
    /// Simulated bits.
    pub bits: u64,
    /// `true` when the run ended with the bus idle and all queues empty
    /// (`false` means the runaway cap cut it off).
    pub drained: bool,
    /// The online verdict (`None` when `online_check` was off).
    pub report: Option<OnlineReport>,
    /// Time and description of the first flagged violation.
    pub first_violation: Option<(u64, String)>,
    /// Checker live-set high-water mark (the O(window) memory witness).
    pub peak_live: usize,
    /// Longest intra-message event gap the checker saw (must stay below
    /// the window for the verdict to be exact).
    pub max_gap: u64,
    /// Release → receiver-delivery latency.
    pub delivery_latency: crate::metrics::Histogram,
    /// Release → transmitter-commit latency.
    pub commit_latency: crate::metrics::Histogram,
    /// Deliveries whose release record was pruned (diagnostic; 0 in
    /// correctly-windowed runs).
    pub unmatched: u64,
    /// Error-regime residency totals.
    pub residency: Residency,
    /// Attack-budget bits the attacker actually spent (`None` when the
    /// cell ran without an attacker).
    pub attack_spent: Option<u64>,
}

impl SoakOutcome {
    /// Renders the outcome as the deterministic counter set of a campaign
    /// [`JobResult`] (all-integer, so artifacts are byte-identical for
    /// any worker count).
    pub fn to_result(&self, job: &Job) -> JobResult {
        let mut r = JobResult::for_job(job);
        r.frames = self.released;
        r.bits = self.bits;
        let c = &mut r.counters;
        c.add("released", self.released);
        c.add("attempts", self.attempts);
        c.add("successes", self.successes);
        c.add("retx", self.retransmissions);
        c.add("deliveries", self.deliveries);
        c.add("arb_lost", self.arb_losses);
        c.add("errors", self.errors);
        c.add("drained", self.drained as u64);
        c.add("warnings", self.residency.warnings);
        c.add("passive_entries", self.residency.passive_entries);
        c.add("bus_offs", self.residency.bus_offs);
        c.add("crashes", self.residency.crashes);
        c.add("active_bits", self.residency.active_bits);
        c.add("passive_bits", self.residency.passive_bits);
        c.add("busoff_bits", self.residency.busoff_bits);
        c.add("lat_p50", self.delivery_latency.quantile_permille(500));
        c.add("lat_p90", self.delivery_latency.quantile_permille(900));
        c.add("lat_p99", self.delivery_latency.quantile_permille(990));
        c.add("lat_mean_milli", self.delivery_latency.mean_milli());
        c.add("lat_max", self.delivery_latency.max());
        c.add("commit_p50", self.commit_latency.quantile_permille(500));
        c.add("commit_p99", self.commit_latency.quantile_permille(990));
        c.add("commit_max", self.commit_latency.max());
        c.add("unmatched", self.unmatched);
        c.add("peak_live", self.peak_live as u64);
        c.add("max_gap", self.max_gap);
        if let Some(spent) = self.attack_spent {
            c.add("attack_spent", spent);
        }
        if let Some(report) = &self.report {
            c.add("validity", report.validity_violations);
            c.add("imo", report.imo_messages);
            c.add("double", report.double_deliveries);
            c.add("spurious", report.spurious_deliveries);
            c.add("order", report.order_violated as u64);
            c.add("window_exceeded", report.window_exceeded);
            c.add(&format!("verdict/{}", report.verdict().token()), 1);
        }
        r
    }
}

/// Forwards a [`TrafficStream`] while noting each release for the
/// latency tracker.
struct Tap<'a> {
    inner: &'a mut TrafficStream,
    log: &'a mut Vec<(u64, MsgId)>,
}

impl ReleaseSource for Tap<'_> {
    fn next_at(&self) -> Option<u64> {
        self.inner.next_at()
    }

    fn pop(&mut self) -> Option<Release> {
        let release = self.inner.pop()?;
        self.log.push((release.at, msg_id_of(&release.frame)));
        Some(release)
    }
}

/// Runs one soak cell. I/O errors can only come from the exporter.
///
/// # Panics
///
/// Panics on a higher-level-protocol spec or more than
/// [`MAX_NODES`] nodes.
pub fn run_soak(
    spec: &SoakSpec,
    mut exporter: Option<&mut TraceExporter>,
) -> io::Result<SoakOutcome> {
    assert!(spec.n_nodes <= MAX_NODES, "checker masks are 64-bit");
    let mut tb = Testbed::builder(spec.protocol).nodes(spec.n_nodes).build();
    tb.set_shutoff_at_warning(spec.shutoff_at_warning);
    tb.reset_with(match (&spec.burst, &spec.attack) {
        (None, None) => BusChannel::NoFaults,
        (Some(b), None) => {
            BusChannel::bursts(b.period, b.len, b.ber_star, derive_trial_seed(spec.seed, 1))
        }
        (None, Some(a)) => BusChannel::Attack(Attacker::sustained_bus_off(a.victim, a.budget)),
        (Some(_), Some(_)) => panic!("one channel shape per cell: burst or attack, not both"),
    });
    let traffic = TrafficSpec::mixed_load(
        spec.n_nodes,
        spec.load,
        DEFAULT_FRAME_BITS,
        spec.sporadic_permille,
    );
    let mut stream = TrafficStream::new(traffic, derive_trial_seed(spec.seed, 0), spec.frames);

    let mut checker = spec
        .online_check
        .then(|| WindowedChecker::new(spec.n_nodes, spec.window));
    let mut latency = LatencyTracker::new(spec.window);
    let mut residency = ResidencyTracker::new(spec.n_nodes);
    let mut out = SoakOutcome {
        released: 0,
        attempts: 0,
        successes: 0,
        retransmissions: 0,
        deliveries: 0,
        arb_losses: 0,
        errors: 0,
        bits: 0,
        drained: false,
        report: None,
        first_violation: None,
        peak_live: 0,
        max_gap: 0,
        delivery_latency: crate::metrics::Histogram::new(),
        commit_latency: crate::metrics::Histogram::new(),
        unmatched: 0,
        residency: Residency::default(),
        attack_spent: None,
    };

    // Runaway cap: twice the nominal release span plus drain slack, so a
    // fully-jammed bus (every transmitter bus-off under bursts) still
    // terminates.
    let span = (spec.frames as f64 * DEFAULT_FRAME_BITS as f64 / spec.load) as u64;
    let cap = span * 2 + 500_000;

    let mut release_log: Vec<(u64, MsgId)> = Vec::new();
    loop {
        {
            let mut tap = Tap {
                inner: &mut stream,
                log: &mut release_log,
            };
            tb.drive_source(&mut tap, CHUNK);
        }
        for (at, msg) in release_log.drain(..) {
            latency.note_release(at, msg);
        }
        for e in tb.take_can_events() {
            if let Some(c) = checker.as_mut() {
                c.push_can(&e);
            }
            latency.observe(&e);
            residency.observe(&e);
            match &e.event {
                CanEvent::TxStarted { .. } => out.attempts += 1,
                CanEvent::TxSucceeded { .. } => out.successes += 1,
                CanEvent::RetransmissionScheduled { .. } => out.retransmissions += 1,
                CanEvent::Delivered { .. } => out.deliveries += 1,
                CanEvent::ArbitrationLost { .. } => out.arb_losses += 1,
                CanEvent::ErrorDetected { .. } => out.errors += 1,
                _ => {}
            }
            if let Some(x) = exporter.as_deref_mut() {
                x.record(&e)?;
            }
        }
        if stream.is_exhausted() && tb.is_drained() {
            out.drained = true;
            break;
        }
        if tb.now() >= cap {
            break;
        }
    }

    out.released = stream.released();
    out.bits = tb.now();
    out.delivery_latency = latency.delivery.clone();
    out.commit_latency = latency.commit.clone();
    out.unmatched = latency.unmatched();
    out.residency = residency.finish(out.bits);
    if spec.attack.is_some() {
        out.attack_spent = Some(tb.attacker().map_or(0, |a| a.spent()));
    }
    if let Some(c) = checker {
        out.peak_live = c.peak_live();
        out.max_gap = c.max_observed_gap();
        out.first_violation = c.first_violation().cloned();
        out.report = Some(c.finish());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_soak_drains_consistently() {
        let mut spec = SoakSpec::new(ProtocolSpec::MajorCan { m: 5 }, 4, 0.6, 120, 0xA1);
        spec.sporadic_permille = 250;
        let out = run_soak(&spec, None).unwrap();
        assert!(out.drained, "bus drains after the budget");
        assert_eq!(out.released, 120);
        assert_eq!(out.successes, 120, "every frame commits on a clean bus");
        assert_eq!(
            out.deliveries,
            120 * 3,
            "every frame reaches the three receivers"
        );
        let report = out.report.expect("checker was online");
        assert!(report.atomic_broadcast(), "clean bus is atomic");
        assert_eq!(report.messages, 120);
        assert_eq!(out.unmatched, 0);
        assert!(out.max_gap < spec.window, "window precondition held");
        assert!(out.arb_losses > 0, "load 0.6 over 4 nodes contends");
        assert_eq!(out.commit_latency.total(), 120);
        assert_eq!(out.delivery_latency.total(), 360);
        // A frame (4–8 byte payload, so ≥ ~75 on-wire bits) can never be
        // delivered faster than its own transmission.
        assert!(
            out.delivery_latency.min() >= 70,
            "min latency below a frame"
        );
    }

    #[test]
    fn soak_is_deterministic() {
        let job = Job::new(
            3,
            0xFACE,
            ProtocolSpec::StandardCan,
            FaultSpec::ErrorBursts {
                period: 2_500,
                len: 20,
                ber_star: 0.3,
            },
            WorkloadSpec::SustainedTraffic {
                load: 0.7,
                frames: 150,
                sporadic_permille: 250,
            },
            4,
            150,
        );
        let spec = SoakSpec::for_job(&job);
        let a = run_soak(&spec, None).unwrap().to_result(&job);
        let b = run_soak(&spec, None).unwrap().to_result(&job);
        assert_eq!(a, b, "same spec, same counters");
    }

    #[test]
    fn undersized_window_is_detected_not_trusted() {
        // A window far below a frame's lifetime retires messages between
        // their broadcast and their last delivery whenever another frame's
        // events land in between (arbitration losses and retransmissions
        // make such gaps routine under contention). The checker must not
        // silently return a half-judged verdict: the revivals show up in
        // `window_exceeded`, and the counter reaches the campaign artifact
        // so the gate can refuse the run.
        let mut spec = SoakSpec::new(ProtocolSpec::StandardCan, 5, 0.9, 120, 0xE7);
        spec.sporadic_permille = 250;
        spec.window = 10;
        spec.burst = Some(BurstSpec {
            period: 1_500,
            len: 30,
            ber_star: 0.5,
        });
        let out = run_soak(&spec, None).unwrap();
        let report = out.report.as_ref().expect("checker was online");
        assert!(
            report.window_exceeded > 0,
            "undersized window must be detected: {report:?}"
        );
        assert!(!report.exact());
        assert!(
            out.max_gap > spec.window,
            "the proven gap exceeds the window"
        );
        let job = Job::new(
            0,
            0xE7,
            ProtocolSpec::StandardCan,
            FaultSpec::None,
            WorkloadSpec::SustainedTraffic {
                load: 0.9,
                frames: 120,
                sporadic_permille: 250,
            },
            5,
            120,
        );
        let r = out.to_result(&job);
        assert_eq!(r.counters.get("window_exceeded"), report.window_exceeded);
    }

    #[test]
    fn bursty_soak_walks_the_error_regimes() {
        let mut spec = SoakSpec::new(ProtocolSpec::StandardCan, 4, 0.7, 200, 0xB0);
        spec.burst = Some(BurstSpec {
            period: 1_500,
            len: 40,
            ber_star: 0.5,
        });
        let out = run_soak(&spec, None).unwrap();
        assert!(out.errors > 0, "bursts disturb frames");
        assert!(out.retransmissions > 0, "disturbed frames retransmit");
        assert!(
            out.residency.warnings > 0,
            "error counters reach the warning level"
        );
        assert!(
            out.residency.passive_bits > 0,
            "some node spends time error-passive"
        );
        assert!(out.max_gap < spec.window, "window still covers lifetimes");
    }

    #[test]
    fn attacked_soak_drives_the_victim_bus_off() {
        let mut spec = SoakSpec::new(ProtocolSpec::MajorCan { m: 5 }, 4, 0.6, 150, 0xC4);
        spec.attack = Some(AttackSpec {
            victim: 0,
            budget: 4_000,
        });
        let out = run_soak(&spec, None).unwrap();
        assert!(
            out.residency.bus_offs >= 1,
            "sustained attack reaches bus-off: {:?}",
            out.residency
        );
        assert!(out.residency.busoff_bits > 0, "bus-off residency accrues");
        let spent = out.attack_spent.expect("attacker was installed");
        assert!(
            spent >= 32,
            "bus-off needs at least 32 injections, spent {spent}"
        );
        assert!(spent <= 4_000, "the attacker cannot outspend its budget");
        // En route to bus-off the victim transits error-passive, where its
        // error flags turn recessive and the healthy majority no longer
        // sees its rejections: while the victim holds the transmitter
        // role, the attacker extracts genuine double deliveries before
        // silencing it (the EXPERIMENTS.md §E18 counter-finding — the
        // voting window does not cover fault-confinement mode changes).
        let report = out.report.expect("checker was online");
        assert!(
            report.double_deliveries > 0,
            "the error-passive transit duplicates deliveries"
        );
    }

    #[test]
    fn attacked_soak_is_deterministic() {
        let job = Job::new(
            7,
            0xD00F,
            ProtocolSpec::StandardCan,
            FaultSpec::BusOffAttack {
                victim: 1,
                budget: 2_000,
            },
            WorkloadSpec::SustainedTraffic {
                load: 0.5,
                frames: 100,
                sporadic_permille: 250,
            },
            4,
            100,
        );
        let spec = SoakSpec::for_job(&job);
        assert_eq!(
            spec.attack,
            Some(AttackSpec {
                victim: 1,
                budget: 2_000
            })
        );
        let a = run_soak(&spec, None).unwrap().to_result(&job);
        let b = run_soak(&spec, None).unwrap().to_result(&job);
        assert_eq!(a, b, "same attacked spec, same counters");
        assert!(a.counters.get("attack_spent") > 0, "the attacker fired");
    }

    #[test]
    #[should_panic(expected = "victim 9 outside")]
    fn for_job_rejects_out_of_bus_victims() {
        let job = Job::new(
            0,
            1,
            ProtocolSpec::StandardCan,
            FaultSpec::BusOffAttack {
                victim: 9,
                budget: 100,
            },
            WorkloadSpec::SustainedTraffic {
                load: 0.5,
                frames: 10,
                sporadic_permille: 0,
            },
            3,
            10,
        );
        SoakSpec::for_job(&job);
    }

    #[test]
    #[should_panic(expected = "SustainedTraffic")]
    fn for_job_rejects_other_workloads() {
        let job = Job::new(
            0,
            1,
            ProtocolSpec::StandardCan,
            FaultSpec::None,
            WorkloadSpec::SingleBroadcast,
            3,
            1,
        );
        SoakSpec::for_job(&job);
    }

    #[test]
    fn zero_frames_terminates_immediately() {
        let spec = SoakSpec::new(ProtocolSpec::MinorCan, 3, 0.5, 0, 9);
        let out = run_soak(&spec, None).unwrap();
        assert!(out.drained);
        assert_eq!(out.released, 0);
        assert_eq!(out.report.unwrap().messages, 0);
    }
}
