//! The lazy traffic generator: a [`TrafficSpec`] plus a seed becomes a
//! [`ReleaseSource`] that *generates* releases on demand instead of
//! materializing a million-entry schedule up front.

use crate::spec::{SenderPattern, TrafficSpec};
use majorcan_campaign::derive_trial_seed;
use majorcan_can::Frame;
use majorcan_workload::{tagged_payload, Release, ReleaseSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-sender generation state.
#[derive(Debug, Clone)]
struct SenderState {
    rng: StdRng,
    /// Next sequence number (payload tag).
    seq: u32,
    /// Next nominal grid index (periodic senders).
    k: u64,
}

/// Streams the time-sorted merge of all senders in a [`TrafficSpec`],
/// stopping after a frame budget. Memory is O(senders) regardless of how
/// many frames the stream produces.
///
/// Each sender draws jitter, gaps and payload sizes from its own RNG
/// seeded by [`derive_trial_seed`]`(seed, sender_index)`, so streams are
/// reproducible and senders are statistically independent.
#[derive(Debug, Clone)]
pub struct TrafficStream {
    spec: TrafficSpec,
    states: Vec<SenderState>,
    /// Min-heap of `(next release time, sender index)`; ties break on the
    /// sender index, matching `Workload`'s stable sort order.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    remaining: u64,
    released: u64,
}

impl TrafficStream {
    /// Builds the stream, priming every sender's first release.
    ///
    /// # Panics
    ///
    /// Panics if a periodic sender's jitter exceeds its period (the
    /// release sequence would not be monotone) or a sporadic sender's
    /// mean gap is not positive.
    pub fn new(spec: TrafficSpec, seed: u64, frames: u64) -> TrafficStream {
        let mut states = Vec::with_capacity(spec.senders.len());
        let mut heap = BinaryHeap::with_capacity(spec.senders.len());
        for (i, sender) in spec.senders.iter().enumerate() {
            let mut state = SenderState {
                rng: StdRng::seed_from_u64(derive_trial_seed(seed, i as u64)),
                seq: 0,
                k: 0,
            };
            let first = match sender.pattern {
                SenderPattern::Periodic {
                    period,
                    phase,
                    jitter,
                } => {
                    assert!(jitter <= period, "jitter must not exceed the period");
                    phase + state.rng.gen_range(0..=jitter)
                }
                SenderPattern::Sporadic { mean_gap } => {
                    assert!(mean_gap > 0.0, "mean gap must be positive");
                    exp_gap(&mut state.rng, mean_gap)
                }
            };
            states.push(state);
            heap.push(Reverse((first, i)));
        }
        TrafficStream {
            spec,
            states,
            heap,
            remaining: frames,
            released: 0,
        }
    }

    /// Frames released so far.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Frames still to come.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// `true` once the frame budget is spent.
    pub fn is_exhausted(&self) -> bool {
        self.remaining == 0
    }

    /// The message set being generated.
    pub fn spec(&self) -> &TrafficSpec {
        &self.spec
    }
}

/// One exponential inter-release gap, at least one bit.
fn exp_gap(rng: &mut StdRng, mean_gap: f64) -> u64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-u.ln() * mean_gap).max(1.0) as u64
}

impl ReleaseSource for TrafficStream {
    fn next_at(&self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    fn pop(&mut self) -> Option<Release> {
        if self.remaining == 0 {
            return None;
        }
        let Reverse((at, i)) = self.heap.pop()?;
        let sender = &self.spec.senders[i];
        let state = &mut self.states[i];
        let extra = state.rng.gen_range(0..=sender.extra_max.min(4));
        let frame = Frame::new(sender.id, &tagged_payload(sender.node, state.seq, extra))
            .expect("traffic frames are valid");
        state.seq = state.seq.wrapping_add(1);
        let next = match sender.pattern {
            SenderPattern::Periodic {
                period,
                phase,
                jitter,
            } => {
                state.k += 1;
                phase + state.k * period + state.rng.gen_range(0..=jitter)
            }
            SenderPattern::Sporadic { mean_gap } => at + exp_gap(&mut state.rng, mean_gap),
        };
        self.heap.push(Reverse((next, i)));
        self.remaining -= 1;
        self.released += 1;
        Some(Release {
            at,
            node: sender.node,
            frame,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DEFAULT_FRAME_BITS;
    use std::collections::BTreeSet;

    fn drain(mut s: TrafficStream) -> Vec<Release> {
        let mut out = Vec::new();
        while let Some(r) = s.pop() {
            out.push(r);
        }
        out
    }

    #[test]
    fn stream_is_monotone_unique_and_budgeted() {
        let spec = TrafficSpec::mixed_load(6, 0.8, DEFAULT_FRAME_BITS, 300);
        let stream = TrafficStream::new(spec, 0xFEED, 500);
        let releases = drain(stream);
        assert_eq!(releases.len(), 500);
        for pair in releases.windows(2) {
            assert!(pair[0].at <= pair[1].at, "monotone release times");
        }
        let payloads: BTreeSet<Vec<u8>> =
            releases.iter().map(|r| r.frame.data().to_vec()).collect();
        assert_eq!(payloads.len(), 500, "every frame is a distinct message");
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let spec = TrafficSpec::mixed_load(4, 0.5, DEFAULT_FRAME_BITS, 500);
        let a = drain(TrafficStream::new(spec.clone(), 7, 200));
        let b = drain(TrafficStream::new(spec.clone(), 7, 200));
        assert_eq!(a, b, "same seed, same stream");
        let c = drain(TrafficStream::new(spec, 8, 200));
        assert_ne!(a, c, "different seed, different jitter/gaps");
    }

    #[test]
    fn periodic_senders_keep_their_nominal_grid() {
        let spec = TrafficSpec::mixed_load(2, 0.4, DEFAULT_FRAME_BITS, 0);
        let SenderPattern::Periodic {
            period,
            phase,
            jitter,
        } = spec.senders[0].pattern
        else {
            panic!("expected periodic");
        };
        let releases = drain(TrafficStream::new(spec, 3, 400));
        let node0: Vec<u64> = releases
            .iter()
            .filter(|r| r.node == 0)
            .map(|r| r.at)
            .collect();
        for (k, &at) in node0.iter().enumerate() {
            let nominal = phase + k as u64 * period;
            assert!(
                at >= nominal && at <= nominal + jitter,
                "release {k} at {at} off its grid slot [{nominal}, {}]",
                nominal + jitter
            );
        }
    }

    #[test]
    fn sporadic_rate_roughly_matches_the_periodic_rate() {
        let spec = TrafficSpec::mixed_load(4, 0.8, DEFAULT_FRAME_BITS, 1000);
        let releases = drain(TrafficStream::new(spec, 99, 4_000));
        let span = releases.last().unwrap().at - releases.first().unwrap().at;
        let rate = releases.len() as f64 / span as f64;
        let target = 0.8 / DEFAULT_FRAME_BITS as f64;
        assert!(
            (rate - target).abs() < target * 0.1,
            "rate={rate} target={target}"
        );
    }

    #[test]
    fn matches_workload_when_jitterless() {
        // With jitter forced to zero the stream must reproduce the eager
        // Workload schedule exactly.
        let mut spec = TrafficSpec::mixed_load(3, 0.5, DEFAULT_FRAME_BITS, 0);
        for s in &mut spec.senders {
            if let SenderPattern::Periodic { jitter, .. } = &mut s.pattern {
                *jitter = 0;
            }
            s.extra_max = 0;
        }
        let sources = majorcan_workload::plan_periodic_load(3, 0.5, DEFAULT_FRAME_BITS as usize);
        let mut eager: Vec<Release> = Vec::new();
        for s in &sources {
            let mut s = s.clone();
            s.extra_len = 0;
            eager.extend(s.releases(10_000));
        }
        eager.sort_by_key(|r| r.at);
        let lazy = drain(TrafficStream::new(spec, 1, eager.len() as u64));
        assert_eq!(lazy, eager);
    }
}
