//! Message-set descriptions: which node sends what, when, and how often.
//!
//! A [`TrafficSpec`] is the static description of a sustained workload —
//! one [`SenderSpec`] per source with its identifier (arbitration
//! priority), release pattern and payload-size distribution. The
//! [`TrafficStream`](crate::TrafficStream) turns a spec plus a seed into
//! the actual lazily-generated release sequence.

use majorcan_can::FrameId;

/// The paper's reference frame size (Table 1): 110 on-wire bits.
pub const DEFAULT_FRAME_BITS: u64 = 110;

/// When a sender releases frames.
#[derive(Debug, Clone, PartialEq)]
pub enum SenderPattern {
    /// Releases on a nominal grid `phase + k·period`, each displaced by a
    /// uniform jitter in `[0, jitter]` bits. The grid itself never
    /// drifts, so long runs keep their nominal rate exactly.
    Periodic {
        /// Nominal release period in bit times.
        period: u64,
        /// First nominal release time.
        phase: u64,
        /// Maximum per-release displacement (must be ≤ `period` so the
        /// release sequence stays monotone).
        jitter: u64,
    },
    /// Poisson releases: exponential inter-release gaps with the given
    /// mean, the classic sporadic/event-triggered sender.
    Sporadic {
        /// Mean inter-release gap in bit times (must be positive).
        mean_gap: f64,
    },
}

impl SenderPattern {
    /// Mean releases per bit time.
    pub fn rate(&self) -> f64 {
        match self {
            SenderPattern::Periodic { period, .. } => 1.0 / *period as f64,
            SenderPattern::Sporadic { mean_gap } => 1.0 / mean_gap,
        }
    }
}

/// One frame source on the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct SenderSpec {
    /// Emitting node index.
    pub node: usize,
    /// Frame identifier (doubles as arbitration priority: lower wins).
    pub id: FrameId,
    /// Release pattern.
    pub pattern: SenderPattern,
    /// Maximum extra payload bytes beyond the 4-byte `(origin, seq)` tag;
    /// each release draws its length uniformly from `0..=extra_max`
    /// (capped at 4 by the 8-byte CAN payload).
    pub extra_max: usize,
}

/// A complete message set: every sender on an `n_nodes` bus.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Bus size (node indices in `0..n_nodes`).
    pub n_nodes: usize,
    /// The senders. A node may carry several senders; the soak default is
    /// one per node.
    pub senders: Vec<SenderSpec>,
}

impl TrafficSpec {
    /// The canonical soak message set: one sender per node at a joint
    /// target `load`, the last `⌈n·sporadic_permille/1000⌉` nodes sporadic
    /// (lowest arbitration priority — sporadic traffic yields to the
    /// periodic base load) and the rest periodic with `period/8` jitter.
    /// Identifiers, phases and rates match
    /// [`plan_periodic_load`](majorcan_workload::plan_periodic_load), so
    /// `sporadic_permille = 0` reproduces the E9 configuration with
    /// jitter added.
    ///
    /// # Panics
    ///
    /// Panics if `load` is outside `(0, 1]`, no nodes are given, or
    /// `sporadic_permille > 1000`.
    pub fn mixed_load(
        n_nodes: usize,
        load: f64,
        frame_bits: u64,
        sporadic_permille: u16,
    ) -> TrafficSpec {
        assert!(n_nodes > 0, "need at least one node");
        assert!(load > 0.0 && load <= 1.0, "load must be in (0,1]");
        assert!(sporadic_permille <= 1000, "sporadic share is a per-mille");
        let period = (n_nodes as f64 * frame_bits as f64 / load).ceil() as u64;
        let sporadic = (n_nodes * sporadic_permille as usize).div_ceil(1000);
        let first_sporadic = n_nodes - sporadic;
        let senders = (0..n_nodes)
            .map(|node| SenderSpec {
                node,
                id: FrameId::new(0x100 + node as u16).expect("id in range"),
                pattern: if node >= first_sporadic {
                    SenderPattern::Sporadic {
                        mean_gap: period as f64,
                    }
                } else {
                    SenderPattern::Periodic {
                        period,
                        phase: 20 + (node as u64 * period) / n_nodes as u64,
                        jitter: period / 8,
                    }
                },
                extra_max: 4,
            })
            .collect();
        TrafficSpec { n_nodes, senders }
    }

    /// The joint nominal bus load this spec produces with `frame_bits`
    /// frames (mean rate × frame size, summed over senders).
    pub fn nominal_load(&self, frame_bits: u64) -> f64 {
        self.senders
            .iter()
            .map(|s| s.pattern.rate() * frame_bits as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_load_hits_the_target_rate() {
        let spec = TrafficSpec::mixed_load(8, 0.6, DEFAULT_FRAME_BITS, 250);
        assert_eq!(spec.senders.len(), 8);
        let achieved = spec.nominal_load(DEFAULT_FRAME_BITS);
        assert!((achieved - 0.6).abs() < 0.01, "load={achieved}");
        let sporadic = spec
            .senders
            .iter()
            .filter(|s| matches!(s.pattern, SenderPattern::Sporadic { .. }))
            .count();
        assert_eq!(sporadic, 2, "250‰ of 8 senders");
        // Sporadic senders sit at the low-priority end of the id space.
        assert!(spec
            .senders
            .iter()
            .filter(|s| matches!(s.pattern, SenderPattern::Sporadic { .. }))
            .all(|s| s.node >= 6));
    }

    #[test]
    fn all_periodic_matches_the_reference_plan() {
        let spec = TrafficSpec::mixed_load(4, 0.9, 110, 0);
        let planned = majorcan_workload::plan_periodic_load(4, 0.9, 110);
        for (s, p) in spec.senders.iter().zip(&planned) {
            let SenderPattern::Periodic { period, phase, .. } = s.pattern else {
                panic!("expected periodic");
            };
            assert_eq!(period, p.period);
            assert_eq!(phase, p.phase);
            assert_eq!(s.id, p.id);
        }
    }

    #[test]
    #[should_panic(expected = "load must be in (0,1]")]
    fn rejects_overload() {
        TrafficSpec::mixed_load(4, 1.2, 110, 0);
    }
}
