//! The E17 soak campaign: sustained mixed traffic over CAN, MinorCAN and
//! MajorCAN_5 at rising bus loads, checked online by the incremental
//! windowed checker, optionally under error bursts and with bus-log
//! export.
//!
//! ```text
//! cargo run --release -p majorcan-traffic --bin traffic -- \
//!     [<frames> [n_nodes]] [--seed <u64>] [--jobs <n>] [--out e17.jsonl] \
//!     [--loads 30,60,90] [--sporadic <permille>] [--window <bits>] \
//!     [--bursts] [--burst-period <bits>] [--burst-len <bits>] [--burst-ber <p>] \
//!     [--attack-victim <node>] [--attack-budget <bits>] \
//!     [--export <dir>] [--csv] [--allow-violations] [--quiet] \
//!     [--shard <k/n> --shard-dir <dir>] [--merge] [--scavenge]
//! ```
//!
//! `--attack-victim` rides a sustained bus-off attacker on every cell
//! (dominant injections on the victim's CRC-delimiter view, re-knocking
//! it after each recovery until `--attack-budget` runs dry) and reports
//! the victim's bus-off residency under load. Mutually exclusive with
//! `--bursts`.
//!
//! Exit codes: `0` — every cell's online verdict is `consistent`;
//! `2` — bad arguments, or the configured `--window` was exceeded (a
//! message recurred after retiring, so the online verdicts are not
//! trustworthy — rerun with a larger window; never suppressed, since an
//! inexact verdict is a measurement error, not a finding); `3` — some
//! cell violated an Atomic Broadcast property (suppressed by
//! `--allow-violations`, for impairment studies where violations are the
//! measurement).
//!
//! With `--shard k/n --shard-dir d` the soak grid runs as one shard of a
//! crash-tolerant fleet (see `docs/FLEET.md`); the fleet verdict gates on
//! the merged `verdict/*` counters, honouring `--allow-violations`.

use majorcan_bench::cli::{self, exit_code, CliArgs, ExtraFlag};
use majorcan_campaign::{
    run_campaign_in_memory_scoped, run_campaign_scoped, FaultSpec, Job, JobResult, Manifest,
    ProtocolSpec, WorkloadSpec,
};
use majorcan_traffic::{run_soak, ExportFormat, SoakSpec, TraceExporter, DEFAULT_WINDOW};
use std::path::PathBuf;

struct Cell {
    job_id: u64,
    protocol: ProtocolSpec,
    load_pct: u64,
}

struct ExportPlan {
    dir: PathBuf,
    format: ExportFormat,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(exit_code::USAGE);
}

fn main() {
    let extras = [
        ExtraFlag::value("--loads", "<pct,pct,...>"),
        ExtraFlag::value("--sporadic", "<permille>"),
        ExtraFlag::value("--window", "<bits>"),
        ExtraFlag::switch("--bursts", ""),
        ExtraFlag::value("--burst-period", "<bits>"),
        ExtraFlag::value("--burst-len", "<bits>"),
        ExtraFlag::value("--burst-ber", "<prob>"),
        ExtraFlag::value("--attack-victim", "<node>"),
        ExtraFlag::value("--attack-budget", "<bits>"),
        ExtraFlag::value("--export", "<dir>"),
        ExtraFlag::switch("--csv", ""),
        ExtraFlag::switch("--allow-violations", ""),
    ];
    let mut cli = CliArgs::parse_with_extras(0x7AF1C, &cli::with_shard_flags(&extras));
    let frames: u64 = cli.positional(1_500);
    let n_nodes: usize = cli.positional(8);

    let loads: Vec<u64> = match cli.extra("--loads") {
        None => vec![30, 60, 90],
        Some(text) => text
            .split(',')
            .map(|p| match p.trim().parse::<u64>() {
                Ok(pct) if (1..=100).contains(&pct) => pct,
                _ => die(&format!("--loads wants percentages in 1..=100, got {p:?}")),
            })
            .collect(),
    };
    let sporadic = cli.extra_u64("--sporadic", 250);
    if sporadic > 1000 {
        die("--sporadic is a per-mille (0..=1000)");
    }
    let window = cli.extra_u64("--window", DEFAULT_WINDOW);
    let bursty = cli.extra_flag("--bursts")
        || cli.extra("--burst-period").is_some()
        || cli.extra("--burst-len").is_some()
        || cli.extra("--burst-ber").is_some();
    let attacked = cli.extra("--attack-victim").is_some() || cli.extra("--attack-budget").is_some();
    if bursty && attacked {
        die("--bursts and --attack-victim are mutually exclusive: one channel shape per cell");
    }
    let fault = if attacked {
        let victim = cli.extra_u64("--attack-victim", 0) as usize;
        if victim >= n_nodes {
            die(&format!(
                "--attack-victim {victim} is outside the {n_nodes}-node bus"
            ));
        }
        FaultSpec::BusOffAttack {
            victim,
            budget: cli.extra_u64("--attack-budget", 4_000),
        }
    } else if bursty {
        FaultSpec::ErrorBursts {
            period: cli.extra_u64("--burst-period", 2_000),
            len: cli.extra_u64("--burst-len", 30),
            ber_star: match cli.extra("--burst-ber") {
                None => 0.5,
                Some(text) => text
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .unwrap_or_else(|| die("--burst-ber wants a probability in [0,1]")),
            },
        }
    } else {
        FaultSpec::None
    };
    let export = cli.extra("--export").map(|dir| ExportPlan {
        dir: PathBuf::from(dir),
        format: if cli.extra_flag("--csv") {
            ExportFormat::Csv
        } else {
            ExportFormat::Jsonl
        },
    });
    if let Some(plan) = &export {
        std::fs::create_dir_all(&plan.dir)
            .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", plan.dir.display())));
    }

    let protocols = [
        ProtocolSpec::StandardCan,
        ProtocolSpec::MinorCan,
        ProtocolSpec::MajorCan { m: 5 },
    ];
    let mut cells: Vec<Cell> = Vec::new();
    let mut jobs: Vec<Job> = Vec::new();
    for &load_pct in &loads {
        for &protocol in &protocols {
            let id = jobs.len() as u64;
            jobs.push(Job::new(
                id,
                cli.seed,
                protocol,
                fault.clone(),
                WorkloadSpec::SustainedTraffic {
                    load: load_pct as f64 / 100.0,
                    frames,
                    sporadic_permille: sporadic as u16,
                },
                n_nodes,
                frames,
            ));
            cells.push(Cell {
                job_id: id,
                protocol,
                load_pct,
            });
        }
    }

    let run_one = |job: &Job| -> JobResult {
        let mut spec = SoakSpec::for_job(job);
        spec.window = window;
        let mut exporter = export.as_ref().map(|plan| {
            let ext = match plan.format {
                ExportFormat::Jsonl => "jsonl",
                ExportFormat::Csv => "csv",
            };
            let path = plan.dir.join(format!("cell-{:02}.{ext}", job.id));
            TraceExporter::create(&path, plan.format).expect("create trace export")
        });
        let outcome = run_soak(&spec, exporter.as_mut()).expect("trace export I/O");
        if let Some(x) = exporter {
            x.finish().expect("flush trace export");
        }
        outcome.to_result(job)
    };

    // Fleet (sharded) execution: the verdict is read off the merged
    // `verdict/*` counters, mirroring the per-cell gate below.
    let allow_violations = cli.extra_flag("--allow-violations");
    if let Some(code) = cli::fleet(
        &cli,
        "traffic-soak",
        &jobs,
        || (),
        |_, job| run_one(job),
        |totals| {
            // Window exceedances invalidate the verdicts themselves, so
            // they gate even under --allow-violations (exit 2, not 3 —
            // the run's configuration was wrong, not the protocol).
            let exceeded = totals.counters.get("window_exceeded");
            if exceeded > 0 {
                eprintln!(
                    "error: the checker window was exceeded {exceeded} time(s) across the fleet; \
                     the merged verdicts are unreliable — rerun with a larger --window"
                );
                std::process::exit(exit_code::USAGE);
            }
            if allow_violations {
                return None;
            }
            let violating: u64 = ["double", "omission", "validity"]
                .iter()
                .map(|t| totals.counters.get(&format!("verdict/{t}")))
                .sum();
            (violating > 0).then(|| {
                format!("online checker flagged {violating} violating verdict(s) in the merged counters")
            })
        },
    ) {
        std::process::exit(code);
    }

    let opts = cli.campaign_options();
    let report = match &cli.out {
        Some(path) => {
            let manifest = Manifest::for_jobs("traffic-soak", cli.seed, &jobs);
            let mut sink = cli::open_sink(path, &manifest);
            run_campaign_scoped(&jobs, &opts, &mut sink, || (), |_, job| run_one(job))
                .expect("campaign I/O")
        }
        None => run_campaign_in_memory_scoped(&jobs, &opts, || (), |_, job| run_one(job)),
    };
    if !report.failures.is_empty() {
        eprintln!(
            "warning: {} job(s) failed; see the failures artifact",
            report.failures.len()
        );
    }

    println!(
        "{:<12} {:>5} {:>9} {:>9} {:>7} {:>7} {:>7} {:>8} {:>8} {:>9} {:>8}  verdict",
        "protocol",
        "load",
        "released",
        "delivered",
        "retx",
        "errors",
        "arb",
        "lat_p50",
        "lat_p99",
        "passive‰",
        "busoff‰"
    );
    let mut violations: Vec<String> = Vec::new();
    let mut exceedances: Vec<String> = Vec::new();
    for cell in &cells {
        let Some(r) = report.results.iter().find(|r| r.job_id == cell.job_id) else {
            continue;
        };
        let c = &r.counters;
        if c.get("window_exceeded") > 0 {
            exceedances.push(format!(
                "{} at {}% load: {} recurrence(s) after retirement (max gap {})",
                cell.protocol,
                cell.load_pct,
                c.get("window_exceeded"),
                c.get("max_gap"),
            ));
        }
        let verdict = ["consistent", "double", "omission", "validity"]
            .iter()
            .find(|t| c.get(&format!("verdict/{t}")) > 0)
            .copied()
            .unwrap_or("?");
        let regime_bits = c.get("active_bits") + c.get("passive_bits") + c.get("busoff_bits");
        let passive_permille = ((c.get("passive_bits") + c.get("busoff_bits")) * 1000)
            .checked_div(regime_bits)
            .unwrap_or(0);
        let busoff_permille = (c.get("busoff_bits") * 1000)
            .checked_div(regime_bits)
            .unwrap_or(0);
        println!(
            "{:<12} {:>4}% {:>9} {:>9} {:>7} {:>7} {:>7} {:>8} {:>8} {:>9} {:>8}  {}",
            cell.protocol.to_string(),
            cell.load_pct,
            c.get("released"),
            c.get("deliveries"),
            c.get("retx"),
            c.get("errors"),
            c.get("arb_lost"),
            c.get("lat_p50"),
            c.get("lat_p99"),
            passive_permille,
            busoff_permille,
            verdict,
        );
        if verdict != "consistent" {
            violations.push(format!(
                "{} at {}% load: {} (imo={} double={} validity={} order={})",
                cell.protocol,
                cell.load_pct,
                verdict,
                c.get("imo"),
                c.get("double"),
                c.get("validity"),
                c.get("order"),
            ));
        }
    }

    if !exceedances.is_empty() {
        eprintln!(
            "error: the checker window ({window} bits) was exceeded in {} cell(s); \
             those verdicts are unreliable — rerun with a larger --window:",
            exceedances.len()
        );
        for x in &exceedances {
            eprintln!("  {x}");
        }
        std::process::exit(exit_code::USAGE);
    }

    if !violations.is_empty() {
        eprintln!(
            "online checker flagged {} violating cell(s):",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        if !cli.extra_flag("--allow-violations") {
            std::process::exit(exit_code::FINDING);
        }
    }
}
