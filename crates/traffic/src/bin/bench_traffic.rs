//! Regenerates `BENCH_traffic.json`: sustained soak throughput
//! (frames/sec, simulated bits/sec) per protocol, and the overhead of
//! running the incremental windowed checker online.
//!
//! ```text
//! cargo run --release -p majorcan-traffic --bin bench_traffic -- \
//!     [--quick] [--seed <u64>] [--out BENCH_traffic.json]
//! ```
//!
//! When the output file already exists its schema is compared against the
//! freshly rendered document; any drift (keys added, removed or renamed)
//! is an error, so `scripts/check.sh` catches accidental format changes
//! before they reach the committed artifact. The measured numbers are
//! machine-dependent; the structural fields (`frames`, `peak_live`) are
//! deterministic.

use majorcan_campaign::{json, ProtocolSpec};
use majorcan_testbed::hotpath::schema_fingerprint;
use majorcan_traffic::{run_soak, SoakSpec};
use std::time::Instant;

const N_NODES: usize = 5;
const LOAD: f64 = 0.6;
const FULL_FRAMES: u64 = 30_000;
const QUICK_FRAMES: u64 = 2_000;

struct Row {
    protocol: ProtocolSpec,
    frames: u64,
    frames_per_sec: f64,
    bits_per_sec: f64,
    checker_overhead_pct: f64,
    peak_live: usize,
}

fn measure(protocol: ProtocolSpec, frames: u64, seed: u64) -> Row {
    let mut spec = SoakSpec::new(protocol, N_NODES, LOAD, frames, seed);
    // Checked run: the number the soak campaign actually pays.
    let start = Instant::now();
    let checked = run_soak(&spec, None).expect("no exporter, no I/O");
    let checked_secs = start.elapsed().as_secs_f64();
    assert!(checked.drained, "bench cell must drain");
    assert!(
        checked.report.expect("checker online").atomic_broadcast(),
        "bench cell is a clean bus"
    );
    // Unchecked run: same simulation, checker off — the baseline.
    spec.online_check = false;
    let start = Instant::now();
    let unchecked = run_soak(&spec, None).expect("no exporter, no I/O");
    let unchecked_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        unchecked.bits, checked.bits,
        "checker must not steer the sim"
    );
    Row {
        protocol,
        frames,
        frames_per_sec: checked.released as f64 / checked_secs,
        bits_per_sec: checked.bits as f64 / checked_secs,
        checker_overhead_pct: (checked_secs / unchecked_secs - 1.0) * 100.0,
        peak_live: checked.peak_live,
    }
}

fn report_to_json(mode: &str, seed: u64, rows: &[Row]) -> json::Value {
    let mut doc = json::Value::obj();
    doc.set("schema", json::Value::from("majorcan-bench-traffic-v1"))
        .set("mode", json::Value::from(mode))
        .set("seed", json::Value::U64(seed))
        .set("n_nodes", json::Value::from(N_NODES))
        .set("load", json::Value::from(LOAD));
    let rows_json: Vec<json::Value> = rows
        .iter()
        .map(|r| {
            let mut row = json::Value::obj();
            row.set("protocol", json::Value::from(r.protocol.to_string()))
                .set("frames", json::Value::U64(r.frames))
                .set("frames_per_sec", json::Value::from(r.frames_per_sec))
                .set("bits_per_sec", json::Value::from(r.bits_per_sec))
                .set(
                    "checker_overhead_pct",
                    json::Value::from(r.checker_overhead_pct),
                )
                .set("peak_live", json::Value::from(r.peak_live));
            row
        })
        .collect();
    doc.set("rows", json::Value::Arr(rows_json));
    doc
}

fn main() {
    let mut quick = false;
    let mut seed: u64 = 0xBE7C;
    let mut out = String::from("BENCH_traffic.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                seed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| v.parse())
                    .expect("--seed wants an integer");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let (mode, frames) = if quick {
        ("quick", QUICK_FRAMES)
    } else {
        ("full", FULL_FRAMES)
    };
    let protocols = [
        ProtocolSpec::StandardCan,
        ProtocolSpec::MinorCan,
        ProtocolSpec::MajorCan { m: 5 },
    ];
    let mut rows = Vec::new();
    for protocol in protocols {
        let row = measure(protocol, frames, seed);
        println!(
            "{:<12} {:>9.0} frames/s {:>12.2e} bits/s   checker {:+.1}%   peak_live {}",
            row.protocol.to_string(),
            row.frames_per_sec,
            row.bits_per_sec,
            row.checker_overhead_pct,
            row.peak_live
        );
        rows.push(row);
    }
    let doc = report_to_json(mode, seed, &rows);

    if let Ok(existing) = std::fs::read_to_string(&out) {
        let old = json::parse(&existing)
            .unwrap_or_else(|e| panic!("{out} exists but does not parse as JSON: {e}"));
        if schema_fingerprint(&old) != schema_fingerprint(&doc) {
            eprintln!("error: schema drift against existing {out}");
            eprintln!("  committed: {:?}", schema_fingerprint(&old));
            eprintln!("  generated: {:?}", schema_fingerprint(&doc));
            std::process::exit(1);
        }
    }

    std::fs::write(&out, format!("{doc}\n")).expect("write artifact");
    println!("wrote {out} ({mode} mode, {frames} frames per protocol)");
}
