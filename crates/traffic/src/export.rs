//! Timestamped bus-log export (JSONL or CSV), column-compatible with the
//! real-bus CAN captures of arXiv:2307.04561 (candump-style logs:
//! timestamp, interface/node, identifier, DLC, data bytes).
//!
//! Timestamps are derived from bit time at the paper's 500 kbit/s
//! reference rate — `ts_us = 2 · bit` — and rendered with fixed six
//! fractional digits, so exports are byte-identical across runs and
//! worker counts. See `docs/TRACE_FORMAT.md` for the column mapping.

use majorcan_can::CanEvent;
use majorcan_sim::TimedEvent;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Microseconds per simulated bit at the 500 kbit/s reference rate.
pub const US_PER_BIT: u64 = 2;

/// Export encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// One JSON object per line.
    Jsonl,
    /// A header line, then comma-separated rows.
    Csv,
}

/// Row kinds exported (everything else in the event log is harness
/// telemetry, not bus traffic).
fn row_of(e: &TimedEvent<CanEvent>) -> Option<(&'static str, Option<&majorcan_can::Frame>)> {
    match &e.event {
        CanEvent::TxSucceeded { frame, .. } => Some(("tx", Some(frame))),
        CanEvent::Delivered { frame, .. } => Some(("rx", Some(frame))),
        CanEvent::ErrorDetected { .. } => Some(("err", None)),
        _ => None,
    }
}

fn hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn ts(at: u64) -> String {
    let us = at * US_PER_BIT;
    format!("{}.{:06}", us / 1_000_000, us % 1_000_000)
}

/// Streams selected bus events to a log file.
#[derive(Debug)]
pub struct TraceExporter {
    out: BufWriter<File>,
    format: ExportFormat,
    rows: u64,
}

impl TraceExporter {
    /// Creates (truncates) `path` and writes the CSV header if needed.
    pub fn create(path: &Path, format: ExportFormat) -> io::Result<TraceExporter> {
        let mut out = BufWriter::new(File::create(path)?);
        if format == ExportFormat::Csv {
            writeln!(out, "ts,node,dir,id,dlc,data")?;
        }
        Ok(TraceExporter {
            out,
            format,
            rows: 0,
        })
    }

    /// Writes the row for `e`, if it is an exported kind.
    pub fn record(&mut self, e: &TimedEvent<CanEvent>) -> io::Result<()> {
        let Some((dir, frame)) = row_of(e) else {
            return Ok(());
        };
        let node = e.node.index();
        let (id, dlc, data) = match frame {
            Some(f) => (
                format!("{:03X}", f.id().raw()),
                f.data().len(),
                hex(f.data()),
            ),
            None => (String::new(), 0, String::new()),
        };
        match self.format {
            ExportFormat::Jsonl => writeln!(
                self.out,
                r#"{{"ts":"{}","node":{},"dir":"{}","id":"{}","dlc":{},"data":"{}"}}"#,
                ts(e.at),
                node,
                dir,
                id,
                dlc,
                data
            )?,
            ExportFormat::Csv => writeln!(
                self.out,
                "{},{},{},{},{},{}",
                ts(e.at),
                node,
                dir,
                id,
                dlc,
                data
            )?,
        }
        self.rows += 1;
        Ok(())
    }

    /// Flushes and returns the number of rows written.
    pub fn finish(mut self) -> io::Result<u64> {
        self.out.flush()?;
        Ok(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majorcan_can::{DecisionBasis, Frame, FrameId};
    use majorcan_sim::NodeId;

    fn sample_events() -> Vec<TimedEvent<CanEvent>> {
        let f = Frame::new(FrameId::new(0x102).unwrap(), &[2, 0, 0, 1]).unwrap();
        vec![
            TimedEvent {
                at: 110,
                node: NodeId(1),
                event: CanEvent::Delivered {
                    frame: f.clone(),
                    basis: DecisionBasis::CleanEof,
                },
            },
            TimedEvent {
                at: 111,
                node: NodeId(0),
                event: CanEvent::TxSucceeded {
                    frame: f.clone(),
                    attempts: 1,
                    basis: DecisionBasis::CleanEof,
                },
            },
            TimedEvent {
                at: 112,
                node: NodeId(2),
                event: CanEvent::TxStarted {
                    frame: f,
                    attempt: 1,
                },
            },
        ]
    }

    #[test]
    fn jsonl_rows_have_fixed_decimal_timestamps() {
        let dir = std::env::temp_dir().join("majorcan-traffic-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let mut x = TraceExporter::create(&path, ExportFormat::Jsonl).unwrap();
        for e in sample_events() {
            x.record(&e).unwrap();
        }
        assert_eq!(x.finish().unwrap(), 2, "TxStarted is not a bus-log row");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            r#"{"ts":"0.000220","node":1,"dir":"rx","id":"102","dlc":4,"data":"02000001"}"#
        );
        assert_eq!(
            lines[1],
            r#"{"ts":"0.000222","node":0,"dir":"tx","id":"102","dlc":4,"data":"02000001"}"#
        );
    }

    #[test]
    fn csv_has_header_and_matching_columns() {
        let dir = std::env::temp_dir().join("majorcan-traffic-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let mut x = TraceExporter::create(&path, ExportFormat::Csv).unwrap();
        for e in sample_events() {
            x.record(&e).unwrap();
        }
        x.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "ts,node,dir,id,dlc,data");
        assert_eq!(lines[1], "0.000220,1,rx,102,4,02000001");
    }
}
