//! The windowed incremental checker must render **bit-identical
//! verdicts** to the post-hoc `majorcan_abcast::check_trace` whenever its
//! window precondition holds: no gap between consecutive events of one
//! message exceeds the window (otherwise the message could retire and
//! recur as two lifetimes).
//!
//! Three sources of traces, from adversarial to realistic:
//!
//! * randomly generated abstract `AbTrace`s (crashes, spurious and double
//!   deliveries, recurring message ids — the checker-semantics fuzz);
//! * every checked-in falsifier counterexample replayed on its target
//!   protocol (real retransmissions and error frames straddling small
//!   windows);
//! * sustained traffic streams over a real cluster.

use majorcan_abcast::{
    check_trace, trace_from_can_events, AbEvent, AbTrace, MsgId, WindowedChecker,
};
use majorcan_campaign::ProtocolSpec;
use majorcan_can::CanEvent;
use majorcan_falsify::{load_corpus, repo_corpus_dir};
use majorcan_sim::TimedEvent;
use majorcan_testbed::Testbed;
use majorcan_traffic::{TrafficSpec, TrafficStream, DEFAULT_FRAME_BITS};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The longest gap between consecutive events of any single message —
/// the quantity the window must dominate for windowed verdicts to be
/// exact. Computed post-hoc over the whole trace, so it also sees
/// recurrences the online checker itself cannot observe after retiring.
fn true_max_gap(trace: &AbTrace) -> u64 {
    let mut last: BTreeMap<MsgId, u64> = BTreeMap::new();
    let mut max = 0;
    for stamped in trace.events() {
        let msg = match &stamped.event {
            AbEvent::Broadcast { msg, .. } | AbEvent::Deliver { msg, .. } => msg.clone(),
            AbEvent::Crash { .. } => continue,
        };
        if let Some(prev) = last.insert(msg, stamped.at) {
            max = max.max(stamped.at - prev);
        }
    }
    max
}

/// Streams `trace` through a fresh windowed checker.
fn stream_trace(trace: &AbTrace, window: u64) -> WindowedChecker {
    let mut checker = WindowedChecker::new(trace.n_nodes(), window);
    for stamped in trace.events() {
        checker.push_stamped(stamped);
    }
    checker
}

/// Asserts verdict equivalence for every window that satisfies the
/// precondition, and returns how many windows were exercised.
fn assert_equivalent_for(trace: &AbTrace, windows: &[u64], context: &str) -> usize {
    let report = check_trace(trace);
    let gap = true_max_gap(trace);
    let mut exercised = 0;
    for &window in windows {
        if window < gap.max(1) {
            continue; // retirement/recurrence allowed: exactness not promised
        }
        let online = stream_trace(trace, window).finish();
        assert!(
            online.matches(&report),
            "{context}: window {window} (gap {gap}) diverged\n  online: {online:?}\n  post-hoc verdict: {:?}",
            report.verdict()
        );
        exercised += 1;
    }
    exercised
}

// ---------------------------------------------------------------------
// Randomly generated abstract traces.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_traces_agree_with_posthoc(
        raw in proptest::collection::vec((0u64..60, 0usize..8, 0usize..4, 0usize..6), 0..80),
        n_extra in 0usize..3,
        tight in 1u64..300,
    ) {
        let n_nodes = 2 + n_extra;
        let mut trace = AbTrace::new(n_nodes);
        let mut at = 0;
        for (dt, kind, node, msg) in raw {
            at += dt;
            let node = node % n_nodes;
            let msg = MsgId::new(0x100 + msg as u16, vec![msg as u8]);
            // Biased towards deliveries: agreement/order violations
            // need several deliveries per broadcast.
            match kind {
                0 | 1 => {
                    trace.broadcast(at, node, msg);
                }
                7 => {
                    trace.crash(at, node);
                }
                _ => {
                    trace.deliver(at, node, msg);
                }
            }
        }
        let span = at + 1;
        // The all-covering window must always match; the tight window
        // must match whenever it dominates the true max gap.
        let exercised = assert_equivalent_for(&trace, &[span, tight], "random trace");
        prop_assert!(exercised >= 1, "span window always qualifies");
    }
}

/// The window boundary itself: events exactly `window` apart must stay
/// in one lifetime (retirement needs silence *strictly greater* than
/// the window), so equality at the boundary is still exact.
#[test]
fn window_boundary_gap_equal_to_window_is_exact() {
    let msg = MsgId::new(0x123, vec![1]);
    let window = 100;
    let mut trace = AbTrace::new(2);
    trace.broadcast(0, 0, msg.clone());
    trace.deliver(window, 0, msg.clone());
    // Many sweeps later, the second node delivers: gap exactly `window`.
    trace.deliver(2 * window, 1, msg.clone());
    assert_eq!(true_max_gap(&trace), window);
    let report = check_trace(&trace);
    assert!(report.atomic_broadcast());
    let online = stream_trace(&trace, window).finish();
    assert!(
        online.matches(&report),
        "boundary gap must not split the message"
    );
}

/// One past the boundary, with the message *recurring*, is exactly the
/// case the precondition excludes — document that the online checker
/// sees two lifetimes there (this is why soak payloads are unique).
#[test]
fn gap_beyond_window_splits_a_recurring_message() {
    let msg = MsgId::new(0x123, vec![1]);
    let window = 100;
    let mut trace = AbTrace::new(2);
    trace.broadcast(0, 0, msg.clone());
    trace.deliver(1, 0, msg.clone());
    trace.deliver(2, 1, msg.clone());
    // Unrelated traffic triggers the sweep that retires the quiet message
    // (sweeps are lazy: they only run while events flow).
    let other = MsgId::new(0x124, vec![2]);
    trace.broadcast(window * 3, 1, other.clone());
    trace.deliver(window * 3 + 1, 0, other.clone());
    trace.deliver(window * 3 + 2, 1, other);
    // Recurrence far beyond the window: post-hoc sees double deliveries,
    // the windowed checker sees a fresh (spurious) lifetime.
    trace.deliver(window * 5, 0, msg.clone());
    trace.deliver(window * 5 + 1, 1, msg.clone());
    let report = check_trace(&trace);
    assert!(!report.double_deliveries.is_empty(), "post-hoc: AB3 broken");
    let online = stream_trace(&trace, window).finish();
    assert!(
        !online.matches(&report),
        "beyond-window recurrence is outside the exactness contract"
    );
}

// ---------------------------------------------------------------------
// Falsifier corpus: real protocol runs with forced retransmissions.
// ---------------------------------------------------------------------

#[test]
fn corpus_replays_agree_with_posthoc_across_windows() {
    let entries = load_corpus(&repo_corpus_dir()).expect("checked-in corpus loads");
    assert!(!entries.is_empty(), "corpus must not be empty");
    let mut link_entries = 0;
    let mut with_retransmissions = 0;
    for entry in &entries {
        if entry.protocol.is_hlp() {
            continue; // push_can speaks the link-layer event vocabulary
        }
        link_entries += 1;
        let mut tb = Testbed::builder(entry.protocol)
            .nodes(entry.n_nodes)
            .budget(entry.budget)
            .build();
        let run = tb.run_script(entry.schedule.disturbances());
        if run
            .events
            .iter()
            .any(|e| matches!(e.event, CanEvent::RetransmissionScheduled { .. }))
        {
            with_retransmissions += 1;
        }
        let trace = trace_from_can_events(&run.events, entry.n_nodes);
        let report = check_trace(&trace);
        let gap = true_max_gap(&trace);
        // Small windows straddle the error-frame/retransmission span;
        // every window over the true gap must still be exact.
        for window in [64, 256, 1_024, 2 * entry.budget] {
            if window < gap.max(1) {
                continue;
            }
            let mut checker = WindowedChecker::new(entry.n_nodes, window);
            for e in &run.events {
                checker.push_can(e);
            }
            let online = checker.finish();
            assert!(
                online.matches(&report),
                "{}: window {window} (gap {gap}) diverged from {:?}\n  online: {online:?}",
                entry.file_name(),
                report.verdict()
            );
        }
    }
    assert!(link_entries >= 5, "corpus covers the link-layer protocols");
    assert!(
        with_retransmissions >= 1,
        "at least one corpus replay must straddle a retransmission"
    );
}

// ---------------------------------------------------------------------
// Sustained traffic over a real cluster.
// ---------------------------------------------------------------------

#[test]
fn sustained_traffic_stream_agrees_with_posthoc() {
    let n_nodes = 5;
    let spec = TrafficSpec::mixed_load(n_nodes, 0.7, DEFAULT_FRAME_BITS, 400);
    let mut stream = TrafficStream::new(spec, 0xE17, 250);
    let mut tb = Testbed::builder(ProtocolSpec::MajorCan { m: 5 })
        .nodes(n_nodes)
        .build();
    let mut events: Vec<TimedEvent<CanEvent>> = Vec::new();
    let mut checker = WindowedChecker::new(n_nodes, 4_000);
    while !(stream.is_exhausted() && tb.is_drained()) {
        tb.drive_source(&mut stream, 1_024);
        for e in tb.take_can_events() {
            checker.push_can(&e);
            events.push(e);
        }
        assert!(tb.now() < 1_000_000, "runaway");
    }
    let trace = trace_from_can_events(&events, n_nodes);
    let report = check_trace(&trace);
    assert!(report.atomic_broadcast(), "clean sustained run is atomic");
    assert!(
        true_max_gap(&trace) <= 4_000,
        "unique payloads keep lifetimes inside the window"
    );
    let online = checker.finish();
    assert!(online.matches(&report));
    assert_eq!(online.messages, 250);
}
