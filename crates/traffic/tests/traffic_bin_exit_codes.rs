//! The `traffic` bin's exit-code contract, tested by spawning the real
//! binary: exit 0 when every cell's online verdict is `consistent`,
//! exit 3 when the incremental checker flags a violation (unless
//! `--allow-violations`), exit 2 on bad arguments — including an
//! exceeded checker window, which invalidates the verdicts themselves
//! and therefore gates even under `--allow-violations`.

use majorcan_bench::cli::exit_code;
use std::process::Command;

fn traffic_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_traffic"))
}

fn run(args: &[&str]) -> (Option<i32>, String, String) {
    let out = traffic_bin().args(args).output().expect("spawning traffic");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn clean_soak_exits_zero() {
    let (code, stdout, stderr) = run(&["120", "4", "--quiet", "--jobs", "1"]);
    assert_eq!(
        code,
        Some(exit_code::CONSISTENT),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.matches("consistent").count() == 9,
        "all 3 protocols × 3 loads consistent:\n{stdout}"
    );
    assert!(!stderr.contains("violating"), "{stderr}");
}

#[test]
fn online_violation_exits_three() {
    // Heavy error bursts (30 disturbed bits every 1500, half the views
    // flipped) break Agreement on every protocol well within a
    // 300-frame soak — the online checker must gate on it.
    let args = [
        "300",
        "4",
        "--quiet",
        "--jobs",
        "1",
        "--bursts",
        "--burst-period",
        "1500",
        "--burst-len",
        "30",
        "--seed",
        "7",
    ];
    let (code, stdout, stderr) = run(&args);
    assert_eq!(
        code,
        Some(exit_code::FINDING),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("violating cell"),
        "diagnostics name the cells:\n{stderr}"
    );

    // The same run with --allow-violations reports but does not gate.
    let mut allowed: Vec<&str> = args.to_vec();
    allowed.push("--allow-violations");
    let (code, stdout, stderr) = run(&allowed);
    assert_eq!(
        code,
        Some(exit_code::CONSISTENT),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stderr.contains("violating cell"), "{stderr}");
}

#[test]
fn bad_arguments_exit_two() {
    let (code, _, stderr) = run(&["--no-such-flag"]);
    assert_eq!(code, Some(exit_code::USAGE), "{stderr}");
    let (code, _, stderr) = run(&["--loads", "0,150"]);
    assert_eq!(code, Some(exit_code::USAGE), "{stderr}");
    let (code, _, stderr) = run(&["--burst-ber", "1.5", "--bursts"]);
    assert_eq!(code, Some(exit_code::USAGE), "{stderr}");
}

#[test]
fn exceeded_window_exits_two_even_with_allow_violations() {
    // A 10-bit window is far below a frame's lifetime: under contention
    // messages retire between broadcast and delivery and the checker's
    // suspect map proves the recurrences. The verdicts are then
    // half-judged, so the bin must refuse the *configuration* (exit 2),
    // not report findings (exit 3) — and --allow-violations, which
    // waives findings, must not waive a broken measurement.
    let args = [
        "60",
        "5",
        "--quiet",
        "--jobs",
        "1",
        "--window",
        "10",
        "--loads",
        "90",
        "--allow-violations",
    ];
    let (code, stdout, stderr) = run(&args);
    assert_eq!(
        code,
        Some(exit_code::USAGE),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("window") && stderr.contains("rerun with a larger"),
        "diagnostics explain the fix:\n{stderr}"
    );
}
