//! Table 1 of the paper: incidents/hour for the old and new scenarios.
//!
//! Reference configuration (Section 4): a 1 Mbps network, 32 nodes, 90 %
//! bus load, 110-bit frames; transmitter failures at `λ = 10⁻³/h` with a
//! `Δt = 5 ms` recovery window; `ber` swept over 10⁻⁴..10⁻⁶.

use crate::{ber_star, p_new_scenario, p_old_scenario};
use std::fmt;
use std::fmt::Write as _;

/// The network configuration behind Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// Bus bitrate in bits/second.
    pub bitrate: f64,
    /// Number of nodes.
    pub n_nodes: usize,
    /// Fraction of the bandwidth carrying frames (0–1).
    pub load: f64,
    /// Frame length in bits (`τ_data`).
    pub tau_data: usize,
    /// Transmitter failure rate, failures/hour (Eq. 5).
    pub lambda_per_hour: f64,
    /// Recovery window Δt in seconds (Eq. 5).
    pub delta_t_secs: f64,
}

impl NetworkParams {
    /// The paper's reference configuration.
    pub fn paper_reference() -> NetworkParams {
        NetworkParams {
            bitrate: 1e6,
            n_nodes: 32,
            load: 0.9,
            tau_data: 110,
            lambda_per_hour: 1e-3,
            delta_t_secs: 5e-3,
        }
    }

    /// Frames transmitted per hour at this load:
    /// `bitrate · 3600 · load / τ_data`.
    pub fn frames_per_hour(&self) -> f64 {
        self.bitrate * 3600.0 * self.load / self.tau_data as f64
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// The global bit error rate swept in the table.
    pub ber: f64,
    /// Our Eq. 4 prediction: new-scenario incidents/hour (column
    /// "IMOnew/hour").
    pub imo_new_per_hour: f64,
    /// The value Rufino et al.'s own model gives for the old scenario
    /// (column "IMO/hour", cited from the paper — their model is not
    /// restated in the text).
    pub imo_rufino_cited: Option<f64>,
    /// Our Eq. 5 prediction for the old scenario (column "IMO*/hour").
    pub imo_star_per_hour: f64,
}

/// The values printed in the paper's Table 1, used to verify the
/// reproduction: `(ber, IMOnew/hour, IMO/hour, IMO*/hour)`.
pub const PAPER_TABLE1: [(f64, f64, f64, f64); 3] = [
    (1e-4, 8.80e-3, 3.94e-6, 3.92e-6),
    (1e-5, 8.91e-5, 3.98e-7, 3.96e-7),
    (1e-6, 8.92e-7, 3.98e-8, 3.96e-8),
];

/// Computes one Table 1 row for a given `ber` under `params`.
pub fn table1_row(params: &NetworkParams, ber: f64) -> Table1Row {
    let b = ber_star(ber, params.n_nodes);
    let fph = params.frames_per_hour();
    let cited = PAPER_TABLE1
        .iter()
        .find(|(pb, ..)| (pb - ber).abs() / ber < 1e-9)
        .map(|&(_, _, rufino, _)| rufino);
    Table1Row {
        ber,
        imo_new_per_hour: p_new_scenario(params.n_nodes, b, params.tau_data) * fph,
        imo_rufino_cited: cited,
        imo_star_per_hour: p_old_scenario(
            params.n_nodes,
            b,
            params.tau_data,
            params.lambda_per_hour,
            params.delta_t_secs,
        ) * fph,
    }
}

/// Regenerates the full Table 1 at the paper's three `ber` values.
pub fn table1(params: &NetworkParams) -> Vec<Table1Row> {
    PAPER_TABLE1
        .iter()
        .map(|&(ber, ..)| table1_row(params, ber))
        .collect()
}

/// Renders Table 1 side by side with the paper's printed values.
pub fn render_table1(params: &NetworkParams) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — inconsistent message omissions per hour \
         (N={}, {} Mbps, load {:.0}%, τ_data={})",
        params.n_nodes,
        params.bitrate / 1e6,
        params.load * 100.0,
        params.tau_data
    );
    let _ = writeln!(
        out,
        "{:>8} | {:>12} {:>12} | {:>12} | {:>12} {:>12}",
        "ber", "IMOnew/h", "paper", "IMO/h(cited)", "IMO*/h", "paper"
    );
    for (row, &(_, p_new, _, p_star)) in table1(params).iter().zip(PAPER_TABLE1.iter()) {
        let _ = writeln!(
            out,
            "{:>8.0e} | {:>12.3e} {:>12.2e} | {:>12.2e} | {:>12.3e} {:>12.2e}",
            row.ber,
            row.imo_new_per_hour,
            p_new,
            row.imo_rufino_cited.unwrap_or(f64::NAN),
            row.imo_star_per_hour,
            p_star,
        );
    }
    let _ = writeln!(
        out,
        "reference safety bound: 1e-9 incidents/hour — every row exceeds it"
    );
    out
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ber={:.0e}: IMOnew/h={:.3e}, IMO*/h={:.3e}",
            self.ber, self.imo_new_per_hour, self.imo_star_per_hour
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(ours: f64, paper: f64) -> f64 {
        (ours - paper).abs() / paper
    }

    #[test]
    fn frames_per_hour_reference() {
        let fph = NetworkParams::paper_reference().frames_per_hour();
        assert!((fph - 2.945_454e7).abs() < 1e2, "fph={fph}");
    }

    #[test]
    fn table1_reproduces_paper_values() {
        // Eq. 4/5 as printed reproduce every printed value within 0.5 %.
        let params = NetworkParams::paper_reference();
        for &(ber, paper_new, _, paper_star) in &PAPER_TABLE1 {
            let row = table1_row(&params, ber);
            assert!(
                rel_err(row.imo_new_per_hour, paper_new) < 5e-3,
                "IMOnew at ber={ber}: ours={:.4e}, paper={paper_new:.2e}",
                row.imo_new_per_hour
            );
            assert!(
                rel_err(row.imo_star_per_hour, paper_star) < 5e-3,
                "IMO* at ber={ber}: ours={:.4e}, paper={paper_star:.2e}",
                row.imo_star_per_hour
            );
        }
    }

    #[test]
    fn new_scenario_dominates_old_at_every_ber() {
        // The paper's headline: the new scenarios are "larger than the
        // previously reported scenarios" at every ber — by ≈ ber*/P{crash},
        // i.e. 2250× at ber = 1e-4 down to ≈ 22× at ber = 1e-6.
        let params = NetworkParams::paper_reference();
        let expected_ratio = |ber: f64| ber / params.n_nodes as f64 / (1e-3 * 5e-3 / 3600.0);
        for row in table1(&params) {
            let ratio = row.imo_new_per_hour / row.imo_star_per_hour;
            assert!(ratio > 10.0, "ratio at ber={}: {ratio}", row.ber);
            let expect = expected_ratio(row.ber);
            assert!(
                (ratio - expect).abs() / expect < 0.01,
                "ber={}: ratio {ratio} vs expected {expect}",
                row.ber
            );
        }
    }

    #[test]
    fn every_row_exceeds_the_safety_bound() {
        let params = NetworkParams::paper_reference();
        for row in table1(&params) {
            assert!(row.imo_new_per_hour > 1e-9, "aerospace bound");
        }
    }

    #[test]
    fn our_old_scenario_model_matches_rufinos_cited_values() {
        // The paper's own check: "the model we have introduced based in
        // ber* permits to reproduce the results obtained [by Rufino et
        // al.] for the old scenarios" — within ~1 %.
        let params = NetworkParams::paper_reference();
        for row in table1(&params) {
            let cited = row.imo_rufino_cited.expect("cited value present");
            assert!(
                rel_err(row.imo_star_per_hour, cited) < 0.02,
                "ber={}: ours={:.3e} vs Rufino {cited:.2e}",
                row.ber,
                row.imo_star_per_hour
            );
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let text = render_table1(&NetworkParams::paper_reference());
        assert!(text.contains("1e-4"));
        assert!(text.contains("1e-6"));
        assert!(text.contains("IMOnew/h"));
        assert!(text.contains("1e-9 incidents/hour"));
    }

    #[test]
    fn row_display() {
        let row = table1_row(&NetworkParams::paper_reference(), 1e-5);
        assert!(row.to_string().contains("ber=1e-5"));
    }
}
