//! The paper's analytic probability model (Section 4, Eq. 1–5).
//!
//! The model rests on Charzinski's spatial error distribution: a bit error
//! occurring *somewhere* in the network is effective at a given node with
//! probability `p_eff = 1/N`, so the per-node per-bit error probability is
//!
//! ```text
//! ber* = ber / N                                  (Eq. 2-3)
//! ```
//!
//! With `b = ber*`, `τ = τ_data` (frame length in bits) and `N` nodes, the
//! probability that one frame suffers the **new** scenario of Fig. 3a —
//! at least one receiver hit exactly at the last-but-one bit, at least one
//! receiver clean, and the transmitter blinded at the last bit — is
//!
//! ```text
//! P{new} = Σ_{i=1}^{N-2} C(N-1, i) · ((1-b)^{τ-2} b)^i
//!          · ((1-b)^{τ-1})^{N-1-i} · (1-b)^{τ-1} · b       (Eq. 4)
//! ```
//!
//! and the probability of the **old** scenario of Fig. 1c (same receiver
//! pattern, transmitter crash before retransmission) is
//!
//! ```text
//! P{old} = Σ_{i=1}^{N-2} C(N-1, i) · ((1-b)^{τ-2} b)^i
//!          · ((1-b)^{τ-1})^{N-1-i} · (1-b)^{τ-2} · (1-e^{-λΔt})  (Eq. 5)
//! ```
//!
//! Implemented exactly as printed; [`crate::table1`] turns them into
//! incidents/hour and reproduces Table 1 to three significant digits.

/// `ber* = ber / N` (Eq. 3): the probability for a given node's view of a
/// given bit to be corrupted, under uniformly spread errors.
///
/// # Panics
///
/// Panics if `ber` is not a probability or `n == 0`.
pub fn ber_star(ber: f64, n: usize) -> f64 {
    assert!((0.0..=1.0).contains(&ber), "ber must be a probability");
    assert!(n > 0, "network must have nodes");
    ber / n as f64
}

/// Binomial coefficient `C(n, k)` in `f64` (exact for the small arguments
/// the model uses).
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0f64;
    for i in 0..k {
        num *= (n - i) as f64 / (i + 1) as f64;
    }
    num
}

/// Eq. 4: per-frame probability of the paper's **new** inconsistency
/// scenario (Fig. 3a) in an `n`-node network with `tau_data`-bit frames and
/// per-view error probability `ber_star`.
///
/// # Panics
///
/// Panics if `n < 3` (the scenario needs a transmitter plus non-empty X and
/// Y sets), `tau_data < 2`, or `ber_star` is not a probability.
pub fn p_new_scenario(n: usize, ber_star: f64, tau_data: usize) -> f64 {
    assert!(n >= 3, "scenario needs tx + X + Y, got {n} nodes");
    assert!(tau_data >= 2, "frames have at least 2 bits");
    assert!(
        (0.0..=1.0).contains(&ber_star),
        "ber* must be a probability"
    );
    let b = ber_star;
    let q = 1.0 - b;
    let tau = tau_data as f64;
    let affected = q.powf(tau - 2.0) * b; // one receiver: clean then hit at τ-1
    let clean = q.powf(tau - 1.0); // one receiver fully clean
    let tx_blinded = q.powf(tau - 1.0) * b; // tx clean, hit at the last bit
    let mut sum = 0.0;
    for i in 1..=(n - 2) {
        sum += binomial(n - 1, i) * affected.powi(i as i32) * clean.powi((n - 1 - i) as i32);
    }
    sum * tx_blinded
}

/// Eq. 5: per-frame probability of the **old** scenario (Fig. 1c) under the
/// same `ber*` model, with transmitter failure rate `lambda_per_hour` and
/// recovery window `delta_t_secs` (the paper: `λ = 10⁻³/h`, `Δt = 5 ms`).
///
/// # Panics
///
/// As [`p_new_scenario`], plus non-negativity of the failure parameters.
pub fn p_old_scenario(
    n: usize,
    ber_star: f64,
    tau_data: usize,
    lambda_per_hour: f64,
    delta_t_secs: f64,
) -> f64 {
    assert!(n >= 3, "scenario needs tx + X + Y, got {n} nodes");
    assert!(tau_data >= 2, "frames have at least 2 bits");
    assert!(
        (0.0..=1.0).contains(&ber_star),
        "ber* must be a probability"
    );
    assert!(lambda_per_hour >= 0.0 && delta_t_secs >= 0.0);
    let b = ber_star;
    let q = 1.0 - b;
    let tau = tau_data as f64;
    let affected = q.powf(tau - 2.0) * b;
    let clean = q.powf(tau - 1.0);
    let p_crash = -(-lambda_per_hour * (delta_t_secs / 3600.0)).exp_m1();
    let tx_term = q.powf(tau - 2.0) * p_crash;
    let mut sum = 0.0;
    for i in 1..=(n - 2) {
        sum += binomial(n - 1, i) * affected.powi(i as i32) * clean.powi((n - 1 - i) as i32);
    }
    sum * tx_term
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_star_is_ber_over_n() {
        assert_eq!(ber_star(1e-4, 32), 3.125e-6);
        assert_eq!(ber_star(0.0, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "must have nodes")]
    fn ber_star_rejects_empty_network() {
        ber_star(0.1, 0);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(31, 0), 1.0);
        assert_eq!(binomial(31, 1), 31.0);
        assert_eq!(binomial(31, 2), 465.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(4, 7), 0.0);
        assert_eq!(binomial(10, 3), 120.0);
    }

    #[test]
    fn zero_error_rate_gives_zero_probability() {
        assert_eq!(p_new_scenario(32, 0.0, 110), 0.0);
        assert_eq!(p_old_scenario(32, 0.0, 110, 1e-3, 5e-3), 0.0);
    }

    #[test]
    fn new_scenario_first_order_is_31_b_squared() {
        // At small b the i=1 term dominates: P ≈ C(31,1)·b² modulo the
        // (1-b)^... attenuation.
        let b = 1e-9;
        let p = p_new_scenario(32, b, 110);
        let approx = 31.0 * b * b;
        assert!((p - approx).abs() / approx < 1e-3, "p={p}, approx={approx}");
    }

    #[test]
    fn old_scenario_first_order_is_31_b_pcrash() {
        let b = 1e-9;
        let p = p_old_scenario(32, b, 110, 1e-3, 5e-3);
        let p_crash = 1e-3 * 5e-3 / 3600.0;
        let approx = 31.0 * b * p_crash;
        assert!((p - approx).abs() / approx < 1e-3, "p={p}");
    }

    #[test]
    fn new_scenario_grows_with_error_rate_and_nodes() {
        let p1 = p_new_scenario(32, 1e-6, 110);
        let p2 = p_new_scenario(32, 1e-5, 110);
        assert!(p2 > p1);
        let p3 = p_new_scenario(8, 1e-6, 110);
        let p4 = p_new_scenario(16, 1e-6, 110);
        assert!(p4 > p3, "more receivers, more ways to split");
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        for &b in &[0.0, 1e-6, 1e-3, 0.1, 0.5, 1.0] {
            for &n in &[3usize, 4, 32, 64] {
                let p = p_new_scenario(n, b, 110);
                assert!((0.0..=1.0).contains(&p), "p_new({n},{b})={p}");
                let q = p_old_scenario(n, b, 110, 1e-3, 5e-3);
                assert!((0.0..=1.0).contains(&q), "p_old({n},{b})={q}");
            }
        }
    }

    #[test]
    fn minimum_network_size() {
        // n = 3: exactly one X and one Y candidate; the sum has one term.
        let b = 1e-4;
        let p = p_new_scenario(3, b, 110);
        let q: f64 = 1.0 - b;
        let expected = 2.0 * (q.powf(108.0) * b) * q.powf(109.0) * (q.powf(109.0) * b);
        assert!((p - expected).abs() / expected < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tx + X + Y")]
    fn too_small_network_rejected() {
        p_new_scenario(2, 1e-6, 110);
    }
}
