//! Monte-Carlo cross-validation of the analytic model.
//!
//! The paper computes Table 1 purely analytically. To validate our
//! implementation of Eq. 4/5 — and the equations themselves — this module
//! estimates the same per-frame probabilities by direct sampling of the
//! error-pattern event:
//!
//! * every node's view of every relevant bit is drawn i.i.d. Bernoulli
//!   (`ber*`), exactly the model's assumption;
//! * a trial counts as a *new-scenario* hit when ≥1 receiver is clean
//!   through bit `τ-2` and hit at bit `τ-1`, ≥1 receiver is clean through
//!   bit `τ-1`, every receiver is one of those two kinds, and the
//!   transmitter is clean through `τ-1` and hit at bit `τ`.
//!
//! Real rates (~10⁻¹⁰/frame) are unreachable by direct sampling, so the
//! cross-check runs at elevated `ber*` (10⁻³–10⁻²) where both the closed
//! form and the estimator produce measurable rates; agreement there
//! validates the combinatorics, and the closed form extrapolates to the
//! paper's regime (the polynomial has no regime change — see DESIGN.md,
//! Substitutions). End-to-end validation against the *bit-level simulator*
//! lives in the bench crate's `montecarlo` target.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Estimate of a scenario probability with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Fraction of trials in which the scenario occurred.
    pub p_hat: f64,
    /// Binomial standard error of `p_hat`.
    pub std_err: f64,
    /// Number of trials.
    pub trials: u64,
}

impl McEstimate {
    /// `true` if `p` lies within `k` standard errors of the estimate.
    pub fn consistent_with(&self, p: f64, k: f64) -> bool {
        (self.p_hat - p).abs() <= k * self.std_err.max(f64::MIN_POSITIVE)
    }
}

/// Per-node pattern over one frame, in the vocabulary of Eq. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodePattern {
    /// Clean through bit τ-2, error at bit τ-1 (an "affected" receiver).
    AffectedAtLastButOne,
    /// Clean through bit τ-1.
    Clean,
    /// Anything else (disqualifies the trial).
    Other,
}

fn sample_receiver<R: Rng>(ber_star: f64, tau: usize, rng: &mut R) -> NodePattern {
    // Bits 1..=τ-1 matter for receivers (Eq. 4's exponents).
    let mut errors_before = false;
    for _ in 0..tau - 2 {
        if rng.gen_bool(ber_star) {
            errors_before = true;
            break;
        }
    }
    if errors_before {
        return NodePattern::Other;
    }
    if rng.gen_bool(ber_star) {
        NodePattern::AffectedAtLastButOne
    } else {
        NodePattern::Clean
    }
}

/// Monte-Carlo estimate of Eq. 4 (the new scenario's per-frame
/// probability).
///
/// # Panics
///
/// Panics under the same conditions as
/// [`p_new_scenario`](crate::p_new_scenario).
pub fn estimate_new_scenario(
    n: usize,
    ber_star: f64,
    tau_data: usize,
    trials: u64,
    seed: u64,
) -> McEstimate {
    assert!(n >= 3 && tau_data >= 2);
    assert!((0.0..=1.0).contains(&ber_star));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u64;
    for _ in 0..trials {
        let mut affected = 0usize;
        let mut clean = 0usize;
        let mut disqualified = false;
        for _ in 0..n - 1 {
            match sample_receiver(ber_star, tau_data, &mut rng) {
                NodePattern::AffectedAtLastButOne => affected += 1,
                NodePattern::Clean => clean += 1,
                NodePattern::Other => {
                    disqualified = true;
                    break;
                }
            }
        }
        if disqualified || affected == 0 || clean == 0 {
            continue;
        }
        // Transmitter: clean through τ-1, hit at the last bit.
        let mut tx_clean = true;
        for _ in 0..tau_data - 1 {
            if rng.gen_bool(ber_star) {
                tx_clean = false;
                break;
            }
        }
        if tx_clean && rng.gen_bool(ber_star) {
            hits += 1;
        }
    }
    let p_hat = hits as f64 / trials as f64;
    McEstimate {
        p_hat,
        std_err: (p_hat * (1.0 - p_hat) / trials as f64).sqrt(),
        trials,
    }
}

/// Monte-Carlo estimate of Eq. 5 (the old scenario), with the crash factor
/// applied analytically (it is independent of the error pattern).
pub fn estimate_old_scenario(
    n: usize,
    ber_star: f64,
    tau_data: usize,
    lambda_per_hour: f64,
    delta_t_secs: f64,
    trials: u64,
    seed: u64,
) -> McEstimate {
    assert!(n >= 3 && tau_data >= 2);
    assert!((0.0..=1.0).contains(&ber_star));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u64;
    for _ in 0..trials {
        let mut affected = 0usize;
        let mut clean = 0usize;
        let mut disqualified = false;
        for _ in 0..n - 1 {
            match sample_receiver(ber_star, tau_data, &mut rng) {
                NodePattern::AffectedAtLastButOne => affected += 1,
                NodePattern::Clean => clean += 1,
                NodePattern::Other => {
                    disqualified = true;
                    break;
                }
            }
        }
        if disqualified || affected == 0 || clean == 0 {
            continue;
        }
        // Transmitter clean through τ-2 (it must miss nothing up to the
        // flag; Eq. 5's exponent).
        let mut tx_clean = true;
        for _ in 0..tau_data - 2 {
            if rng.gen_bool(ber_star) {
                tx_clean = false;
                break;
            }
        }
        if tx_clean {
            hits += 1;
        }
    }
    let p_crash = -(-lambda_per_hour * (delta_t_secs / 3600.0)).exp_m1();
    let p_hat = hits as f64 / trials as f64 * p_crash;
    let raw = hits as f64 / trials as f64;
    McEstimate {
        p_hat,
        std_err: (raw * (1.0 - raw) / trials as f64).sqrt() * p_crash,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{p_new_scenario, p_old_scenario};

    #[test]
    fn new_scenario_estimate_matches_closed_form() {
        // Elevated ber* so the event is observable: with b = 0.01, N = 8,
        // τ = 20, P ≈ 7 · b² · attenuation ≈ 1.6e-4. Fewer trials in debug
        // builds keep `cargo test` fast; the bench target runs the full
        // validation in release mode.
        let trials: u64 = if cfg!(debug_assertions) {
            200_000
        } else {
            2_000_000
        };
        let (n, b, tau) = (8, 0.01, 20);
        let analytic = p_new_scenario(n, b, tau);
        let mc = estimate_new_scenario(n, b, tau, trials, 42);
        assert!(
            mc.consistent_with(analytic, 4.0),
            "MC {} ± {} vs analytic {}",
            mc.p_hat,
            mc.std_err,
            analytic
        );
        assert!(mc.p_hat > 0.0, "the event must actually occur");
    }

    #[test]
    fn old_scenario_estimate_matches_closed_form() {
        let trials: u64 = if cfg!(debug_assertions) {
            150_000
        } else {
            1_000_000
        };
        let (n, b, tau) = (6, 0.02, 16);
        let (lambda, dt) = (1e-3, 5e-3);
        let analytic = p_old_scenario(n, b, tau, lambda, dt);
        let mc = estimate_old_scenario(n, b, tau, lambda, dt, trials, 7);
        assert!(
            mc.consistent_with(analytic, 4.0),
            "MC {} ± {} vs analytic {}",
            mc.p_hat,
            mc.std_err,
            analytic
        );
    }

    #[test]
    fn zero_rate_never_hits() {
        let mc = estimate_new_scenario(4, 0.0, 12, 10_000, 1);
        assert_eq!(mc.p_hat, 0.0);
    }

    #[test]
    fn estimates_are_deterministic_under_seed() {
        let a = estimate_new_scenario(5, 0.05, 12, 50_000, 9);
        let b = estimate_new_scenario(5, 0.05, 12, 50_000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn consistency_band_logic() {
        let e = McEstimate {
            p_hat: 0.5,
            std_err: 0.01,
            trials: 100,
        };
        assert!(e.consistent_with(0.52, 3.0));
        assert!(!e.consistent_with(0.56, 3.0));
    }
}
