//! # majorcan-analysis — the paper's analytic probability model
//!
//! Section 4 of the MajorCAN paper quantifies how often standard CAN breaks
//! Agreement. This crate reproduces that evaluation:
//!
//! * [`ber_star`], [`p_new_scenario`] (Eq. 4), [`p_old_scenario`] (Eq. 5) —
//!   the closed-form per-frame probabilities under the spatial error model
//!   `ber* = ber/N`;
//! * [`table1`] / [`render_table1`] — **Table 1** regenerated at the
//!   paper's reference configuration (1 Mbps, 32 nodes, 90 % load, 110-bit
//!   frames), side by side with the printed values;
//! * [`estimate_new_scenario`] / [`estimate_old_scenario`] — Monte-Carlo
//!   cross-validation of the closed forms by direct event sampling;
//! * [`recommend_m`] / [`residual_incidents_per_hour`] — the Section 5
//!   design aid: how large must `m` be for a given channel quality.
//!
//! # Examples
//!
//! ```
//! use majorcan_analysis::{table1_row, NetworkParams};
//!
//! let params = NetworkParams::paper_reference();
//! let row = table1_row(&params, 1e-4);
//! // Paper, Table 1 first row: IMOnew/hour = 8.80e-3.
//! assert!((row.imo_new_per_hour - 8.80e-3).abs() / 8.80e-3 < 5e-3);
//! // …which is far above the 1e-9/hour aerospace safety bound.
//! assert!(row.imo_new_per_hour > 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod m_choice;
mod model;
mod montecarlo;
mod table1;

pub use m_choice::{p_more_than_m_errors, recommend_m, residual_incidents_per_hour, MChoice};
pub use model::{ber_star, binomial, p_new_scenario, p_old_scenario};
pub use montecarlo::{estimate_new_scenario, estimate_old_scenario, McEstimate};
pub use table1::{render_table1, table1, table1_row, NetworkParams, Table1Row, PAPER_TABLE1};
