//! Choosing the error tolerance `m` — the design aid behind Section 5's
//! opening paragraph.
//!
//! The paper fixes `m = 5` to match the CRC's detection capability, but
//! notes that "this decision strongly depends on the ber value. If ber is
//! larger then larger values of m should be considered. So the new
//! protocol … is designed to be parametrisable in m to make the upgrade
//! simpler." This module quantifies that trade-off:
//!
//! * [`p_more_than_m_errors`] — the probability that a frame suffers more
//!   disturbed bit-views than MajorCAN_m guarantees against (the residual
//!   risk of the agreement machinery being outvoted);
//! * [`residual_incidents_per_hour`] — the same as an hourly rate at a
//!   given network configuration;
//! * [`recommend_m`] — the smallest `m` whose residual rate clears a
//!   target bound (e.g. the 10⁻⁹/h aerospace reference), together with its
//!   wire overhead.

use crate::{binomial, NetworkParams};

/// Probability that strictly more than `m` of the `n · tau_data` bit-views
/// of one frame are disturbed, with each view independently corrupted at
/// `ber_star` (the paper's error model).
///
/// This upper-bounds the probability that MajorCAN_m's per-frame guarantee
/// does not apply; it is conservative because most > m patterns are still
/// absorbed (the sweep experiments show random placements rarely
/// concentrate enough corruption to outvote a node).
///
/// # Panics
///
/// Panics if `ber_star` is not a probability or the frame is empty.
pub fn p_more_than_m_errors(m: usize, n: usize, ber_star: f64, tau_data: usize) -> f64 {
    assert!(
        (0.0..=1.0).contains(&ber_star),
        "ber* must be a probability"
    );
    assert!(n > 0 && tau_data > 0, "frame must have views");
    let views = n * tau_data;
    if ber_star == 0.0 || m >= views {
        return 0.0;
    }
    // P(X > m) = Σ_{k=m+1}^{views} C(views, k) b^k (1-b)^{views-k},
    // summed directly from the small end in log space — the complement
    // form (1 - CDF) is catastrophically cancelled when the tail is tiny.
    let b = ber_star;
    let log_b = b.ln();
    let log_q = (-b).ln_1p();
    let mut tail = 0.0f64;
    for k in (m + 1)..=views {
        let log_term = log_binomial(views, k) + k as f64 * log_b + (views - k) as f64 * log_q;
        let term = log_term.exp();
        tail += term;
        // Terms decay geometrically once k exceeds the mean; stop when the
        // remainder cannot move the sum.
        if term < tail * 1e-18 && k as f64 > views as f64 * b + 10.0 {
            break;
        }
    }
    tail.min(1.0)
}

/// `ln C(n, k)` via `ln Γ`-free products (exact enough for the ranges the
/// model uses).
fn log_binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    if k < 30 {
        return binomial(n, k).ln();
    }
    let mut acc = 0.0;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

/// Residual incidents/hour for MajorCAN_m at a network configuration:
/// frames/hour × P{> m disturbed views in a frame}, with the MajorCAN
/// frame extension (2m − 7 bits) folded into the frame length.
pub fn residual_incidents_per_hour(m: usize, params: &NetworkParams, ber: f64) -> f64 {
    let tau = (params.tau_data as isize + (2 * m as isize - 7)).max(1) as usize;
    let b = crate::ber_star(ber, params.n_nodes);
    p_more_than_m_errors(m, params.n_nodes, b, tau) * params.frames_per_hour()
}

/// One row of the m-selection table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MChoice {
    /// The error tolerance.
    pub m: usize,
    /// Residual incidents/hour (conservative upper bound).
    pub residual_per_hour: f64,
    /// Error-free wire overhead in bits (2m − 7).
    pub overhead_bits: isize,
}

/// The smallest `m ≥ 3` whose residual rate clears `target_per_hour`
/// (searching up to `m = 40`), with the full table of candidates tried.
///
/// Returns `(choice, table)`; `choice` is `None` if even `m = 40` fails.
pub fn recommend_m(
    params: &NetworkParams,
    ber: f64,
    target_per_hour: f64,
) -> (Option<MChoice>, Vec<MChoice>) {
    let mut table = Vec::new();
    let mut choice = None;
    for m in 3..=40usize {
        let row = MChoice {
            m,
            residual_per_hour: residual_incidents_per_hour(m, params, ber),
            overhead_bits: 2 * m as isize - 7,
        };
        table.push(row);
        if choice.is_none() && row.residual_per_hour <= target_per_hour {
            choice = Some(row);
            if m >= 12 {
                break;
            }
        }
        if choice.is_some() && m >= choice.unwrap().m + 2 {
            break;
        }
    }
    (choice, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_means_zero_risk() {
        assert_eq!(p_more_than_m_errors(5, 32, 0.0, 110), 0.0);
    }

    #[test]
    fn more_tolerance_never_increases_risk() {
        let (n, b, tau) = (32, 1e-5, 110);
        let mut prev = f64::INFINITY;
        for m in 1..=10 {
            let p = p_more_than_m_errors(m, n, b, tau);
            assert!(p <= prev, "m={m}: {p} > {prev}");
            prev = p;
        }
    }

    #[test]
    fn matches_direct_binomial_for_small_cases() {
        // n·tau = 12 views, b = 0.1, m = 2: compare against a hand-rolled
        // complement sum.
        let (n, tau, b, m) = (3usize, 4usize, 0.1f64, 2usize);
        let views = n * tau;
        let mut direct = 0.0;
        for k in (m + 1)..=views {
            direct += binomial(views, k) * b.powi(k as i32) * (1.0 - b).powi((views - k) as i32);
        }
        let ours = p_more_than_m_errors(m, n, b, tau);
        assert!((ours - direct).abs() < 1e-12, "{ours} vs {direct}");
    }

    #[test]
    fn m_exceeding_views_is_riskless() {
        assert_eq!(p_more_than_m_errors(1000, 3, 0.5, 10), 0.0);
    }

    #[test]
    fn paper_configuration_m5_clears_the_bound_at_moderate_ber() {
        // At the paper's reference configuration, m = 5 clears the 1e-9/h
        // bound for ber ≤ 1e-5 even under this very conservative criterion
        // (every > m-error frame counted as an incident). At the most
        // aggressive ber = 1e-4 the conservative bound asks for m = 6 —
        // matching the paper's own caveat that "if ber is larger then
        // larger values of m should be considered".
        let params = NetworkParams::paper_reference();
        assert!(residual_incidents_per_hour(5, &params, 1e-5) < 1e-9);
        assert!(residual_incidents_per_hour(5, &params, 1e-6) < 1e-9);
        let at_worst_ber = residual_incidents_per_hour(5, &params, 1e-4);
        assert!(
            at_worst_ber > 1e-9 && at_worst_ber < 1e-6,
            "conservative residual at m=5, ber=1e-4: {at_worst_ber:.3e}"
        );
        assert!(residual_incidents_per_hour(6, &params, 1e-4) < 1e-9);
    }

    #[test]
    fn harsher_channels_need_larger_m() {
        let params = NetworkParams::paper_reference();
        let (choice_mild, _) = recommend_m(&params, 1e-4, 1e-9);
        let (choice_harsh, _) = recommend_m(&params, 3e-2, 1e-9);
        let mild = choice_mild.expect("mild channel solvable");
        let harsh = choice_harsh.expect("harsh channel solvable");
        assert!(
            mild.m <= 7,
            "paper regime: small m suffices (got {})",
            mild.m
        );
        assert!(
            harsh.m > mild.m,
            "harsher channel must demand more tolerance: {} vs {}",
            harsh.m,
            mild.m
        );
    }

    #[test]
    fn recommendation_table_is_monotone() {
        let params = NetworkParams::paper_reference();
        let (_, table) = recommend_m(&params, 1e-3, 1e-9);
        for pair in table.windows(2) {
            assert!(pair[1].residual_per_hour <= pair[0].residual_per_hour);
            assert_eq!(pair[1].overhead_bits - pair[0].overhead_bits, 2);
        }
    }
}
