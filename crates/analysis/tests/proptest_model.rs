//! Property-based tests of the analytic model: bounds, monotonicity and
//! structural identities of Eq. 2–5 across the parameter space.

use majorcan_analysis::{
    ber_star, binomial, p_new_scenario, p_old_scenario, table1_row, NetworkParams,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn probabilities_are_probabilities(
        n in 3usize..64,
        ber in 0.0f64..1.0,
        tau in 2usize..300,
    ) {
        let b = ber_star(ber, n);
        let p = p_new_scenario(n, b, tau);
        prop_assert!((0.0..=1.0).contains(&p), "p_new={p}");
        let q = p_old_scenario(n, b, tau, 1e-3, 5e-3);
        prop_assert!((0.0..=1.0).contains(&q), "p_old={q}");
    }

    #[test]
    fn monotone_in_ber_star(
        n in 3usize..40,
        tau in 10usize..200,
        b in 1e-9f64..1e-5,
    ) {
        // In the small-b regime the scenario probability grows with b (at
        // large b·n·τ the (1-b)^... attenuation eventually dominates and
        // the relation genuinely reverses, so the range stays small).
        let p_lo = p_new_scenario(n, b, tau);
        let p_hi = p_new_scenario(n, b * 2.0, tau);
        prop_assert!(p_hi > p_lo);
    }

    #[test]
    fn decreasing_in_frame_length(
        n in 3usize..40,
        b in 1e-7f64..1e-4,
        tau in 10usize..150,
    ) {
        // Longer frames give more chances for a disqualifying error, so the
        // per-frame probability of the exact pattern shrinks.
        let p_short = p_new_scenario(n, b, tau);
        let p_long = p_new_scenario(n, b, tau + 50);
        prop_assert!(p_long < p_short);
    }

    #[test]
    fn small_b_first_order_matches_n_minus_1_b_squared(
        n in 3usize..40,
        tau in 10usize..150,
    ) {
        let b = 1e-12;
        let p = p_new_scenario(n, b, tau);
        let approx = (n as f64 - 1.0) * b * b;
        prop_assert!((p - approx).abs() <= approx * 1e-3);
    }

    #[test]
    fn old_scenario_scales_linearly_with_crash_window(
        n in 3usize..40,
        b in 1e-7f64..1e-4,
        tau in 10usize..150,
    ) {
        // In the linear regime of 1 - e^{-λΔt}, doubling Δt doubles P.
        let p1 = p_old_scenario(n, b, tau, 1e-3, 5e-3);
        let p2 = p_old_scenario(n, b, tau, 1e-3, 10e-3);
        prop_assert!((p2 / p1 - 2.0).abs() < 1e-6, "ratio {}", p2 / p1);
    }

    #[test]
    fn binomial_symmetry_and_pascal(n in 1usize..40, k in 0usize..40) {
        prop_assume!(k <= n);
        prop_assert_eq!(binomial(n, k), binomial(n, n - k));
        if k >= 1 {
            // Pascal's rule, up to f64 rounding of the multiplicative form.
            let lhs = binomial(n + 1, k);
            let rhs = binomial(n, k) + binomial(n, k - 1);
            prop_assert!((lhs - rhs).abs() <= rhs * 1e-12, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn incidents_per_hour_scale_with_load(load in 0.05f64..1.0) {
        let mut params = NetworkParams::paper_reference();
        params.load = load;
        let row = table1_row(&params, 1e-5);
        let reference = table1_row(&NetworkParams::paper_reference(), 1e-5);
        let expected = reference.imo_new_per_hour * load / 0.9;
        prop_assert!((row.imo_new_per_hour - expected).abs() < expected * 1e-9);
    }
}
