//! Lane-vs-scalar throughput measurement: 64-lane cohort execution
//! ([`Testbed::run_lanes`]) against the scalar reused hot loop
//! ([`Testbed::run_schedule`]).
//!
//! The workload is the one the lane engine exists for and the prefix-fork
//! batcher cannot help with: **prefix-free** random schedules, as produced
//! by the falsifier's random fault models — every schedule's first
//! disturbance is drawn independently, so sorting by prefix yields groups
//! of one. The scalar loop replays every schedule from bit zero and burns
//! the full bit budget per run; the lane engine rides up to 64 schedules
//! on one fault-free trunk, peels each at its first possible divergence
//! bit and ends every run at quiescence. [`measure`] asserts both paths
//! classify every schedule identically before it reports a rate, and the
//! result is rendered as the `BENCH_lanes.json` artifact (schema-guarded
//! by `scripts/check.sh`).

use crate::hotpath::schema_fingerprint as hotpath_fingerprint;
use crate::outcome::Outcome;
use crate::testbed::Testbed;
use majorcan_campaign::json::Value;
use majorcan_campaign::ProtocolSpec;
use majorcan_can::Field;
use majorcan_faults::Disturbance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Schema tag written into `BENCH_lanes.json`; bump when the layout of
/// the artifact changes. `scripts/check.sh` fails when a regenerated
/// artifact's key structure drifts from the committed one.
pub const LANES_SCHEMA: &str = "majorcan-bench-lanes-v1";

/// The link-layer protocols the artifact reports on (the lane cohort
/// path is link-layer; HLP clusters fall back to scalar).
pub const LANES_PROTOCOLS: [ProtocolSpec; 3] = [
    ProtocolSpec::StandardCan,
    ProtocolSpec::MinorCan,
    ProtocolSpec::MajorCan { m: 5 },
];

/// Lane-eligible fields the pool draws from — frame-interior and
/// frame-tail positions, the falsifier's bread and butter.
const POOL_FIELDS: [Field; 8] = [
    Field::Id,
    Field::Dlc,
    Field::Data,
    Field::Crc,
    Field::CrcDelim,
    Field::AckSlot,
    Field::AckDelim,
    Field::ErrorFlag,
];

/// A deterministic pool of **prefix-free** schedules: 1–3 disturbances
/// each, every one drawn independently, so no two schedules share a
/// leading disturbance by construction bias (collisions are possible but
/// rare — the point is there are no *families*). A sprinkle of empty
/// schedules, occurrence-2 entries, stuff-bit targets and scalar-only
/// (`Idle`-targeting) schedules keeps the peel bookkeeping and the
/// scalar fallback honest.
pub fn prefix_free_pool(seed: u64, count: usize) -> Vec<Vec<Disturbance>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = Vec::with_capacity(count);
    for _ in 0..count {
        if rng.gen_range(0..24) == 0 {
            pool.push(Vec::new()); // fault-free lanes ride the trunk whole
            continue;
        }
        if rng.gen_range(0..16) == 0 {
            // A scalar-only lane: Idle is a drive-phase-transition field.
            pool.push(vec![Disturbance::first(
                rng.gen_range(0..3),
                Field::Idle,
                0,
            )]);
            continue;
        }
        let n = rng.gen_range(1..=3);
        let mut schedule = Vec::with_capacity(n);
        for _ in 0..n {
            let node = rng.gen_range(0..3);
            let field = POOL_FIELDS[rng.gen_range(0..POOL_FIELDS.len())];
            let index = match field {
                Field::Id => rng.gen_range(0..11),
                Field::Dlc => rng.gen_range(0..4),
                Field::Data => rng.gen_range(0..16),
                Field::Crc => rng.gen_range(0..15),
                Field::ErrorFlag => rng.gen_range(0..6),
                _ => 0,
            };
            let mut d = Disturbance::first(node, field, index);
            if rng.gen_range(0..12) == 0 {
                d.occurrence = 2;
            }
            if rng.gen_range(0..12) == 0 && matches!(field, Field::Id | Field::Data) {
                d.stuff = true;
            }
            schedule.push(d);
        }
        pool.push(schedule);
    }
    pool
}

/// One protocol's measurement.
#[derive(Debug, Clone)]
pub struct LaneRow {
    /// The protocol measured.
    pub protocol: ProtocolSpec,
    /// Cluster width.
    pub n_nodes: usize,
    /// Schedules evaluated per mode.
    pub schedules: usize,
    /// Scalar reused-testbed (`run_schedule`) throughput.
    pub scalar_runs_per_sec: f64,
    /// 64-lane cohort (`run_lanes`) throughput.
    pub lane_runs_per_sec: f64,
}

impl LaneRow {
    /// Throughput multiple of the lane engine over the scalar loop.
    pub fn speedup(&self) -> f64 {
        self.lane_runs_per_sec / self.scalar_runs_per_sec
    }
}

/// Times both evaluation paths for `protocol` over `pool` and returns
/// their throughputs. Panics if any schedule classifies differently
/// through the lane engine than through the scalar hot loop — the
/// speedup must not change a single verdict.
pub fn measure(protocol: ProtocolSpec, n_nodes: usize, pool: &[Vec<Disturbance>]) -> LaneRow {
    let refs: Vec<&[Disturbance]> = pool.iter().map(Vec::as_slice).collect();
    let mut tb = Testbed::builder(protocol).nodes(n_nodes).build();

    // Correctness first: identical outcomes, schedule by schedule.
    let scalar: Vec<Outcome> = pool.iter().map(|s| tb.run_schedule(s)).collect();
    let laned = tb.run_lanes(&refs);
    for (i, (l, s)) in laned.iter().zip(&scalar).enumerate() {
        assert_eq!(
            l, s,
            "{protocol}: schedule {i} classifies differently laned vs scalar"
        );
    }

    let start = Instant::now();
    for schedule in pool {
        std::hint::black_box(tb.run_schedule(schedule));
    }
    let scalar_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    std::hint::black_box(tb.run_lanes(&refs));
    let lane_secs = start.elapsed().as_secs_f64();

    LaneRow {
        protocol,
        n_nodes,
        schedules: pool.len(),
        scalar_runs_per_sec: pool.len() as f64 / scalar_secs.max(1e-9),
        lane_runs_per_sec: pool.len() as f64 / lane_secs.max(1e-9),
    }
}

/// Renders measurement rows as the `BENCH_lanes.json` document.
pub fn report_to_json(mode: &str, seed: u64, rows: &[LaneRow]) -> Value {
    let mut doc = Value::obj();
    doc.set("schema", LANES_SCHEMA.into());
    doc.set("mode", mode.into());
    doc.set("seed", seed.into());
    let mut arr = Vec::with_capacity(rows.len());
    for row in rows {
        let mut r = Value::obj();
        r.set("protocol", row.protocol.to_string().into());
        r.set("n_nodes", row.n_nodes.into());
        r.set("schedules", row.schedules.into());
        r.set("scalar_runs_per_sec", Value::F64(row.scalar_runs_per_sec));
        r.set("lane_runs_per_sec", Value::F64(row.lane_runs_per_sec));
        r.set("speedup", Value::F64(row.speedup()));
        arr.push(r);
    }
    doc.set("rows", Value::Arr(arr));
    let min = rows
        .iter()
        .map(LaneRow::speedup)
        .fold(f64::INFINITY, f64::min);
    doc.set("min_speedup", Value::F64(min));
    doc
}

/// The canonical key-path set of a `BENCH_lanes.json` document — the
/// schema drift guard (same walk as the hotpath artifact's).
pub fn schema_fingerprint(doc: &Value) -> Vec<String> {
    hotpath_fingerprint(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_deterministic_and_prefix_free() {
        assert_eq!(prefix_free_pool(7, 40), prefix_free_pool(7, 40));
        assert_ne!(prefix_free_pool(7, 40), prefix_free_pool(8, 40));
        let pool = prefix_free_pool(7, 128);
        assert_eq!(pool.len(), 128);
        // No families: consecutive schedules almost never share a first
        // disturbance (the batcher's tail_pool shares in the dozens).
        let shared = pool
            .windows(2)
            .filter(|w| !w[0].is_empty() && w[0].first() == w[1].first())
            .count();
        assert!(
            shared <= 6,
            "{shared} prefix-sharing neighbours — pool grew families"
        );
    }

    #[test]
    fn laned_matches_scalar_on_every_protocol() {
        let pool = prefix_free_pool(0x1A9E5, 24);
        for protocol in LANES_PROTOCOLS {
            // measure() itself asserts outcome identity before timing.
            let row = measure(protocol, 3, &pool);
            assert_eq!(row.schedules, 24);
        }
    }

    #[test]
    fn report_schema_is_stable_across_modes_and_measurements() {
        let rows = [
            LaneRow {
                protocol: ProtocolSpec::StandardCan,
                n_nodes: 3,
                schedules: 10,
                scalar_runs_per_sec: 100.0,
                lane_runs_per_sec: 900.0,
            },
            LaneRow {
                protocol: ProtocolSpec::MinorCan,
                n_nodes: 3,
                schedules: 10,
                scalar_runs_per_sec: 50.0,
                lane_runs_per_sec: 600.0,
            },
        ];
        let quick = report_to_json("quick", 1, &rows[..1]);
        let full = report_to_json("full", 2, &rows);
        assert_eq!(schema_fingerprint(&quick), schema_fingerprint(&full));
        assert_eq!(full.get("min_speedup").and_then(Value::as_f64), Some(9.0));
        let mut truncated = Value::obj();
        truncated.set("schema", LANES_SCHEMA.into());
        assert_ne!(schema_fingerprint(&quick), schema_fingerprint(&truncated));
    }
}
