//! Batch-vs-scalar throughput measurement: prefix-fork execution
//! ([`Testbed::run_batch`]) against the scalar reused hot loop
//! ([`Testbed::run_schedule`]).
//!
//! The workload is shaped like the falsifier's: schedules arrive in
//! families sharing a disturbance prefix and differing in a tail-biased
//! last edit (EOF, error-flag and frame-tail-delimiter positions). The
//! scalar loop replays every family member from bit zero and burns the
//! full bit budget per run; the batch engine simulates each shared prefix
//! once, forks the tails from a snapshot and ends runs at quiescence.
//! [`measure`] asserts both paths classify every schedule identically
//! before it reports a rate, and the result is rendered as the
//! `BENCH_batch.json` artifact (schema-guarded by `scripts/check.sh`).

use crate::hotpath::schema_fingerprint as hotpath_fingerprint;
use crate::outcome::Outcome;
use crate::testbed::Testbed;
use majorcan_campaign::json::Value;
use majorcan_campaign::ProtocolSpec;
use majorcan_can::Field;
use majorcan_faults::Disturbance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Schema tag written into `BENCH_batch.json`; bump when the layout of
/// the artifact changes. `scripts/check.sh` fails when a regenerated
/// artifact's key structure drifts from the committed one.
pub const BATCH_SCHEMA: &str = "majorcan-bench-batch-v1";

/// The link-layer protocols the artifact reports on (the batch engine's
/// prefix-fork path is link-layer; HLP clusters fall back to scalar).
pub const BATCH_PROTOCOLS: [ProtocolSpec; 3] = [
    ProtocolSpec::StandardCan,
    ProtocolSpec::MinorCan,
    ProtocolSpec::MajorCan { m: 5 },
];

/// Schedules per prefix family in [`tail_pool`].
const FAMILY: usize = 8;

/// A deterministic pool of tail-biased schedule families: every chunk of
/// [`FAMILY`] schedules shares a 1–2 disturbance prefix (mid-frame data /
/// CRC hits) and differs only in one last frame-tail edit — the shape the
/// falsifier's generator concentrates on, and the shape prefix-fork
/// execution exists for. A sprinkle of empty and occurrence-2 schedules
/// keeps the scalar fallback and occurrence accounting honest.
pub fn tail_pool(seed: u64, count: usize) -> Vec<Vec<Disturbance>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = Vec::with_capacity(count);
    while pool.len() < count {
        let mut prefix = vec![Disturbance::first(
            rng.gen_range(0..3),
            Field::Data,
            rng.gen_range(0..16),
        )];
        if rng.gen_bool(0.5) {
            prefix.push(Disturbance::first(
                rng.gen_range(0..3),
                Field::Crc,
                rng.gen_range(0..15),
            ));
        }
        for _ in 0..FAMILY {
            if pool.len() >= count {
                break;
            }
            if rng.gen_range(0..16) == 0 {
                pool.push(Vec::new()); // fault-free runs ride along
                continue;
            }
            let node = rng.gen_range(0..3);
            let mut tail = match rng.gen_range(0..4) {
                0 => Disturbance::eof(node, rng.gen_range(1..=7)),
                1 => Disturbance::first(node, Field::ErrorFlag, rng.gen_range(0..6)),
                2 => Disturbance::first(node, Field::AckDelim, 0),
                _ => Disturbance::first(node, Field::CrcDelim, 0),
            };
            if rng.gen_range(0..10) == 0 {
                tail.occurrence = 2;
            }
            let mut schedule = prefix.clone();
            schedule.push(tail);
            pool.push(schedule);
        }
    }
    pool
}

/// One protocol's measurement.
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// The protocol measured.
    pub protocol: ProtocolSpec,
    /// Cluster width.
    pub n_nodes: usize,
    /// Schedules evaluated per mode.
    pub schedules: usize,
    /// Scalar reused-testbed (`run_schedule`) throughput.
    pub scalar_runs_per_sec: f64,
    /// Prefix-fork batch (`run_batch`) throughput.
    pub batch_runs_per_sec: f64,
}

impl BatchRow {
    /// Throughput multiple of the batch engine over the scalar loop.
    pub fn speedup(&self) -> f64 {
        self.batch_runs_per_sec / self.scalar_runs_per_sec
    }
}

/// Times both evaluation paths for `protocol` over `pool` and returns
/// their throughputs. Panics if any schedule classifies differently
/// through the batch engine than through the scalar hot loop — the
/// speedup must not change a single verdict.
pub fn measure(protocol: ProtocolSpec, n_nodes: usize, pool: &[Vec<Disturbance>]) -> BatchRow {
    let refs: Vec<&[Disturbance]> = pool.iter().map(Vec::as_slice).collect();
    let mut tb = Testbed::builder(protocol).nodes(n_nodes).build();

    // Correctness first: identical outcomes, schedule by schedule.
    let scalar: Vec<Outcome> = pool.iter().map(|s| tb.run_schedule(s)).collect();
    let batch = tb.run_batch(&refs);
    for (i, (b, s)) in batch.iter().zip(&scalar).enumerate() {
        assert_eq!(
            b, s,
            "{protocol}: schedule {i} classifies differently batch vs scalar"
        );
    }

    let start = Instant::now();
    for schedule in pool {
        std::hint::black_box(tb.run_schedule(schedule));
    }
    let scalar_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    std::hint::black_box(tb.run_batch(&refs));
    let batch_secs = start.elapsed().as_secs_f64();

    BatchRow {
        protocol,
        n_nodes,
        schedules: pool.len(),
        scalar_runs_per_sec: pool.len() as f64 / scalar_secs.max(1e-9),
        batch_runs_per_sec: pool.len() as f64 / batch_secs.max(1e-9),
    }
}

/// Renders measurement rows as the `BENCH_batch.json` document.
pub fn report_to_json(mode: &str, seed: u64, rows: &[BatchRow]) -> Value {
    let mut doc = Value::obj();
    doc.set("schema", BATCH_SCHEMA.into());
    doc.set("mode", mode.into());
    doc.set("seed", seed.into());
    let mut arr = Vec::with_capacity(rows.len());
    for row in rows {
        let mut r = Value::obj();
        r.set("protocol", row.protocol.to_string().into());
        r.set("n_nodes", row.n_nodes.into());
        r.set("schedules", row.schedules.into());
        r.set("scalar_runs_per_sec", Value::F64(row.scalar_runs_per_sec));
        r.set("batch_runs_per_sec", Value::F64(row.batch_runs_per_sec));
        r.set("speedup", Value::F64(row.speedup()));
        arr.push(r);
    }
    doc.set("rows", Value::Arr(arr));
    let min = rows
        .iter()
        .map(BatchRow::speedup)
        .fold(f64::INFINITY, f64::min);
    doc.set("min_speedup", Value::F64(min));
    doc
}

/// The canonical key-path set of a `BENCH_batch.json` document — the
/// schema drift guard (same walk as the hotpath artifact's).
pub fn schema_fingerprint(doc: &Value) -> Vec<String> {
    hotpath_fingerprint(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_pool_is_deterministic_and_family_shaped() {
        assert_eq!(tail_pool(7, 40), tail_pool(7, 40));
        assert_ne!(tail_pool(7, 40), tail_pool(8, 40));
        let pool = tail_pool(7, 64);
        assert_eq!(pool.len(), 64);
        // Families share prefixes: plenty of consecutive schedule pairs
        // agree on their first disturbance.
        let shared = pool
            .windows(2)
            .filter(|w| !w[0].is_empty() && w[0].first() == w[1].first())
            .count();
        assert!(shared >= 16, "only {shared} prefix-sharing neighbours");
    }

    #[test]
    fn batch_matches_scalar_on_every_protocol() {
        let pool = tail_pool(0xBA7C4, 24);
        for protocol in BATCH_PROTOCOLS {
            // measure() itself asserts outcome identity before timing.
            let row = measure(protocol, 3, &pool);
            assert_eq!(row.schedules, 24);
        }
    }

    #[test]
    fn report_schema_is_stable_across_modes_and_measurements() {
        let rows = [
            BatchRow {
                protocol: ProtocolSpec::StandardCan,
                n_nodes: 3,
                schedules: 10,
                scalar_runs_per_sec: 100.0,
                batch_runs_per_sec: 900.0,
            },
            BatchRow {
                protocol: ProtocolSpec::MinorCan,
                n_nodes: 3,
                schedules: 10,
                scalar_runs_per_sec: 50.0,
                batch_runs_per_sec: 300.0,
            },
        ];
        let quick = report_to_json("quick", 1, &rows[..1]);
        let full = report_to_json("full", 2, &rows);
        assert_eq!(schema_fingerprint(&quick), schema_fingerprint(&full));
        assert_eq!(full.get("min_speedup").and_then(Value::as_f64), Some(6.0));
        let mut truncated = Value::obj();
        truncated.set("schema", BATCH_SCHEMA.into());
        assert_ne!(schema_fingerprint(&quick), schema_fingerprint(&truncated));
    }
}
