//! The closed set of fault channels a [`Testbed`](crate::Testbed) run can
//! install.
//!
//! Every experiment path in the workspace uses one of a handful of channel
//! shapes; enumerating them here lets the testbed hold a single concrete
//! simulator type per protocol (no generics explosion, no boxing on the
//! per-bit hot path) while still swapping the fault model per run.

use majorcan_can::WirePos;
use majorcan_faults::{
    ActiveAfter, AttackAction, Attacker, BurstErrors, Disturbance, FieldFiltered,
    GlobalEventErrors, IndependentBitErrors, ScriptedFaults,
};
use majorcan_sim::{ChannelModel, Level, NodeId};

/// A fault channel for one testbed run.
///
/// The variants cover every channel composition the experiment binaries
/// use: a clean bus, a deterministic disturbance script, and the three
/// random models of the Monte-Carlo campaigns (always armed only after the
/// 11-bit bus-integration phase, matching the probability model's lack of a
/// start-up phase).
#[derive(Debug)]
pub enum BusChannel {
    /// Fault-free bus.
    NoFaults,
    /// Deterministic disturbance script (scenarios, falsifier schedules).
    Scripted(ScriptedFaults),
    /// Independent per-node-per-bit errors over the whole frame.
    IndepFull(ActiveAfter<IndependentBitErrors>),
    /// Independent errors confined to the EOF (the paper's model domain).
    IndepEof(ActiveAfter<FieldFiltered<IndependentBitErrors>>),
    /// Globally correlated error events confined to the EOF.
    GlobalEof(ActiveAfter<FieldFiltered<GlobalEventErrors>>),
    /// Periodic error bursts over the whole frame (the soak-traffic
    /// impairment model).
    Bursts(ActiveAfter<BurstErrors>),
    /// A budgeted adversary injecting dominant levels (attack campaigns
    /// and bus-off soak threading).
    Attack(Attacker),
}

/// Manual impl so same-variant `clone_from` reuses the destination's
/// backing storage: the batch engine restores the snapshotted script into
/// a live channel once per fork, and a derived `clone_from` would
/// reallocate the script's backing `Vec` every time.
impl Clone for BusChannel {
    fn clone(&self) -> Self {
        match self {
            BusChannel::NoFaults => BusChannel::NoFaults,
            BusChannel::Scripted(c) => BusChannel::Scripted(c.clone()),
            BusChannel::IndepFull(c) => BusChannel::IndepFull(c.clone()),
            BusChannel::IndepEof(c) => BusChannel::IndepEof(c.clone()),
            BusChannel::GlobalEof(c) => BusChannel::GlobalEof(c.clone()),
            BusChannel::Bursts(c) => BusChannel::Bursts(c.clone()),
            BusChannel::Attack(c) => BusChannel::Attack(c.clone()),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        match (self, source) {
            (BusChannel::Scripted(dst), BusChannel::Scripted(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl BusChannel {
    /// A scripted channel over `disturbances`.
    pub fn scripted(disturbances: Vec<Disturbance>) -> BusChannel {
        BusChannel::Scripted(ScriptedFaults::new(disturbances))
    }

    /// Independent bit errors at raw rate `ber_star`, armed after bus
    /// integration, over the whole frame.
    pub fn indep_full(ber_star: f64, seed: u64) -> BusChannel {
        BusChannel::IndepFull(ActiveAfter::new(
            11,
            IndependentBitErrors::new(ber_star, seed),
        ))
    }

    /// Independent bit errors confined to the EOF.
    pub fn indep_eof(ber_star: f64, seed: u64) -> BusChannel {
        BusChannel::IndepEof(ActiveAfter::new(
            11,
            FieldFiltered::eof_only(IndependentBitErrors::new(ber_star, seed)),
        ))
    }

    /// Globally correlated EOF error events at rate `ber` with the uniform
    /// node spread.
    pub fn global_eof(ber: f64, n_nodes: usize, seed: u64) -> BusChannel {
        BusChannel::GlobalEof(ActiveAfter::new(
            11,
            FieldFiltered::eof_only(GlobalEventErrors::with_uniform_spread(ber, n_nodes, seed)),
        ))
    }

    /// Periodic error bursts of `len` bits every `period` bits at
    /// per-view rate `ber_star`, armed after bus integration.
    pub fn bursts(period: u64, len: u64, ber_star: f64, seed: u64) -> BusChannel {
        BusChannel::Bursts(ActiveAfter::new(
            11,
            BurstErrors::new(period, len, ber_star, seed),
        ))
    }

    /// A budgeted attacker channel over `actions`.
    pub fn attack(actions: Vec<AttackAction>, budget: u64) -> BusChannel {
        BusChannel::Attack(Attacker::new(actions, budget))
    }

    /// The armed attacker, if this channel is an attack channel.
    pub fn attacker(&self) -> Option<&Attacker> {
        match self {
            BusChannel::Attack(a) => Some(a),
            _ => None,
        }
    }

    /// The scripted disturbances that have not fired, in script order
    /// (empty for non-scripted channels; attack actions are reported by
    /// [`Attacker::unfired_actions`] instead, since they are not
    /// [`Disturbance`]s).
    pub fn unfired(&self) -> Vec<Disturbance> {
        match self {
            BusChannel::Scripted(s) => s.unfired(),
            _ => Vec::new(),
        }
    }

    /// Number of scripted disturbances or attack actions that have not
    /// fired.
    pub fn unfired_len(&self) -> usize {
        match self {
            BusChannel::Scripted(s) => s.remaining(),
            BusChannel::Attack(a) => a.unfired_len(),
            _ => 0,
        }
    }
}

impl ChannelModel<WirePos> for BusChannel {
    fn disturb(&mut self, bit: u64, node: NodeId, tag: &WirePos, wire: Level) -> bool {
        match self {
            BusChannel::NoFaults => false,
            BusChannel::Scripted(c) => c.disturb(bit, node, tag, wire),
            BusChannel::IndepFull(c) => c.disturb(bit, node, tag, wire),
            BusChannel::IndepEof(c) => c.disturb(bit, node, tag, wire),
            BusChannel::GlobalEof(c) => c.disturb(bit, node, tag, wire),
            BusChannel::Bursts(c) => c.disturb(bit, node, tag, wire),
            BusChannel::Attack(c) => c.disturb(bit, node, tag, wire),
        }
    }

    fn quiet_until(&self, now: u64) -> u64 {
        match self {
            BusChannel::NoFaults => u64::MAX,
            BusChannel::Scripted(c) => ChannelModel::<WirePos>::quiet_until(c, now),
            BusChannel::Bursts(c) => ChannelModel::<WirePos>::quiet_until(c, now),
            // The per-call-rng models and the stateful attacker make no
            // skippability promise.
            BusChannel::IndepFull(_) | BusChannel::IndepEof(_) | BusChannel::GlobalEof(_) => now,
            BusChannel::Attack(_) => now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_channel_reports_unfired() {
        let ch = BusChannel::scripted(vec![Disturbance::eof(1, 6)]);
        assert_eq!(ch.unfired_len(), 1);
        assert_eq!(ch.unfired(), vec![Disturbance::eof(1, 6)]);
        assert_eq!(BusChannel::NoFaults.unfired_len(), 0);
    }
}
