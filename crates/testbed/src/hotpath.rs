//! Hot-loop throughput measurement: rebuild-per-run vs reused testbed.
//!
//! Before the testbed existed, every schedule evaluation assembled a fresh
//! cluster, switched bit-level trace recording on, ran the script and then
//! copied the events and trace out into a [`ScenarioRun`](crate::ScenarioRun)
//! — per-run allocation that dominated long falsification campaigns. The
//! [`Testbed::run_schedule`](crate::Testbed::run_schedule) hot loop keeps
//! one cluster alive, reloads the script into the existing channel
//! allocation and leaves tracing off.
//!
//! This module measures both shapes over the same deterministic schedule
//! pool and renders the result as the `BENCH_hotpath.json` artifact (see
//! [`report_to_json`]). The two shapes must classify every schedule
//! identically; [`measure`] asserts this before it reports a rate.

use crate::outcome::Outcome;
use crate::testbed::{budget_for, Testbed, HLP_PROBE_PAYLOAD};
use majorcan_campaign::json::Value;
use majorcan_campaign::ProtocolSpec;
use majorcan_can::Field;
use majorcan_faults::{scenario_frame, Disturbance, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Schema tag written into `BENCH_hotpath.json`; bump when the layout of
/// the artifact changes. `scripts/check.sh` fails when a regenerated
/// artifact's key structure drifts from the committed one.
pub const HOTPATH_SCHEMA: &str = "majorcan-bench-hotpath-v1";

/// The protocols the artifact reports on: one plain link layer, the
/// paper's protocol, and one FTCS'98 higher-level protocol.
pub const HOTPATH_PROTOCOLS: [ProtocolSpec; 3] = [
    ProtocolSpec::StandardCan,
    ProtocolSpec::MajorCan { m: 5 },
    ProtocolSpec::TotCan,
];

/// A deterministic pool of disturbance schedules shaped like the ones the
/// falsifier's generator emits: mostly small scripts against the data and
/// EOF fields, with some empty (fault-free) runs mixed in.
pub fn schedule_pool(seed: u64, count: usize) -> Vec<Vec<Disturbance>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = Vec::with_capacity(count);
    for i in 0..count {
        let schedule = match i % 8 {
            0 => Vec::new(), // fault-free runs are part of any campaign
            1 => Scenario::fig1b().disturbances,
            2 => Scenario::fig3a().disturbances,
            _ => {
                let len = rng.gen_range(1..=3);
                (0..len)
                    .map(|_| {
                        let node = rng.gen_range(0..3);
                        match rng.gen_range(0..3) {
                            0 => Disturbance::eof(node, rng.gen_range(1..=7)),
                            1 => Disturbance::first(node, Field::Data, rng.gen_range(0..16)),
                            _ => Disturbance::first(node, Field::ErrorFlag, rng.gen_range(0..6)),
                        }
                    })
                    .collect()
            }
        };
        pool.push(schedule);
    }
    pool
}

/// Evaluates one schedule the way the pre-testbed oracle did: assemble a
/// fresh cluster via [`Testbed::builder`], record the bit-level trace,
/// run, classify. Private on purpose — it exists only as the
/// rebuild-per-run baseline `run_schedule` is measured against; every
/// real caller assembles through the builder.
fn rebuild_and_run(protocol: ProtocolSpec, n_nodes: usize, schedule: &[Disturbance]) -> Outcome {
    let mut tb = Testbed::builder(protocol)
        .nodes(n_nodes)
        .trace(true)
        .build();
    tb.load_script(schedule);
    if protocol.is_hlp() {
        tb.broadcast(0, HLP_PROBE_PAYLOAD);
    } else {
        tb.enqueue(0, scenario_frame());
    }
    tb.run(budget_for(protocol));
    tb.outcome()
}

/// One protocol's measurement.
#[derive(Debug, Clone)]
pub struct HotpathRow {
    /// The protocol measured.
    pub protocol: ProtocolSpec,
    /// Cluster width.
    pub n_nodes: usize,
    /// Schedules evaluated per mode.
    pub schedules: usize,
    /// Rebuild-per-run baseline throughput.
    pub rebuild_runs_per_sec: f64,
    /// Reused-testbed hot-loop throughput.
    pub reused_runs_per_sec: f64,
}

impl HotpathRow {
    /// Percentage improvement of the reused hot loop over the baseline.
    pub fn improvement_pct(&self) -> f64 {
        (self.reused_runs_per_sec / self.rebuild_runs_per_sec - 1.0) * 100.0
    }
}

/// Times both evaluation shapes for `protocol` over `pool` and returns
/// their throughputs. Panics if any schedule classifies differently on
/// the reused testbed than on a fresh one — the speedup must not change
/// a single verdict.
pub fn measure(protocol: ProtocolSpec, n_nodes: usize, pool: &[Vec<Disturbance>]) -> HotpathRow {
    // Correctness first: identical outcomes, schedule by schedule.
    let mut reused = Testbed::builder(protocol).nodes(n_nodes).build();
    for (i, schedule) in pool.iter().enumerate() {
        let warm = reused.run_schedule(schedule);
        let cold = rebuild_and_run(protocol, n_nodes, schedule);
        assert_eq!(
            warm, cold,
            "{protocol}: schedule {i} classifies differently reused vs rebuilt"
        );
    }

    let start = Instant::now();
    for schedule in pool {
        std::hint::black_box(rebuild_and_run(protocol, n_nodes, schedule));
    }
    let rebuild_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for schedule in pool {
        std::hint::black_box(reused.run_schedule(schedule));
    }
    let reused_secs = start.elapsed().as_secs_f64();

    HotpathRow {
        protocol,
        n_nodes,
        schedules: pool.len(),
        rebuild_runs_per_sec: pool.len() as f64 / rebuild_secs.max(1e-9),
        reused_runs_per_sec: pool.len() as f64 / reused_secs.max(1e-9),
    }
}

/// Renders measurement rows as the `BENCH_hotpath.json` document.
pub fn report_to_json(mode: &str, seed: u64, rows: &[HotpathRow]) -> Value {
    let mut doc = Value::obj();
    doc.set("schema", HOTPATH_SCHEMA.into());
    doc.set("mode", mode.into());
    doc.set("seed", seed.into());
    let mut arr = Vec::with_capacity(rows.len());
    for row in rows {
        let mut r = Value::obj();
        r.set("protocol", row.protocol.to_string().into());
        r.set("n_nodes", row.n_nodes.into());
        r.set("schedules", row.schedules.into());
        r.set("rebuild_runs_per_sec", Value::F64(row.rebuild_runs_per_sec));
        r.set("reused_runs_per_sec", Value::F64(row.reused_runs_per_sec));
        r.set("improvement_pct", Value::F64(row.improvement_pct()));
        arr.push(r);
    }
    doc.set("rows", Value::Arr(arr));
    let min = rows
        .iter()
        .map(HotpathRow::improvement_pct)
        .fold(f64::INFINITY, f64::min);
    doc.set("min_improvement_pct", Value::F64(min));
    doc
}

/// The set of key paths a `BENCH_hotpath.json` document contains, in a
/// canonical order. Two documents with the same fingerprint have the same
/// schema even when every measured number differs.
pub fn schema_fingerprint(doc: &Value) -> Vec<String> {
    fn walk(value: &Value, path: &str, out: &mut Vec<String>) {
        match value {
            Value::Obj(pairs) => {
                for (k, v) in pairs {
                    let child = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    walk(v, &child, out);
                }
            }
            Value::Arr(items) => {
                // Rows share one shape; fingerprint the first element.
                if let Some(first) = items.first() {
                    walk(first, &format!("{path}[]"), out);
                } else {
                    out.push(format!("{path}[]"));
                }
            }
            _ => out.push(path.to_string()),
        }
    }
    let mut out = Vec::new();
    walk(doc, "", &mut out);
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_pool_is_deterministic() {
        assert_eq!(schedule_pool(7, 40), schedule_pool(7, 40));
        assert_ne!(schedule_pool(7, 40), schedule_pool(8, 40));
        // The pool mixes empty and non-empty schedules.
        let pool = schedule_pool(7, 40);
        assert!(pool.iter().any(Vec::is_empty));
        assert!(pool.iter().any(|s| !s.is_empty()));
    }

    #[test]
    fn rebuilt_baseline_matches_the_hot_loop_on_every_protocol() {
        let pool = schedule_pool(0xBEEF, 12);
        for protocol in HOTPATH_PROTOCOLS {
            let mut reused = Testbed::builder(protocol).nodes(3).build();
            for schedule in &pool {
                assert_eq!(
                    reused.run_schedule(schedule),
                    rebuild_and_run(protocol, 3, schedule),
                    "{protocol}"
                );
            }
        }
    }

    #[test]
    fn report_schema_is_stable_across_modes_and_measurements() {
        let rows = [
            HotpathRow {
                protocol: ProtocolSpec::StandardCan,
                n_nodes: 3,
                schedules: 10,
                rebuild_runs_per_sec: 100.0,
                reused_runs_per_sec: 150.0,
            },
            HotpathRow {
                protocol: ProtocolSpec::TotCan,
                n_nodes: 3,
                schedules: 10,
                rebuild_runs_per_sec: 50.0,
                reused_runs_per_sec: 80.0,
            },
        ];
        let quick = report_to_json("quick", 1, &rows[..1]);
        let full = report_to_json("full", 2, &rows);
        assert_eq!(schema_fingerprint(&quick), schema_fingerprint(&full));
        assert_eq!(
            full.get("min_improvement_pct").and_then(Value::as_f64),
            Some(50.0)
        );
        // Dropping a field is schema drift.
        let mut truncated = Value::obj();
        truncated.set("schema", HOTPATH_SCHEMA.into());
        assert_ne!(schema_fingerprint(&quick), schema_fingerprint(&truncated));
    }
}
