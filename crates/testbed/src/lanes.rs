//! 64-lane cohort execution over scripted schedules.
//!
//! The prefix-fork batcher (`crate::batch`) exploits schedules sharing a
//! disturbance *prefix*; the falsifier's random fault models produce
//! mostly prefix-free schedules, where it degenerates to groups of one.
//! But even prefix-free schedules share something: until a schedule's
//! first disturbance can possibly fire, its run is **bit-identical to
//! the fault-free run**. This module exploits exactly that with the
//! `u64` lane machinery from `majorcan-sim` ([`LaneSim`] /
//! [`WatchTable`]):
//!
//! 1. **Pack** up to 64 schedules into one cohort. Schedules targeting a
//!    field in [`NO_FORK_FIELDS`] never join (same drive-phase-transition
//!    caveat as the batcher's fork rule) and run scalar instead.
//! 2. **Trunk** — run the *fault-free* cluster once, ORing per bit the
//!    watch masks of every node's pre-step frame field. Any lane whose
//!    mask trips is **peeled**: a snapshot is taken at that bit (shared
//!    by all lanes peeling there), and the lane finishes later on the
//!    scalar path with its full schedule reloaded from the snapshot.
//! 3. **Survivors** — lanes whose watch never tripped are classified
//!    straight from the cohort: their script never fired (every entry
//!    unfired), so the cohort's verdict, quiescence cut and truncation
//!    status are exactly theirs.
//!
//! Why the peel is sound, in terms of the batcher's own invariant: a
//! scripted disturbance fires only on a full `(node, field, index,
//! stuff)` match, and for every field outside [`NO_FORK_FIELDS`] the
//! disturb-time field equals the pre-step field. The peel bit is the
//! *first* bit where any of the lane's `(node, field)` pairs matches
//! pre-step — so at that bit none of the lane's entries has matched
//! (let alone fired), the cohort state equals the lane's scalar state
//! bit-for-bit, and `restore + reload(full schedule) + run` is the
//! scalar run. Peeling earlier than strictly necessary (the watch is
//! field-granular, ignoring index/stuff) only costs trunk sharing,
//! never correctness. Gated by `tests/lane_equivalence.rs` and the
//! lane-vs-scalar diff in `scripts/check.sh`.

use crate::batch::{
    load, outcome_of, run_one, run_to_quiescence, settled, truncated, LinkSim, NO_FORK_FIELDS,
};
use crate::channel::BusChannel;
use crate::outcome::{classify, Outcome};
use majorcan_abcast::trace_from_can_events;
use majorcan_can::{Controller, Field, Variant};
use majorcan_faults::Disturbance;
use majorcan_sim::{BitNode, LaneSim, SimSnapshot, WatchTable, MAX_LANES};

/// Evaluates every schedule in `schedules` and returns their outcomes in
/// input order, each bit-identical to `Testbed::run_schedule` on the same
/// (reused) testbed.
pub(crate) fn run_lanes_link<V: Variant>(
    sim: &mut LinkSim<V>,
    n_nodes: usize,
    budget: u64,
    schedules: &[&[Disturbance]],
) -> Vec<Outcome> {
    sim.set_record_trace(false);
    let mut outcomes: Vec<Option<Outcome>> = vec![None; schedules.len()];
    for start in (0..schedules.len()).step_by(MAX_LANES) {
        let end = (start + MAX_LANES).min(schedules.len());
        run_chunk(
            sim,
            n_nodes,
            budget,
            &schedules[start..end],
            &mut outcomes[start..end],
        );
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("every lane classified"))
        .collect()
}

/// One ≤64-lane cohort: scalar-only lanes first, then the shared
/// fault-free trunk, survivor classification, and peeled-lane replays.
fn run_chunk<V: Variant>(
    sim: &mut LinkSim<V>,
    n_nodes: usize,
    budget: u64,
    schedules: &[&[Disturbance]],
    outcomes: &mut [Option<Outcome>],
) {
    debug_assert!(schedules.len() <= MAX_LANES);
    let mut lanes = LaneSim::new(schedules.len());
    let mut watch = WatchTable::new(n_nodes, Field::ALL.len());
    for (lane, schedule) in schedules.iter().enumerate() {
        if schedule
            .iter()
            .any(|d| NO_FORK_FIELDS.contains(&d.field) || d.node >= n_nodes)
        {
            // Drive-phase-transition targets (and out-of-range nodes the
            // watch table cannot represent) take the scalar path whole.
            outcomes[lane] = Some(run_one(sim, n_nodes, budget, schedule));
            lanes.peel(1u64 << lane);
            continue;
        }
        for d in schedule.iter() {
            watch.watch(d.node, d.field.ordinal(), lane);
        }
    }
    if lanes.active() == 0 {
        return;
    }

    // The shared trunk: the fault-free run every live lane is riding.
    load(sim, &[]);
    let mut peels: Vec<(SimSnapshot<Controller<V>, BusChannel>, u64)> = Vec::new();
    lanes.run_cohort(
        sim,
        budget,
        |s| watch.trip(s.nodes().map(|n| n.tag().field.ordinal())),
        |s, peeled| peels.push((s.snapshot(), peeled)),
        |s| settled(s),
    );

    // Survivors first — their verdict lives in the cohort's event log,
    // which the replays below clobber. No entry of theirs ever fired, so
    // the whole schedule counts unfired, and the cohort's truncation
    // status is theirs too.
    if lanes.active() != 0 {
        let verdict = trace_from_can_events(sim.events(), n_nodes)
            .check()
            .verdict();
        let cut = truncated(sim, budget);
        for (lane, schedule) in schedules.iter().enumerate() {
            if lanes.is_live(lane) {
                outcomes[lane] = Some(classify(verdict, schedule.len()).truncate_if(cut));
            }
        }
    }

    // Peeled lanes: every lane peeling at the same bit shares one
    // snapshot; each replays from it with its full schedule (nothing has
    // fired yet at the peel bit, so a fresh reload is the scalar run).
    for (snap, peeled) in &peels {
        let mut mask = *peeled;
        while mask != 0 {
            let lane = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            sim.restore_from(snap);
            match sim.channel_mut() {
                BusChannel::Scripted(script) => script.reload(schedules[lane]),
                _ => unreachable!("the cohort loaded a scripted channel"),
            }
            run_to_quiescence(sim, budget);
            outcomes[lane] = Some(outcome_of(sim, n_nodes, budget));
        }
    }
}
