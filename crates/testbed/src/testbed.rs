//! The [`Testbed`]: build a cluster once, run it thousands of times.

use crate::channel::BusChannel;
use crate::outcome::{classify, Outcome};
use crate::scenario_run::ScenarioRun;
use majorcan_abcast::trace_from_can_events;
use majorcan_campaign::ProtocolSpec;
use majorcan_can::{CanEvent, Controller, ControllerConfig, Frame, Variant};
use majorcan_core::{MajorCan, MinorCan};
use majorcan_faults::{scenario_frame, AttackAction, Attacker, CrashRule, Disturbance, Scenario};
use majorcan_hlp::{trace_from_hlp_events, BroadcastId, EdCan, HlpEvent, HlpNode, RelCan, TotCan};
use majorcan_sim::{NodeId, SimSnapshot, Simulator, TimedEvent};
use majorcan_workload::{ReleaseSource, Workload};

/// Bit budget for one link-layer schedule evaluation (matches the
/// scripted-trial budget of the bench interpreter).
pub const LINK_BUDGET: u64 = 5_000;

/// Bit budget for one higher-level-protocol evaluation (CONFIRM/ACCEPT
/// rounds and timeout recovery need more bus time than a bare frame).
pub const HLP_BUDGET: u64 = 8_000;

/// The canonical payload of a higher-level-protocol probe broadcast.
pub const HLP_PROBE_PAYLOAD: &[u8] = &[0x5A];

/// The default evaluation budget appropriate for `protocol`.
pub fn budget_for(protocol: ProtocolSpec) -> u64 {
    if protocol.is_hlp() {
        HLP_BUDGET
    } else {
        LINK_BUDGET
    }
}

/// Maps a link-layer variant to its [`ProtocolSpec`] (the names match by
/// construction — see [`ProtocolSpec::from_name`]).
pub fn spec_of<V: Variant>(variant: &V) -> ProtocolSpec {
    let name = variant.name();
    ProtocolSpec::from_name(&name)
        .unwrap_or_else(|| panic!("variant {name:?} has no campaign protocol spec"))
}

/// The assembled cluster: one concrete simulator type per protocol, all
/// sharing the [`BusChannel`] fault model so a run can swap channels
/// without changing the cluster type.
#[derive(Debug)]
enum Cluster {
    Can(Simulator<Controller<majorcan_can::StandardCan>, BusChannel>),
    Minor(Simulator<Controller<MinorCan>, BusChannel>),
    Major(Simulator<Controller<MajorCan>, BusChannel>),
    Ed(Simulator<HlpNode<EdCan>, BusChannel>),
    Rel(Simulator<HlpNode<RelCan>, BusChannel>),
    Tot(Simulator<HlpNode<TotCan>, BusChannel>),
}

/// Dispatches over every cluster kind. The body must compile for both
/// `Controller` and `HlpNode` nodes (their reuse APIs are intentionally
/// parallel: `reset`, `set_fail_at`).
macro_rules! each_sim {
    ($cluster:expr, $sim:ident => $body:expr) => {
        match $cluster {
            Cluster::Can($sim) => $body,
            Cluster::Minor($sim) => $body,
            Cluster::Major($sim) => $body,
            Cluster::Ed($sim) => $body,
            Cluster::Rel($sim) => $body,
            Cluster::Tot($sim) => $body,
        }
    };
}

/// Dispatches over the link-layer cluster kinds, panicking (with the
/// operation name) on a higher-level-protocol testbed.
macro_rules! link_sim {
    ($cluster:expr, $proto:expr, $op:literal, $sim:ident => $body:expr) => {
        match $cluster {
            Cluster::Can($sim) => $body,
            Cluster::Minor($sim) => $body,
            Cluster::Major($sim) => $body,
            _ => panic!(
                concat!($op, " needs a link-layer cluster; this testbed runs {}"),
                $proto
            ),
        }
    };
}

/// Dispatches over the higher-level-protocol cluster kinds, panicking on a
/// link-layer testbed.
macro_rules! hlp_sim {
    ($cluster:expr, $proto:expr, $op:literal, $sim:ident => $body:expr) => {
        match $cluster {
            Cluster::Ed($sim) => $body,
            Cluster::Rel($sim) => $body,
            Cluster::Tot($sim) => $body,
            _ => panic!(
                concat!(
                    $op,
                    " needs a higher-level-protocol cluster; this testbed runs {}"
                ),
                $proto
            ),
        }
    };
}

/// The per-kind payload of a [`Snapshot`] (mirrors [`Cluster`]).
#[derive(Debug, Clone)]
enum ClusterSnapshot {
    Can(SimSnapshot<Controller<majorcan_can::StandardCan>, BusChannel>),
    Minor(SimSnapshot<Controller<MinorCan>, BusChannel>),
    Major(SimSnapshot<Controller<MajorCan>, BusChannel>),
    Ed(SimSnapshot<HlpNode<EdCan>, BusChannel>),
    Rel(SimSnapshot<HlpNode<RelCan>, BusChannel>),
    Tot(SimSnapshot<HlpNode<TotCan>, BusChannel>),
}

/// A point-in-time capture of a [`Testbed`]'s complete mid-run state:
/// every controller (or HLP node), the fault channel (including script
/// progress), the bit clock and the event log the checker grades.
///
/// Produced by [`Testbed::snapshot`]; [`Testbed::restore`] rewinds the
/// *same-shaped* testbed to this instant, after which continuing the run
/// is bit-identical to never having left it. This is the fork primitive
/// behind [`Testbed::run_batch`]: advance once through a shared schedule
/// prefix, snapshot at the divergence point, and fork each tail from the
/// snapshot instead of replaying from bit zero.
#[derive(Debug, Clone)]
pub struct Snapshot {
    protocol: ProtocolSpec,
    n_nodes: usize,
    state: ClusterSnapshot,
}

impl Snapshot {
    /// The protocol of the testbed this snapshot was taken from.
    pub fn protocol(&self) -> ProtocolSpec {
        self.protocol
    }

    /// The bit time at which this snapshot was taken.
    pub fn now(&self) -> u64 {
        match &self.state {
            ClusterSnapshot::Can(s) => s.now(),
            ClusterSnapshot::Minor(s) => s.now(),
            ClusterSnapshot::Major(s) => s.now(),
            ClusterSnapshot::Ed(s) => s.now(),
            ClusterSnapshot::Rel(s) => s.now(),
            ClusterSnapshot::Tot(s) => s.now(),
        }
    }
}

/// Configures and assembles a [`Testbed`].
#[derive(Debug, Clone)]
pub struct TestbedBuilder {
    protocol: ProtocolSpec,
    n_nodes: usize,
    budget: u64,
    trace: bool,
    shutoff_at_warning: bool,
}

impl TestbedBuilder {
    /// Number of nodes on the bus (default 3: transmitter + the X and Y
    /// set representatives).
    pub fn nodes(mut self, n: usize) -> TestbedBuilder {
        self.n_nodes = n;
        self
    }

    /// Bit budget of one run (default [`budget_for`] the protocol).
    pub fn budget(mut self, bits: u64) -> TestbedBuilder {
        self.budget = bits;
        self
    }

    /// Record a bit-level trace during runs (default off; scenario runs
    /// turn it on themselves, the campaign hot loop keeps it off).
    pub fn trace(mut self, on: bool) -> TestbedBuilder {
        self.trace = on;
        self
    }

    /// Warning-shutoff policy of the controllers (default `true`, the
    /// paper's fail-silent policy).
    pub fn shutoff_at_warning(mut self, on: bool) -> TestbedBuilder {
        self.shutoff_at_warning = on;
        self
    }

    /// Assembles the cluster on a fault-free bus.
    ///
    /// # Panics
    ///
    /// Panics on an invalid MajorCAN tolerance (`m` outside the protocol's
    /// range). Oracle callers evaluate builds under `catch_unwind` and
    /// classify the panic as a finding.
    pub fn build(self) -> Testbed {
        let config = ControllerConfig {
            shutoff_at_warning: self.shutoff_at_warning,
            fail_at: None,
        };
        let channel = BusChannel::NoFaults;
        let cluster = match self.protocol {
            ProtocolSpec::StandardCan => Cluster::Can(link_cluster(
                majorcan_can::StandardCan,
                self.n_nodes,
                &config,
                channel,
            )),
            ProtocolSpec::MinorCan => {
                Cluster::Minor(link_cluster(MinorCan, self.n_nodes, &config, channel))
            }
            ProtocolSpec::MajorCan { m } => {
                let variant = MajorCan::new(m)
                    .unwrap_or_else(|e| panic!("invalid MajorCAN tolerance for testbed: {e}"));
                Cluster::Major(link_cluster(variant, self.n_nodes, &config, channel))
            }
            ProtocolSpec::EdCan => Cluster::Ed(hlp_cluster(EdCan::new, self.n_nodes, channel)),
            ProtocolSpec::RelCan => Cluster::Rel(hlp_cluster(RelCan::new, self.n_nodes, channel)),
            ProtocolSpec::TotCan => Cluster::Tot(hlp_cluster(TotCan::new, self.n_nodes, channel)),
        };
        let mut testbed = Testbed {
            protocol: self.protocol,
            n_nodes: self.n_nodes,
            budget: self.budget,
            cluster,
        };
        testbed.set_record_trace(self.trace);
        testbed
    }
}

fn link_cluster<V: Variant>(
    variant: V,
    n_nodes: usize,
    config: &ControllerConfig,
    channel: BusChannel,
) -> Simulator<Controller<V>, BusChannel> {
    let mut sim = Simulator::new(channel);
    for _ in 0..n_nodes {
        sim.attach(Controller::with_config(variant.clone(), config.clone()));
    }
    sim
}

fn hlp_cluster<L: majorcan_hlp::HlpLayer, F: Fn() -> L>(
    make: F,
    n_nodes: usize,
    channel: BusChannel,
) -> Simulator<HlpNode<L>, BusChannel> {
    let mut sim = Simulator::new(channel);
    for i in 0..n_nodes {
        sim.attach(HlpNode::new(make(), i));
    }
    sim
}

/// A reusable protocol cluster: controllers (or HLP nodes), fault channel,
/// event buffers and trace storage assembled once and recycled across
/// runs.
///
/// `Testbed` is the one way every experiment path builds and runs a bus:
/// the paper scenarios, the falsifier's oracle, the Monte-Carlo campaign
/// jobs, the periodic-load workload driver and the HLP probes all route
/// through it. Reuse is the performance core — [`Testbed::reset_with`] /
/// [`Testbed::load_script`] rewind the cluster without reallocating, so a
/// campaign worker amortizes one allocation over thousands of runs.
///
/// # Examples
///
/// ```
/// use majorcan_campaign::ProtocolSpec;
/// use majorcan_faults::Scenario;
/// use majorcan_testbed::Testbed;
///
/// let mut tb = Testbed::builder(ProtocolSpec::StandardCan).build();
/// let run = tb.run_scenario(&Scenario::fig1b());
/// assert!(!run.consistent_single_delivery(), "CAN double reception");
/// // The same testbed replays another scenario without reallocating.
/// let run = tb.run_scenario(&Scenario::fig1a());
/// assert!(run.consistent_single_delivery());
/// ```
#[derive(Debug)]
pub struct Testbed {
    protocol: ProtocolSpec,
    n_nodes: usize,
    budget: u64,
    cluster: Cluster,
}

impl Testbed {
    /// Starts building a testbed for `protocol` with the defaults: 3
    /// nodes, [`budget_for`]`(protocol)` bits per run, no trace, warning
    /// shutoff on.
    pub fn builder(protocol: ProtocolSpec) -> TestbedBuilder {
        TestbedBuilder {
            protocol,
            n_nodes: 3,
            budget: budget_for(protocol),
            trace: false,
            shutoff_at_warning: true,
        }
    }

    /// The protocol this testbed runs.
    pub fn protocol(&self) -> ProtocolSpec {
        self.protocol
    }

    /// Number of nodes on the bus.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Bit budget of one run.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Changes the per-run bit budget.
    pub fn set_budget(&mut self, bits: u64) {
        self.budget = bits;
    }

    /// Current bit time of the cluster.
    pub fn now(&self) -> u64 {
        each_sim!(&self.cluster, sim => sim.now())
    }

    /// Enables or disables bit-level trace recording for subsequent runs.
    pub fn set_record_trace(&mut self, on: bool) {
        each_sim!(&mut self.cluster, sim => sim.set_record_trace(on));
    }

    /// Changes the controllers' warning-shutoff policy; takes effect at
    /// the next reset. Link-layer clusters only.
    pub fn set_shutoff_at_warning(&mut self, on: bool) {
        link_sim!(&mut self.cluster, self.protocol, "set_shutoff_at_warning", sim => {
            for node in sim.nodes_mut() {
                node.set_shutoff_at_warning(on);
            }
        });
    }

    /// Rewinds the cluster for a fresh run: every node returns to its
    /// just-constructed state, the clock/event log/trace rewind to zero
    /// (keeping allocations), crash scripts are cleared and `channel`
    /// becomes the fault model.
    pub fn reset_with(&mut self, channel: BusChannel) {
        each_sim!(&mut self.cluster, sim => {
            sim.reset_with_channel(channel);
            for node in sim.nodes_mut() {
                node.set_fail_at(None);
                node.reset();
            }
        });
    }

    /// [`Testbed::reset_with`] borrowing the channel: clones `channel`'s
    /// contents into the existing channel slot via `clone_from`, so a hot
    /// loop resetting onto the same scripted channel shape reuses the
    /// script's backing storage instead of building a fresh channel per
    /// run.
    pub fn reset_with_ref(&mut self, channel: &BusChannel) {
        each_sim!(&mut self.cluster, sim => {
            sim.channel_mut().clone_from(channel);
            sim.reset();
            for node in sim.nodes_mut() {
                node.set_fail_at(None);
                node.reset();
            }
        });
    }

    /// Rewinds the cluster onto a fault-free bus.
    pub fn reset(&mut self) {
        self.reset_with(BusChannel::NoFaults);
    }

    /// Captures the cluster's complete mid-run state. See [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let state = match &self.cluster {
            Cluster::Can(sim) => ClusterSnapshot::Can(sim.snapshot()),
            Cluster::Minor(sim) => ClusterSnapshot::Minor(sim.snapshot()),
            Cluster::Major(sim) => ClusterSnapshot::Major(sim.snapshot()),
            Cluster::Ed(sim) => ClusterSnapshot::Ed(sim.snapshot()),
            Cluster::Rel(sim) => ClusterSnapshot::Rel(sim.snapshot()),
            Cluster::Tot(sim) => ClusterSnapshot::Tot(sim.snapshot()),
        };
        Snapshot {
            protocol: self.protocol,
            n_nodes: self.n_nodes,
            state,
        }
    }

    /// Rewinds the cluster to the instant captured by `snap`, reusing the
    /// cluster's existing allocations. Continuing the run afterwards is
    /// bit-identical to an uninterrupted run. Any recorded trace is
    /// cleared (it belonged to the abandoned timeline).
    ///
    /// # Panics
    ///
    /// Panics when `snap` was taken from a testbed of a different
    /// protocol or node count.
    pub fn restore(&mut self, snap: &Snapshot) {
        assert_eq!(
            (self.protocol, self.n_nodes),
            (snap.protocol, snap.n_nodes),
            "snapshot of {} × {} nodes cannot restore a {} × {} testbed",
            snap.protocol,
            snap.n_nodes,
            self.protocol,
            self.n_nodes
        );
        match (&mut self.cluster, &snap.state) {
            (Cluster::Can(sim), ClusterSnapshot::Can(s)) => sim.restore_from(s),
            (Cluster::Minor(sim), ClusterSnapshot::Minor(s)) => sim.restore_from(s),
            (Cluster::Major(sim), ClusterSnapshot::Major(s)) => sim.restore_from(s),
            (Cluster::Ed(sim), ClusterSnapshot::Ed(s)) => sim.restore_from(s),
            (Cluster::Rel(sim), ClusterSnapshot::Rel(s)) => sim.restore_from(s),
            (Cluster::Tot(sim), ClusterSnapshot::Tot(s)) => sim.restore_from(s),
            _ => unreachable!("protocol equality implies matching cluster kinds"),
        }
    }

    /// Rewinds the cluster and installs `disturbances` as the scripted
    /// fault channel, reusing the previous script's allocation when the
    /// testbed already ran one.
    pub fn load_script(&mut self, disturbances: &[Disturbance]) {
        each_sim!(&mut self.cluster, sim => {
            if let BusChannel::Scripted(script) = sim.channel_mut() {
                script.reload(disturbances);
                sim.reset();
            } else {
                sim.reset_with_channel(BusChannel::scripted(disturbances.to_vec()));
            }
            for node in sim.nodes_mut() {
                node.set_fail_at(None);
                node.reset();
            }
        });
    }

    /// Rewinds the cluster and arms `actions` as a budgeted attack
    /// channel, reusing the previous attacker's allocation when the
    /// testbed already ran one (mirrors [`Testbed::load_script`]).
    pub fn load_attack(&mut self, actions: &[AttackAction], budget: u64) {
        each_sim!(&mut self.cluster, sim => {
            if let BusChannel::Attack(attacker) = sim.channel_mut() {
                attacker.reload(actions, budget);
                sim.reset();
            } else {
                sim.reset_with_channel(BusChannel::attack(actions.to_vec(), budget));
            }
            for node in sim.nodes_mut() {
                node.set_fail_at(None);
                node.reset();
            }
        });
    }

    /// The armed attacker, if the current channel is an attack channel.
    pub fn attacker(&self) -> Option<&Attacker> {
        each_sim!(&self.cluster, sim => sim.channel().attacker())
    }

    /// `(TEC, REC)` of `node`'s fault-confinement entity, for observing
    /// attack-driven counter trajectories. Link-layer clusters only.
    pub fn fault_counters(&self, node: usize) -> (u16, u16) {
        link_sim!(&self.cluster, self.protocol, "fault_counters", sim => {
            let fc = sim.node(NodeId(node)).fault_confinement();
            (fc.tec(), fc.rec())
        })
    }

    /// Arms (or clears) a scripted fail-silent crash on `node` for the
    /// current run. Call after a reset — resets clear crash scripts.
    pub fn set_fail_at(&mut self, node: usize, at: Option<u64>) {
        each_sim!(&mut self.cluster, sim => sim.node_mut(NodeId(node)).set_fail_at(at));
    }

    /// Queues `frame` for transmission on `node`. Link-layer clusters
    /// only.
    pub fn enqueue(&mut self, node: usize, frame: Frame) {
        link_sim!(&mut self.cluster, self.protocol, "enqueue", sim => {
            sim.node_mut(NodeId(node)).enqueue(frame)
        });
    }

    /// Requests a host-level broadcast of `payload` on `node`.
    /// Higher-level-protocol clusters only.
    pub fn broadcast(&mut self, node: usize, payload: &[u8]) -> BroadcastId {
        hlp_sim!(&mut self.cluster, self.protocol, "broadcast", sim => {
            sim.node_mut(NodeId(node)).broadcast(payload)
        })
    }

    /// Simulates `bits` bit times.
    pub fn run(&mut self, bits: u64) {
        each_sim!(&mut self.cluster, sim => sim.run(bits));
    }

    /// Steps the cluster until `stop` returns `true` over the event log so
    /// far, or until `max_bits` elapse. Returns the number of bits
    /// simulated. Link-layer clusters only.
    pub fn run_until_link(
        &mut self,
        max_bits: u64,
        mut stop: impl FnMut(&[TimedEvent<CanEvent>]) -> bool,
    ) -> u64 {
        link_sim!(&mut self.cluster, self.protocol, "run_until_link", sim => {
            sim.run_until(max_bits, |s| stop(s.events()))
        })
    }

    /// Steps the cluster until every controller is idle with an empty
    /// queue (or crashed) and the bus has stayed that way for `settle`
    /// consecutive bits, or until `max_bits` elapse. Returns the number of
    /// bits simulated. Link-layer clusters only.
    ///
    /// Scenario measurements use this instead of fixed budgets so slow
    /// error recoveries are never truncated (a truncated run would look
    /// like a message omission and corrupt the statistics).
    pub fn run_until_quiescent(&mut self, settle: u64, max_bits: u64) -> u64 {
        link_sim!(&mut self.cluster, self.protocol, "run_until_quiescent", sim => {
            let mut calm = 0u64;
            for done in 0..max_bits {
                sim.step();
                let quiet = sim
                    .nodes()
                    .all(|n| (n.is_idle() && n.pending() == 0) || n.is_crashed());
                calm = if quiet { calm + 1 } else { 0 };
                if calm >= settle {
                    return done + 1;
                }
            }
            max_bits
        })
    }

    /// Steps the cluster for `horizon` bits, queueing every due workload
    /// release on its node. Returns the number of frames queued.
    /// Link-layer clusters only.
    pub fn drive_workload(&mut self, workload: &mut Workload, horizon: u64) -> usize {
        link_sim!(&mut self.cluster, self.protocol, "drive_workload", sim => {
            majorcan_workload::drive(sim, workload, horizon)
        })
    }

    /// Steps the cluster for `horizon` bits, queueing every due release of
    /// `source` on its node. The streaming counterpart of
    /// [`drive_workload`](Self::drive_workload) — soak runs feed a lazy
    /// generator here instead of materializing a schedule. Link-layer
    /// clusters only.
    pub fn drive_source<S: ReleaseSource + ?Sized>(
        &mut self,
        source: &mut S,
        horizon: u64,
    ) -> usize {
        link_sim!(&mut self.cluster, self.protocol, "drive_source", sim => {
            majorcan_workload::drive_source(sim, source, horizon)
        })
    }

    /// `true` when every node is idle with an empty queue (or crashed) —
    /// the bus has drained. Link-layer clusters only.
    pub fn is_drained(&self) -> bool {
        link_sim!(&self.cluster, self.protocol, "is_drained", sim => {
            sim.nodes()
                .all(|n| (n.is_idle() && n.pending() == 0) || n.is_crashed())
        })
    }

    /// The scripted disturbances that have not fired (empty for
    /// non-scripted channels).
    pub fn unfired(&self) -> Vec<Disturbance> {
        each_sim!(&self.cluster, sim => sim.channel().unfired())
    }

    /// Number of scripted disturbances that have not fired.
    pub fn unfired_len(&self) -> usize {
        each_sim!(&self.cluster, sim => sim.channel().unfired_len())
    }

    /// The link-layer event log of the current run. Link-layer clusters
    /// only.
    pub fn can_events(&self) -> &[TimedEvent<CanEvent>] {
        link_sim!(&self.cluster, self.protocol, "can_events", sim => sim.events())
    }

    /// Drains and returns the link-layer event log. Link-layer clusters
    /// only.
    pub fn take_can_events(&mut self) -> Vec<TimedEvent<CanEvent>> {
        link_sim!(&mut self.cluster, self.protocol, "take_can_events", sim => sim.take_events())
    }

    /// The host-level event log of the current run.
    /// Higher-level-protocol clusters only.
    pub fn hlp_events(&self) -> &[TimedEvent<HlpEvent>] {
        hlp_sim!(&self.cluster, self.protocol, "hlp_events", sim => sim.events())
    }

    /// Grades the current run with the Atomic Broadcast checker and
    /// classifies it into the shared [`Outcome`] vocabulary.
    pub fn outcome(&self) -> Outcome {
        let unfired = self.unfired_len();
        let verdict = match &self.cluster {
            Cluster::Can(sim) => trace_from_can_events(sim.events(), self.n_nodes)
                .check()
                .verdict(),
            Cluster::Minor(sim) => trace_from_can_events(sim.events(), self.n_nodes)
                .check()
                .verdict(),
            Cluster::Major(sim) => trace_from_can_events(sim.events(), self.n_nodes)
                .check()
                .verdict(),
            Cluster::Ed(sim) => trace_from_hlp_events(sim.events(), self.n_nodes)
                .check()
                .verdict(),
            Cluster::Rel(sim) => trace_from_hlp_events(sim.events(), self.n_nodes)
                .check()
                .verdict(),
            Cluster::Tot(sim) => trace_from_hlp_events(sim.events(), self.n_nodes)
                .check()
                .verdict(),
        };
        classify(verdict, unfired)
    }

    /// The campaign hot loop: rewinds the cluster, loads `schedule`,
    /// applies the canonical stimulus (node 0 transmits
    /// [`scenario_frame`] on a link cluster, or broadcasts
    /// [`HLP_PROBE_PAYLOAD`] on an HLP cluster), runs the configured
    /// budget without trace recording and classifies the run.
    ///
    /// On a link cluster, a run whose budget elapses while the bus is
    /// still active (not [`Testbed::is_drained`]) classifies as
    /// [`Outcome::Truncated`] instead of a clean verdict: the trace is a
    /// prefix, and "no violation on a prefix" is not "no violation".
    pub fn run_schedule(&mut self, schedule: &[Disturbance]) -> Outcome {
        self.set_record_trace(false);
        self.load_script(schedule);
        if self.protocol.is_hlp() {
            self.broadcast(0, HLP_PROBE_PAYLOAD);
            self.run(self.budget);
            self.outcome()
        } else {
            self.enqueue(0, scenario_frame());
            self.run(self.budget);
            let truncated = !self.is_drained();
            self.outcome().truncate_if(truncated)
        }
    }

    /// Evaluates a whole batch of scripted schedules, returning one
    /// [`Outcome`] per schedule in input order — each identical to what
    /// [`Testbed::run_schedule`] would return for it on this testbed.
    ///
    /// Link-layer clusters route through the prefix-fork engine
    /// (`crate::batch`): schedules are sorted so shared disturbance
    /// prefixes become neighbours, each group's prefix is simulated once,
    /// the cluster state is [snapshotted](Testbed::snapshot) at the
    /// divergence point and every tail forks from the snapshot instead of
    /// replaying from bit zero; runs also end at quiescence instead of
    /// burning the rest of the bit budget. Higher-level-protocol clusters
    /// fall back to per-schedule [`Testbed::run_schedule`] calls.
    pub fn run_batch(&mut self, schedules: &[&[Disturbance]]) -> Vec<Outcome> {
        match &mut self.cluster {
            Cluster::Can(sim) => {
                crate::batch::run_batch_link(sim, self.n_nodes, self.budget, schedules)
            }
            Cluster::Minor(sim) => {
                crate::batch::run_batch_link(sim, self.n_nodes, self.budget, schedules)
            }
            Cluster::Major(sim) => {
                crate::batch::run_batch_link(sim, self.n_nodes, self.budget, schedules)
            }
            _ => schedules.iter().map(|s| self.run_schedule(s)).collect(),
        }
    }

    /// Evaluates a whole batch of scripted schedules through the 64-lane
    /// engine (`crate::lanes`), returning one [`Outcome`] per schedule in
    /// input order — each identical to what [`Testbed::run_schedule`]
    /// would return for it on this testbed.
    ///
    /// Unlike [`Testbed::run_batch`], which only merges schedules sharing
    /// a disturbance *prefix*, the lane engine packs up to 64 arbitrary
    /// (prefix-free) schedules into one cohort run: while no lane's script
    /// has fired, every lane is bit-identical to the fault-free run, so
    /// one simulator carries all of them behind a `u64` activity mask.
    /// A lane is peeled off to the scalar path at the first bit where its
    /// script could fire. Higher-level-protocol clusters fall back to
    /// per-schedule [`Testbed::run_schedule`] calls.
    pub fn run_lanes(&mut self, schedules: &[&[Disturbance]]) -> Vec<Outcome> {
        match &mut self.cluster {
            Cluster::Can(sim) => {
                crate::lanes::run_lanes_link(sim, self.n_nodes, self.budget, schedules)
            }
            Cluster::Minor(sim) => {
                crate::lanes::run_lanes_link(sim, self.n_nodes, self.budget, schedules)
            }
            Cluster::Major(sim) => {
                crate::lanes::run_lanes_link(sim, self.n_nodes, self.budget, schedules)
            }
            _ => schedules.iter().map(|s| self.run_schedule(s)).collect(),
        }
    }

    /// The attack-campaign hot loop: rewinds the cluster, arms `actions`
    /// as a budgeted attack channel, applies the canonical link stimulus
    /// (node 0 transmits [`scenario_frame`]), runs the configured budget
    /// without trace recording and classifies the run. Link-layer
    /// clusters only — attacks target the frame format itself.
    pub fn run_attack(&mut self, actions: &[AttackAction], cost_budget: u64) -> Outcome {
        self.set_record_trace(false);
        self.load_attack(actions, cost_budget);
        self.enqueue(0, scenario_frame());
        self.run(self.budget);
        self.outcome()
    }

    /// Executes an ad-hoc disturbance schedule (node 0 transmits
    /// [`scenario_frame`], full trace recording, unfired-disturbance
    /// reporting) and returns the owned [`ScenarioRun`]. Link-layer
    /// clusters only.
    pub fn run_script(&mut self, disturbances: &[Disturbance]) -> ScenarioRun {
        self.run_script_with_crashes(disturbances, &[])
    }

    /// Executes `scenario`: loads its disturbance script (node 0 transmits
    /// [`scenario_frame`]), runs the configured budget with trace
    /// recording, and resolves crash rules (running a fault-free probe
    /// pass when needed). Link-layer clusters only.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's node count differs from the testbed's.
    pub fn run_scenario(&mut self, scenario: &Scenario) -> ScenarioRun {
        assert_eq!(
            scenario.n_nodes, self.n_nodes,
            "scenario {} needs {} nodes but the testbed has {}",
            scenario.name, scenario.n_nodes, self.n_nodes
        );
        let crash_at: Option<(usize, u64)> = match scenario.crash {
            None => None,
            Some(CrashRule::AtBit { node, at }) => Some((node, at)),
            Some(CrashRule::AfterRetransmissionScheduled { node }) => {
                // Probe pass without the crash to find the scheduling time.
                let probe = self.run_script(&scenario.disturbances);
                probe
                    .events
                    .iter()
                    .find(|e| {
                        e.node == NodeId(node)
                            && matches!(e.event, CanEvent::RetransmissionScheduled { .. })
                    })
                    .map(|e| (node, e.at + 1))
            }
        };
        let crashes: Vec<(usize, u64)> = crash_at.into_iter().collect();
        self.run_script_with_crashes(&scenario.disturbances, &crashes)
    }

    fn run_script_with_crashes(
        &mut self,
        disturbances: &[Disturbance],
        crashes: &[(usize, u64)],
    ) -> ScenarioRun {
        self.set_record_trace(true);
        self.load_script(disturbances);
        for &(node, at) in crashes {
            self.set_fail_at(node, Some(at));
        }
        self.enqueue(0, scenario_frame());
        self.run(self.budget);
        link_sim!(&mut self.cluster, self.protocol, "run_script", sim => {
            let unfired = sim.channel().unfired();
            let trace = sim.trace().cloned().unwrap_or_default();
            ScenarioRun {
                events: sim.take_events(),
                trace,
                script_exhausted: unfired.is_empty(),
                unfired,
                n_nodes: self.n_nodes,
            }
        })
    }
}
