//! # majorcan-testbed — one way to build and run a protocol cluster
//!
//! Every experiment path in the workspace — paper scenario reproductions,
//! the falsifier's oracle, Monte-Carlo campaign jobs, periodic-load
//! workloads and the HLP probes — assembles the same thing: N protocol
//! nodes on a wired-AND bus behind a fault channel, run for a bit budget
//! and graded by the Atomic Broadcast checker. This crate is that
//! assembly, once:
//!
//! * [`Testbed`] / [`TestbedBuilder`] — build a cluster for any
//!   [`ProtocolSpec`](majorcan_campaign::ProtocolSpec) (the three link
//!   variants and the three CAN-based higher-level protocols) and run
//!   schedules, scenarios or workloads on it.
//! * [`BusChannel`] — the closed set of fault channels a run can install,
//!   so the testbed stays a single concrete type per protocol.
//! * [`Outcome`] / [`classify`] — the one shared verdict vocabulary
//!   (formerly duplicated between the falsifier's oracle and the scenario
//!   runner's `consistent_single_delivery`).
//! * [`ScenarioRun`] — the owned result of a scripted link-layer run,
//!   with the trace, event log and unfired-disturbance accounting.
//!
//! The design point is *reuse*: a campaign worker builds one testbed and
//! calls [`Testbed::run_schedule`] thousands of times;
//! [`Testbed::load_script`] rewinds controllers, event buffers, trace
//! storage and the script allocation in place, so the hot loop is
//! allocation-free after warm-up (see `BENCH_hotpath.json` at the repo
//! root for the measured payoff). Batch callers go one step further:
//! [`Testbed::run_batch`] sorts schedules by shared disturbance prefix,
//! simulates each prefix once, [snapshots](Testbed::snapshot) at the
//! divergence point and forks every tail from the [`Snapshot`] instead of
//! replaying from bit zero (see `BENCH_batch.json`).

mod batch;
pub mod batchbench;
mod channel;
pub mod hotpath;
mod lanes;
pub mod lanesbench;
mod outcome;
mod scenario_run;
mod testbed;

pub use channel::BusChannel;
pub use majorcan_campaign::ProtocolSpec;
pub use outcome::{classify, Outcome};
pub use scenario_run::ScenarioRun;
pub use testbed::{
    budget_for, spec_of, Snapshot, Testbed, TestbedBuilder, HLP_BUDGET, HLP_PROBE_PAYLOAD,
    LINK_BUDGET,
};
