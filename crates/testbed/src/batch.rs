//! Prefix-fork batch execution over scripted schedules.
//!
//! Falsifier schedules differ mostly in their disturbance *tail* (the
//! generator concentrates edits in the last frame), so evaluating a batch
//! one-by-one replays the same fault-free prefix over and over. This
//! module executes a whole batch instead:
//!
//! 1. **Sort** the schedules lexicographically (requires `Ord` on
//!    [`Disturbance`]) so schedules sharing a prefix become neighbours,
//!    and group maximal runs that share at least the first disturbance.
//! 2. **Trunk** — run each group's shared prefix once, peeking every
//!    node's frame-relative tag *before* each step and stopping at the
//!    first bit where any group member's tail entry could match
//!    (conservatively, by `(node, field)` alone).
//! 3. **Fork** — snapshot there ([`Simulator::snapshot`]) and, per
//!    member, restore + append the member's tail + run out the budget.
//!    If the trunk never reached a potential tail match, no fork is
//!    needed at all: every member's outcome is the trunk's verdict with
//!    the tail counted unfired.
//!
//! Correctness rests on two facts, both gated by the batch-vs-scalar
//! property test in `tests/batch_equivalence.rs`:
//!
//! * A scripted disturbance fires only when the victim's tag matches it,
//!   and a node's tag field at disturb time equals its pre-step tag field
//!   for every field except the drive-phase transitions (`Idle` →
//!   `Sof`/`Crashed`); groups whose tails watch those fields (or the
//!   other integration/shutdown fields) fall back to scalar runs
//!   ([`NO_FORK_FIELDS`]). So the pre-step peek can never miss the first
//!   potential tail match, and forking *earlier* than necessary is
//!   always sound (forking at bit 0 is a full replay).
//! * A drained cluster (every node idle with an empty queue, or crashed)
//!   on a scripted channel with no pending `Idle`-field entry is a
//!   fixpoint: all nodes drive recessive, observe recessive, emit
//!   nothing, forever. Runs may therefore end at quiescence instead of
//!   burning the rest of the bit budget — outcome-identical to the
//!   scalar full-budget run, and the main reason batch throughput beats
//!   the scalar loop even for groups of one.

use crate::channel::BusChannel;
use crate::outcome::{classify, Outcome};
use majorcan_abcast::trace_from_can_events;
use majorcan_can::{Controller, Field, Variant};
use majorcan_faults::{scenario_frame, Disturbance};
use majorcan_sim::{BitNode, NodeId, Simulator};

/// Tail fields that forbid forking for their group: `Sof` and `Crashed`
/// can be entered during the drive phase (so a pre-step peek would miss
/// them), and the integration/shutdown fields are kept scalar out of
/// caution — no falsifier schedule targets them on the hot path.
pub(crate) const NO_FORK_FIELDS: &[Field] = &[
    Field::Idle,
    Field::Sof,
    Field::Integrating,
    Field::Crashed,
    Field::BusOff,
];

pub(crate) type LinkSim<V> = Simulator<Controller<V>, BusChannel>;

/// Evaluates every schedule in `schedules` and returns their outcomes in
/// input order, each bit-identical to `Testbed::run_schedule` on the same
/// (reused) testbed.
pub(crate) fn run_batch_link<V: Variant>(
    sim: &mut LinkSim<V>,
    n_nodes: usize,
    budget: u64,
    schedules: &[&[Disturbance]],
) -> Vec<Outcome> {
    sim.set_record_trace(false);
    let mut outcomes: Vec<Option<Outcome>> = vec![None; schedules.len()];
    let mut order: Vec<usize> = (0..schedules.len()).collect();
    order.sort_by(|&a, &b| schedules[a].cmp(schedules[b]));

    let mut i = 0;
    while i < order.len() {
        // Maximal run of sorted schedules sharing ≥ 1 leading disturbance
        // with the run's first member; in sorted order the common prefix
        // against the base is non-increasing, so stop at the first zero.
        let base = schedules[order[i]];
        let mut prefix_len = base.len();
        let mut j = i + 1;
        while j < order.len() {
            let l = common_prefix(base, schedules[order[j]]);
            if l == 0 {
                break;
            }
            prefix_len = prefix_len.min(l);
            j += 1;
        }
        let group = &order[i..j];
        if group.len() == 1 || prefix_len == 0 {
            for &k in group {
                outcomes[k] = Some(run_one(sim, n_nodes, budget, schedules[k]));
            }
        } else {
            run_group(
                sim,
                n_nodes,
                budget,
                group,
                prefix_len,
                schedules,
                &mut outcomes,
            );
        }
        i = j;
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("every schedule classified"))
        .collect()
}

fn common_prefix(a: &[Disturbance], b: &[Disturbance]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Rewinds the cluster onto `schedule` and queues the canonical stimulus
/// (node 0 transmits the scenario frame) — the batch-local equivalent of
/// `Testbed::load_script` + `enqueue`.
pub(crate) fn load<V: Variant>(sim: &mut LinkSim<V>, schedule: &[Disturbance]) {
    if let BusChannel::Scripted(script) = sim.channel_mut() {
        script.reload(schedule);
        sim.reset();
    } else {
        sim.reset_with_channel(BusChannel::scripted(schedule.to_vec()));
    }
    for node in sim.nodes_mut() {
        node.set_fail_at(None);
        node.reset();
    }
    sim.node_mut(NodeId(0)).enqueue(scenario_frame());
}

/// `true` when every node is idle with an empty queue or crashed — the
/// same drain condition `Testbed::is_drained` exposes, and the condition
/// the truncation distinction rests on: a run whose budget elapses while
/// `!drained` executed a *prefix* of its schedule's consequences.
pub(crate) fn drained<V: Variant>(sim: &LinkSim<V>) -> bool {
    sim.nodes()
        .all(|n| (n.is_idle() && n.pending() == 0) || n.is_crashed())
}

/// `true` once nothing can ever happen again: the bus has drained and no
/// pending script entry targets a position still being reported (an idle
/// node tags `Idle` forever; a crashed node tags `Crashed` forever, so a
/// pending entry on either field would still fire — and change the
/// unfired count — on the drained bus).
pub(crate) fn settled<V: Variant>(sim: &LinkSim<V>) -> bool {
    if !drained(sim) {
        return false;
    }
    match sim.channel() {
        BusChannel::Scripted(s) => {
            !s.targets_field(Field::Idle) && !s.targets_field(Field::Crashed)
        }
        _ => false,
    }
}

/// Steps until the (absolute) bit budget elapses or the cluster settles.
pub(crate) fn run_to_quiescence<V: Variant>(sim: &mut LinkSim<V>, budget: u64) {
    while sim.now() < budget {
        sim.step();
        if settled(sim) {
            break;
        }
    }
}

/// `true` when the run that just ended was cut by the bit budget rather
/// than by quiescence — mirrors the `!is_drained()` check in the scalar
/// `Testbed::run_schedule` exactly, so batch and scalar classifications
/// stay bit-identical. (A run that settled before the budget is drained
/// by construction; a drained-at-budget run is complete either way.)
pub(crate) fn truncated<V: Variant>(sim: &LinkSim<V>, budget: u64) -> bool {
    sim.now() >= budget && !drained(sim)
}

pub(crate) fn outcome_of<V: Variant>(sim: &LinkSim<V>, n_nodes: usize, budget: u64) -> Outcome {
    let verdict = trace_from_can_events(sim.events(), n_nodes)
        .check()
        .verdict();
    classify(verdict, sim.channel().unfired_len()).truncate_if(truncated(sim, budget))
}

/// One scalar evaluation (quiescence-truncated `run_schedule`).
pub(crate) fn run_one<V: Variant>(
    sim: &mut LinkSim<V>,
    n_nodes: usize,
    budget: u64,
    schedule: &[Disturbance],
) -> Outcome {
    load(sim, schedule);
    run_to_quiescence(sim, budget);
    outcome_of(sim, n_nodes, budget)
}

/// `true` when any node's bit-in-flight could match a tail entry — the
/// trunk must stop *before* this bit.
fn peeks_match<V: Variant>(sim: &LinkSim<V>, watch: &[(usize, Field)]) -> bool {
    sim.nodes().enumerate().any(|(i, node)| {
        let field = node.tag().field;
        watch.iter().any(|&(n, f)| n == i && f == field)
    })
}

#[allow(clippy::too_many_arguments)]
fn run_group<V: Variant>(
    sim: &mut LinkSim<V>,
    n_nodes: usize,
    budget: u64,
    group: &[usize],
    prefix_len: usize,
    schedules: &[&[Disturbance]],
    outcomes: &mut [Option<Outcome>],
) {
    let prefix = &schedules[group[0]][..prefix_len];
    let mut watch: Vec<(usize, Field)> = Vec::new();
    for &k in group {
        for d in &schedules[k][prefix_len..] {
            if !watch.contains(&(d.node, d.field)) {
                watch.push((d.node, d.field));
            }
        }
    }
    if watch.iter().any(|&(_, f)| NO_FORK_FIELDS.contains(&f)) {
        for &k in group {
            outcomes[k] = Some(run_one(sim, n_nodes, budget, schedules[k]));
        }
        return;
    }

    // Trunk: the shared prefix, stopped before the first potential tail
    // match.
    load(sim, prefix);
    let mut tripped = false;
    while sim.now() < budget {
        if peeks_match(sim, &watch) {
            tripped = true;
            break;
        }
        sim.step();
        if settled(sim) {
            break;
        }
    }

    if !tripped {
        // No tail entry could ever have fired within the budget: every
        // member is bit-identical to the trunk with its tail unfired.
        // A trunk cut by the budget rather than by quiescence demotes
        // every member to `Truncated` — before this distinction existed,
        // a budget-exhausted trunk silently classified the whole group
        // as clean.
        let verdict = trace_from_can_events(sim.events(), n_nodes)
            .check()
            .verdict();
        let unfired = sim.channel().unfired_len();
        let cut = truncated(sim, budget);
        for &k in group {
            let tail_len = schedules[k].len() - prefix_len;
            outcomes[k] = Some(classify(verdict, unfired + tail_len).truncate_if(cut));
        }
        return;
    }

    let snap = sim.snapshot();
    for &k in group {
        sim.restore_from(&snap);
        match sim.channel_mut() {
            BusChannel::Scripted(script) => script.append_tail(&schedules[k][prefix_len..]),
            _ => unreachable!("the trunk loaded a scripted channel"),
        }
        run_to_quiescence(sim, budget);
        outcomes[k] = Some(outcome_of(sim, n_nodes, budget));
    }
}
