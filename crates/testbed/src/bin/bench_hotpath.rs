//! Regenerates `BENCH_hotpath.json`: runs/sec of the reused-testbed
//! schedule hot loop against the rebuild-per-run baseline, per protocol.
//!
//! ```text
//! cargo run --release -p majorcan-testbed --bin bench_hotpath -- \
//!     [--quick] [--seed <u64>] [--out BENCH_hotpath.json]
//! ```
//!
//! When the output file already exists, its schema is compared against the
//! freshly rendered document first; any drift (keys added, removed or
//! renamed) is an error, so `scripts/check.sh` catches accidental format
//! changes before they reach the committed artifact. Measured numbers are
//! machine-dependent and expected to differ run to run; the full (default)
//! mode additionally enforces the ≥20 % improvement the testbed API is
//! meant to buy.

use majorcan_campaign::json;
use majorcan_testbed::hotpath::{
    measure, report_to_json, schedule_pool, schema_fingerprint, HOTPATH_PROTOCOLS,
};

const N_NODES: usize = 3;
const FULL_SCHEDULES: usize = 400;
const QUICK_SCHEDULES: usize = 40;
const REQUIRED_IMPROVEMENT_PCT: f64 = 20.0;

fn main() {
    let mut quick = false;
    let mut seed: u64 = 0xB0A7;
    let mut out = String::from("BENCH_hotpath.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                seed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| v.parse())
                    .expect("--seed wants an integer");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let (mode, count) = if quick {
        ("quick", QUICK_SCHEDULES)
    } else {
        ("full", FULL_SCHEDULES)
    };
    let pool = schedule_pool(seed, count);

    let mut rows = Vec::new();
    for protocol in HOTPATH_PROTOCOLS {
        let row = measure(protocol, N_NODES, &pool);
        println!(
            "{:<12} rebuild {:>9.1} runs/s   reused {:>9.1} runs/s   {:+.1}%",
            row.protocol.to_string(),
            row.rebuild_runs_per_sec,
            row.reused_runs_per_sec,
            row.improvement_pct()
        );
        rows.push(row);
    }
    let doc = report_to_json(mode, seed, &rows);

    if let Ok(existing) = std::fs::read_to_string(&out) {
        let old = json::parse(&existing)
            .unwrap_or_else(|e| panic!("{out} exists but does not parse as JSON: {e}"));
        if schema_fingerprint(&old) != schema_fingerprint(&doc) {
            eprintln!("error: schema drift against existing {out}");
            eprintln!("  committed: {:?}", schema_fingerprint(&old));
            eprintln!("  generated: {:?}", schema_fingerprint(&doc));
            std::process::exit(1);
        }
    }

    std::fs::write(&out, format!("{doc}\n")).expect("write artifact");
    println!("wrote {out} ({mode} mode, {count} schedules per protocol)");

    let min = rows
        .iter()
        .map(|r| r.improvement_pct())
        .fold(f64::INFINITY, f64::min);
    if !quick && min < REQUIRED_IMPROVEMENT_PCT {
        eprintln!(
            "error: minimum improvement {min:.1}% is below the required \
             {REQUIRED_IMPROVEMENT_PCT:.0}%"
        );
        std::process::exit(1);
    }
}
