//! Regenerates `BENCH_lanes.json`: runs/sec of the 64-lane cohort engine
//! (`Testbed::run_lanes`) against the scalar reused hot loop
//! (`Testbed::run_schedule`), per link-layer protocol, on a prefix-free
//! random campaign — the workload the prefix-fork batcher cannot merge.
//!
//! ```text
//! cargo run --release -p majorcan-testbed --bin bench_lanes -- \
//!     [--quick] [--seed <u64>] [--out BENCH_lanes.json]
//! ```
//!
//! When the output file already exists, its schema is compared against the
//! freshly rendered document first; any drift (keys added, removed or
//! renamed) is an error, so `scripts/check.sh` catches accidental format
//! changes before they reach the committed artifact. Measured numbers are
//! machine-dependent and expected to differ run to run; the full (default)
//! mode additionally enforces the ≥8× throughput multiple the lane API
//! exists for.

use majorcan_campaign::json;
use majorcan_testbed::lanesbench::{
    measure, prefix_free_pool, report_to_json, schema_fingerprint, LANES_PROTOCOLS,
};

const N_NODES: usize = 3;
const FULL_SCHEDULES: usize = 512;
const QUICK_SCHEDULES: usize = 64;
const REQUIRED_SPEEDUP: f64 = 8.0;

fn main() {
    let mut quick = false;
    let mut seed: u64 = 0x1A9E5;
    let mut out = String::from("BENCH_lanes.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                seed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| v.parse())
                    .expect("--seed wants an integer");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let (mode, count) = if quick {
        ("quick", QUICK_SCHEDULES)
    } else {
        ("full", FULL_SCHEDULES)
    };
    let pool = prefix_free_pool(seed, count);

    let mut rows = Vec::new();
    for protocol in LANES_PROTOCOLS {
        let row = measure(protocol, N_NODES, &pool);
        println!(
            "{:<12} scalar {:>10.1} runs/s   laned {:>10.1} runs/s   {:.1}x",
            row.protocol.to_string(),
            row.scalar_runs_per_sec,
            row.lane_runs_per_sec,
            row.speedup()
        );
        rows.push(row);
    }
    let doc = report_to_json(mode, seed, &rows);

    if let Ok(existing) = std::fs::read_to_string(&out) {
        let old = json::parse(&existing)
            .unwrap_or_else(|e| panic!("{out} exists but does not parse as JSON: {e}"));
        if schema_fingerprint(&old) != schema_fingerprint(&doc) {
            eprintln!("error: schema drift against existing {out}");
            eprintln!("  committed: {:?}", schema_fingerprint(&old));
            eprintln!("  generated: {:?}", schema_fingerprint(&doc));
            std::process::exit(1);
        }
    }

    std::fs::write(&out, format!("{doc}\n")).expect("write artifact");
    println!("wrote {out} ({mode} mode, {count} schedules per protocol)");

    let min = rows
        .iter()
        .map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    if !quick && min < REQUIRED_SPEEDUP {
        eprintln!("error: minimum speedup {min:.1}x is below the required {REQUIRED_SPEEDUP:.0}x");
        std::process::exit(1);
    }
}
