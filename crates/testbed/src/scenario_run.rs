//! The owned result of one scripted link-layer run.

use crate::outcome::{classify, Outcome};
use majorcan_abcast::trace_from_can_events;
use majorcan_can::{CanEvent, Frame};
use majorcan_faults::Disturbance;
use majorcan_sim::{BitTrace, NodeId, TimedEvent};

/// The outcome of a scenario execution.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Full controller event log.
    pub events: Vec<TimedEvent<CanEvent>>,
    /// Bit-level trace (always recorded for scenario runs).
    pub trace: BitTrace,
    /// `true` if every scripted disturbance actually fired — if not, the
    /// script missed (e.g. wrong variant for the positions used).
    pub script_exhausted: bool,
    /// The scripted disturbances that never fired, in script order (empty
    /// exactly when [`script_exhausted`](ScenarioRun::script_exhausted)).
    /// A disturbance stays unfired when its position never exists under
    /// the variant's geometry, its node never reaches the position, or the
    /// requested occurrence count is never met — any of which makes a
    /// "consistent" verdict vacuous for schedule-searching callers.
    pub unfired: Vec<Disturbance>,
    /// Number of nodes in the run.
    pub n_nodes: usize,
}

impl ScenarioRun {
    /// Number of scripted disturbances that never fired.
    pub fn remaining(&self) -> usize {
        self.unfired.len()
    }

    /// `true` when every scripted disturbance fired, i.e. the run really
    /// exercised the schedule it claims to have exercised.
    pub fn fully_applied(&self) -> bool {
        self.unfired.is_empty()
    }

    /// Panics with the list of unfired disturbances unless the script
    /// fully applied. Scenario reproductions call this so a geometry
    /// mismatch (e.g. a MajorCAN-only position run under standard CAN)
    /// fails loudly instead of passing vacuously.
    pub fn assert_fully_applied(&self) {
        assert!(
            self.fully_applied(),
            "disturbance script did not fully apply; unfired: [{}]",
            self.unfired
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    /// Frames delivered by `node`, in order.
    pub fn deliveries(&self, node: usize) -> Vec<Frame> {
        self.events
            .iter()
            .filter(|e| e.node == NodeId(node))
            .filter_map(|e| match &e.event {
                CanEvent::Delivered { frame, .. } => Some(frame.clone()),
                _ => None,
            })
            .collect()
    }

    /// Number of successful transmissions committed by `node`.
    pub fn tx_successes(&self, node: usize) -> usize {
        self.events
            .iter()
            .filter(|e| e.node == NodeId(node) && matches!(e.event, CanEvent::TxSucceeded { .. }))
            .count()
    }

    /// Number of retransmissions scheduled by `node`.
    pub fn retransmissions(&self, node: usize) -> usize {
        self.events
            .iter()
            .filter(|e| {
                e.node == NodeId(node)
                    && matches!(e.event, CanEvent::RetransmissionScheduled { .. })
            })
            .count()
    }

    /// `true` if every non-crashed receiver delivered the frame at least
    /// once and no receiver delivered it twice — the quick per-scenario
    /// consistency check. [`ScenarioRun::outcome`] runs the full Atomic
    /// Broadcast checker instead.
    pub fn consistent_single_delivery(&self) -> bool {
        let crashed: Vec<usize> = self
            .events
            .iter()
            .filter(|e| matches!(e.event, CanEvent::Crashed))
            .map(|e| e.node.index())
            .collect();
        (1..self.n_nodes)
            .filter(|n| !crashed.contains(n))
            .all(|n| self.deliveries(n).len() == 1)
    }

    /// Grades the run with the Atomic Broadcast checker and classifies it
    /// into the shared [`Outcome`] vocabulary (the same classification the
    /// falsifier's oracle applies).
    pub fn outcome(&self) -> Outcome {
        let verdict = trace_from_can_events(&self.events, self.n_nodes)
            .check()
            .verdict();
        classify(verdict, self.remaining())
    }
}
