//! The one shared run classification used by every experiment path.
//!
//! Historically the falsifier's oracle and the scenario runner each graded
//! runs their own way; [`Outcome`] (plus [`classify`]) is now the single
//! verdict vocabulary — the falsifier re-exports it, scenario runs expose
//! it through [`ScenarioRun::outcome`](crate::ScenarioRun::outcome), and
//! campaign jobs count the same tokens.

use majorcan_abcast::Verdict;

/// The classification of one testbed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// All checked properties held; the schedule fully applied.
    Consistent,
    /// All checked properties held, but `unfired` disturbances never
    /// applied — the schedule did not test what it claims to test.
    Vacuous {
        /// Number of scripted disturbances that never fired.
        unfired: usize,
    },
    /// A broken Atomic Broadcast property (never
    /// [`Verdict::Consistent`]).
    Violation(Verdict),
    /// The simulator or checker panicked; the payload message is kept.
    CheckerPanic(String),
}

impl Outcome {
    /// Stable token for counters and corpus files: `consistent`,
    /// `vacuous`, the checker's verdict tokens (`double` / `omission` /
    /// `validity`), or `panic`.
    pub fn token(&self) -> &'static str {
        match self {
            Outcome::Consistent => "consistent",
            Outcome::Vacuous { .. } => "vacuous",
            Outcome::Violation(v) => v.token(),
            Outcome::CheckerPanic(_) => "panic",
        }
    }

    /// `true` for the outcomes the falsifier hunts: property violations
    /// and checker panics.
    pub fn is_finding(&self) -> bool {
        matches!(self, Outcome::Violation(_) | Outcome::CheckerPanic(_))
    }
}

/// Folds a checker verdict and the count of unfired scripted disturbances
/// into an [`Outcome`].
pub fn classify(verdict: Verdict, unfired: usize) -> Outcome {
    match (verdict, unfired) {
        (Verdict::Consistent, 0) => Outcome::Consistent,
        (Verdict::Consistent, n) => Outcome::Vacuous { unfired: n },
        (v, _) => Outcome::Violation(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_tokens() {
        assert_eq!(classify(Verdict::Consistent, 0), Outcome::Consistent);
        assert_eq!(
            classify(Verdict::Consistent, 2),
            Outcome::Vacuous { unfired: 2 }
        );
        assert_eq!(
            classify(Verdict::Omission, 2),
            Outcome::Violation(Verdict::Omission)
        );
        assert_eq!(Outcome::Consistent.token(), "consistent");
        assert_eq!(Outcome::Vacuous { unfired: 1 }.token(), "vacuous");
        assert_eq!(Outcome::CheckerPanic("boom".into()).token(), "panic");
        assert!(!Outcome::Consistent.is_finding());
        assert!(Outcome::Violation(Verdict::DoubleReception).is_finding());
        assert!(Outcome::CheckerPanic(String::new()).is_finding());
    }
}
