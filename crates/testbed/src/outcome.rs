//! The one shared run classification used by every experiment path.
//!
//! Historically the falsifier's oracle and the scenario runner each graded
//! runs their own way; [`Outcome`] (plus [`classify`]) is now the single
//! verdict vocabulary — the falsifier re-exports it, scenario runs expose
//! it through [`ScenarioRun::outcome`](crate::ScenarioRun::outcome), and
//! campaign jobs count the same tokens.

use majorcan_abcast::Verdict;

/// The classification of one testbed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// All checked properties held; the schedule fully applied.
    Consistent,
    /// All checked properties held, but `unfired` disturbances never
    /// applied — the schedule did not test what it claims to test.
    Vacuous {
        /// Number of scripted disturbances that never fired.
        unfired: usize,
    },
    /// The bit budget ran out while the bus was still active (a frame in
    /// flight, a retransmission pending, or a bus-off recovery underway),
    /// so the clean verdict computed from the partial trace cannot be
    /// trusted — the run tested a prefix, not the schedule.
    Truncated {
        /// Number of scripted disturbances that never fired.
        unfired: usize,
    },
    /// A broken Atomic Broadcast property (never
    /// [`Verdict::Consistent`]).
    Violation(Verdict),
    /// The simulator or checker panicked; the payload message is kept.
    CheckerPanic(String),
}

impl Outcome {
    /// Stable token for counters and corpus files: `consistent`,
    /// `vacuous`, `truncated`, the checker's verdict tokens (`double` /
    /// `omission` / `validity`), or `panic`.
    pub fn token(&self) -> &'static str {
        match self {
            Outcome::Consistent => "consistent",
            Outcome::Vacuous { .. } => "vacuous",
            Outcome::Truncated { .. } => "truncated",
            Outcome::Violation(v) => v.token(),
            Outcome::CheckerPanic(_) => "panic",
        }
    }

    /// `true` for the outcomes the falsifier hunts: property violations
    /// and checker panics. A truncated run is *not* a finding — it is an
    /// inconclusive run whose budget was too small.
    pub fn is_finding(&self) -> bool {
        matches!(self, Outcome::Violation(_) | Outcome::CheckerPanic(_))
    }

    /// Demotes a clean classification to [`Outcome::Truncated`] when the
    /// run hit its bit budget before the bus drained. Violations stay
    /// violations (they were observed on the executed prefix and cannot be
    /// undone by more bus time); only the *absence* of a violation is
    /// untrustworthy on a truncated trace.
    pub fn truncate_if(self, truncated: bool) -> Outcome {
        if !truncated {
            return self;
        }
        match self {
            Outcome::Consistent => Outcome::Truncated { unfired: 0 },
            Outcome::Vacuous { unfired } => Outcome::Truncated { unfired },
            other => other,
        }
    }
}

/// Folds a checker verdict and the count of unfired scripted disturbances
/// into an [`Outcome`].
pub fn classify(verdict: Verdict, unfired: usize) -> Outcome {
    match (verdict, unfired) {
        (Verdict::Consistent, 0) => Outcome::Consistent,
        (Verdict::Consistent, n) => Outcome::Vacuous { unfired: n },
        (v, _) => Outcome::Violation(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_tokens() {
        assert_eq!(classify(Verdict::Consistent, 0), Outcome::Consistent);
        assert_eq!(
            classify(Verdict::Consistent, 2),
            Outcome::Vacuous { unfired: 2 }
        );
        assert_eq!(
            classify(Verdict::Omission, 2),
            Outcome::Violation(Verdict::Omission)
        );
        assert_eq!(Outcome::Consistent.token(), "consistent");
        assert_eq!(Outcome::Vacuous { unfired: 1 }.token(), "vacuous");
        assert_eq!(Outcome::Truncated { unfired: 0 }.token(), "truncated");
        assert_eq!(Outcome::CheckerPanic("boom".into()).token(), "panic");
        assert!(!Outcome::Consistent.is_finding());
        assert!(!Outcome::Truncated { unfired: 0 }.is_finding());
        assert!(Outcome::Violation(Verdict::DoubleReception).is_finding());
        assert!(Outcome::CheckerPanic(String::new()).is_finding());
    }

    #[test]
    fn truncation_demotes_only_clean_outcomes() {
        assert_eq!(
            Outcome::Consistent.truncate_if(true),
            Outcome::Truncated { unfired: 0 }
        );
        assert_eq!(
            Outcome::Vacuous { unfired: 3 }.truncate_if(true),
            Outcome::Truncated { unfired: 3 }
        );
        assert_eq!(
            Outcome::Violation(Verdict::Omission).truncate_if(true),
            Outcome::Violation(Verdict::Omission)
        );
        assert_eq!(Outcome::Consistent.truncate_if(false), Outcome::Consistent);
    }
}
