//! Criterion bench: the schedule hot loop, reused testbed vs
//! rebuild-per-run (the shape the pre-testbed oracle had). Companion to
//! the `bench_hotpath` binary, which writes the committed
//! `BENCH_hotpath.json` artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use majorcan_faults::{scenario_frame, Disturbance};
use majorcan_testbed::hotpath::{schedule_pool, HOTPATH_PROTOCOLS};
use majorcan_testbed::{budget_for, Outcome, ProtocolSpec, Testbed, HLP_PROBE_PAYLOAD};

const N_NODES: usize = 3;
const SCHEDULES: usize = 32;

/// Rebuild-per-run baseline: a fresh builder-assembled testbed for every
/// schedule (the shape the pre-testbed oracle had).
fn run_rebuilt(protocol: ProtocolSpec, schedule: &[Disturbance]) -> Outcome {
    let mut tb = Testbed::builder(protocol)
        .nodes(N_NODES)
        .trace(true)
        .build();
    tb.load_script(schedule);
    if protocol.is_hlp() {
        tb.broadcast(0, HLP_PROBE_PAYLOAD);
    } else {
        tb.enqueue(0, scenario_frame());
    }
    tb.run(budget_for(protocol));
    tb.outcome()
}

fn bench_rebuild_per_run(c: &mut Criterion) {
    let pool = schedule_pool(0xB0A7, SCHEDULES);
    let mut group = c.benchmark_group("hotpath_rebuild_per_run");
    group.throughput(Throughput::Elements(SCHEDULES as u64));
    for protocol in HOTPATH_PROTOCOLS {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol),
            &protocol,
            |b, &protocol| {
                b.iter(|| {
                    pool.iter()
                        .map(|s| run_rebuilt(protocol, s))
                        .filter(|o| o.is_finding())
                        .count()
                })
            },
        );
    }
    group.finish();
}

fn bench_reused_testbed(c: &mut Criterion) {
    let pool = schedule_pool(0xB0A7, SCHEDULES);
    let mut group = c.benchmark_group("hotpath_reused_testbed");
    group.throughput(Throughput::Elements(SCHEDULES as u64));
    for protocol in HOTPATH_PROTOCOLS {
        let mut testbed = Testbed::builder(protocol).nodes(N_NODES).build();
        group.bench_with_input(BenchmarkId::from_parameter(protocol), &protocol, |b, _| {
            b.iter(|| {
                pool.iter()
                    .map(|s| testbed.run_schedule(s))
                    .filter(|o| o.is_finding())
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rebuild_per_run, bench_reused_testbed);
criterion_main!(benches);
