//! The batch engine's correctness gate: prefix-fork execution
//! ([`Testbed::run_batch`]) must classify every schedule exactly like the
//! scalar hot loop ([`Testbed::run_schedule`]) on the same reused testbed,
//! and a [`Testbed::snapshot`] → mutate → [`Testbed::restore`] round trip
//! must resume bit-identically to a fresh replay — across every protocol
//! variant and with the attacker channel attached.
//!
//! The schedule generator deliberately covers the awkward cases: empty
//! schedules, duplicate schedules, occurrence-2 and stuff-bit entries,
//! and fields on the batch engine's no-fork blacklist (`Idle`, `Sof`),
//! which must silently take the scalar fallback.

use majorcan_campaign::ProtocolSpec;
use majorcan_can::Field;
use majorcan_faults::{AttackAction, Disturbance};
use majorcan_testbed::{budget_for, Outcome, Testbed};
use proptest::prelude::*;

const ALL_PROTOCOLS: [ProtocolSpec; 6] = [
    ProtocolSpec::StandardCan,
    ProtocolSpec::MinorCan,
    ProtocolSpec::MajorCan { m: 5 },
    ProtocolSpec::EdCan,
    ProtocolSpec::RelCan,
    ProtocolSpec::TotCan,
];

const LINK_PROTOCOLS: [ProtocolSpec; 3] = [
    ProtocolSpec::StandardCan,
    ProtocolSpec::MinorCan,
    ProtocolSpec::MajorCan { m: 5 },
];

/// Every field class the falsifier's generator reaches, plus the no-fork
/// blacklist members a batch must route through the scalar fallback.
const FIELDS: [Field; 12] = [
    Field::Idle,
    Field::Sof,
    Field::Id,
    Field::Data,
    Field::Crc,
    Field::CrcDelim,
    Field::AckSlot,
    Field::AckDelim,
    Field::Eof,
    Field::Intermission,
    Field::ErrorFlag,
    Field::AgreementHold,
];

fn arb_disturbance() -> impl Strategy<Value = Disturbance> {
    (0usize..3, 0usize..FIELDS.len(), 0u16..16, 0u32..20).prop_map(|(node, field, index, salt)| {
        let mut d = if salt % 7 == 0 {
            Disturbance::stuff_bit(node, FIELDS[field], index)
        } else {
            Disturbance::first(node, FIELDS[field], index)
        };
        if salt % 5 == 0 {
            d.occurrence = 2;
        }
        d
    })
}

fn arb_schedules() -> impl Strategy<Value = Vec<Vec<Disturbance>>> {
    proptest::collection::vec(proptest::collection::vec(arb_disturbance(), 0..5), 1..12)
}

/// Nudges independent schedules into prefix families the way the
/// falsifier's tail-biased generator does: every second schedule inherits
/// its predecessor's leading disturbances.
fn familyize(mut schedules: Vec<Vec<Disturbance>>) -> Vec<Vec<Disturbance>> {
    for i in 1..schedules.len() {
        if i % 2 == 0 {
            continue;
        }
        let prefix: Vec<Disturbance> = schedules[i - 1]
            .iter()
            .take(schedules[i - 1].len().saturating_sub(1))
            .cloned()
            .collect();
        let mut family = prefix;
        family.extend(schedules[i].iter().cloned());
        family.truncate(5);
        schedules[i] = family;
    }
    schedules
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The tentpole gate: batch outcomes equal scalar outcomes, schedule
    // by schedule, on every protocol variant.
    #[test]
    fn batch_classifies_every_schedule_like_the_scalar_loop(
        raw in arb_schedules()
    ) {
        let schedules = familyize(raw);
        let refs: Vec<&[Disturbance]> = schedules.iter().map(Vec::as_slice).collect();
        for protocol in ALL_PROTOCOLS {
            let mut tb = Testbed::builder(protocol).nodes(3).build();
            let scalar: Vec<Outcome> =
                schedules.iter().map(|s| tb.run_schedule(s)).collect();
            let batch = tb.run_batch(&refs);
            prop_assert_eq!(&batch, &scalar, "{}", protocol);
            // A second pass on the same (now warm) testbed must agree too.
            let again = tb.run_batch(&refs);
            prop_assert_eq!(&again, &scalar, "{} (warm)", protocol);
        }
    }

    // snapshot() → mutate → restore() → run is bit-identical to a fresh
    // `reset_with` replay of the same schedule, for every variant.
    #[test]
    fn snapshot_restore_resumes_bit_identically_to_a_fresh_replay(
        schedule in proptest::collection::vec(arb_disturbance(), 0..5),
        pause in 1u64..600,
    ) {
        for protocol in ALL_PROTOCOLS {
            let budget = budget_for(protocol);
            let mut tb = Testbed::builder(protocol).nodes(3).build();

            // Reference: one uninterrupted run.
            run_stimulus(&mut tb, &schedule);
            tb.run(budget);
            let ref_events = events_of(&tb);
            let ref_unfired = tb.unfired();
            let ref_outcome = tb.outcome();

            // Snapshot mid-run, wreck the state, restore, resume.
            let pause = pause.min(budget);
            run_stimulus(&mut tb, &schedule);
            tb.run(pause);
            let snap = tb.snapshot();
            prop_assert_eq!(snap.protocol(), protocol);
            tb.run(budget); // mutate: run the cluster way past the snapshot
            tb.restore(&snap);
            prop_assert_eq!(tb.now(), pause);
            tb.run(budget - pause);
            prop_assert_eq!(events_of(&tb), ref_events, "{}", protocol);
            prop_assert_eq!(tb.unfired(), ref_unfired, "{}", protocol);
            prop_assert_eq!(tb.outcome(), ref_outcome, "{}", protocol);
        }
    }
}

/// The run's event log rendered comparably for any cluster kind (the
/// link log for link clusters, the host-level log for HLP clusters).
fn events_of(tb: &Testbed) -> String {
    if tb.protocol().is_hlp() {
        format!("{:?}", tb.hlp_events())
    } else {
        format!("{:?}", tb.can_events())
    }
}

/// Loads `schedule` and queues the per-protocol canonical stimulus (the
/// same shape `run_schedule` uses).
fn run_stimulus(tb: &mut Testbed, schedule: &[Disturbance]) {
    tb.load_script(schedule);
    if tb.protocol().is_hlp() {
        tb.broadcast(0, majorcan_testbed::HLP_PROBE_PAYLOAD);
    } else {
        tb.enqueue(0, majorcan_faults::scenario_frame());
    }
}

/// The restore path must also round-trip a cluster under an armed
/// attacker channel (the attack searcher holds snapshots across forks).
#[test]
fn snapshot_restore_round_trips_with_the_attacker_channel_attached() {
    let actions = vec![
        AttackAction::Pulse {
            node: 1,
            field: Field::Eof,
            index: 2,
            occurrence: 1,
        },
        AttackAction::Hammer {
            node: 2,
            field: Field::AckDelim,
            index: 0,
            reps: 2,
        },
    ];
    for protocol in LINK_PROTOCOLS {
        let mut tb = Testbed::builder(protocol).nodes(3).build();

        tb.load_attack(&actions, 8);
        tb.enqueue(0, majorcan_faults::scenario_frame());
        tb.run(2_000);
        let ref_events = tb.can_events().to_vec();
        let ref_outcome = tb.outcome();

        tb.load_attack(&actions, 8);
        tb.enqueue(0, majorcan_faults::scenario_frame());
        tb.run(90);
        let snap = tb.snapshot();
        tb.run(2_000); // mutate well past the snapshot point
        tb.restore(&snap);
        assert_eq!(tb.now(), 90, "{protocol}");
        tb.run(2_000 - 90);
        assert_eq!(tb.can_events(), &ref_events[..], "{protocol}");
        assert_eq!(tb.outcome(), ref_outcome, "{protocol}");
    }
}

/// Restoring a snapshot into a testbed of a different shape must be
/// rejected loudly, never silently corrupt the cluster.
#[test]
#[should_panic(expected = "cannot restore")]
fn snapshot_of_one_protocol_cannot_restore_another() {
    let can = Testbed::builder(ProtocolSpec::StandardCan).nodes(3).build();
    let snap = can.snapshot();
    let mut minor = Testbed::builder(ProtocolSpec::MinorCan).nodes(3).build();
    minor.restore(&snap);
}
