//! The lane engine's correctness gate: 64-lane cohort execution
//! ([`Testbed::run_lanes`]) must classify every schedule exactly like the
//! scalar hot loop ([`Testbed::run_schedule`]) on the same reused
//! testbed, across every protocol variant — the mirror of
//! `batch_equivalence.rs` for the prefix-free workload the lane engine
//! exists for.
//!
//! The schedule generator deliberately covers the awkward cases: empty
//! schedules, duplicate schedules, occurrence-2 and stuff-bit entries,
//! and fields on the no-fork blacklist (`Idle`, `Sof`, `BusOff`,
//! `Crashed`), which must peel to the scalar path before the cohort even
//! starts. Dedicated tests cover multi-block packing (> 64 schedules)
//! and a testbed left with an armed attacker channel.

use majorcan_campaign::ProtocolSpec;
use majorcan_can::Field;
use majorcan_faults::{AttackAction, Disturbance};
use majorcan_testbed::lanesbench::prefix_free_pool;
use majorcan_testbed::{Outcome, Testbed};
use proptest::prelude::*;

const ALL_PROTOCOLS: [ProtocolSpec; 6] = [
    ProtocolSpec::StandardCan,
    ProtocolSpec::MinorCan,
    ProtocolSpec::MajorCan { m: 5 },
    ProtocolSpec::EdCan,
    ProtocolSpec::RelCan,
    ProtocolSpec::TotCan,
];

const LINK_PROTOCOLS: [ProtocolSpec; 3] = [
    ProtocolSpec::StandardCan,
    ProtocolSpec::MinorCan,
    ProtocolSpec::MajorCan { m: 5 },
];

/// Every field class the falsifier's generator reaches, plus the no-fork
/// blacklist members (`Idle`, `Sof`, `BusOff`, `Crashed`) whose lanes
/// must peel to the scalar path at bit zero.
const FIELDS: [Field; 14] = [
    Field::Idle,
    Field::Sof,
    Field::Id,
    Field::Data,
    Field::Crc,
    Field::CrcDelim,
    Field::AckSlot,
    Field::AckDelim,
    Field::Eof,
    Field::Intermission,
    Field::ErrorFlag,
    Field::AgreementHold,
    Field::BusOff,
    Field::Crashed,
];

fn arb_disturbance() -> impl Strategy<Value = Disturbance> {
    (0usize..3, 0usize..FIELDS.len(), 0u16..16, 0u32..20).prop_map(|(node, field, index, salt)| {
        let mut d = if salt % 7 == 0 {
            Disturbance::stuff_bit(node, FIELDS[field], index)
        } else {
            Disturbance::first(node, FIELDS[field], index)
        };
        if salt % 5 == 0 {
            d.occurrence = 2;
        }
        d
    })
}

/// Independent draws — no familyization: the lane engine's workload is
/// prefix-free by construction.
fn arb_schedules() -> impl Strategy<Value = Vec<Vec<Disturbance>>> {
    proptest::collection::vec(proptest::collection::vec(arb_disturbance(), 0..5), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The tentpole gate: laned outcomes equal scalar outcomes, schedule
    // by schedule, on every protocol variant (HLP targets exercise the
    // per-schedule fallback dispatch).
    #[test]
    fn lanes_classify_every_schedule_like_the_scalar_loop(
        schedules in arb_schedules()
    ) {
        let refs: Vec<&[Disturbance]> = schedules.iter().map(Vec::as_slice).collect();
        for protocol in ALL_PROTOCOLS {
            let mut tb = Testbed::builder(protocol).nodes(3).build();
            let scalar: Vec<Outcome> =
                schedules.iter().map(|s| tb.run_schedule(s)).collect();
            let laned = tb.run_lanes(&refs);
            prop_assert_eq!(&laned, &scalar, "{}", protocol);
            // A second pass on the same (now warm) testbed must agree too.
            let again = tb.run_lanes(&refs);
            prop_assert_eq!(&again, &scalar, "{} (warm)", protocol);
        }
    }

    // Lane and batch engines agree with each other as well (both are
    // gated against scalar; this closes the triangle cheaply on the
    // link protocols, where both have dedicated paths).
    #[test]
    fn lanes_and_batch_agree(schedules in arb_schedules()) {
        let refs: Vec<&[Disturbance]> = schedules.iter().map(Vec::as_slice).collect();
        for protocol in LINK_PROTOCOLS {
            let mut tb = Testbed::builder(protocol).nodes(3).build();
            let laned = tb.run_lanes(&refs);
            let batch = tb.run_batch(&refs);
            prop_assert_eq!(&laned, &batch, "{}", protocol);
        }
    }
}

/// More schedules than one cohort can hold: the chunker must split into
/// full 64-lane blocks plus a partial final block, with outcomes still
/// in input order and scalar-identical.
#[test]
fn multi_block_packing_matches_scalar() {
    let pool = prefix_free_pool(0xB10C5, 64 + 64 + 17);
    let refs: Vec<&[Disturbance]> = pool.iter().map(Vec::as_slice).collect();
    for protocol in LINK_PROTOCOLS {
        let mut tb = Testbed::builder(protocol).nodes(3).build();
        let scalar: Vec<Outcome> = pool.iter().map(|s| tb.run_schedule(s)).collect();
        let laned = tb.run_lanes(&refs);
        assert_eq!(laned, scalar, "{protocol}");
    }
}

/// Schedules that drive a node to bus-off (or target the bus-off /
/// crashed fields directly) must classify identically: the field
/// targets peel to scalar at bit zero, and a cohort survivor's verdict
/// is untouched by another lane's bus-off replay.
#[test]
fn bus_off_and_crash_lanes_peel_to_scalar() {
    // Hammering the ACK slot repeatedly walks the transmitter's error
    // counter; occurrence-stacked error-flag hits do the same for
    // receivers. Mix those heavy lanes with clean and light ones.
    let mut heavy = Vec::new();
    for occ in 1..=8u32 {
        let mut d = Disturbance::first(0, Field::AckSlot, 0);
        d.occurrence = occ;
        heavy.push(d);
    }
    let schedules: Vec<Vec<Disturbance>> = vec![
        heavy,
        vec![Disturbance::first(1, Field::BusOff, 0)],
        vec![Disturbance::first(2, Field::Crashed, 0)],
        vec![],
        vec![Disturbance::first(1, Field::Eof, 2)],
        vec![Disturbance::first(0, Field::Idle, 0)],
    ];
    let refs: Vec<&[Disturbance]> = schedules.iter().map(Vec::as_slice).collect();
    for protocol in LINK_PROTOCOLS {
        let mut tb = Testbed::builder(protocol).nodes(3).build();
        let scalar: Vec<Outcome> = schedules.iter().map(|s| tb.run_schedule(s)).collect();
        let laned = tb.run_lanes(&refs);
        assert_eq!(laned, scalar, "{protocol}");
    }
}

/// A testbed left with an armed attacker channel must be rejected
/// cleanly by the lane path: `run_lanes` installs its own scripted
/// channel (exactly like `run_schedule`), never panics on the foreign
/// channel, and still matches scalar outcomes.
#[test]
fn attacker_channel_testbed_is_rescripted_not_wedged() {
    let actions = vec![AttackAction::Pulse {
        node: 1,
        field: Field::Eof,
        index: 2,
        occurrence: 1,
    }];
    let pool = prefix_free_pool(0xA77AC, 12);
    let refs: Vec<&[Disturbance]> = pool.iter().map(Vec::as_slice).collect();
    for protocol in LINK_PROTOCOLS {
        let mut tb = Testbed::builder(protocol).nodes(3).build();
        tb.load_attack(&actions, 8); // leave an armed attacker behind
        let laned = tb.run_lanes(&refs);
        let scalar: Vec<Outcome> = pool.iter().map(|s| tb.run_schedule(s)).collect();
        assert_eq!(laned, scalar, "{protocol}");
    }
}
