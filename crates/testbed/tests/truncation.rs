//! Regression tests for the quiescence-vs-budget-exhaustion distinction.
//!
//! A budget-exhausted run and a genuinely quiescent run used to fall out
//! of the batch engine's `run_to_quiescence` identically, so a budget
//! landing after the frame's delivery but before the bus drained (e.g.
//! mid-intermission) classified as a confident `Consistent` — and the
//! no-trip group shortcut stamped that verdict onto *every* member of a
//! prefix group. These tests pin the fix: a run whose budget elapses
//! while the bus is still active is [`Outcome::Truncated`], on the
//! scalar, batch and lane paths alike.

use majorcan_can::Field;
use majorcan_faults::Disturbance;
use majorcan_testbed::{budget_for, Outcome, ProtocolSpec, Testbed};

const LINK_PROTOCOLS: [ProtocolSpec; 3] = [
    ProtocolSpec::StandardCan,
    ProtocolSpec::MinorCan,
    ProtocolSpec::MajorCan { m: 5 },
];

/// The largest budget at which the fault-free run still classifies
/// `Truncated` — one bit inside the bus wind-down, where every delivery
/// has happened but the cluster has not drained yet. Before the fix this
/// window classified `Consistent`.
fn last_truncated_budget(protocol: ProtocolSpec) -> u64 {
    let mut tb = Testbed::builder(protocol).nodes(3).build();
    for budget in 1..=budget_for(protocol) {
        tb.set_budget(budget);
        if tb.run_schedule(&[]) == Outcome::Consistent {
            // The first budget that classifies clean is the drain bit;
            // one bit earlier every delivery has happened but the bus is
            // still winding down.
            tb.set_budget(budget - 1);
            assert_eq!(
                tb.run_schedule(&[]),
                Outcome::Truncated { unfired: 0 },
                "{protocol}: the last pre-drain bit must classify truncated"
            );
            return budget - 1;
        }
    }
    panic!("{protocol}: the fault-free run never classifies consistent")
}

#[test]
fn scalar_budget_landing_mid_wind_down_truncates() {
    for protocol in LINK_PROTOCOLS {
        // `last_truncated_budget` itself asserts the window exists; pin
        // the boundary semantics around it too.
        let cut = last_truncated_budget(protocol);
        let mut tb = Testbed::builder(protocol).nodes(3).budget(cut + 1).build();
        assert_eq!(
            tb.run_schedule(&[]),
            Outcome::Consistent,
            "{protocol}: one bit past the wind-down the run is complete"
        );
        // A budget landing mid-frame is also budget-cut; the partial
        // trace grades as a missing delivery, and truncation must not
        // upgrade it to a clean verdict either.
        tb.set_budget(40);
        let mid_frame = tb.run_schedule(&[]);
        assert!(
            mid_frame.token() == "truncated" || mid_frame.is_finding(),
            "{protocol}: mid-frame cut classified clean: {mid_frame:?}"
        );
    }
}

/// The bug named in the issue: a prefix group whose tails can never trip
/// within the budget takes the no-trip shortcut, which used to stamp the
/// trunk's clean verdict on every member even when the trunk was cut by
/// the budget. The shared prefix entry (third occurrence of a CRC bit)
/// and the tails (error-flag bits) never match a fault-free run, so the
/// trunk is the fault-free run, no peek ever trips, and with the budget
/// inside the wind-down window the whole group must come back
/// `Truncated` — exactly like the scalar path.
#[test]
fn batch_no_trip_shortcut_reports_group_truncation() {
    for protocol in LINK_PROTOCOLS {
        let mut prefix = Disturbance::first(0, Field::Crc, 0);
        prefix.occurrence = 3;
        let schedules: Vec<Vec<Disturbance>> = vec![
            vec![prefix.clone(), Disturbance::first(1, Field::ErrorFlag, 0)],
            vec![prefix.clone(), Disturbance::first(2, Field::ErrorFlag, 3)],
            vec![prefix, Disturbance::first(1, Field::ErrorFlag, 5)],
        ];
        let refs: Vec<&[Disturbance]> = schedules.iter().map(Vec::as_slice).collect();

        let cut = last_truncated_budget(protocol);
        let mut tb = Testbed::builder(protocol).nodes(3).budget(cut).build();
        let scalar: Vec<Outcome> = schedules.iter().map(|s| tb.run_schedule(s)).collect();
        let batch = tb.run_batch(&refs);
        let laned = tb.run_lanes(&refs);

        assert_eq!(batch, scalar, "{protocol}: batch diverges from scalar");
        assert_eq!(laned, scalar, "{protocol}: laned diverges from scalar");
        for (i, outcome) in batch.iter().enumerate() {
            assert_eq!(
                outcome,
                &Outcome::Truncated { unfired: 2 },
                "{protocol}: member {i} of a budget-cut group classified {outcome:?}"
            );
        }
    }
}

/// Truncation never hides an observed violation: demotion applies only
/// to clean classifications, so a verdict found on the executed prefix
/// survives even if the budget then cuts the run.
#[test]
fn truncation_does_not_demote_violations() {
    use majorcan_abcast::Verdict;
    assert_eq!(
        Outcome::Violation(Verdict::Omission).truncate_if(true),
        Outcome::Violation(Verdict::Omission)
    );
    assert_eq!(
        Outcome::Vacuous { unfired: 2 }.truncate_if(true),
        Outcome::Truncated { unfired: 2 }
    );
}
