//! Execution tests for the catalogued paper scenarios, run through the
//! testbed facade (migrated from `majorcan-faults` when execution moved
//! here).

use majorcan_campaign::ProtocolSpec;
use majorcan_can::Variant;
use majorcan_can::{CanEvent, Field, StandardCan};
use majorcan_faults::{CrashRule, Disturbance, Scenario};
use majorcan_sim::NodeId;
use majorcan_testbed::{spec_of, Outcome, ScenarioRun, Testbed};

/// Assembles a fresh testbed through the builder (the one assembly path)
/// and executes `scenario` on it.
fn run_scenario<V: Variant>(variant: &V, scenario: &Scenario, budget: u64) -> ScenarioRun {
    Testbed::builder(spec_of(variant))
        .nodes(scenario.n_nodes)
        .budget(budget)
        .build()
        .run_scenario(scenario)
}

/// [`run_scenario`] + [`ScenarioRun::assert_fully_applied`].
fn run_scenario_strict<V: Variant>(variant: &V, scenario: &Scenario, budget: u64) -> ScenarioRun {
    let run = run_scenario(variant, scenario, budget);
    run.assert_fully_applied();
    run
}

/// An ad-hoc disturbance script on a fresh builder-assembled testbed.
fn run_script<V: Variant>(
    variant: &V,
    disturbances: Vec<Disturbance>,
    n_nodes: usize,
    budget: u64,
) -> ScenarioRun {
    Testbed::builder(spec_of(variant))
        .nodes(n_nodes)
        .budget(budget)
        .build()
        .run_script(&disturbances)
}

#[test]
fn fig1b_run_shows_double_reception_on_standard_can() {
    let run = run_scenario(&StandardCan, &Scenario::fig1b(), 800);
    assert!(run.script_exhausted, "disturbance must have fired");
    assert!(run.fully_applied());
    assert_eq!(run.remaining(), 0);
    assert_eq!(run.deliveries(2).len(), 2, "Y delivers twice");
    assert_eq!(run.deliveries(1).len(), 1);
    assert!(!run.consistent_single_delivery());
    assert!(!run.trace.is_empty());
}

#[test]
fn fig1c_run_crashes_tx_and_omits_x() {
    let run = run_scenario(&StandardCan, &Scenario::fig1c(), 800);
    assert!(run.script_exhausted);
    assert_eq!(run.deliveries(2).len(), 1);
    assert_eq!(run.deliveries(1).len(), 0, "X omitted");
    assert!(run
        .events
        .iter()
        .any(|e| e.node == NodeId(0) && matches!(e.event, CanEvent::Crashed)));
}

#[test]
fn fig1a_run_is_consistent() {
    let run = run_scenario(&StandardCan, &Scenario::fig1a(), 800);
    assert!(run.script_exhausted);
    assert!(run.consistent_single_delivery());
    assert_eq!(run.retransmissions(0), 0);
}

#[test]
fn fig3a_run_violates_agreement_with_correct_tx() {
    let run = run_scenario(&StandardCan, &Scenario::fig3a(), 800);
    assert!(run.script_exhausted);
    assert_eq!(run.tx_successes(0), 1);
    assert_eq!(run.deliveries(2).len(), 1);
    assert_eq!(run.deliveries(1).len(), 0);
    assert!(!run.consistent_single_delivery());
}

#[test]
fn wider_networks_supported() {
    let run = run_scenario(&StandardCan, &Scenario::fig1a().with_nodes(6), 900);
    assert!(run.consistent_single_delivery());
    assert_eq!(run.n_nodes, 6);
}

#[test]
fn at_bit_crash_rule_fires_at_the_given_time() {
    let mut scenario = Scenario::fig1b();
    scenario.crash = Some(CrashRule::AtBit { node: 2, at: 30 });
    let run = run_scenario(&StandardCan, &scenario, 800);
    let crash = run
        .events
        .iter()
        .find(|e| matches!(e.event, CanEvent::Crashed))
        .expect("crash fired");
    assert_eq!(crash.node, NodeId(2));
    assert_eq!(crash.at, 30);
    // Node 2 crashed mid-frame: it never delivers anything.
    assert!(run.deliveries(2).is_empty());
}

#[test]
fn run_script_matches_run_scenario_on_the_same_disturbances() {
    let scenario = Scenario::fig1b();
    let via_scenario = run_scenario(&StandardCan, &scenario, 800);
    let via_script = run_script(&StandardCan, scenario.disturbances.clone(), 3, 800);
    assert_eq!(via_script.events, via_scenario.events);
    assert!(via_script.fully_applied());
}

#[test]
fn unfired_disturbances_are_reported_not_swallowed() {
    // A MajorCAN-only position run under standard CAN never fires:
    // the run must say so instead of passing vacuously.
    let ghost = Disturbance::first(1, Field::AgreementHold, 13);
    let run = run_script(&StandardCan, vec![ghost.clone()], 3, 800);
    assert!(!run.script_exhausted);
    assert!(!run.fully_applied());
    assert_eq!(run.remaining(), 1);
    assert_eq!(run.unfired, vec![ghost]);
    // The broadcast itself still completed cleanly.
    assert!(run.consistent_single_delivery());
    assert_eq!(run.outcome(), Outcome::Vacuous { unfired: 1 });
}

#[test]
fn strict_runner_accepts_fully_applied_scripts() {
    let run = run_scenario_strict(&StandardCan, &Scenario::fig1b(), 800);
    assert!(run.fully_applied());
}

#[test]
#[should_panic(expected = "did not fully apply")]
fn strict_runner_rejects_scripts_that_missed() {
    let mut scenario = Scenario::fig1b();
    // EOF bit 20 does not exist in a 7-bit EOF.
    scenario.disturbances = vec![Disturbance::eof(1, 20)];
    run_scenario_strict(&StandardCan, &scenario, 800);
}

#[test]
fn after_resched_rule_is_a_no_op_when_nothing_is_rescheduled() {
    let mut scenario = Scenario::fig1a(); // no retransmission occurs
    scenario.crash = Some(CrashRule::AfterRetransmissionScheduled { node: 0 });
    let run = run_scenario(&StandardCan, &scenario, 800);
    assert!(
        !run.events
            .iter()
            .any(|e| matches!(e.event, CanEvent::Crashed)),
        "no retransmission, no crash"
    );
    assert!(run.consistent_single_delivery());
}

#[test]
fn reused_testbed_replays_a_scenario_identically_to_a_fresh_one() {
    let mut reused = Testbed::builder(ProtocolSpec::StandardCan)
        .budget(800)
        .build();
    // Warm the testbed on unrelated scenarios, then replay fig1b.
    reused.run_scenario(&Scenario::fig1a());
    reused.run_scenario(&Scenario::fig3a());
    let warm = reused.run_scenario(&Scenario::fig1b());
    let fresh = run_scenario(&StandardCan, &Scenario::fig1b(), 800);
    assert_eq!(warm.events, fresh.events);
    assert_eq!(warm.trace.len(), fresh.trace.len());
    assert_eq!(warm.unfired, fresh.unfired);
}

#[test]
fn run_schedule_classifies_like_the_scenario_path() {
    let mut tb = Testbed::builder(ProtocolSpec::StandardCan).build();
    assert_eq!(
        tb.run_schedule(&Scenario::fig1b().disturbances),
        tb.run_script(&Scenario::fig1b().disturbances).outcome()
    );
    assert_eq!(tb.run_schedule(&[]), Outcome::Consistent);
}

#[test]
#[should_panic(expected = "needs a link-layer cluster")]
fn link_operations_panic_on_hlp_testbeds() {
    let mut tb = Testbed::builder(ProtocolSpec::EdCan).build();
    tb.enqueue(0, majorcan_faults::scenario_frame());
}

#[test]
#[should_panic(expected = "invalid MajorCAN tolerance")]
fn invalid_majorcan_tolerance_panics_at_build() {
    Testbed::builder(ProtocolSpec::MajorCan { m: 2 }).build();
}
