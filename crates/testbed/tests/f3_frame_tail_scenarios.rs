//! The F3 frame-tail family as scenario entry points: both archived
//! MajorCAN_3 minima, run through the same `run_scenario` facade as the
//! paper figures. Pre-fix these scripts were the falsifier's only
//! MajorCAN findings (double reception and inconsistent omission, 3
//! disturbances = m, inside the paper's budget); the frame-tail fix
//! extends the agreement hold to ACK-slot / CRC-delimiter / ACK-delimiter
//! bearers, so both must now end in global rejection plus a clean
//! retransmission.

use majorcan_can::Variant;
use majorcan_core::MajorCan;
use majorcan_faults::Scenario;
use majorcan_testbed::{spec_of, Outcome, ScenarioRun, Testbed};

/// Builder-assembled scenario run + fully-applied assertion (the strict
/// facade the paper-figure tests use).
fn run_scenario_strict<V: Variant>(variant: &V, scenario: &Scenario, budget: u64) -> ScenarioRun {
    let run = Testbed::builder(spec_of(variant))
        .nodes(scenario.n_nodes)
        .budget(budget)
        .build()
        .run_scenario(scenario);
    run.assert_fully_applied();
    run
}

#[test]
fn frame_tail_family_is_consistent_with_retransmission_on_majorcan_3() {
    for scenario in Scenario::frame_tail_family() {
        let run = run_scenario_strict(&MajorCan::new(3).expect("valid m"), &scenario, 5_000);
        assert_eq!(run.outcome(), Outcome::Consistent, "{}", scenario.name);
        // Global rejection of the disturbed attempt, then exactly one
        // successful retransmission delivered on every receiver.
        assert_eq!(run.tx_successes(0), 1, "{}", scenario.name);
        assert!(run.retransmissions(0) >= 1, "{}", scenario.name);
        assert_eq!(run.deliveries(1).len(), 1, "{}", scenario.name);
        assert_eq!(run.deliveries(2).len(), 1, "{}", scenario.name);
        assert!(run.consistent_single_delivery(), "{}", scenario.name);
    }
}

#[test]
fn frame_tail_family_is_absorbed_by_the_proposed_tolerance() {
    // m = 5 absorbed these shapes even before the fix (the 5-bit windows
    // become 9-bit); keep that pinned through the scenario path too.
    for scenario in Scenario::frame_tail_family() {
        let run = run_scenario_strict(&MajorCan::proposed(), &scenario, 5_000);
        assert_eq!(run.outcome(), Outcome::Consistent, "{}", scenario.name);
    }
}
