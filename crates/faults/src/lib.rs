//! # majorcan-faults — fault injection for the CAN bus simulator
//!
//! Everything that goes wrong in the MajorCAN paper, as reusable channel
//! models and scripts for the [`majorcan_sim`] engine:
//!
//! * [`IndependentBitErrors`] / [`GlobalEventErrors`] — random channels
//!   implementing the paper's spatial error model (`ber* = ber/N`, Eq. 2–3,
//!   after Charzinski), plus [`Compose`] for layering models;
//! * [`ScriptedFaults`] / [`Disturbance`] — deterministic frame-relative
//!   disturbances ("the last-but-one EOF bit of node 1's view");
//! * [`Attacker`] / [`AttackAction`] / [`Strategy`] — a budgeted adversary
//!   that observes the bus and injects dominant levels at chosen positions
//!   (bus-off attacks, dominant flooding, error-counter manipulation);
//! * [`Scenario`] — the paper's figures as a catalogued, executable
//!   library (Figs. 1a, 1b, 1c, 3a/3b, 5); the `majorcan-testbed` crate
//!   runs them under any protocol variant;
//! * [`exponential_failure_bits`] / [`crash_probability_within`] — the
//!   crash-fault law behind Eq. 5.
//!
//! # Examples
//!
//! Replaying Fig. 1b under standard CAN shows the double reception; the
//! same script under MajorCAN_5 is consistent:
//!
//! ```
//! use majorcan_core::MajorCan;
//! use majorcan_can::StandardCan;
//! use majorcan_faults::Scenario;
//! use majorcan_testbed::{spec_of, Testbed};
//!
//! let fig1b = Scenario::fig1b();
//! let mut bed = Testbed::builder(spec_of(&StandardCan)).budget(800).build();
//! let can = bed.run_scenario(&fig1b);
//! assert_eq!(can.deliveries(2).len(), 2, "double reception on CAN");
//!
//! let mut bed = Testbed::builder(spec_of(&MajorCan::proposed())).budget(900).build();
//! let major = bed.run_scenario(&fig1b);
//! assert!(major.consistent_single_delivery());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attacker;
mod crash;
mod filter;
mod random;
mod scenarios;
mod script;

pub use attacker::{AttackAction, Attacker, Strategy};
pub use crash::{crash_probability_within, exponential_failure_bits};
pub use filter::{ActiveAfter, FieldFiltered};
pub use random::{BurstErrors, Compose, GlobalEventErrors, IndependentBitErrors};
pub use scenarios::{scenario_frame, CrashRule, Scenario};
pub use script::{Disturbance, ScriptedFaults};
