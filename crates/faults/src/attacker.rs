//! The adversarial channel: a budgeted attacker injecting dominant levels.
//!
//! The benign models in this crate flip a node's *view* of the bus in either
//! direction — that is what electromagnetic interference does. An attacker
//! with physical bus access is weaker in one dimension and stronger in
//! another: it can only drive the wired-AND bus **dominant** (driving
//! recessive is electrically impossible on CAN), but it chooses *where* to
//! strike, observing the frame structure and timing injections at exact bit
//! positions. [`Attacker`] models this as a [`ChannelModel`] whose every
//! injection draws from a per-attack **cost budget**: one unit per dominant
//! pulse placed on the bus. The cheapest schedule that still breaks a
//! protocol is then a meaningful security metric, searched for by the
//! `majorcan-falsify` crate and tabulated by the `attack_surface` campaign.
//!
//! Because a dominant injection on a recessive bus bit is exactly a view
//! flip, the attacker is a *restriction* of the benign flip model: every
//! attack trace is also a benign error trace, so MajorCAN's `m`-tolerance
//! bounds apply verbatim. The converse does not hold — the attacker never
//! flips a dominant bit to recessive — which is why the falsifier's benign
//! minima are a lower bound on attack cost, not an upper bound.
//!
//! The canned [`Strategy`] catalogue covers the attacks the CAN security
//! literature (see PAPERS.md: arXiv 2510.02960, arXiv 1802.01725) treats as
//! standard: bus-off attacks on a victim transmitter, dominant flooding, and
//! error-counter manipulation of a victim receiver. An [`Attacker`] composes
//! with the benign models via [`Compose`](crate::Compose) and the
//! [`ActiveAfter`](crate::ActiveAfter) / [`FieldFiltered`](crate::FieldFiltered)
//! filters, so attacks can ride on top of an already-noisy channel.

use majorcan_can::{Field, WirePos};
use majorcan_sim::{ChannelModel, Level, NodeId};
use std::fmt;

/// One capability exercised by an [`Attacker`], with an explicit cost.
///
/// Actions target either absolute bit times ([`Flood`](AttackAction::Flood))
/// or frame-relative positions in a victim's view
/// ([`Pulse`](AttackAction::Pulse) / [`Hammer`](AttackAction::Hammer)),
/// mirroring how [`Disturbance`](crate::Disturbance) addresses bits. Stuff
/// bits are never targeted: the attacker aims at nominal field positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackAction {
    /// Drive the bus dominant for every bit time in `start..start + len`
    /// (absolute bit count since reset). All nodes see the pulse; the cost
    /// is one unit per *bus bit* actually driven, not per node view.
    Flood {
        /// First absolute bit time driven dominant.
        start: u64,
        /// Number of consecutive bit times driven.
        len: u64,
    },
    /// A single dominant pulse into one node's view at a frame-relative
    /// position, on its `occurrence`-th appearance (1 = first). Costs one
    /// unit. This is the attack twin of [`Disturbance`](crate::Disturbance)
    /// restricted to recessive bus bits.
    Pulse {
        /// Victim node whose view is driven dominant.
        node: usize,
        /// Field of the targeted frame-relative position.
        field: Field,
        /// 0-based bit index within the field.
        index: u16,
        /// Which appearance of this position to strike (1 = first).
        occurrence: u32,
    },
    /// Repeated dominant pulses into one node's view: strike the first
    /// `reps` appearances of the position. Costs one unit per strike, so a
    /// full hammer costs `reps`. This is the shape of bus-off and
    /// counter-manipulation attacks, which must land an error on every
    /// (re)transmission to keep the victim's error counter climbing.
    Hammer {
        /// Victim node whose view is driven dominant.
        node: usize,
        /// Field of the targeted frame-relative position.
        field: Field,
        /// 0-based bit index within the field.
        index: u16,
        /// Number of appearances to strike ([`u32::MAX`] = sustained).
        reps: u32,
    },
}

impl AttackAction {
    /// The scheduled (nominal) cost of this action in budget units.
    ///
    /// The runtime charge can be lower: injections that the budget cannot
    /// cover, or that never find their target position within the run, are
    /// not charged (see [`Attacker::spent`]).
    pub fn cost(&self) -> u64 {
        match self {
            AttackAction::Flood { len, .. } => *len,
            AttackAction::Pulse { .. } => 1,
            AttackAction::Hammer { reps, .. } => u64::from(*reps),
        }
    }
}

impl fmt::Display for AttackAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackAction::Flood { start, len } => {
                write!(f, "flood bits {start}..{}", start.saturating_add(*len))
            }
            AttackAction::Pulse {
                node,
                field,
                index,
                occurrence,
            } => write!(f, "pulse n{node} {field}{index} (occurrence {occurrence})"),
            AttackAction::Hammer {
                node,
                field,
                index,
                reps,
            } => write!(f, "hammer n{node} {field}{index} x{reps}"),
        }
    }
}

/// A canned attack from the CAN security literature, expanded into
/// [`AttackAction`]s by [`Strategy::actions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Classic bus-off attack: land a form error on every (re)transmission
    /// by driving the victim transmitter's view of its CRC delimiter
    /// dominant, +8 TEC per strike, until TEC ≥ 256.
    BusOffAttack {
        /// The victim transmitter.
        victim: usize,
        /// Number of consecutive transmissions to strike.
        reps: u32,
    },
    /// Blind dominant flooding of a bit window — jams arbitration and
    /// whatever frame is in flight, at one unit per bus bit.
    DominantFlood {
        /// First absolute bit time driven dominant.
        start: u64,
        /// Number of consecutive bit times driven.
        len: u64,
    },
    /// Error-counter manipulation of a victim receiver: repeated dominant
    /// pulses into its view of the first EOF bit force receive errors until
    /// the victim leaves error-active (and, under the paper's fail-silent
    /// policy, shuts off — a silent omission).
    CounterManipulation {
        /// The victim receiver.
        victim: usize,
        /// Number of frames to strike.
        reps: u32,
    },
}

impl Strategy {
    /// The attack actions implementing this strategy.
    pub fn actions(&self) -> Vec<AttackAction> {
        match *self {
            Strategy::BusOffAttack { victim, reps } => vec![AttackAction::Hammer {
                node: victim,
                field: Field::CrcDelim,
                index: 0,
                reps,
            }],
            Strategy::DominantFlood { start, len } => vec![AttackAction::Flood { start, len }],
            Strategy::CounterManipulation { victim, reps } => vec![AttackAction::Hammer {
                node: victim,
                field: Field::Eof,
                index: 0,
                reps,
            }],
        }
    }

    /// Short token naming the strategy family, recorded in corpus
    /// provenance ("busoff", "flood", "counter").
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::BusOffAttack { .. } => "busoff",
            Strategy::DominantFlood { .. } => "flood",
            Strategy::CounterManipulation { .. } => "counter",
        }
    }
}

/// One armed action plus its firing state.
#[derive(Debug, Clone)]
struct Armed {
    action: AttackAction,
    /// Appearances of the targeted position seen so far (Pulse/Hammer).
    seen: u32,
    /// Injections actually fired from this action (bus bits, for Flood).
    fired: u32,
}

impl Armed {
    fn new(action: AttackAction) -> Armed {
        Armed {
            action,
            seen: 0,
            fired: 0,
        }
    }
}

/// A budgeted adversary on the wired-AND bus.
///
/// Implements [`ChannelModel`] over [`WirePos`]: per `(bit, node)` sample it
/// decides whether to drive that view dominant. Injections only ever fire
/// when the resolved wire is recessive (dominant injection cannot alter an
/// already-dominant bus — the attacker observes the wire and does not waste
/// budget on bits it cannot change), and every effective injection charges
/// the budget; once `spent == budget` the attacker goes quiet.
///
/// # Examples
///
/// ```
/// use majorcan_can::{Field, WirePos};
/// use majorcan_faults::{AttackAction, Attacker};
/// use majorcan_sim::{ChannelModel, Level, NodeId};
///
/// let mut atk = Attacker::new(
///     vec![AttackAction::Pulse { node: 1, field: Field::Eof, index: 6, occurrence: 1 }],
///     8,
/// );
/// let eof6 = WirePos::new(Field::Eof, 6);
/// // Wrong node: observed but untouched.
/// assert!(!atk.disturb(100, NodeId(0), &eof6, Level::Recessive));
/// // The victim's view of EOF6 is driven dominant, costing one unit.
/// assert!(atk.disturb(100, NodeId(1), &eof6, Level::Recessive));
/// assert_eq!(atk.spent(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Attacker {
    budget: u64,
    spent: u64,
    observed: u64,
    last_bit: Option<u64>,
    /// Bus bit already paid for by a Flood this bit time (subsequent node
    /// views of the same flooded bit ride on the same physical pulse).
    charged_bit: Option<u64>,
    armed: Vec<Armed>,
}

impl Attacker {
    /// An attacker armed with `actions`, allowed to spend `budget` units.
    pub fn new(actions: Vec<AttackAction>, budget: u64) -> Attacker {
        Attacker {
            budget,
            spent: 0,
            observed: 0,
            last_bit: None,
            charged_bit: None,
            armed: actions.into_iter().map(Armed::new).collect(),
        }
    }

    /// An attacker running one canned [`Strategy`].
    pub fn from_strategy(strategy: &Strategy, budget: u64) -> Attacker {
        Attacker::new(strategy.actions(), budget)
    }

    /// A sustained bus-off attacker for soak campaigns: hammers `victim`'s
    /// view of its CRC delimiter on every transmission, forever, bounded
    /// only by `budget`.
    pub fn sustained_bus_off(victim: usize, budget: u64) -> Attacker {
        Attacker::from_strategy(
            &Strategy::BusOffAttack {
                victim,
                reps: u32::MAX,
            },
            budget,
        )
    }

    /// Re-arm with a fresh schedule and budget, keeping the allocation
    /// (mirrors [`ScriptedFaults::reload`](crate::ScriptedFaults::reload)
    /// for the testbed's hot replay loop).
    pub fn reload(&mut self, actions: &[AttackAction], budget: u64) {
        self.budget = budget;
        self.spent = 0;
        self.observed = 0;
        self.last_bit = None;
        self.charged_bit = None;
        self.armed.clear();
        self.armed.extend(actions.iter().cloned().map(Armed::new));
    }

    /// The cost budget this attacker was armed with.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Budget units spent on effective injections so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Distinct bus bit times observed since (re)arming.
    pub fn bits_observed(&self) -> u64 {
        self.observed
    }

    /// Number of armed actions that never fired a single injection.
    pub fn unfired_len(&self) -> usize {
        self.armed.iter().filter(|a| a.fired == 0).count()
    }

    /// The armed actions that never fired, in schedule order.
    pub fn unfired_actions(&self) -> Vec<AttackAction> {
        self.armed
            .iter()
            .filter(|a| a.fired == 0)
            .map(|a| a.action.clone())
            .collect()
    }
}

impl ChannelModel<WirePos> for Attacker {
    fn disturb(&mut self, bit: u64, node: NodeId, tag: &WirePos, wire: Level) -> bool {
        if self.last_bit != Some(bit) {
            self.last_bit = Some(bit);
            self.observed += 1;
        }
        // Dominant injection is idempotent on a dominant bus: nothing to
        // change, nothing to pay. Position appearances are still not
        // counted here — the targeted tail positions (EOF, delimiters) are
        // recessive by construction, and an error flag overwriting them
        // replaces the tag as well.
        if wire != Level::Recessive {
            return false;
        }
        let mut flip = false;
        for armed in self.armed.iter_mut() {
            match armed.action {
                AttackAction::Flood { start, len } => {
                    if bit < start || bit - start >= len {
                        continue;
                    }
                    if self.charged_bit == Some(bit) {
                        flip = true;
                    } else if self.spent < self.budget {
                        self.spent += 1;
                        self.charged_bit = Some(bit);
                        armed.fired = armed.fired.saturating_add(1);
                        flip = true;
                    }
                }
                AttackAction::Pulse {
                    node: victim,
                    field,
                    index,
                    occurrence,
                } => {
                    if node.index() != victim
                        || tag.stuff
                        || tag.field != field
                        || tag.index != index
                    {
                        continue;
                    }
                    armed.seen = armed.seen.saturating_add(1);
                    if armed.seen == occurrence && armed.fired == 0 && self.spent < self.budget {
                        self.spent += 1;
                        armed.fired = 1;
                        flip = true;
                    }
                }
                AttackAction::Hammer {
                    node: victim,
                    field,
                    index,
                    reps,
                } => {
                    if node.index() != victim
                        || tag.stuff
                        || tag.field != field
                        || tag.index != index
                    {
                        continue;
                    }
                    armed.seen = armed.seen.saturating_add(1);
                    if armed.fired < reps && self.spent < self.budget {
                        self.spent += 1;
                        armed.fired += 1;
                        flip = true;
                    }
                }
            }
        }
        flip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eof(index: u16) -> WirePos {
        WirePos::new(Field::Eof, index)
    }

    #[test]
    fn pulse_fires_once_at_its_occurrence_and_charges_one_unit() {
        let mut atk = Attacker::new(
            vec![AttackAction::Pulse {
                node: 1,
                field: Field::Eof,
                index: 6,
                occurrence: 2,
            }],
            10,
        );
        // First appearance: counted, not fired.
        assert!(!atk.disturb(50, NodeId(1), &eof(6), Level::Recessive));
        // Second appearance: fired.
        assert!(atk.disturb(95, NodeId(1), &eof(6), Level::Recessive));
        // Third appearance: already done.
        assert!(!atk.disturb(140, NodeId(1), &eof(6), Level::Recessive));
        assert_eq!(atk.spent(), 1);
        assert_eq!(atk.unfired_len(), 0);
    }

    #[test]
    fn pulse_ignores_other_nodes_stuff_bits_and_other_positions() {
        let mut atk = Attacker::new(
            vec![AttackAction::Pulse {
                node: 1,
                field: Field::Eof,
                index: 6,
                occurrence: 1,
            }],
            10,
        );
        assert!(!atk.disturb(1, NodeId(0), &eof(6), Level::Recessive));
        assert!(!atk.disturb(2, NodeId(1), &eof(5), Level::Recessive));
        let stuffed = WirePos {
            field: Field::Eof,
            index: 6,
            stuff: true,
        };
        assert!(!atk.disturb(3, NodeId(1), &stuffed, Level::Recessive));
        assert_eq!(atk.spent(), 0);
        assert_eq!(atk.unfired_len(), 1);
        assert_eq!(atk.unfired_actions().len(), 1);
    }

    #[test]
    fn dominant_wire_blocks_injection_and_is_free() {
        let mut atk = Attacker::new(vec![AttackAction::Flood { start: 0, len: 100 }], 100);
        assert!(!atk.disturb(5, NodeId(0), &eof(0), Level::Dominant));
        assert_eq!(atk.spent(), 0);
        assert!(atk.disturb(6, NodeId(0), &eof(0), Level::Recessive));
        assert_eq!(atk.spent(), 1);
    }

    #[test]
    fn flood_charges_once_per_bus_bit_across_all_views() {
        let mut atk = Attacker::new(vec![AttackAction::Flood { start: 10, len: 2 }], 100);
        // Bit 9: outside the window.
        assert!(!atk.disturb(9, NodeId(0), &eof(0), Level::Recessive));
        // Bit 10: three node views, one physical pulse, one unit.
        for n in 0..3 {
            assert!(atk.disturb(10, NodeId(n), &eof(0), Level::Recessive));
        }
        assert_eq!(atk.spent(), 1);
        // Bit 11: second unit.
        for n in 0..3 {
            assert!(atk.disturb(11, NodeId(n), &eof(1), Level::Recessive));
        }
        assert_eq!(atk.spent(), 2);
        // Bit 12: window over.
        assert!(!atk.disturb(12, NodeId(0), &eof(2), Level::Recessive));
        assert_eq!(atk.spent(), 2);
        assert_eq!(atk.bits_observed(), 4);
    }

    #[test]
    fn budget_exhaustion_silences_the_attacker() {
        let mut atk = Attacker::new(
            vec![AttackAction::Hammer {
                node: 0,
                field: Field::CrcDelim,
                index: 0,
                reps: 10,
            }],
            3,
        );
        let pos = WirePos::new(Field::CrcDelim, 0);
        let mut fired = 0;
        for bit in 0..10 {
            if atk.disturb(bit * 120, NodeId(0), &pos, Level::Recessive) {
                fired += 1;
            }
        }
        assert_eq!(fired, 3, "three strikes, then broke");
        assert_eq!(atk.spent(), 3);
        assert_eq!(atk.budget(), 3);
    }

    #[test]
    fn hammer_stops_after_its_reps() {
        let mut atk = Attacker::new(
            vec![AttackAction::Hammer {
                node: 2,
                field: Field::Eof,
                index: 0,
                reps: 2,
            }],
            100,
        );
        let pos = eof(0);
        let fired: Vec<bool> = (0..4)
            .map(|i| atk.disturb(i * 120, NodeId(2), &pos, Level::Recessive))
            .collect();
        assert_eq!(fired, vec![true, true, false, false]);
        assert_eq!(atk.spent(), 2);
    }

    #[test]
    fn nominal_costs_follow_the_action_shape() {
        assert_eq!(AttackAction::Flood { start: 7, len: 40 }.cost(), 40);
        assert_eq!(
            AttackAction::Pulse {
                node: 0,
                field: Field::Eof,
                index: 6,
                occurrence: 3
            }
            .cost(),
            1
        );
        assert_eq!(
            AttackAction::Hammer {
                node: 0,
                field: Field::CrcDelim,
                index: 0,
                reps: 32
            }
            .cost(),
            32
        );
    }

    #[test]
    fn strategies_expand_to_their_documented_actions() {
        let busoff = Strategy::BusOffAttack {
            victim: 1,
            reps: 32,
        };
        assert_eq!(busoff.name(), "busoff");
        assert_eq!(
            busoff.actions(),
            vec![AttackAction::Hammer {
                node: 1,
                field: Field::CrcDelim,
                index: 0,
                reps: 32
            }]
        );
        let flood = Strategy::DominantFlood { start: 20, len: 15 };
        assert_eq!(flood.name(), "flood");
        assert_eq!(
            flood.actions(),
            vec![AttackAction::Flood { start: 20, len: 15 }]
        );
        let counter = Strategy::CounterManipulation {
            victim: 2,
            reps: 16,
        };
        assert_eq!(counter.name(), "counter");
        assert_eq!(
            counter.actions(),
            vec![AttackAction::Hammer {
                node: 2,
                field: Field::Eof,
                index: 0,
                reps: 16
            }]
        );
    }

    #[test]
    fn reload_resets_all_firing_state() {
        let mut atk = Attacker::new(
            vec![AttackAction::Pulse {
                node: 0,
                field: Field::Eof,
                index: 0,
                occurrence: 1,
            }],
            5,
        );
        assert!(atk.disturb(0, NodeId(0), &eof(0), Level::Recessive));
        assert_eq!(atk.spent(), 1);
        atk.reload(
            &[AttackAction::Pulse {
                node: 0,
                field: Field::Eof,
                index: 0,
                occurrence: 1,
            }],
            7,
        );
        assert_eq!(atk.spent(), 0);
        assert_eq!(atk.budget(), 7);
        assert_eq!(atk.bits_observed(), 0);
        assert_eq!(atk.unfired_len(), 1);
        assert!(atk.disturb(0, NodeId(0), &eof(0), Level::Recessive));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(
            AttackAction::Flood { start: 5, len: 3 }.to_string(),
            "flood bits 5..8"
        );
        assert_eq!(
            AttackAction::Pulse {
                node: 1,
                field: Field::Eof,
                index: 6,
                occurrence: 1
            }
            .to_string(),
            "pulse n1 EOF6 (occurrence 1)"
        );
        assert_eq!(
            AttackAction::Hammer {
                node: 0,
                field: Field::CrcDelim,
                index: 0,
                reps: 12
            }
            .to_string(),
            "hammer n0 CRCDEL0 x12"
        );
    }

    #[test]
    fn sustained_bus_off_is_an_unbounded_hammer() {
        let mut atk = Attacker::sustained_bus_off(1, 1_000);
        let pos = WirePos::new(Field::CrcDelim, 0);
        for bit in 0..50u64 {
            assert!(atk.disturb(bit * 120, NodeId(1), &pos, Level::Recessive));
        }
        assert_eq!(atk.spent(), 50);
    }
}
