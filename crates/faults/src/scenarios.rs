//! The paper's named scenarios, as executable scripts.
//!
//! Every figure of the paper is catalogued here as a [`Scenario`]: the
//! disturbance script, the optional crash rule, and the node-role convention
//! **node 0 = transmitter, node 1 = the X set, node 2 = the Y set** (the
//! sets are represented by one node each — the protocols treat every member
//! of a set identically, and width can be raised via
//! [`Scenario::with_nodes`]).
//!
//! This module holds only the *data* — the scripts and crash rules.
//! Execution lives in the `majorcan-testbed` crate: its `run_scenario`
//! runs a scenario against any protocol and returns the full event log
//! plus the bit trace, so the same script demonstrates the inconsistency
//! on standard CAN, the partial fix in MinorCAN and the full fix in
//! MajorCAN.

use crate::Disturbance;
use majorcan_can::{Field, Frame, FrameId};

/// A crash fault injected during a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashRule {
    /// Crash `node` one bit after it first schedules a retransmission
    /// (Fig. 1c: "the transmitter suffers a failure that impedes the
    /// retransmission of the frame"). Resolved with a fault-free probe run.
    AfterRetransmissionScheduled {
        /// The node to crash (by convention the transmitter, node 0).
        node: usize,
    },
    /// Crash `node` at an absolute bit time.
    AtBit {
        /// The node to crash.
        node: usize,
        /// Absolute bit time of the crash.
        at: u64,
    },
}

/// A named, scripted error scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short identifier (`"fig1b"`, …).
    pub name: &'static str,
    /// What the scenario demonstrates, quoting the paper where possible.
    pub description: &'static str,
    /// The disturbance script (victim views to invert).
    pub disturbances: Vec<Disturbance>,
    /// Optional crash fault.
    pub crash: Option<CrashRule>,
    /// Number of nodes (tx + X + Y representatives by default).
    pub n_nodes: usize,
}

impl Scenario {
    fn new(
        name: &'static str,
        description: &'static str,
        disturbances: Vec<Disturbance>,
        crash: Option<CrashRule>,
    ) -> Scenario {
        Scenario {
            name,
            description,
            disturbances,
            crash,
            n_nodes: 3,
        }
    }

    /// Overrides the node count (extra nodes become additional Y-set
    /// receivers).
    pub fn with_nodes(mut self, n: usize) -> Scenario {
        assert!(n >= 3, "scenarios need tx + X + Y, got {n}");
        self.n_nodes = n;
        self
    }

    /// All catalogued paper scenarios, in figure order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::fig1a(),
            Scenario::fig1b(),
            Scenario::fig1c(),
            Scenario::fig3a(),
            Scenario::fig5(),
        ]
    }

    /// Fig. 1a: a disturbance in the **last** EOF bit of the X set. The
    /// standard-CAN last-bit rule keeps everyone consistent (X accepts and
    /// raises an overload flag).
    pub fn fig1a() -> Scenario {
        Scenario::new(
            "fig1a",
            "error in the last EOF bit of X: the last-bit rule obliges X to accept; \
             all nodes keep the frame (consistent)",
            vec![Disturbance::eof(1, 7)],
            None,
        )
    }

    /// Fig. 1b: a disturbance in the **last-but-one** EOF bit of X. Under
    /// standard CAN, X rejects while the transmitter retransmits and Y
    /// accepts both copies — the *double reception of frames*.
    pub fn fig1b() -> Scenario {
        Scenario::new(
            "fig1b",
            "error in the last-but-one EOF bit of X: X rejects, Y accepts by the \
             last-bit rule, the transmitter retransmits — Y gets the frame twice",
            vec![Disturbance::eof(1, 6)],
            None,
        )
    }

    /// Fig. 1c: Fig. 1b plus a transmitter crash before the retransmission
    /// — the *inconsistent message omission* identified by Rufino et al.
    pub fn fig1c() -> Scenario {
        Scenario::new(
            "fig1c",
            "as Fig. 1b, but the transmitter fails before retransmitting: Y keeps \
             the frame, X never receives it (inconsistent message omission)",
            vec![Disturbance::eof(1, 6)],
            Some(CrashRule::AfterRetransmissionScheduled { node: 0 }),
        )
    }

    /// Fig. 3a/3b: the paper's **new** scenario. One disturbance at X's
    /// last-but-one EOF bit, one more hiding X's error flag from the
    /// transmitter's last EOF bit. Standard CAN and MinorCAN both leave X
    /// without the frame although the transmitter never fails (CAN2').
    ///
    /// The same script exercises Fig. 3b when run under MinorCAN — the bit
    /// positions are identical; only the decision machinery differs.
    pub fn fig3a() -> Scenario {
        Scenario::new(
            "fig3a",
            "error at X's last-but-one EOF bit plus one masking the transmitter's \
             view of the resulting flag: X rejects, Y accepts, the (correct!) \
             transmitter never retransmits — Agreement violated with 2 errors",
            vec![Disturbance::eof(1, 6), Disturbance::eof(0, 7)],
            None,
        )
    }

    /// Fig. 5: MajorCAN_5 consistency under five scattered errors: X hit at
    /// EOF bit 3, the transmitter blinded at bits 4 and 5 (so it first sees
    /// the flag at bit 6, in the second sub-field, and must notify
    /// acceptance), and two of X's sampling-window bits corrupted.
    ///
    /// Run this under `MajorCan::proposed()`; the positions are
    /// EOF-relative and only exist in a MajorCAN frame.
    pub fn fig5() -> Scenario {
        Scenario::new(
            "fig5",
            "five errors: X flags at EOF bit 3, the transmitter is blinded until \
             bit 6 and extends, two sampling bits of X are corrupted — every node \
             still accepts (MajorCAN_5 agreement)",
            vec![
                Disturbance::eof(1, 3),
                Disturbance::eof(0, 4),
                Disturbance::eof(0, 5),
                Disturbance::first(1, Field::AgreementHold, 13),
                Disturbance::first(1, Field::AgreementHold, 15),
            ],
            None,
        )
    }

    /// F3 frame-tail family, double-reception shape: the transmitter is
    /// hit at the ACK slot, hit again one bit into its error-delimiter
    /// wait, and the Y set is hit at the ACK delimiter. Before the
    /// frame-tail fix the mid-recovery `DWAIT` disturbance manufactured a
    /// second error flag that tipped the other nodes' sampling windows on
    /// MajorCAN_3 (archived as `majorcan_3-…-458ebee2`); with ACK-slot
    /// bearers in the agreement hold, all nodes reject attempt 1 globally
    /// and the retransmission delivers exactly once.
    ///
    /// Not part of [`Scenario::all`]: the figure catalogue is the paper's,
    /// and these regression scripts are specific to the MajorCAN_3
    /// frame-tail analysis (run them via [`Scenario::frame_tail_family`]).
    pub fn f3_double() -> Scenario {
        Scenario::new(
            "f3-double",
            "ACK-slot error at the transmitter, a second hit during its recovery \
             wait, and an ACK-delimiter error at Y: pre-fix the recovery hit forged \
             a second flag that tipped 5-bit voting windows on MajorCAN_3 (double \
             reception); post-fix every node rejects and the retransmission delivers \
             once",
            vec![
                Disturbance::first(0, Field::AckSlot, 0),
                Disturbance::first(0, Field::DelimWait, 0),
                Disturbance::first(2, Field::AckDelim, 0),
            ],
            None,
        )
    }

    /// F3 frame-tail family, omission shape: the transmitter is hit at the
    /// ACK delimiter and the Y set at the CRC delimiter plus once more
    /// mid-recovery. The pre-fix outcome on MajorCAN_3 was an
    /// inconsistent omission (archived as `majorcan_3-…-c5d3e81a`); see
    /// [`Scenario::f3_double`] for the mechanism and the fix.
    pub fn f3_omission() -> Scenario {
        Scenario::new(
            "f3-omission",
            "ACK-delimiter error at the transmitter, CRC-delimiter error at Y plus \
             a second hit during Y's recovery wait: pre-fix an inconsistent omission \
             on MajorCAN_3; post-fix globally rejected and retransmitted",
            vec![
                Disturbance::first(0, Field::AckDelim, 0),
                Disturbance::first(2, Field::CrcDelim, 0),
                Disturbance::first(2, Field::DelimWait, 0),
            ],
            None,
        )
    }

    /// Both F3 frame-tail regression scripts (the shrunk minima of the
    /// PR 3 over-budget probe), kept outside [`Scenario::all`] so the
    /// figure catalogue stays the paper's.
    pub fn frame_tail_family() -> Vec<Scenario> {
        vec![Scenario::f3_double(), Scenario::f3_omission()]
    }
}

/// The reference frame used by every scenario run: identifier `0x0AA`, one
/// data byte. (Any frame works; this one matches the tests.)
pub fn scenario_frame() -> Frame {
    Frame::new(FrameId::new(0x0AA).expect("valid id"), &[0xCD]).expect("valid frame")
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete() {
        let names: Vec<&str> = Scenario::all().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["fig1a", "fig1b", "fig1c", "fig3a", "fig5"]);
        for s in Scenario::all() {
            assert!(!s.description.is_empty());
            assert!(!s.disturbances.is_empty());
            assert_eq!(s.n_nodes, 3);
        }
    }

    #[test]
    fn frame_tail_family_is_catalogued_but_not_a_paper_figure() {
        let family = Scenario::frame_tail_family();
        let names: Vec<&str> = family.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["f3-double", "f3-omission"]);
        let figures: Vec<&str> = Scenario::all().iter().map(|s| s.name).collect();
        for s in &family {
            assert!(
                !figures.contains(&s.name),
                "{} is not a paper figure",
                s.name
            );
            assert_eq!(
                s.disturbances.len(),
                3,
                "{}: shrunk 3-error minimum",
                s.name
            );
            assert_eq!(s.n_nodes, 3);
            assert!(s.crash.is_none());
        }
    }

    #[test]
    fn wider_networks_change_only_the_node_count() {
        let s = Scenario::fig1a().with_nodes(6);
        assert_eq!(s.n_nodes, 6);
        assert_eq!(s.disturbances, Scenario::fig1a().disturbances);
    }

    #[test]
    #[should_panic(expected = "need tx + X + Y")]
    fn too_few_nodes_rejected() {
        Scenario::fig1a().with_nodes(2);
    }
}
