//! The paper's named scenarios, as executable scripts.
//!
//! Every figure of the paper is catalogued here as a [`Scenario`]: the
//! disturbance script, the optional crash rule, and the node-role convention
//! **node 0 = transmitter, node 1 = the X set, node 2 = the Y set** (the
//! sets are represented by one node each — the protocols treat every member
//! of a set identically, and width can be raised via
//! [`Scenario::with_nodes`]).
//!
//! [`run_scenario`] executes a scenario against any protocol
//! [`Variant`] and returns the full event log plus the bit trace, so the
//! same script demonstrates the inconsistency on standard CAN, the partial
//! fix in MinorCAN and the full fix in MajorCAN.

use crate::{Disturbance, ScriptedFaults};
use majorcan_can::{CanEvent, Controller, ControllerConfig, Field, Frame, FrameId, Variant};
use majorcan_sim::{BitTrace, NodeId, Simulator, TimedEvent};

/// A crash fault injected during a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashRule {
    /// Crash `node` one bit after it first schedules a retransmission
    /// (Fig. 1c: "the transmitter suffers a failure that impedes the
    /// retransmission of the frame"). Resolved with a fault-free probe run.
    AfterRetransmissionScheduled {
        /// The node to crash (by convention the transmitter, node 0).
        node: usize,
    },
    /// Crash `node` at an absolute bit time.
    AtBit {
        /// The node to crash.
        node: usize,
        /// Absolute bit time of the crash.
        at: u64,
    },
}

/// A named, scripted error scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short identifier (`"fig1b"`, …).
    pub name: &'static str,
    /// What the scenario demonstrates, quoting the paper where possible.
    pub description: &'static str,
    /// The disturbance script (victim views to invert).
    pub disturbances: Vec<Disturbance>,
    /// Optional crash fault.
    pub crash: Option<CrashRule>,
    /// Number of nodes (tx + X + Y representatives by default).
    pub n_nodes: usize,
}

impl Scenario {
    fn new(
        name: &'static str,
        description: &'static str,
        disturbances: Vec<Disturbance>,
        crash: Option<CrashRule>,
    ) -> Scenario {
        Scenario {
            name,
            description,
            disturbances,
            crash,
            n_nodes: 3,
        }
    }

    /// Overrides the node count (extra nodes become additional Y-set
    /// receivers).
    pub fn with_nodes(mut self, n: usize) -> Scenario {
        assert!(n >= 3, "scenarios need tx + X + Y, got {n}");
        self.n_nodes = n;
        self
    }

    /// All catalogued paper scenarios, in figure order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::fig1a(),
            Scenario::fig1b(),
            Scenario::fig1c(),
            Scenario::fig3a(),
            Scenario::fig5(),
        ]
    }

    /// Fig. 1a: a disturbance in the **last** EOF bit of the X set. The
    /// standard-CAN last-bit rule keeps everyone consistent (X accepts and
    /// raises an overload flag).
    pub fn fig1a() -> Scenario {
        Scenario::new(
            "fig1a",
            "error in the last EOF bit of X: the last-bit rule obliges X to accept; \
             all nodes keep the frame (consistent)",
            vec![Disturbance::eof(1, 7)],
            None,
        )
    }

    /// Fig. 1b: a disturbance in the **last-but-one** EOF bit of X. Under
    /// standard CAN, X rejects while the transmitter retransmits and Y
    /// accepts both copies — the *double reception of frames*.
    pub fn fig1b() -> Scenario {
        Scenario::new(
            "fig1b",
            "error in the last-but-one EOF bit of X: X rejects, Y accepts by the \
             last-bit rule, the transmitter retransmits — Y gets the frame twice",
            vec![Disturbance::eof(1, 6)],
            None,
        )
    }

    /// Fig. 1c: Fig. 1b plus a transmitter crash before the retransmission
    /// — the *inconsistent message omission* identified by Rufino et al.
    pub fn fig1c() -> Scenario {
        Scenario::new(
            "fig1c",
            "as Fig. 1b, but the transmitter fails before retransmitting: Y keeps \
             the frame, X never receives it (inconsistent message omission)",
            vec![Disturbance::eof(1, 6)],
            Some(CrashRule::AfterRetransmissionScheduled { node: 0 }),
        )
    }

    /// Fig. 3a/3b: the paper's **new** scenario. One disturbance at X's
    /// last-but-one EOF bit, one more hiding X's error flag from the
    /// transmitter's last EOF bit. Standard CAN and MinorCAN both leave X
    /// without the frame although the transmitter never fails (CAN2').
    ///
    /// The same script exercises Fig. 3b when run under MinorCAN — the bit
    /// positions are identical; only the decision machinery differs.
    pub fn fig3a() -> Scenario {
        Scenario::new(
            "fig3a",
            "error at X's last-but-one EOF bit plus one masking the transmitter's \
             view of the resulting flag: X rejects, Y accepts, the (correct!) \
             transmitter never retransmits — Agreement violated with 2 errors",
            vec![Disturbance::eof(1, 6), Disturbance::eof(0, 7)],
            None,
        )
    }

    /// Fig. 5: MajorCAN_5 consistency under five scattered errors: X hit at
    /// EOF bit 3, the transmitter blinded at bits 4 and 5 (so it first sees
    /// the flag at bit 6, in the second sub-field, and must notify
    /// acceptance), and two of X's sampling-window bits corrupted.
    ///
    /// Run this under `MajorCan::proposed()`; the positions are
    /// EOF-relative and only exist in a MajorCAN frame.
    pub fn fig5() -> Scenario {
        Scenario::new(
            "fig5",
            "five errors: X flags at EOF bit 3, the transmitter is blinded until \
             bit 6 and extends, two sampling bits of X are corrupted — every node \
             still accepts (MajorCAN_5 agreement)",
            vec![
                Disturbance::eof(1, 3),
                Disturbance::eof(0, 4),
                Disturbance::eof(0, 5),
                Disturbance::first(1, Field::AgreementHold, 13),
                Disturbance::first(1, Field::AgreementHold, 15),
            ],
            None,
        )
    }
}

/// The reference frame used by every scenario run: identifier `0x0AA`, one
/// data byte. (Any frame works; this one matches the tests.)
pub fn scenario_frame() -> Frame {
    Frame::new(FrameId::new(0x0AA).expect("valid id"), &[0xCD]).expect("valid frame")
}

/// The outcome of a scenario execution.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Full controller event log.
    pub events: Vec<TimedEvent<CanEvent>>,
    /// Bit-level trace (always recorded for scenario runs).
    pub trace: BitTrace,
    /// `true` if every scripted disturbance actually fired — if not, the
    /// script missed (e.g. wrong variant for the positions used).
    pub script_exhausted: bool,
    /// The scripted disturbances that never fired, in script order (empty
    /// exactly when [`script_exhausted`](ScenarioRun::script_exhausted)).
    /// A disturbance stays unfired when its position never exists under
    /// the variant's geometry, its node never reaches the position, or the
    /// requested occurrence count is never met — any of which makes a
    /// "consistent" verdict vacuous for schedule-searching callers.
    pub unfired: Vec<Disturbance>,
    /// Number of nodes in the run.
    pub n_nodes: usize,
}

impl ScenarioRun {
    /// Number of scripted disturbances that never fired.
    pub fn remaining(&self) -> usize {
        self.unfired.len()
    }

    /// `true` when every scripted disturbance fired, i.e. the run really
    /// exercised the schedule it claims to have exercised.
    pub fn fully_applied(&self) -> bool {
        self.unfired.is_empty()
    }

    /// Panics with the list of unfired disturbances unless the script
    /// fully applied. Scenario reproductions call this so a geometry
    /// mismatch (e.g. a MajorCAN-only position run under standard CAN)
    /// fails loudly instead of passing vacuously.
    pub fn assert_fully_applied(&self) {
        assert!(
            self.fully_applied(),
            "disturbance script did not fully apply; unfired: [{}]",
            self.unfired
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    /// Frames delivered by `node`, in order.
    pub fn deliveries(&self, node: usize) -> Vec<Frame> {
        self.events
            .iter()
            .filter(|e| e.node == NodeId(node))
            .filter_map(|e| match &e.event {
                CanEvent::Delivered { frame, .. } => Some(frame.clone()),
                _ => None,
            })
            .collect()
    }

    /// Number of successful transmissions committed by `node`.
    pub fn tx_successes(&self, node: usize) -> usize {
        self.events
            .iter()
            .filter(|e| e.node == NodeId(node) && matches!(e.event, CanEvent::TxSucceeded { .. }))
            .count()
    }

    /// Number of retransmissions scheduled by `node`.
    pub fn retransmissions(&self, node: usize) -> usize {
        self.events
            .iter()
            .filter(|e| {
                e.node == NodeId(node)
                    && matches!(e.event, CanEvent::RetransmissionScheduled { .. })
            })
            .count()
    }

    /// `true` if every non-crashed receiver delivered the frame at least
    /// once and no receiver delivered it twice — the per-scenario
    /// consistency verdict (full Atomic Broadcast checking lives in the
    /// `majorcan-abcast` crate).
    pub fn consistent_single_delivery(&self) -> bool {
        let crashed: Vec<usize> = self
            .events
            .iter()
            .filter(|e| matches!(e.event, CanEvent::Crashed))
            .map(|e| e.node.index())
            .collect();
        (1..self.n_nodes)
            .filter(|n| !crashed.contains(n))
            .all(|n| self.deliveries(n).len() == 1)
    }
}

/// Executes `scenario` under protocol `variant`: attaches
/// `scenario.n_nodes` controllers (node 0 transmits [`scenario_frame`]),
/// runs for `budget` bits with trace recording, and resolves crash rules
/// (running a fault-free probe pass when needed).
pub fn run_scenario<V: Variant>(variant: &V, scenario: &Scenario, budget: u64) -> ScenarioRun {
    let crash_at: Option<(usize, u64)> = match scenario.crash {
        None => None,
        Some(CrashRule::AtBit { node, at }) => Some((node, at)),
        Some(CrashRule::AfterRetransmissionScheduled { node }) => {
            // Probe pass without the crash to find the scheduling time.
            let probe = execute(variant, scenario, budget, &[]);
            let at = probe
                .events
                .iter()
                .find(|e| {
                    e.node == NodeId(node)
                        && matches!(e.event, CanEvent::RetransmissionScheduled { .. })
                })
                .map(|e| e.at + 1);
            at.map(|at| (node, at))
        }
    };
    let crashes: Vec<(usize, u64)> = crash_at.into_iter().collect();
    execute(variant, scenario, budget, &crashes)
}

/// Executes `scenario` like [`run_scenario`] and then asserts the
/// disturbance script fully applied (see
/// [`ScenarioRun::assert_fully_applied`]), so a schedule that silently
/// missed cannot be mistaken for a passing one.
///
/// # Panics
///
/// Panics, listing the unfired disturbances, when any scripted disturbance
/// never fired.
pub fn run_scenario_strict<V: Variant>(
    variant: &V,
    scenario: &Scenario,
    budget: u64,
) -> ScenarioRun {
    let run = run_scenario(variant, scenario, budget);
    run.assert_fully_applied();
    run
}

/// Executes an ad-hoc disturbance schedule under `variant`: the same
/// machinery as [`run_scenario`] (node 0 transmits [`scenario_frame`],
/// full trace recording, unfired-disturbance reporting) without requiring
/// a named catalogue [`Scenario`]. This is the execution entry point of
/// the adversarial falsifier (`majorcan-falsify`), which synthesizes
/// thousands of schedules that have no name.
pub fn run_script<V: Variant>(
    variant: &V,
    disturbances: Vec<Disturbance>,
    n_nodes: usize,
    budget: u64,
) -> ScenarioRun {
    run_script_with_crashes(variant, disturbances, n_nodes, budget, &[])
}

fn execute<V: Variant>(
    variant: &V,
    scenario: &Scenario,
    budget: u64,
    crashes: &[(usize, u64)],
) -> ScenarioRun {
    run_script_with_crashes(
        variant,
        scenario.disturbances.clone(),
        scenario.n_nodes,
        budget,
        crashes,
    )
}

fn run_script_with_crashes<V: Variant>(
    variant: &V,
    disturbances: Vec<Disturbance>,
    n_nodes: usize,
    budget: u64,
    crashes: &[(usize, u64)],
) -> ScenarioRun {
    let script = ScriptedFaults::new(disturbances);
    let mut sim = Simulator::new(script);
    for i in 0..n_nodes {
        let fail_at = crashes.iter().find(|(n, _)| *n == i).map(|&(_, at)| at);
        sim.attach(Controller::with_config(
            variant.clone(),
            ControllerConfig {
                fail_at,
                ..ControllerConfig::default()
            },
        ));
    }
    sim.record_trace();
    sim.node_mut(NodeId(0)).enqueue(scenario_frame());
    sim.run(budget);
    let unfired = sim.channel().unfired();
    let trace = sim.trace().cloned().unwrap_or_default();
    ScenarioRun {
        events: sim.take_events(),
        trace,
        script_exhausted: unfired.is_empty(),
        unfired,
        n_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majorcan_can::StandardCan;

    #[test]
    fn catalogue_is_complete() {
        let names: Vec<&str> = Scenario::all().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["fig1a", "fig1b", "fig1c", "fig3a", "fig5"]);
        for s in Scenario::all() {
            assert!(!s.description.is_empty());
            assert!(!s.disturbances.is_empty());
            assert_eq!(s.n_nodes, 3);
        }
    }

    #[test]
    fn fig1b_run_shows_double_reception_on_standard_can() {
        let run = run_scenario(&StandardCan, &Scenario::fig1b(), 800);
        assert!(run.script_exhausted, "disturbance must have fired");
        assert!(run.fully_applied());
        assert_eq!(run.remaining(), 0);
        assert_eq!(run.deliveries(2).len(), 2, "Y delivers twice");
        assert_eq!(run.deliveries(1).len(), 1);
        assert!(!run.consistent_single_delivery());
        assert!(!run.trace.is_empty());
    }

    #[test]
    fn fig1c_run_crashes_tx_and_omits_x() {
        let run = run_scenario(&StandardCan, &Scenario::fig1c(), 800);
        assert!(run.script_exhausted);
        assert_eq!(run.deliveries(2).len(), 1);
        assert_eq!(run.deliveries(1).len(), 0, "X omitted");
        assert!(run
            .events
            .iter()
            .any(|e| e.node == NodeId(0) && matches!(e.event, CanEvent::Crashed)));
    }

    #[test]
    fn fig1a_run_is_consistent() {
        let run = run_scenario(&StandardCan, &Scenario::fig1a(), 800);
        assert!(run.script_exhausted);
        assert!(run.consistent_single_delivery());
        assert_eq!(run.retransmissions(0), 0);
    }

    #[test]
    fn fig3a_run_violates_agreement_with_correct_tx() {
        let run = run_scenario(&StandardCan, &Scenario::fig3a(), 800);
        assert!(run.script_exhausted);
        assert_eq!(run.tx_successes(0), 1);
        assert_eq!(run.deliveries(2).len(), 1);
        assert_eq!(run.deliveries(1).len(), 0);
        assert!(!run.consistent_single_delivery());
    }

    #[test]
    fn wider_networks_supported() {
        let run = run_scenario(&StandardCan, &Scenario::fig1a().with_nodes(6), 900);
        assert!(run.consistent_single_delivery());
        assert_eq!(run.n_nodes, 6);
    }

    #[test]
    #[should_panic(expected = "need tx + X + Y")]
    fn too_few_nodes_rejected() {
        Scenario::fig1a().with_nodes(2);
    }

    #[test]
    fn at_bit_crash_rule_fires_at_the_given_time() {
        let mut scenario = Scenario::fig1b();
        scenario.crash = Some(CrashRule::AtBit { node: 2, at: 30 });
        let run = run_scenario(&StandardCan, &scenario, 800);
        let crash = run
            .events
            .iter()
            .find(|e| matches!(e.event, CanEvent::Crashed))
            .expect("crash fired");
        assert_eq!(crash.node, NodeId(2));
        assert_eq!(crash.at, 30);
        // Node 2 crashed mid-frame: it never delivers anything.
        assert!(run.deliveries(2).is_empty());
    }

    #[test]
    fn run_script_matches_run_scenario_on_the_same_disturbances() {
        let scenario = Scenario::fig1b();
        let via_scenario = run_scenario(&StandardCan, &scenario, 800);
        let via_script = run_script(&StandardCan, scenario.disturbances.clone(), 3, 800);
        assert_eq!(via_script.events, via_scenario.events);
        assert!(via_script.fully_applied());
    }

    #[test]
    fn unfired_disturbances_are_reported_not_swallowed() {
        // A MajorCAN-only position run under standard CAN never fires:
        // the run must say so instead of passing vacuously.
        let ghost = Disturbance::first(1, Field::AgreementHold, 13);
        let run = run_script(&StandardCan, vec![ghost.clone()], 3, 800);
        assert!(!run.script_exhausted);
        assert!(!run.fully_applied());
        assert_eq!(run.remaining(), 1);
        assert_eq!(run.unfired, vec![ghost]);
        // The broadcast itself still completed cleanly.
        assert!(run.consistent_single_delivery());
    }

    #[test]
    fn strict_runner_accepts_fully_applied_scripts() {
        let run = run_scenario_strict(&StandardCan, &Scenario::fig1b(), 800);
        assert!(run.fully_applied());
    }

    #[test]
    #[should_panic(expected = "did not fully apply")]
    fn strict_runner_rejects_scripts_that_missed() {
        let mut scenario = Scenario::fig1b();
        // EOF bit 20 does not exist in a 7-bit EOF.
        scenario.disturbances = vec![Disturbance::eof(1, 20)];
        run_scenario_strict(&StandardCan, &scenario, 800);
    }

    #[test]
    fn after_resched_rule_is_a_no_op_when_nothing_is_rescheduled() {
        let mut scenario = Scenario::fig1a(); // no retransmission occurs
        scenario.crash = Some(CrashRule::AfterRetransmissionScheduled { node: 0 });
        let run = run_scenario(&StandardCan, &scenario, 800);
        assert!(
            !run.events
                .iter()
                .any(|e| matches!(e.event, CanEvent::Crashed)),
            "no retransmission, no crash"
        );
        assert!(run.consistent_single_delivery());
    }
}
