//! Scripted, frame-relative disturbances — the mechanism behind every
//! figure reproduction.
//!
//! The paper's scenarios are described symbolically: "a disturbance corrupts
//! the last but one bit of the EOF of the nodes belonging to X". A
//! [`ScriptedFaults`] channel expresses exactly that: each [`Disturbance`]
//! names a victim node, a frame-relative position (field + bit index as the
//! victim itself reports it), and which occurrence of that position to hit —
//! so a disturbance can target the first transmission and leave the
//! retransmission alone.

use majorcan_can::{Field, WirePos};
use majorcan_sim::{ChannelModel, Level, NodeId};
use std::fmt;

/// One scripted view-flip.
///
/// The `Ord` impl is lexicographic over the fields in declaration order —
/// the batch engine sorts schedules by it so that schedules sharing a
/// disturbance prefix become neighbours and can fork from one snapshot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Disturbance {
    /// Victim node (its *view* is inverted; the wire is untouched).
    pub node: usize,
    /// Field of the victim's frame-relative position.
    pub field: Field,
    /// 0-based bit index within the field.
    pub index: u16,
    /// Which occurrence of this position to disturb (1 = first). Lets a
    /// script hit the first transmission but not the retransmission.
    pub occurrence: u32,
    /// `true` to target the stuff bit following the field bit at `index`
    /// instead of the field bit itself.
    pub stuff: bool,
}

impl Disturbance {
    /// Disturbs the first time `node` samples `field` bit `index`
    /// (0-based).
    pub fn first(node: usize, field: Field, index: u16) -> Disturbance {
        Disturbance {
            node,
            field,
            index,
            occurrence: 1,
            stuff: false,
        }
    }

    /// Disturbs the first time `node` samples the **stuff bit** that
    /// follows `field` bit `index` — the trigger of the desynchronization
    /// classes catalogued in EXPERIMENTS.md (F1).
    pub fn stuff_bit(node: usize, field: Field, index: u16) -> Disturbance {
        Disturbance {
            node,
            field,
            index,
            occurrence: 1,
            stuff: true,
        }
    }

    /// Disturbs EOF bit `bit_1based` (the paper's 1-based numbering) of
    /// `node`, first occurrence.
    pub fn eof(node: usize, bit_1based: u16) -> Disturbance {
        assert!(bit_1based >= 1, "EOF bits are numbered from 1");
        Disturbance::first(node, Field::Eof, bit_1based - 1)
    }
}

impl fmt::Display for Disturbance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n{} view of {}{}{} (occurrence {})",
            self.node,
            self.field,
            self.index + 1,
            if self.stuff { "+s" } else { "" },
            self.occurrence
        )
    }
}

/// A channel model executing a fixed list of [`Disturbance`]s, each exactly
/// once.
///
/// # Examples
///
/// ```
/// use majorcan_can::Field;
/// use majorcan_faults::{Disturbance, ScriptedFaults};
///
/// // Fig. 1b: corrupt the last-but-one EOF bit of node 1's view.
/// let script = ScriptedFaults::new(vec![Disturbance::eof(1, 6)]);
/// assert_eq!(script.remaining(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ScriptedFaults {
    pending: Vec<(Disturbance, u32)>,
}

/// Manual impl so `clone_from` reuses the destination's backing storage —
/// the batch engine restores a snapshotted script into a reused channel
/// slot once per fork, which must not reallocate per fork.
impl Clone for ScriptedFaults {
    fn clone(&self) -> Self {
        ScriptedFaults {
            pending: self.pending.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.pending.clone_from(&source.pending);
    }
}

impl ScriptedFaults {
    /// Creates a script from a list of disturbances.
    pub fn new(disturbances: Vec<Disturbance>) -> ScriptedFaults {
        ScriptedFaults {
            pending: disturbances.into_iter().map(|d| (d, 0)).collect(),
        }
    }

    /// Replaces the script in place with `disturbances`, keeping the
    /// allocated backing storage so a reused channel does not reallocate
    /// per run.
    pub fn reload(&mut self, disturbances: &[Disturbance]) {
        self.pending.clear();
        self.pending
            .extend(disturbances.iter().map(|d| (d.clone(), 0)));
    }

    /// Number of disturbances not yet fired.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }

    /// `true` once every scripted disturbance has fired — scenario tests
    /// assert this to be sure the script actually matched.
    pub fn exhausted(&self) -> bool {
        self.pending.is_empty()
    }

    /// `true` when any not-yet-fired disturbance targets `field` — the
    /// batch engine's guard against ending a run early while a script
    /// entry could still fire on an idle bus.
    pub fn targets_field(&self, field: Field) -> bool {
        self.pending.iter().any(|(d, _)| d.field == field)
    }

    /// Appends `tail` to the script without touching the entries (and
    /// per-entry occurrence counts) already loaded — the fork step of the
    /// batch engine: a snapshot taken mid-run carries the shared prefix's
    /// progress, and each fork appends its divergent tail fresh.
    pub fn append_tail(&mut self, tail: &[Disturbance]) {
        self.pending.extend(tail.iter().map(|d| (d.clone(), 0)));
    }

    /// The disturbances that have not fired (yet), in script order.
    ///
    /// A non-empty result after a run means the script partially missed —
    /// a position that never came up under this variant's geometry, a node
    /// index off the bus, or an occurrence count the traffic never reached.
    /// Schedule-searching callers (the `majorcan-falsify` crate) use this
    /// to reject vacuously-passing inputs instead of silently dropping
    /// them.
    pub fn unfired(&self) -> Vec<Disturbance> {
        self.pending.iter().map(|(d, _)| d.clone()).collect()
    }
}

impl FromIterator<Disturbance> for ScriptedFaults {
    fn from_iter<I: IntoIterator<Item = Disturbance>>(iter: I) -> Self {
        ScriptedFaults::new(iter.into_iter().collect())
    }
}

impl ChannelModel<WirePos> for ScriptedFaults {
    fn quiet_until(&self, now: u64) -> u64 {
        // An exhausted script can never fire (or mutate) again; a pending
        // entry could match any tag — including `Idle` — so no promise.
        if self.pending.is_empty() {
            u64::MAX
        } else {
            now
        }
    }

    fn disturb(&mut self, _bit: u64, node: NodeId, tag: &WirePos, _wire: Level) -> bool {
        let mut fired = false;
        self.pending.retain_mut(|(d, seen)| {
            if fired {
                return true;
            }
            if d.node == node.index()
                && d.field == tag.field
                && d.index == tag.index
                && d.stuff == tag.stuff
            {
                *seen += 1;
                if *seen >= d.occurrence {
                    fired = true;
                    return false;
                }
            }
            true
        });
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(field: Field, index: u16) -> WirePos {
        WirePos::new(field, index)
    }

    #[test]
    fn fires_once_at_matching_position() {
        let mut s = ScriptedFaults::new(vec![Disturbance::eof(1, 6)]);
        // Wrong node.
        assert!(!s.disturb(0, NodeId(0), &pos(Field::Eof, 5), Level::Recessive));
        // Wrong index.
        assert!(!s.disturb(1, NodeId(1), &pos(Field::Eof, 4), Level::Recessive));
        // Match.
        assert!(s.disturb(2, NodeId(1), &pos(Field::Eof, 5), Level::Recessive));
        assert!(s.exhausted());
        // Never again.
        assert!(!s.disturb(3, NodeId(1), &pos(Field::Eof, 5), Level::Recessive));
    }

    #[test]
    fn occurrence_targets_the_nth_visit() {
        let d = Disturbance {
            node: 0,
            field: Field::Data,
            index: 2,
            occurrence: 3,
            stuff: false,
        };
        let mut s = ScriptedFaults::new(vec![d]);
        assert!(!s.disturb(0, NodeId(0), &pos(Field::Data, 2), Level::Recessive));
        assert!(!s.disturb(1, NodeId(0), &pos(Field::Data, 2), Level::Recessive));
        assert!(s.disturb(2, NodeId(0), &pos(Field::Data, 2), Level::Recessive));
    }

    #[test]
    fn stuff_bits_only_match_stuff_disturbances() {
        let mut s = ScriptedFaults::new(vec![Disturbance::first(0, Field::Id, 3)]);
        let stuffed = WirePos {
            field: Field::Id,
            index: 3,
            stuff: true,
        };
        assert!(!s.disturb(0, NodeId(0), &stuffed, Level::Recessive));
        assert!(s.disturb(1, NodeId(0), &pos(Field::Id, 3), Level::Recessive));

        let mut s = ScriptedFaults::new(vec![Disturbance::stuff_bit(0, Field::Id, 3)]);
        assert!(!s.disturb(0, NodeId(0), &pos(Field::Id, 3), Level::Recessive));
        assert!(s.disturb(1, NodeId(0), &stuffed, Level::Recessive));
        assert_eq!(
            Disturbance::stuff_bit(0, Field::Id, 3).to_string(),
            "n0 view of ID4+s (occurrence 1)"
        );
    }

    #[test]
    fn multiple_disturbances_fire_independently() {
        let mut s: ScriptedFaults = [Disturbance::eof(1, 6), Disturbance::eof(0, 7)]
            .into_iter()
            .collect();
        assert_eq!(s.remaining(), 2);
        assert!(s.disturb(0, NodeId(0), &pos(Field::Eof, 6), Level::Recessive));
        assert_eq!(s.remaining(), 1);
        assert!(s.disturb(1, NodeId(1), &pos(Field::Eof, 5), Level::Recessive));
        assert!(s.exhausted());
    }

    #[test]
    fn eof_helper_is_one_based() {
        assert_eq!(Disturbance::eof(2, 7).index, 6);
    }

    #[test]
    fn display_is_informative() {
        let d = Disturbance::eof(1, 6);
        assert_eq!(d.to_string(), "n1 view of EOF6 (occurrence 1)");
    }
}
