//! Channel combinators restricting *where* and *when* an inner fault model
//! may strike.
//!
//! The paper's analytic model (Eq. 4/5) counts error patterns on specific
//! frame positions of already-synchronized nodes. Reproducing its numbers
//! end-to-end therefore needs two restrictions on a raw random channel:
//!
//! * [`ActiveAfter`] — suppress faults during bus integration (the model
//!   has no start-up phase; a flip during a node's initial 11-recessive-bit
//!   integration window would sideline it for a whole frame and contaminate
//!   the statistics with an artifact);
//! * [`FieldFiltered`] — confine faults to chosen frame fields (e.g. the
//!   EOF region, where every scenario of the paper lives).
//!
//! The *unrestricted* channel remains available deliberately: the gap
//! between its measurements and the filtered ones is the
//! desynchronization-omission finding documented in EXPERIMENTS.md.

use majorcan_can::{Field, WirePos};
use majorcan_sim::{ChannelModel, Level, NodeId};

/// Suppresses the inner model's faults before `start_bit`.
#[derive(Debug, Clone)]
pub struct ActiveAfter<C> {
    /// First bit time at which faults may fire.
    pub start_bit: u64,
    /// The wrapped fault model.
    pub inner: C,
}

impl<C> ActiveAfter<C> {
    /// Wraps `inner`, arming it from `start_bit` onwards.
    pub fn new(start_bit: u64, inner: C) -> ActiveAfter<C> {
        ActiveAfter { start_bit, inner }
    }
}

impl<Tag, C: ChannelModel<Tag>> ChannelModel<Tag> for ActiveAfter<C> {
    fn disturb(&mut self, bit: u64, node: NodeId, tag: &Tag, wire: Level) -> bool {
        // The inner model is still consulted (so stateful/PRNG models
        // consume the same randomness stream per bit), but its verdict is
        // masked during the quiet period.
        let flip = self.inner.disturb(bit, node, tag, wire);
        flip && bit >= self.start_bit
    }

    fn quiet_until(&self, now: u64) -> u64 {
        // The mask cannot extend the inner promise: the inner model is
        // consulted (and may consume rng state) even while masked, so
        // only bits the *inner* model declares skippable are skippable.
        self.inner.quiet_until(now)
    }
}

/// Lets the inner model's faults through only at positions whose field is
/// in the allow-list.
#[derive(Debug, Clone)]
pub struct FieldFiltered<C> {
    fields: Vec<Field>,
    inner: C,
}

impl<C> FieldFiltered<C> {
    /// Wraps `inner`, allowing faults only in `fields`.
    pub fn new(fields: Vec<Field>, inner: C) -> FieldFiltered<C> {
        FieldFiltered { fields, inner }
    }

    /// Allow-list for the paper's scenario region: the EOF bits only.
    pub fn eof_only(inner: C) -> FieldFiltered<C> {
        FieldFiltered::new(vec![Field::Eof], inner)
    }

    /// The wrapped fault model.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Allow-list for the whole frame *tail*: EOF, agreement phases, flags,
    /// delimiters and the interframe space.
    pub fn tail_region(inner: C) -> FieldFiltered<C> {
        FieldFiltered::new(
            vec![
                Field::Eof,
                Field::AgreementHold,
                Field::ExtendedFlag,
                Field::ErrorFlag,
                Field::OverloadFlag,
                Field::DelimWait,
                Field::Delim,
                Field::Intermission,
            ],
            inner,
        )
    }
}

impl<C: ChannelModel<WirePos>> ChannelModel<WirePos> for FieldFiltered<C> {
    fn disturb(&mut self, bit: u64, node: NodeId, tag: &WirePos, wire: Level) -> bool {
        let flip = self.inner.disturb(bit, node, tag, wire);
        flip && self.fields.contains(&tag.field)
    }

    fn quiet_until(&self, now: u64) -> u64 {
        // Same reasoning as `ActiveAfter`: the inner model runs every bit
        // regardless of the field filter.
        self.inner.quiet_until(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndependentBitErrors;

    #[test]
    fn active_after_masks_early_bits() {
        let mut ch = ActiveAfter::new(100, IndependentBitErrors::new(1.0, 1));
        for bit in 0..100 {
            assert!(!ch.disturb(bit, NodeId(0), &(), Level::Recessive));
        }
        assert!(ch.disturb(100, NodeId(0), &(), Level::Recessive));
    }

    #[test]
    fn field_filter_allows_only_listed_fields() {
        let mut ch = FieldFiltered::eof_only(IndependentBitErrors::new(1.0, 1));
        let eof = WirePos::new(Field::Eof, 5);
        let data = WirePos::new(Field::Data, 5);
        assert!(ch.disturb(0, NodeId(0), &eof, Level::Recessive));
        assert!(!ch.disturb(1, NodeId(0), &data, Level::Recessive));
    }

    #[test]
    fn tail_region_includes_agreement_phases() {
        let mut ch = FieldFiltered::tail_region(IndependentBitErrors::new(1.0, 1));
        for field in [
            Field::Eof,
            Field::AgreementHold,
            Field::Intermission,
            Field::ErrorFlag,
        ] {
            assert!(ch.disturb(0, NodeId(0), &WirePos::new(field, 0), Level::Recessive));
        }
        for field in [Field::Data, Field::Crc, Field::Id, Field::Sof] {
            assert!(!ch.disturb(0, NodeId(0), &WirePos::new(field, 0), Level::Recessive));
        }
    }

    #[test]
    fn composition_of_both_filters() {
        let mut ch = ActiveAfter::new(
            50,
            FieldFiltered::eof_only(IndependentBitErrors::new(1.0, 1)),
        );
        let eof = WirePos::new(Field::Eof, 0);
        assert!(!ch.disturb(10, NodeId(0), &eof, Level::Recessive));
        assert!(ch.disturb(60, NodeId(0), &eof, Level::Recessive));
    }
}
