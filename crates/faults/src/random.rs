//! Random bit-error channels implementing the paper's spatial error model.
//!
//! Section 4 of the paper models disturbances with two parameters
//! (following Charzinski):
//!
//! * `ber` — the probability that *some* error occurs on the network during
//!   a bit time;
//! * `p_eff = 1/N` — the probability that an error occurring somewhere is
//!   effective at (i.e. corrupts the view of) a particular node.
//!
//! Combining them gives `ber* = ber / N` (Eq. 3): the per-bit probability
//! that a given node's view is corrupted. Two channel models are provided:
//!
//! * [`IndependentBitErrors`] — every `(bit, node)` view flips independently
//!   with probability `ber*`. This is the product-form model the paper's
//!   Eq. 4 and Eq. 5 assume.
//! * [`GlobalEventErrors`] — per bit, one global error event occurs with
//!   probability `ber`, and each node is then affected independently with
//!   probability `p_eff`. This is Charzinski's original two-stage model.
//!
//! For `p_eff = 1/N` the two models have identical per-node marginals but
//! different inter-node correlation; the `montecarlo` reproduction target
//! compares them (DESIGN.md ablation ▸).

use majorcan_sim::{ChannelModel, Level, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Independent per-view bit errors at rate `ber*` (Eq. 3).
///
/// # Examples
///
/// ```
/// use majorcan_faults::IndependentBitErrors;
/// use majorcan_sim::{ChannelModel, Level, NodeId};
///
/// let mut ch = IndependentBitErrors::new(0.5, 7);
/// let mut flips = 0;
/// for bit in 0..1000 {
///     if ch.disturb(bit, NodeId(0), &(), Level::Recessive) {
///         flips += 1;
///     }
/// }
/// assert!((300..700).contains(&flips), "≈ half the views flip");
/// ```
#[derive(Debug, Clone)]
pub struct IndependentBitErrors {
    ber_star: f64,
    rng: StdRng,
}

impl IndependentBitErrors {
    /// Creates a channel flipping each node's view of each bit with
    /// probability `ber_star`, deterministically seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ber_star <= 1.0`.
    pub fn new(ber_star: f64, seed: u64) -> IndependentBitErrors {
        assert!(
            (0.0..=1.0).contains(&ber_star),
            "ber* must be a probability, got {ber_star}"
        );
        IndependentBitErrors {
            ber_star,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The per-view error probability.
    pub fn ber_star(&self) -> f64 {
        self.ber_star
    }
}

impl<Tag> ChannelModel<Tag> for IndependentBitErrors {
    fn disturb(&mut self, _bit: u64, _node: NodeId, _tag: &Tag, _wire: Level) -> bool {
        self.rng.gen_bool(self.ber_star)
    }
}

/// Charzinski's two-stage model: a global error event with probability
/// `ber` per bit, affecting each node independently with probability
/// `p_eff`.
#[derive(Debug, Clone)]
pub struct GlobalEventErrors {
    ber: f64,
    p_eff: f64,
    rng: StdRng,
    current_bit: Option<u64>,
    event_active: bool,
}

impl GlobalEventErrors {
    /// Creates the two-stage channel.
    ///
    /// # Panics
    ///
    /// Panics unless both `ber` and `p_eff` are probabilities.
    pub fn new(ber: f64, p_eff: f64, seed: u64) -> GlobalEventErrors {
        assert!((0.0..=1.0).contains(&ber), "ber must be a probability");
        assert!((0.0..=1.0).contains(&p_eff), "p_eff must be a probability");
        GlobalEventErrors {
            ber,
            p_eff,
            rng: StdRng::seed_from_u64(seed),
            current_bit: None,
            event_active: false,
        }
    }

    /// The paper's choice `p_eff = 1/N` for an `n`-node network.
    pub fn with_uniform_spread(ber: f64, n: usize, seed: u64) -> GlobalEventErrors {
        GlobalEventErrors::new(ber, 1.0 / n as f64, seed)
    }

    /// The global per-bit error probability.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// The per-node effectivity.
    pub fn p_eff(&self) -> f64 {
        self.p_eff
    }
}

impl<Tag> ChannelModel<Tag> for GlobalEventErrors {
    fn disturb(&mut self, bit: u64, _node: NodeId, _tag: &Tag, _wire: Level) -> bool {
        if self.current_bit != Some(bit) {
            self.current_bit = Some(bit);
            self.event_active = self.rng.gen_bool(self.ber);
        }
        self.event_active && self.rng.gen_bool(self.p_eff)
    }
}

/// Periodic error bursts: every `period` bits the bus enters a burst of
/// `len` bits during which views flip independently at rate `ber_star`;
/// outside bursts the bus is clean.
///
/// This is the in-stream impairment model of the soak experiments: real
/// EMI hits a bus in clustered episodes (switching transients, ignition
/// pulses), and it is exactly the clustered shape that walks TEC/REC
/// toward error-passive while traffic keeps flowing.
#[derive(Debug, Clone)]
pub struct BurstErrors {
    period: u64,
    len: u64,
    inner: IndependentBitErrors,
}

impl BurstErrors {
    /// Creates a burst channel with bursts of `len` bits every `period`
    /// bits, flipping views inside a burst at rate `ber_star`.
    ///
    /// # Panics
    ///
    /// Panics if `len > period`, `period == 0`, or `ber_star` is not a
    /// probability.
    pub fn new(period: u64, len: u64, ber_star: f64, seed: u64) -> BurstErrors {
        assert!(period > 0, "burst period must be positive");
        assert!(len <= period, "burst length cannot exceed the period");
        BurstErrors {
            period,
            len,
            inner: IndependentBitErrors::new(ber_star, seed),
        }
    }

    /// The burst repetition period in bits.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The burst length in bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no bits are ever disturbed.
    pub fn is_empty(&self) -> bool {
        self.len == 0 || self.inner.ber_star() == 0.0
    }

    /// `true` while `bit` falls inside a burst.
    pub fn in_burst(&self, bit: u64) -> bool {
        bit % self.period < self.len
    }
}

impl<Tag> ChannelModel<Tag> for BurstErrors {
    fn disturb(&mut self, bit: u64, node: NodeId, tag: &Tag, wire: Level) -> bool {
        // The rng is only consulted inside bursts, so the stream stays
        // deterministic regardless of how much clean time passes between.
        self.in_burst(bit) && self.inner.disturb(bit, node, tag, wire)
    }

    fn quiet_until(&self, now: u64) -> u64 {
        // Outside a burst neither the verdict nor the rng stream depends
        // on the skipped bits, so the stretch up to the next burst start
        // is leapable; inside one, no promise.
        if self.is_empty() {
            u64::MAX
        } else if self.in_burst(now) {
            now
        } else {
            (now - now % self.period) + self.period
        }
    }
}

/// Composes two channel models: a view is flipped iff **exactly one** of the
/// two would flip it (two simultaneous physical disturbances of the same
/// sample cancel).
#[derive(Debug, Clone)]
pub struct Compose<A, B> {
    first: A,
    second: B,
}

impl<A, B> Compose<A, B> {
    /// Combines `first` and `second`.
    pub fn new(first: A, second: B) -> Compose<A, B> {
        Compose { first, second }
    }

    /// The first combined model.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second combined model.
    pub fn second(&self) -> &B {
        &self.second
    }
}

impl<Tag, A: ChannelModel<Tag>, B: ChannelModel<Tag>> ChannelModel<Tag> for Compose<A, B> {
    fn disturb(&mut self, bit: u64, node: NodeId, tag: &Tag, wire: Level) -> bool {
        // Both models must be consulted every bit so stateful models stay
        // in sync with bit time.
        let a = self.first.disturb(bit, node, tag, wire);
        let b = self.second.disturb(bit, node, tag, wire);
        a ^ b
    }

    fn quiet_until(&self, now: u64) -> u64 {
        // A skipped bit skips both inner calls, so the promise holds only
        // while both models make it.
        self.first
            .quiet_until(now)
            .min(self.second.quiet_until(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flip_rate<C: ChannelModel<()>>(ch: &mut C, nodes: usize, bits: u64) -> f64 {
        let mut flips = 0u64;
        for bit in 0..bits {
            for n in 0..nodes {
                if ch.disturb(bit, NodeId(n), &(), Level::Recessive) {
                    flips += 1;
                }
            }
        }
        flips as f64 / (bits * nodes as u64) as f64
    }

    #[test]
    fn independent_rate_matches_ber_star() {
        let mut ch = IndependentBitErrors::new(0.01, 42);
        let rate = flip_rate(&mut ch, 8, 50_000);
        assert!((rate - 0.01).abs() < 0.001, "rate={rate}");
    }

    #[test]
    fn independent_zero_and_one() {
        let mut zero = IndependentBitErrors::new(0.0, 1);
        assert_eq!(flip_rate(&mut zero, 4, 1000), 0.0);
        let mut one = IndependentBitErrors::new(1.0, 1);
        assert_eq!(flip_rate(&mut one, 4, 1000), 1.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn independent_rejects_bad_rate() {
        IndependentBitErrors::new(1.5, 0);
    }

    #[test]
    fn global_event_marginal_is_ber_times_peff() {
        // Marginal flip probability = ber × p_eff = ber* (Eq. 2).
        let n = 4;
        let ber = 0.08;
        let mut ch = GlobalEventErrors::with_uniform_spread(ber, n, 7);
        let rate = flip_rate(&mut ch, n, 100_000);
        let expected = ber / n as f64;
        assert!(
            (rate - expected).abs() < 0.002,
            "rate={rate} expected≈{expected}"
        );
    }

    #[test]
    fn global_event_correlates_within_a_bit() {
        // With p_eff = 1, every node is hit whenever the event fires: the
        // per-bit outcomes across nodes must be perfectly correlated.
        let mut ch = GlobalEventErrors::new(0.3, 1.0, 3);
        for bit in 0..2000 {
            let a = ch.disturb(bit, NodeId(0), &(), Level::Recessive);
            let b = ch.disturb(bit, NodeId(1), &(), Level::Recessive);
            assert_eq!(a, b, "bit {bit}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = IndependentBitErrors::new(0.1, 99);
        let mut b = IndependentBitErrors::new(0.1, 99);
        for bit in 0..1000 {
            assert_eq!(
                a.disturb(bit, NodeId(0), &(), Level::Recessive),
                b.disturb(bit, NodeId(0), &(), Level::Recessive)
            );
        }
    }

    #[test]
    fn bursts_confined_to_burst_windows() {
        let mut ch = BurstErrors::new(100, 10, 1.0, 5);
        for bit in 0..1000 {
            let hit = ch.disturb(bit, NodeId(0), &(), Level::Recessive);
            assert_eq!(hit, bit % 100 < 10, "bit {bit}");
        }
    }

    #[test]
    fn bursts_deterministic_and_rate_scaled() {
        let mut a = BurstErrors::new(50, 5, 0.3, 9);
        let mut b = BurstErrors::new(50, 5, 0.3, 9);
        let mut hits = 0u64;
        for bit in 0..100_000 {
            let x = a.disturb(bit, NodeId(0), &(), Level::Recessive);
            assert_eq!(x, b.disturb(bit, NodeId(0), &(), Level::Recessive));
            hits += x as u64;
        }
        // Expected rate = (len/period) · ber = 0.1 · 0.3 = 0.03.
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.03).abs() < 0.005, "rate={rate}");
        assert!(!a.is_empty());
        assert!(BurstErrors::new(50, 0, 0.3, 9).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceed the period")]
    fn bursts_reject_len_over_period() {
        BurstErrors::new(10, 11, 0.1, 0);
    }

    #[test]
    fn compose_xors_flips() {
        let always = IndependentBitErrors::new(1.0, 0);
        let never = IndependentBitErrors::new(0.0, 0);
        let mut both = Compose::new(
            IndependentBitErrors::new(1.0, 1),
            IndependentBitErrors::new(1.0, 2),
        );
        let mut one = Compose::new(always, never);
        assert_eq!(flip_rate(&mut both, 2, 100), 0.0, "two flips cancel");
        assert_eq!(flip_rate(&mut one, 2, 100), 1.0);
    }
}
