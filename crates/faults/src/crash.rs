//! Crash-fault timing helpers.
//!
//! The paper's Eq. 5 models the transmitter crash of Fig. 1c with an
//! exponential failure law: the probability that the transmitter fails
//! within the recovery window `Δt` is `1 − e^{−λΔt}`, with `λ = 10⁻³`
//! failures/hour as the worst case considered by Rufino et al. These
//! helpers convert that law into concrete `fail_at` bit times for the
//! simulator.

use rand::Rng;

/// Seconds per hour.
const SECS_PER_HOUR: f64 = 3600.0;

/// Draws an exponential time-to-failure (in *bits*) for a node with failure
/// rate `lambda_per_hour` on a bus running at `bitrate` bits/second.
///
/// Returns `u64::MAX` when the sampled failure lies beyond any reachable
/// simulation horizon.
///
/// # Panics
///
/// Panics if `lambda_per_hour` is negative or `bitrate` is not positive.
pub fn exponential_failure_bits<R: Rng>(lambda_per_hour: f64, bitrate: f64, rng: &mut R) -> u64 {
    assert!(lambda_per_hour >= 0.0, "failure rate must be non-negative");
    assert!(bitrate > 0.0, "bitrate must be positive");
    if lambda_per_hour == 0.0 {
        return u64::MAX;
    }
    // Inverse-CDF sampling: t = -ln(U)/λ hours.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let hours = -u.ln() / lambda_per_hour;
    let bits = hours * SECS_PER_HOUR * bitrate;
    if bits >= u64::MAX as f64 {
        u64::MAX
    } else {
        bits as u64
    }
}

/// The probability that a node with failure rate `lambda_per_hour` crashes
/// within a window of `delta_t_secs` seconds: `1 − e^{−λΔt}` — the crash
/// factor of the paper's Eq. 5.
///
/// # Examples
///
/// ```
/// use majorcan_faults::crash_probability_within;
///
/// // The paper's parameters: λ = 1e-3 /h, Δt = 5 ms.
/// let p = crash_probability_within(1e-3, 5e-3);
/// assert!((p - 1.389e-9).abs() / p < 1e-3);
/// ```
pub fn crash_probability_within(lambda_per_hour: f64, delta_t_secs: f64) -> f64 {
    assert!(lambda_per_hour >= 0.0 && delta_t_secs >= 0.0);
    let lambda_dt = lambda_per_hour * (delta_t_secs / SECS_PER_HOUR);
    -(-lambda_dt).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_never_fails() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(exponential_failure_bits(0.0, 1e6, &mut rng), u64::MAX);
    }

    #[test]
    fn mean_failure_time_matches_rate() {
        // λ = 3600/h ⇒ mean time-to-failure 1 s ⇒ 1e6 bits at 1 Mbps.
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| exponential_failure_bits(3600.0, 1e6, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1e6).abs() < 3e4, "mean={mean}, expected ≈ 1e6 bits");
    }

    #[test]
    fn crash_probability_paper_value() {
        // 1 − e^(−1e-3 · 5ms/h) ≈ 1.3889e-9 (linear regime).
        let p = crash_probability_within(1e-3, 5e-3);
        let expected = 1e-3 * 5e-3 / 3600.0;
        assert!((p - expected).abs() / expected < 1e-6, "p={p}");
    }

    #[test]
    fn crash_probability_saturates_at_one() {
        let p = crash_probability_within(1e9, 3600.0);
        assert!(p > 0.999999);
        assert!(p <= 1.0);
    }

    #[test]
    fn crash_probability_zero_window() {
        assert_eq!(crash_probability_within(1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bitrate must be positive")]
    fn rejects_bad_bitrate() {
        let mut rng = StdRng::seed_from_u64(1);
        exponential_failure_bits(1.0, 0.0, &mut rng);
    }
}
