//! Composition regressions for the [`Attacker`] channel: the adversary
//! must be a first-class [`ChannelModel`] citizen, so every combinator
//! that wraps the benign fault models (`ActiveAfter`, `FieldFiltered`,
//! `Compose`) wraps the attacker identically — injections are *visible*
//! to downstream filters, masked verdicts still charge the attack budget
//! (a jammer pays for bits the victim never sees), and the dominant-only
//! invariant survives every composition.

use majorcan_can::{Field, WirePos};
use majorcan_faults::{
    ActiveAfter, AttackAction, Attacker, Compose, Disturbance, FieldFiltered, ScriptedFaults,
    Strategy,
};
use majorcan_sim::{ChannelModel, Level, NodeId};

fn pos(field: Field, index: u16) -> WirePos {
    WirePos::new(field, index)
}

#[test]
fn field_filter_passes_attacker_injections_in_allowed_fields() {
    let mut ch = FieldFiltered::eof_only(Attacker::new(
        vec![AttackAction::Pulse {
            node: 1,
            field: Field::Eof,
            index: 5,
            occurrence: 1,
        }],
        100,
    ));
    assert!(
        !ch.disturb(7, NodeId(0), &pos(Field::Eof, 5), Level::Recessive),
        "wrong node: the pulse holds its fire"
    );
    assert!(
        ch.disturb(8, NodeId(1), &pos(Field::Eof, 5), Level::Recessive),
        "the injection is visible through the EOF allow-list"
    );
}

#[test]
fn field_filter_masks_but_still_charges_the_attacker() {
    // A flood confined to the EOF region by a downstream filter: the
    // attacker drives the wire on every bit and pays for every bit; the
    // filter only decides which of those dominant levels reach a view.
    // Masked injections are wasted budget — the price of a blunt jammer.
    let mut ch = FieldFiltered::eof_only(Attacker::new(
        vec![AttackAction::Flood { start: 0, len: 10 }],
        100,
    ));
    assert!(
        !ch.disturb(3, NodeId(0), &pos(Field::Data, 2), Level::Recessive),
        "data-field injection filtered downstream"
    );
    assert!(
        ch.disturb(4, NodeId(0), &pos(Field::Eof, 0), Level::Recessive),
        "EOF injection passes"
    );
    assert_eq!(
        ch.inner().spent(),
        2,
        "both bus bits were charged, masked or not"
    );
}

#[test]
fn active_after_masks_early_attack_bits_but_charges_them() {
    let mut ch = ActiveAfter::new(
        50,
        Attacker::new(vec![AttackAction::Flood { start: 0, len: 60 }], 100),
    );
    for bit in 0..50 {
        assert!(
            !ch.disturb(bit, NodeId(0), &pos(Field::Eof, 0), Level::Recessive),
            "bit {bit} is inside the quiet period"
        );
    }
    assert!(
        ch.disturb(50, NodeId(0), &pos(Field::Eof, 0), Level::Recessive),
        "the flood shows from start_bit onwards"
    );
    assert_eq!(
        ch.inner.spent(),
        51,
        "the inner attacker was consulted (and charged) on every bit"
    );
}

#[test]
fn active_after_masking_consumes_pulse_occurrences() {
    // A pulse that fires inside the quiet period is spent — ActiveAfter
    // masks the verdict, it does not rewind the adversary. The stateful
    // contract is the same one the benign PRNG channels obey: inner
    // models always see every bit.
    let mut ch = ActiveAfter::new(
        100,
        Attacker::new(
            vec![AttackAction::Pulse {
                node: 0,
                field: Field::Eof,
                index: 5,
                occurrence: 1,
            }],
            100,
        ),
    );
    assert!(
        !ch.disturb(7, NodeId(0), &pos(Field::Eof, 5), Level::Recessive),
        "masked by the quiet period"
    );
    assert_eq!(ch.inner.spent(), 1, "the occurrence was consumed anyway");
    assert!(
        !ch.disturb(107, NodeId(0), &pos(Field::Eof, 5), Level::Recessive),
        "one-shot pulse does not re-fire after the quiet period"
    );
}

#[test]
fn compose_merges_attacker_and_scripted_faults() {
    // Attacker pulse on node 0's EOF bit 5, scripted benign flip on node
    // 1's EOF bit 6 (1-based index 7): each strikes its own position
    // through the composition.
    let mut ch = Compose::new(
        Attacker::new(
            vec![AttackAction::Pulse {
                node: 0,
                field: Field::Eof,
                index: 5,
                occurrence: 1,
            }],
            100,
        ),
        ScriptedFaults::new(vec![Disturbance::eof(1, 7)]),
    );
    assert!(
        ch.disturb(5, NodeId(0), &pos(Field::Eof, 5), Level::Recessive),
        "the attacker's injection comes through"
    );
    assert!(
        ch.disturb(6, NodeId(1), &pos(Field::Eof, 6), Level::Recessive),
        "the scripted disturbance comes through"
    );
    assert!(
        !ch.disturb(7, NodeId(2), &pos(Field::Eof, 4), Level::Recessive),
        "untouched positions stay clean"
    );
}

#[test]
fn compose_is_xor_when_both_strike_the_same_view() {
    // Both models flipping the same bit of the same view cancel out —
    // Compose is the benign XOR composition, and the attacker plays by
    // the same rules as any other channel model.
    let mut ch = Compose::new(
        Attacker::new(
            vec![AttackAction::Pulse {
                node: 0,
                field: Field::Eof,
                index: 5,
                occurrence: 1,
            }],
            100,
        ),
        ScriptedFaults::new(vec![Disturbance::eof(0, 6)]),
    );
    assert!(
        !ch.disturb(5, NodeId(0), &pos(Field::Eof, 5), Level::Recessive),
        "coincident strikes cancel (XOR), and both are consumed"
    );
    assert_eq!(ch.first().spent(), 1, "the attack budget was charged");
    assert!(
        !ch.disturb(50, NodeId(0), &pos(Field::Eof, 5), Level::Recessive),
        "both one-shots were consumed by the cancelled strike"
    );
}

#[test]
fn dominant_only_invariant_survives_composition() {
    // The attacker injects dominant levels: where the wire is already
    // dominant it has nothing to add, whatever wraps it. Contrast with
    // the scripted model, which flips dominant bits recessive-ward.
    let strategy = Strategy::DominantFlood { start: 0, len: 20 };
    let mut filtered = FieldFiltered::tail_region(Attacker::from_strategy(&strategy, 100));
    let mut composed = Compose::new(
        Attacker::from_strategy(&strategy, 100),
        ScriptedFaults::new(Vec::new()),
    );
    for bit in 0..20 {
        assert!(
            !filtered.disturb(bit, NodeId(0), &pos(Field::Eof, 1), Level::Dominant),
            "bit {bit}: nothing to inject on a dominant wire (filtered)"
        );
        assert!(
            !composed.disturb(bit, NodeId(0), &pos(Field::Eof, 1), Level::Dominant),
            "bit {bit}: nothing to inject on a dominant wire (composed)"
        );
    }
    assert_eq!(
        filtered.inner().spent(),
        0,
        "dominant wire bits are free: no injection, no charge"
    );
}
