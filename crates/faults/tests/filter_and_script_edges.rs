//! Edge-case coverage for the channel combinators and the scripted-fault
//! conventions the falsifier builds on: the `ActiveAfter` boundary bit,
//! exact `tail_region` membership, `Disturbance` index conventions, and
//! the one-disturbance-per-sample rule.

use majorcan_can::{Field, WirePos};
use majorcan_faults::{ActiveAfter, Disturbance, FieldFiltered, ScriptedFaults};
use majorcan_sim::{ChannelModel, Level, NodeId};

/// An always-flip inner model that counts how often it is consulted.
#[derive(Debug, Default)]
struct CountingFlips {
    calls: u64,
}

impl<Tag> ChannelModel<Tag> for CountingFlips {
    fn disturb(&mut self, _bit: u64, _node: NodeId, _tag: &Tag, _wire: Level) -> bool {
        self.calls += 1;
        true
    }
}

#[test]
fn active_after_boundary_is_inclusive() {
    let mut ch = ActiveAfter::new(50, CountingFlips::default());
    assert!(
        !ch.disturb(49, NodeId(0), &(), Level::Recessive),
        "bit start_bit - 1 is still masked"
    );
    assert!(
        ch.disturb(50, NodeId(0), &(), Level::Recessive),
        "faults fire from exactly start_bit onwards"
    );
    assert!(ch.disturb(51, NodeId(0), &(), Level::Recessive));
}

#[test]
fn active_after_consults_the_inner_model_while_masking() {
    // Stateful inner models (PRNG-backed channels) must consume the same
    // randomness stream whether or not the quiet period masks the verdict;
    // otherwise the fault pattern after start_bit would depend on
    // start_bit itself.
    let mut ch = ActiveAfter::new(10, CountingFlips::default());
    for bit in 0..10 {
        assert!(!ch.disturb(bit, NodeId(0), &(), Level::Recessive));
    }
    assert_eq!(ch.inner.calls, 10, "inner consulted on every masked bit");
}

#[test]
fn tail_region_membership_is_exact() {
    let in_tail = [
        Field::Eof,
        Field::AgreementHold,
        Field::ExtendedFlag,
        Field::ErrorFlag,
        Field::OverloadFlag,
        Field::DelimWait,
        Field::Delim,
        Field::Intermission,
    ];
    let mut ch = FieldFiltered::tail_region(CountingFlips::default());
    for field in Field::ALL {
        let expected = in_tail.contains(&field);
        let flipped = ch.disturb(0, NodeId(0), &WirePos::new(field, 0), Level::Recessive);
        assert_eq!(
            flipped, expected,
            "{field}: tail_region membership must match the documented list \
             (notably: CRC, CRC/ACK delimiters and the ACK slot are NOT tail)"
        );
    }
}

#[test]
fn disturbance_first_is_zero_based_and_eof_is_one_based() {
    let first = Disturbance::first(2, Field::Crc, 14);
    assert_eq!((first.node, first.field, first.index), (2, Field::Crc, 14));
    assert_eq!(first.occurrence, 1);
    assert!(!first.stuff);

    // The paper numbers EOF bits from 1; `eof` translates to the wire's
    // 0-based index.
    let eof = Disturbance::eof(1, 6);
    assert_eq!(eof, Disturbance::first(1, Field::Eof, 5));

    let stuffed = Disturbance::stuff_bit(0, Field::Crc, 10);
    assert!(stuffed.stuff);
    assert_eq!(stuffed.index, 10);
    assert_eq!(stuffed.occurrence, 1);
}

#[test]
#[should_panic(expected = "EOF bits are numbered from 1")]
fn disturbance_eof_rejects_bit_zero() {
    let _ = Disturbance::eof(0, 0);
}

#[test]
fn at_most_one_disturbance_fires_per_sample() {
    // Two identical disturbances both match the same sample; the script
    // must spend them one sample at a time, not both at once.
    let mut script = ScriptedFaults::new(vec![Disturbance::eof(1, 6), Disturbance::eof(1, 6)]);
    let pos = WirePos::new(Field::Eof, 5);
    assert!(script.disturb(100, NodeId(1), &pos, Level::Recessive));
    assert_eq!(script.remaining(), 1, "the second copy is still pending");
    assert!(script.disturb(200, NodeId(1), &pos, Level::Recessive));
    assert!(script.exhausted());
}

#[test]
fn occurrence_counts_matched_samples_not_bit_times() {
    // occurrence = 2 skips the first matching sample and fires on the
    // second, regardless of how far apart the bit times are.
    let d = Disturbance {
        occurrence: 2,
        ..Disturbance::eof(0, 7)
    };
    let mut script = ScriptedFaults::new(vec![d.clone()]);
    let pos = WirePos::new(Field::Eof, 6);
    assert!(!script.disturb(7, NodeId(0), &pos, Level::Recessive));
    assert_eq!(
        script.unfired(),
        vec![d],
        "still pending after occurrence 1"
    );
    assert!(script.disturb(900, NodeId(0), &pos, Level::Recessive));
    assert!(script.exhausted());
}

#[test]
fn stuff_flag_distinguishes_field_bit_from_stuff_bit() {
    let mut script = ScriptedFaults::new(vec![Disturbance::stuff_bit(0, Field::Crc, 3)]);
    let field_bit = WirePos::new(Field::Crc, 3);
    let stuff_bit = WirePos {
        stuff: true,
        ..field_bit
    };
    assert!(
        !script.disturb(0, NodeId(0), &field_bit, Level::Recessive),
        "the plain field bit must not satisfy a stuff-bit disturbance"
    );
    assert!(script.disturb(1, NodeId(0), &stuff_bit, Level::Dominant));
    assert!(script.exhausted());
}
