//! # majorcan-can — a bit-level Controller Area Network data-link layer
//!
//! A from-scratch implementation of the CAN protocol machinery the MajorCAN
//! paper (Proenza & Miro-Julia, ICDCS 2000) builds on, designed to run on the
//! [`majorcan_sim`] bit-synchronous bus simulator:
//!
//! * [`Frame`]/[`FrameId`] — base-format data and remote frames;
//! * [`Crc15`] — the CAN frame check sequence;
//! * [`stuff`]/[`destuff`]/[`encode_frame`] — the wire codec with bit
//!   stuffing and frame-relative [`WirePos`] metadata;
//! * [`RxPipeline`] — the incremental per-frame decoder every node (including
//!   the transmitter, as its own monitor) runs;
//! * [`FaultConfinement`] — TEC/REC error counters, error-active /
//!   error-passive / bus-off states, and the paper's switch-off-at-warning
//!   policy;
//! * [`Controller`] — the full data-link state machine: arbitration,
//!   acknowledgment, error and overload signalling, automatic
//!   retransmission;
//! * [`Variant`] — the protocol-variant hooks through which MinorCAN and
//!   MajorCAN (in the `majorcan-core` crate) modify end-of-frame behaviour;
//!   [`StandardCan`] is the unmodified protocol.
//!
//! The controller's externally visible behaviour is its [`CanEvent`] log:
//! deliveries, rejections, transmission outcomes, error signatures. The
//! paper's scenario reproductions and the Atomic Broadcast checker consume
//! exactly that log.
//!
//! # Examples
//!
//! One transmitter, two receivers, no faults — everyone delivers.
//! Clusters are assembled through the `majorcan-testbed` facade rather
//! than by attaching controllers to a raw simulator by hand:
//!
//! ```
//! use majorcan_can::{CanEvent, Frame, FrameId};
//! use majorcan_testbed::{ProtocolSpec, Testbed};
//!
//! let mut tb = Testbed::builder(ProtocolSpec::StandardCan).build();
//!
//! let frame = Frame::new(FrameId::new(0x0B5)?, b"brake")?;
//! tb.enqueue(0, frame.clone());
//! tb.run(200);
//!
//! let deliveries = tb
//!     .can_events()
//!     .iter()
//!     .filter(|e| matches!(&e.event, CanEvent::Delivered { frame: f, .. } if *f == frame))
//!     .count();
//! assert_eq!(deliveries, 2, "both receivers delivered exactly once");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod counters;
mod crc;
mod events;
mod frame;
mod pipeline;
mod variant;
mod wire;

pub use controller::{Controller, ControllerConfig};
pub use counters::{
    ConfinementEvent, FaultConfinement, FaultState, BUS_OFF_LIMIT, PASSIVE_LIMIT, WARNING_LIMIT,
};
pub use crc::{Crc15, CRC15_POLY};
pub use events::{CanEvent, DecisionBasis, ErrorKind, FlagKind};
pub use frame::{Frame, FrameError, FrameId};
pub use pipeline::{RxPipeline, RxStep};
pub use variant::{EofReaction, Role, StandardCan, Variant};
pub use wire::{
    destuff, encode_frame, frame_payload_bits, stuff, Field, Layout, StuffViolation, WireBit,
    WirePos,
};
