//! On-wire frame layout: fields, positions, bit stuffing and the transmit
//! encoder.
//!
//! The stuffed region of a CAN frame runs from SOF through the CRC sequence:
//! after five consecutive equal levels the transmitter inserts one bit of the
//! opposite level. The fixed-form tail (CRC delimiter, ACK field, EOF) is not
//! stuffed — which is what lets six consecutive dominant bits (an error flag)
//! be unambiguous there.

use crate::{Frame, Variant};
use majorcan_sim::Level;
use std::fmt;

/// The segment of a frame (or of the error-handling machinery) a given bit
/// belongs to, from a single node's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Field {
    /// Bus idle (no frame in flight).
    Idle,
    /// Initial bus integration (waiting for 11 recessive bits before
    /// joining traffic).
    Integrating,
    /// Start-of-frame bit (dominant).
    Sof,
    /// The 11 identifier bits (arbitration field, MSB first).
    Id,
    /// Remote-transmission-request bit (arbitration field).
    Rtr,
    /// Identifier-extension bit (dominant in base format).
    Ide,
    /// Reserved bit r0 (dominant).
    R0,
    /// The 4 data-length-code bits.
    Dlc,
    /// Payload bits.
    Data,
    /// The 15 CRC sequence bits.
    Crc,
    /// CRC delimiter (fixed recessive).
    CrcDelim,
    /// ACK slot (transmitter recessive, acknowledging receivers dominant).
    AckSlot,
    /// ACK delimiter (fixed recessive).
    AckDelim,
    /// End-of-frame bits (fixed recessive; 7 in CAN, `2m` in MajorCAN).
    Eof,
    /// Interframe space (3 recessive bits).
    Intermission,
    /// Suspend-transmission window of an error-passive transmitter.
    Suspend,
    /// An active error flag (6 dominant bits).
    ErrorFlag,
    /// A passive error flag (6 recessive bits — invisible to others).
    PassiveErrorFlag,
    /// An overload flag (6 dominant bits).
    OverloadFlag,
    /// MajorCAN extended error flag (dominant through EOF-relative bit
    /// `3m+5`, notifying frame acceptance).
    ExtendedFlag,
    /// MajorCAN agreement hold: recessive bits during which a node that
    /// flagged in the first EOF sub-field samples the bus and votes.
    AgreementHold,
    /// Waiting for the first recessive bit of an error/overload delimiter.
    DelimWait,
    /// The remaining recessive bits of an error/overload delimiter.
    Delim,
    /// Bus-off: node disconnected after TEC ≥ 256.
    BusOff,
    /// Node crashed (fail-silent) — drives recessive forever.
    Crashed,
}

impl Field {
    /// `true` for the fields that make up the arbitration region, where a
    /// transmitter monitoring dominant while sending recessive loses
    /// arbitration instead of signalling an error.
    pub fn in_arbitration(self) -> bool {
        matches!(self, Field::Id | Field::Rtr)
    }

    /// Every field, in wire order — iteration support for tooling that
    /// enumerates or serialises positions (the single-error atlas, the
    /// falsifier's corpus format).
    pub const ALL: [Field; 25] = [
        Field::Idle,
        Field::Integrating,
        Field::Sof,
        Field::Id,
        Field::Rtr,
        Field::Ide,
        Field::R0,
        Field::Dlc,
        Field::Data,
        Field::Crc,
        Field::CrcDelim,
        Field::AckSlot,
        Field::AckDelim,
        Field::Eof,
        Field::Intermission,
        Field::Suspend,
        Field::ErrorFlag,
        Field::PassiveErrorFlag,
        Field::OverloadFlag,
        Field::ExtendedFlag,
        Field::AgreementHold,
        Field::DelimWait,
        Field::Delim,
        Field::BusOff,
        Field::Crashed,
    ];

    /// Parses the token this type's `Display` produces (`"EOF"`, `"HOLD"`,
    /// …), so positions serialised into durable artifacts (the falsifier's
    /// counterexample corpus) round-trip exactly.
    pub fn from_token(token: &str) -> Option<Field> {
        Field::ALL.into_iter().find(|f| f.to_string() == token)
    }

    /// Dense index of this field within [`Field::ALL`] — `Field::ALL` lists
    /// the variants in declaration order, so the cast and the table agree
    /// (checked by a test). Lets tooling build per-field lookup tables (the
    /// lane engine's watch masks) without hashing.
    pub fn ordinal(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Field::Idle => "IDLE",
            Field::Integrating => "INTEG",
            Field::Sof => "SOF",
            Field::Id => "ID",
            Field::Rtr => "RTR",
            Field::Ide => "IDE",
            Field::R0 => "R0",
            Field::Dlc => "DLC",
            Field::Data => "DATA",
            Field::Crc => "CRC",
            Field::CrcDelim => "CRCDEL",
            Field::AckSlot => "ACK",
            Field::AckDelim => "ACKDEL",
            Field::Eof => "EOF",
            Field::Intermission => "IFS",
            Field::Suspend => "SUSP",
            Field::ErrorFlag => "EFLAG",
            Field::PassiveErrorFlag => "PEFLAG",
            Field::OverloadFlag => "OFLAG",
            Field::ExtendedFlag => "XFLAG",
            Field::AgreementHold => "HOLD",
            Field::DelimWait => "DWAIT",
            Field::Delim => "DELIM",
            Field::BusOff => "BUSOFF",
            Field::Crashed => "CRASH",
        };
        f.write_str(s)
    }
}

/// A node's frame-relative description of one bit: which field it falls in,
/// the 0-based index within that field, and whether it is a stuff bit.
///
/// `WirePos` is the [`BitNode::Tag`](majorcan_sim::BitNode::Tag) of the CAN
/// controller: fault scripts target bits by matching on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WirePos {
    /// The field this bit belongs to.
    pub field: Field,
    /// 0-based bit index within the field.
    pub index: u16,
    /// `true` if this is a stuff bit inserted after the field bit at
    /// `index` (stuff bits are attributed to the preceding payload bit).
    pub stuff: bool,
}

impl WirePos {
    /// A position within `field` at bit `index`.
    pub fn new(field: Field, index: u16) -> WirePos {
        WirePos {
            field,
            index,
            stuff: false,
        }
    }

    /// Position helper for EOF bits using the paper's **1-based** numbering
    /// ("the last but one bit of the EOF" of a 7-bit EOF is `eof(6)`).
    ///
    /// # Panics
    ///
    /// Panics if `bit_1based == 0`.
    pub fn eof(bit_1based: u16) -> WirePos {
        assert!(bit_1based >= 1, "EOF bits are numbered from 1 in the paper");
        WirePos::new(Field::Eof, bit_1based - 1)
    }
}

impl fmt::Display for WirePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.field, self.index + 1)?;
        if self.stuff {
            f.write_str("+s")?;
        }
        Ok(())
    }
}

/// Maps destuffed bit indices of the stuffed region to `(Field, index)`.
///
/// The stuffed region of a base-format data frame is:
/// `SOF(1) ID(11) RTR(1) IDE(1) r0(1) DLC(4) DATA(8·len) CRC(15)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Number of payload bytes (0–8).
    pub data_len: usize,
}

impl Layout {
    /// Destuffed index of the first DLC bit.
    pub const DLC_START: usize = 15;
    /// Destuffed index of the first data bit.
    pub const DATA_START: usize = 19;

    /// Layout for a frame carrying `data_len` payload bytes.
    pub fn new(data_len: usize) -> Layout {
        debug_assert!(data_len <= 8);
        Layout { data_len }
    }

    /// Destuffed index of the first CRC bit.
    pub fn crc_start(&self) -> usize {
        Self::DATA_START + 8 * self.data_len
    }

    /// Total destuffed bits in the stuffed region (SOF through CRC).
    pub fn stuffed_region_len(&self) -> usize {
        self.crc_start() + 15
    }

    /// The `(Field, in-field index)` of destuffed bit `i` of the stuffed
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the stuffed region.
    pub fn field_at(&self, i: usize) -> (Field, u16) {
        match i {
            0 => (Field::Sof, 0),
            1..=11 => (Field::Id, (i - 1) as u16),
            12 => (Field::Rtr, 0),
            13 => (Field::Ide, 0),
            14 => (Field::R0, 0),
            15..=18 => (Field::Dlc, (i - Self::DLC_START) as u16),
            _ if i < self.crc_start() => (Field::Data, (i - Self::DATA_START) as u16),
            _ if i < self.stuffed_region_len() => (Field::Crc, (i - self.crc_start()) as u16),
            _ => panic!("destuffed index {i} beyond stuffed region"),
        }
    }
}

/// One transmitted bit with its position metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireBit {
    /// The level the transmitter schedules for this bit.
    pub level: Level,
    /// Frame-relative position.
    pub pos: WirePos,
}

/// Applies CAN bit stuffing to a level sequence: after five consecutive
/// equal levels, a bit of the opposite level is inserted. Returns
/// `(level, is_stuff_bit)` pairs.
///
/// Stuff bits participate in subsequent run counting, so e.g.
/// `ddddd` ⇒ `dddddR` and a following `rrrr` extends that recessive run.
///
/// # Examples
///
/// ```
/// use majorcan_can::stuff;
/// use majorcan_sim::Level::{Dominant as D, Recessive as R};
///
/// let out = stuff(&[D, D, D, D, D, D]);
/// let levels: Vec<_> = out.iter().map(|&(l, _)| l).collect();
/// assert_eq!(levels, vec![D, D, D, D, D, R, D]);
/// assert!(out[5].1, "inserted bit is marked as stuff");
/// ```
pub fn stuff(levels: &[Level]) -> Vec<(Level, bool)> {
    let mut out = Vec::with_capacity(levels.len() + levels.len() / 4);
    let mut run_level: Option<Level> = None;
    let mut run_len = 0u8;
    for &level in levels {
        out.push((level, false));
        if Some(level) == run_level {
            run_len += 1;
        } else {
            run_level = Some(level);
            run_len = 1;
        }
        if run_len == 5 {
            let stuffed = !level;
            out.push((stuffed, true));
            run_level = Some(stuffed);
            run_len = 1;
        }
    }
    out
}

/// Error returned by [`destuff`] when the input violates the stuffing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuffViolation {
    /// Index (within the stuffed sequence) of the offending sixth bit.
    pub at: usize,
}

impl fmt::Display for StuffViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "six consecutive equal bits at stuffed index {}", self.at)
    }
}

impl std::error::Error for StuffViolation {}

/// Removes stuff bits from a stuffed sequence, validating the rule.
///
/// # Errors
///
/// Returns [`StuffViolation`] if six consecutive equal levels appear.
pub fn destuff(levels: &[Level]) -> Result<Vec<Level>, StuffViolation> {
    let mut out = Vec::with_capacity(levels.len());
    let mut run_level: Option<Level> = None;
    let mut run_len = 0u8;
    let mut expect_stuff = false;
    for (i, &level) in levels.iter().enumerate() {
        if expect_stuff {
            // This bit must be the complement of the previous run.
            if Some(level) == run_level {
                return Err(StuffViolation { at: i });
            }
            run_level = Some(level);
            run_len = 1;
            expect_stuff = false;
            continue;
        }
        out.push(level);
        if Some(level) == run_level {
            run_len += 1;
        } else {
            run_level = Some(level);
            run_len = 1;
        }
        if run_len == 5 {
            expect_stuff = true;
        }
    }
    Ok(out)
}

/// The destuffed logical bits of the stuffed region (SOF through CRC) of a
/// frame, including the CRC sequence computed over the preceding bits.
pub fn frame_payload_bits(frame: &Frame) -> Vec<bool> {
    let mut bits = Vec::with_capacity(34 + 8 * frame.data().len());
    bits.push(false); // SOF dominant
    for i in 0..11 {
        bits.push(frame.id().bit(i));
    }
    bits.push(frame.is_remote()); // RTR: recessive for remote frames
    bits.push(false); // IDE dominant (base format)
    bits.push(false); // r0 dominant
    for i in (0..4).rev() {
        bits.push((frame.dlc() >> i) & 1 == 1);
    }
    for &byte in frame.data() {
        for i in (0..8).rev() {
            bits.push((byte >> i) & 1 == 1);
        }
    }
    let crc = crate::Crc15::of_bits(bits.iter().copied());
    for i in (0..15).rev() {
        bits.push((crc >> i) & 1 == 1);
    }
    bits
}

/// Encodes `frame` into the exact on-wire bit sequence a transmitter drives,
/// under protocol variant `variant`: the stuffed SOF..CRC region followed by
/// the fixed-form tail (CRC delimiter, ACK slot, ACK delimiter, and
/// [`Variant::eof_len`] EOF bits).
///
/// The transmitter drives recessive in the ACK slot and expects to monitor
/// dominant there.
pub fn encode_frame<V: Variant>(frame: &Frame, variant: &V) -> Vec<WireBit> {
    let bits = frame_payload_bits(frame);
    let layout = Layout::new(frame.data().len());
    let levels: Vec<Level> = bits.iter().map(|&b| Level::from_bit(b)).collect();
    let stuffed = stuff(&levels);

    let mut out = Vec::with_capacity(stuffed.len() + 3 + variant.eof_len());
    let mut destuffed_idx = 0usize;
    for (level, is_stuff) in stuffed {
        let (field, index) = if is_stuff {
            // Attribute the stuff bit to the field bit it follows.
            layout.field_at(destuffed_idx - 1)
        } else {
            let fi = layout.field_at(destuffed_idx);
            destuffed_idx += 1;
            fi
        };
        out.push(WireBit {
            level,
            pos: WirePos {
                field,
                index,
                stuff: is_stuff,
            },
        });
    }
    out.push(WireBit {
        level: Level::Recessive,
        pos: WirePos::new(Field::CrcDelim, 0),
    });
    out.push(WireBit {
        level: Level::Recessive,
        pos: WirePos::new(Field::AckSlot, 0),
    });
    out.push(WireBit {
        level: Level::Recessive,
        pos: WirePos::new(Field::AckDelim, 0),
    });
    for i in 0..variant.eof_len() {
        out.push(WireBit {
            level: Level::Recessive,
            pos: WirePos::new(Field::Eof, i as u16),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrameId, StandardCan};
    use majorcan_sim::Level::{Dominant as D, Recessive as R};

    #[test]
    fn ordinal_indexes_all() {
        for (i, field) in Field::ALL.into_iter().enumerate() {
            assert_eq!(field.ordinal(), i, "{field} ordinal disagrees with ALL");
        }
    }

    #[test]
    fn field_tokens_round_trip() {
        for field in Field::ALL {
            assert_eq!(Field::from_token(&field.to_string()), Some(field));
        }
        assert_eq!(Field::from_token("EOF"), Some(Field::Eof));
        assert_eq!(Field::from_token("HOLD"), Some(Field::AgreementHold));
        assert_eq!(Field::from_token("nonsense"), None);
    }

    #[test]
    fn stuff_inserts_after_five() {
        let out = stuff(&[R, R, R, R, R, R, R]);
        let levels: Vec<Level> = out.iter().map(|&(l, _)| l).collect();
        assert_eq!(levels, vec![R, R, R, R, R, D, R, R]);
        assert_eq!(out.iter().filter(|&&(_, s)| s).count(), 1);
    }

    #[test]
    fn stuff_bit_participates_in_next_run() {
        // ddddd -> dddddR; then rrrr extends the R run to 5 -> stuff D.
        let out = stuff(&[D, D, D, D, D, R, R, R, R]);
        let levels: Vec<Level> = out.iter().map(|&(l, _)| l).collect();
        assert_eq!(levels, vec![D, D, D, D, D, R, R, R, R, R, D]);
        assert!(out[5].1 && out[10].1);
    }

    #[test]
    fn destuff_inverts_stuff() {
        let inputs: Vec<Vec<Level>> = vec![
            vec![],
            vec![D],
            vec![D; 5],
            vec![R; 17],
            [vec![D; 5], vec![R; 5], vec![D; 5]].concat(),
            (0..64)
                .map(|i| if (i / 3) % 2 == 0 { D } else { R })
                .collect(),
        ];
        for input in inputs {
            let stuffed: Vec<Level> = stuff(&input).into_iter().map(|(l, _)| l).collect();
            assert_eq!(destuff(&stuffed).unwrap(), input, "round trip failed");
        }
    }

    #[test]
    fn destuff_rejects_six_equal() {
        let err = destuff(&[D, D, D, D, D, D]).unwrap_err();
        assert_eq!(err.at, 5);
        assert!(err.to_string().contains("six consecutive"));
    }

    #[test]
    fn stuffed_output_never_has_six_equal() {
        // Exhaustive over all 12-bit patterns.
        for pattern in 0u16..(1 << 12) {
            let input: Vec<Level> = (0..12)
                .map(|i| Level::from_bit((pattern >> i) & 1 == 1))
                .collect();
            let stuffed: Vec<Level> = stuff(&input).into_iter().map(|(l, _)| l).collect();
            let mut run = 0;
            let mut prev = None;
            for &l in &stuffed {
                if Some(l) == prev {
                    run += 1;
                } else {
                    prev = Some(l);
                    run = 1;
                }
                assert!(run <= 5, "six equal bits leaked for pattern {pattern:#b}");
            }
        }
    }

    #[test]
    fn layout_field_mapping() {
        let l = Layout::new(2);
        assert_eq!(l.field_at(0), (Field::Sof, 0));
        assert_eq!(l.field_at(1), (Field::Id, 0));
        assert_eq!(l.field_at(11), (Field::Id, 10));
        assert_eq!(l.field_at(12), (Field::Rtr, 0));
        assert_eq!(l.field_at(13), (Field::Ide, 0));
        assert_eq!(l.field_at(14), (Field::R0, 0));
        assert_eq!(l.field_at(15), (Field::Dlc, 0));
        assert_eq!(l.field_at(19), (Field::Data, 0));
        assert_eq!(l.field_at(34), (Field::Data, 15));
        assert_eq!(l.field_at(35), (Field::Crc, 0));
        assert_eq!(l.field_at(49), (Field::Crc, 14));
        assert_eq!(l.stuffed_region_len(), 50);
    }

    #[test]
    #[should_panic(expected = "beyond stuffed region")]
    fn layout_panics_past_crc() {
        Layout::new(0).field_at(49);
    }

    #[test]
    fn frame_payload_bits_structure() {
        let f = Frame::new(FrameId::new(0x555).unwrap(), &[0xFF]).unwrap();
        let bits = frame_payload_bits(&f);
        // 1 SOF + 11 ID + 1 RTR + 1 IDE + 1 r0 + 4 DLC + 8 data + 15 CRC.
        assert_eq!(bits.len(), 42);
        assert!(!bits[0], "SOF dominant");
        // 0x555 = 0b101_0101_0101
        assert!(bits[1] && !bits[2] && bits[3]);
        assert!(!bits[12], "data frame RTR dominant");
        assert!(!bits[13] && !bits[14], "IDE, r0 dominant");
        // DLC = 1 -> 0001
        assert_eq!(&bits[15..19], &[false, false, false, true]);
        // Data 0xFF
        assert!(bits[19..27].iter().all(|&b| b));
    }

    #[test]
    fn encode_frame_tail_layout() {
        let f = Frame::new(FrameId::new(0x0F).unwrap(), &[]).unwrap();
        let wire = encode_frame(&f, &StandardCan);
        let tail: Vec<&WireBit> = wire.iter().rev().take(10).collect();
        // Last 7 bits are EOF, then ACK delim, ACK slot, CRC delim.
        for (i, wb) in tail.iter().take(7).enumerate() {
            assert_eq!(wb.pos.field, Field::Eof);
            assert_eq!(wb.pos.index as usize, 6 - i);
            assert_eq!(wb.level, R);
        }
        assert_eq!(tail[7].pos.field, Field::AckDelim);
        assert_eq!(tail[8].pos.field, Field::AckSlot);
        assert_eq!(tail[9].pos.field, Field::CrcDelim);
        assert_eq!(wire[0].pos.field, Field::Sof);
        assert_eq!(wire[0].level, D);
    }

    #[test]
    fn encode_marks_stuff_bits() {
        // ID 0x000 yields SOF + 11 dominant bits -> stuffing kicks in.
        let f = Frame::new(FrameId::new(0).unwrap(), &[]).unwrap();
        let wire = encode_frame(&f, &StandardCan);
        let first_stuff = wire.iter().position(|wb| wb.pos.stuff).unwrap();
        // SOF + 4 ID dominants = 5 in a row; stuff after index 4.
        assert_eq!(first_stuff, 5);
        assert_eq!(wire[first_stuff].level, R);
        assert_eq!(wire[first_stuff].pos.field, Field::Id);
    }

    #[test]
    fn wire_pos_display() {
        assert_eq!(WirePos::eof(6).to_string(), "EOF6");
        assert_eq!(
            WirePos {
                field: Field::Id,
                index: 2,
                stuff: true
            }
            .to_string(),
            "ID3+s"
        );
    }

    #[test]
    fn eof_helper_is_one_based() {
        assert_eq!(WirePos::eof(1).index, 0);
        assert_eq!(WirePos::eof(7).index, 6);
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn eof_helper_rejects_zero() {
        WirePos::eof(0);
    }

    #[test]
    fn arbitration_fields() {
        assert!(Field::Id.in_arbitration());
        assert!(Field::Rtr.in_arbitration());
        assert!(!Field::Sof.in_arbitration());
        assert!(!Field::Dlc.in_arbitration());
    }
}
