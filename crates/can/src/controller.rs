//! The CAN controller state machine, generic over a protocol [`Variant`].
//!
//! One state machine runs standard CAN, MinorCAN and MajorCAN: the variant
//! only parameterizes the EOF geometry and the decision rule applied when an
//! error is detected during the EOF (see [`EofReaction`]). Everything else —
//! arbitration, stuffing, CRC, active/passive/overload flags, delimiters,
//! fault confinement, automatic retransmission — is shared machinery.
//!
//! # Timing model
//!
//! The controller is a [`BitNode`]: each bit time it first
//! [drives](BitNode::drive) a level and then [observes](BitNode::observe) its
//! own (possibly disturbed) view of the resolved bus. State transitions made
//! while observing bit `k` take effect on the bus at bit `k + 1`, matching
//! the CAN rule that an error flag starts the bit after the error was
//! detected. The one exception is the CRC error, whose flag starts *at* the
//! first EOF bit (the bit following the ACK delimiter), exactly as the
//! specification requires — the controller arranges this by transitioning
//! while observing the ACK delimiter.

use crate::{
    encode_frame, CanEvent, ConfinementEvent, DecisionBasis, EofReaction, ErrorKind,
    FaultConfinement, FaultState, Field, FlagKind, Frame, Role, RxPipeline, RxStep, Variant,
    WireBit, WirePos,
};
use majorcan_sim::{BitNode, Level};

/// Static configuration of a controller.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Disconnect the node when an error counter reaches the warning level
    /// (96) — the paper's policy for keeping every node out of the
    /// error-passive state. Defaults to `true`.
    pub shutoff_at_warning: bool,
    /// Crash (fail silent) at this absolute bit time, for scripted failure
    /// scenarios such as Fig. 1c.
    pub fail_at: Option<u64>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            shutoff_at_warning: true,
            fail_at: None,
        }
    }
}

/// Pending transmission bookkeeping.
#[derive(Debug, Clone)]
struct PendingTx {
    frame: Frame,
    attempts: u32,
}

/// Active transmission state.
#[derive(Debug, Clone)]
struct TxState {
    bits: Vec<WireBit>,
    idx: usize,
    frame: Frame,
}

/// What a node does after its 6-bit flag completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterFlag {
    /// Straight to the error/overload delimiter.
    Delimiter,
    /// MinorCAN: the first post-flag bit decides accept (dominant) vs
    /// reject (recessive).
    PrimaryProbe,
    /// MajorCAN: hold recessive until the agreement end; if `voting`, count
    /// dominant samples inside the window and decide by majority.
    MajorHold { voting: bool },
}

/// A decision postponed past the node's own flag (MinorCAN probe,
/// MajorCAN vote).
#[derive(Debug, Clone)]
struct Deferred {
    role: Role,
    frame: Option<Frame>,
}

#[derive(Debug, Clone)]
enum CState {
    /// Waiting for 11 consecutive recessive bits before joining the bus.
    Integrating { recessive_run: u8 },
    /// Bus idle.
    Idle,
    /// A frame is on the bus (this node transmitting and/or receiving).
    InFrame,
    /// Driving a 6-bit dominant flag (active error or overload).
    Flag {
        kind: FlagKind,
        sent: u8,
        then: AfterFlag,
        overload: bool,
    },
    /// Driving a 6-bit recessive (passive) error flag.
    PassiveFlag { sent: u8 },
    /// MajorCAN: driving the dominant extended flag until the agreement end.
    ExtendedFlag,
    /// MajorCAN: holding recessive until the agreement end, possibly voting.
    Hold { votes: u8, voting: bool },
    /// Driving recessive, waiting to see the first recessive delimiter bit.
    DelimWait {
        overload: bool,
        probe: bool,
        first: bool,
    },
    /// Counting the remaining recessive delimiter bits.
    Delim { remaining: usize, overload: bool },
    /// The 3-bit interframe space.
    Intermission { done: u8 },
    /// Error-passive transmitter suspend window.
    Suspend { remaining: u8 },
    /// Disconnected after TEC ≥ 256; counting recovery sequences.
    BusOff { recessive_run: u8, periods: u8 },
    /// Fail-silent.
    Crashed,
}

/// Distance in bits from an error detected while observing `pos` to EOF
/// bit 1, for the positions the paper's frame-tail rule covers. `None`
/// for every position standard delimiter recovery applies to (anything
/// up to and including the CRC sequence; EOF bearers route through
/// [`Variant::eof_reaction`] instead).
fn eof1_offset(kind: ErrorKind, pos: WirePos) -> Option<u64> {
    if kind == ErrorKind::Crc {
        // The CRC verdict is signalled while observing the ACK delimiter;
        // its flag starts at EOF bit 1.
        return Some(1);
    }
    match pos.field {
        Field::CrcDelim => Some(3),
        Field::AckSlot => Some(2),
        Field::AckDelim => Some(1),
        _ => None,
    }
}

/// A CAN controller speaking protocol variant `V`.
///
/// Controllers implement [`BitNode`](majorcan_sim::BitNode), so they attach
/// to the bit-level [`Simulator`](majorcan_sim::Simulator); experiment code
/// assembles whole clusters through the `majorcan-testbed` facade instead
/// of attaching controllers by hand. Enqueue frames between steps and read
/// protocol activity from the engine's event log.
///
/// # Examples
///
/// ```
/// use majorcan_can::{CanEvent, Frame, FrameId};
/// use majorcan_sim::NodeId;
/// use majorcan_testbed::{ProtocolSpec, Testbed};
///
/// let mut tb = Testbed::builder(ProtocolSpec::StandardCan).nodes(2).build();
/// tb.enqueue(0, Frame::new(FrameId::new(0x42)?, &[7])?);
/// tb.run(200);
/// let delivered = tb
///     .can_events()
///     .iter()
///     .any(|e| e.node == NodeId(1) && matches!(e.event, CanEvent::Delivered { .. }));
/// assert!(delivered);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Controller<V: Variant> {
    variant: V,
    config: ControllerConfig,
    state: CState,
    fc: FaultConfinement,
    queue: Vec<PendingTx>,
    tx: Option<TxState>,
    pipe: Option<RxPipeline>,
    /// Bit time of EOF bit 1 of the current frame (the agreement clock).
    eof_start: Option<u64>,
    delivered_this_frame: bool,
    deferred: Option<Deferred>,
    episode_role: Role,
    crashed: bool,
    announce_crash: bool,
    bit_now: u64,
    fc_scratch: Vec<ConfinementEvent>,
    /// Events generated while driving (transmission start), emitted at the
    /// next observe so they carry the correct timestamp.
    pending_drive_events: Vec<CanEvent>,
}

impl<V: Variant> Controller<V> {
    /// Creates a controller with default [`ControllerConfig`].
    pub fn new(variant: V) -> Controller<V> {
        Controller::with_config(variant, ControllerConfig::default())
    }

    /// Creates a controller with an explicit configuration.
    pub fn with_config(variant: V, config: ControllerConfig) -> Controller<V> {
        let fc = FaultConfinement::new(config.shutoff_at_warning);
        Controller {
            variant,
            config,
            state: CState::Integrating { recessive_run: 0 },
            fc,
            queue: Vec::new(),
            tx: None,
            pipe: None,
            eof_start: None,
            delivered_this_frame: false,
            deferred: None,
            episode_role: Role::Receiver,
            crashed: false,
            announce_crash: false,
            bit_now: 0,
            fc_scratch: Vec::new(),
            pending_drive_events: Vec::new(),
        }
    }

    /// Rewinds the controller to its freshly-constructed state (as from
    /// [`Controller::with_config`] with the same variant and
    /// configuration), keeping heap allocations such as the transmit queue
    /// for reuse across runs.
    pub fn reset(&mut self) {
        self.fc = FaultConfinement::new(self.config.shutoff_at_warning);
        self.state = CState::Integrating { recessive_run: 0 };
        self.queue.clear();
        self.tx = None;
        self.pipe = None;
        self.eof_start = None;
        self.delivered_this_frame = false;
        self.deferred = None;
        self.episode_role = Role::Receiver;
        self.crashed = false;
        self.announce_crash = false;
        self.bit_now = 0;
        self.fc_scratch.clear();
        self.pending_drive_events.clear();
    }

    /// Re-arms (or clears) the scripted fail-silent bit time for the next
    /// run of a reused controller.
    pub fn set_fail_at(&mut self, fail_at: Option<u64>) {
        self.config.fail_at = fail_at;
    }

    /// Changes the warning-shutoff policy of a reused controller. Takes
    /// full effect at the next [`Controller::reset`], which rebuilds the
    /// fault-confinement state from the configuration.
    pub fn set_shutoff_at_warning(&mut self, shutoff: bool) {
        self.config.shutoff_at_warning = shutoff;
    }

    /// The protocol variant this controller speaks.
    pub fn variant(&self) -> &V {
        &self.variant
    }

    /// The controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Queues `frame` for transmission. Frames are sent in CAN priority
    /// order (lowest identifier first), matching the behaviour of multi-
    /// buffer CAN controllers.
    pub fn enqueue(&mut self, frame: Frame) {
        let at = self
            .queue
            .partition_point(|p| !frame.id().outranks(p.frame.id()));
        self.queue.insert(at, PendingTx { frame, attempts: 0 });
    }

    /// Number of frames waiting for (re)transmission.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Fault-confinement counters and state.
    pub fn fault_confinement(&self) -> &FaultConfinement {
        &self.fc
    }

    /// `true` once the node has crashed (injected fault or
    /// switch-off-at-warning policy).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Crashes the node immediately (fail silent): it stops driving anything
    /// but recessive and never delivers again.
    pub fn crash(&mut self) {
        if !self.crashed {
            self.crashed = true;
            self.announce_crash = true;
            self.state = CState::Crashed;
            self.tx = None;
            self.pipe = None;
        }
    }

    /// `true` while the node is transmitting the frame currently on the bus.
    pub fn is_transmitting(&self) -> bool {
        self.tx.is_some()
    }

    /// `true` when the controller sits in the idle state (intermission
    /// complete, no frame in flight).
    pub fn is_idle(&self) -> bool {
        matches!(self.state, CState::Idle)
    }

    fn role(&self) -> Role {
        if self.tx.is_some() {
            Role::Transmitter
        } else {
            Role::Receiver
        }
    }

    /// EOF-relative 1-based position of bit time `now` (EOF bit 1 ⇒ 1).
    fn eof_rel(&self, now: u64) -> Option<usize> {
        self.eof_start
            .and_then(|s| now.checked_sub(s))
            .map(|d| d as usize + 1)
    }

    fn start_frame_rx(&mut self, seen: Level) {
        let mut pipe = RxPipeline::new(self.variant.eof_len());
        pipe.push(seen); // SOF
        self.pipe = Some(pipe);
        self.eof_start = None;
        self.delivered_this_frame = false;
        self.state = CState::InFrame;
    }

    fn start_frame_tx(&mut self, events: &mut Vec<CanEvent>) -> Level {
        let pending = &mut self.queue[0];
        pending.attempts += 1;
        let frame = pending.frame.clone();
        let attempts = pending.attempts;
        let bits = encode_frame(&frame, &self.variant);
        let first = bits[0].level;
        self.tx = Some(TxState {
            bits,
            idx: 0,
            frame: frame.clone(),
        });
        self.pipe = Some(RxPipeline::new(self.variant.eof_len()));
        self.eof_start = None;
        self.delivered_this_frame = false;
        self.state = CState::InFrame;
        events.push(CanEvent::TxStarted {
            frame,
            attempt: attempts,
        });
        first
    }

    fn drain_confinement(&mut self, events: &mut Vec<CanEvent>) {
        let mut scratch = std::mem::take(&mut self.fc_scratch);
        for ev in scratch.drain(..) {
            match ev {
                ConfinementEvent::Warning => {
                    events.push(CanEvent::ErrorWarning);
                    if self.config.shutoff_at_warning {
                        self.crash();
                    }
                }
                ConfinementEvent::EnteredPassive => events.push(CanEvent::EnteredErrorPassive),
                ConfinementEvent::ReturnedActive => events.push(CanEvent::ReturnedErrorActive),
                ConfinementEvent::WentBusOff => {
                    events.push(CanEvent::WentBusOff);
                    self.tx = None;
                    self.pipe = None;
                    self.state = CState::BusOff {
                        recessive_run: 0,
                        periods: 0,
                    };
                }
            }
        }
        self.fc_scratch = scratch;
    }

    fn bump_error_counter(&mut self, role: Role, events: &mut Vec<CanEvent>) {
        match role {
            Role::Transmitter => self.fc.on_transmit_error(&mut self.fc_scratch),
            Role::Receiver => self.fc.on_receive_error(&mut self.fc_scratch),
        }
        self.drain_confinement(events);
    }

    /// Resolves a deferred accept/reject decision (MinorCAN probe or
    /// MajorCAN vote).
    fn resolve_deferred(&mut self, accept: bool, basis: DecisionBasis, events: &mut Vec<CanEvent>) {
        let Some(deferred) = self.deferred.take() else {
            return;
        };
        if accept {
            match deferred.role {
                Role::Transmitter => self.commit_tx_success(basis, events),
                Role::Receiver => {
                    if let Some(frame) = deferred.frame {
                        if !self.delivered_this_frame {
                            self.delivered_this_frame = true;
                            events.push(CanEvent::Delivered { frame, basis });
                        }
                        self.fc.on_receive_success(&mut self.fc_scratch);
                        self.drain_confinement(events);
                    } else {
                        events.push(CanEvent::Rejected { basis });
                    }
                }
            }
        } else {
            self.bump_error_counter(deferred.role, events);
            match deferred.role {
                Role::Transmitter => {
                    if let Some(p) = self.queue.first() {
                        events.push(CanEvent::RetransmissionScheduled {
                            frame: p.frame.clone(),
                        });
                    }
                }
                Role::Receiver => events.push(CanEvent::Rejected { basis }),
            }
        }
    }

    fn commit_tx_success(&mut self, basis: DecisionBasis, events: &mut Vec<CanEvent>) {
        if self.queue.is_empty() {
            return;
        }
        let done = self.queue.remove(0);
        self.fc.on_transmit_success(&mut self.fc_scratch);
        self.drain_confinement(events);
        events.push(CanEvent::TxSucceeded {
            frame: done.frame,
            attempts: done.attempts,
            basis,
        });
    }

    fn commit_rx_delivery(&mut self, basis: DecisionBasis, events: &mut Vec<CanEvent>) {
        if self.delivered_this_frame {
            return;
        }
        if let Some(frame) = self.pipe.as_ref().and_then(|p| p.frame()).cloned() {
            self.delivered_this_frame = true;
            events.push(CanEvent::Delivered { frame, basis });
            self.fc.on_receive_success(&mut self.fc_scratch);
            self.drain_confinement(events);
        }
    }

    /// Begins a 6-bit dominant flag (active error or overload) next bit.
    fn start_flag(&mut self, kind: FlagKind, then: AfterFlag, events: &mut Vec<CanEvent>) {
        let overload = kind == FlagKind::Overload;
        events.push(CanEvent::FlagStarted { kind });
        self.state = CState::Flag {
            kind,
            sent: 0,
            then,
            overload,
        };
        self.tx = None;
        self.pipe = None;
    }

    fn start_passive_flag(&mut self, events: &mut Vec<CanEvent>) {
        events.push(CanEvent::FlagStarted {
            kind: FlagKind::PassiveError,
        });
        self.state = CState::PassiveFlag { sent: 0 };
        self.tx = None;
        self.pipe = None;
    }

    /// Handles an error detected outside the EOF region (or a CRC error):
    /// reject, signal, schedule retransmission if transmitting.
    fn standard_error(
        &mut self,
        now: u64,
        kind: ErrorKind,
        pos: WirePos,
        events: &mut Vec<CanEvent>,
    ) {
        let role = self.role();
        self.episode_role = role;
        events.push(CanEvent::ErrorDetected { kind, pos });
        self.bump_error_counter(role, events);
        if self.crashed || matches!(self.state, CState::BusOff { .. }) {
            return;
        }
        match role {
            Role::Transmitter => {
                if let Some(p) = self.queue.first() {
                    events.push(CanEvent::RetransmissionScheduled {
                        frame: p.frame.clone(),
                    });
                }
            }
            Role::Receiver => {
                if !self.delivered_this_frame {
                    events.push(CanEvent::Rejected {
                        basis: DecisionBasis::ErrorBeforeCommit,
                    });
                }
            }
        }
        let then = self.frame_tail_bearer(now, kind, pos);
        if self.fc.state() == FaultState::ErrorPassive {
            self.start_passive_flag(events);
        } else {
            self.start_flag(FlagKind::ActiveError, then, events);
        }
    }

    /// MajorCAN's frame-tail rule, applied to every non-EOF error bearer:
    /// a flag born in the last bits of the frame — at the CRC delimiter,
    /// the ACK slot, the ACK delimiter, or the CRC verdict (signalled at
    /// EOF bit 1) — occupies bits that reach into EOF and the node must
    /// then hold recessive (without voting) until the agreement end, on
    /// the same `eof_start`-anchored clock as EOF-region bearers.
    /// Standard delimiter recovery would instead run straight through the
    /// other nodes' sampling windows, where any second flag reads as an
    /// acceptance notification and two disturbed bit-views suffice to
    /// break agreement. Variants without an agreement region (CAN,
    /// MinorCAN) keep standard delimiter recovery everywhere.
    fn frame_tail_bearer(&mut self, now: u64, kind: ErrorKind, pos: WirePos) -> AfterFlag {
        match eof1_offset(kind, pos) {
            Some(offset) if self.variant.agreement_end().is_some() => {
                self.anchor_agreement_clock(now + offset);
                AfterFlag::MajorHold { voting: false }
            }
            _ => AfterFlag::Delimiter,
        }
    }

    /// Anchors the agreement clock at `eof1_at`, the bit time of EOF bit 1.
    /// Every path that learns where EOF begins — the clean receive
    /// pipeline and each frame-tail bearer — must derive the same bit; an
    /// existing anchor is never silently moved.
    fn anchor_agreement_clock(&mut self, eof1_at: u64) {
        match self.eof_start {
            None => self.eof_start = Some(eof1_at),
            Some(existing) => debug_assert_eq!(
                existing, eof1_at,
                "agreement clock re-anchored to a different bit"
            ),
        }
    }

    /// Handles an error detected at EOF bit `eof_bit` (1-based) by routing
    /// through the protocol variant.
    fn eof_error(&mut self, kind: ErrorKind, eof_bit: usize, events: &mut Vec<CanEvent>) {
        let role = self.role();
        self.episode_role = role;
        let pos = WirePos::eof(eof_bit as u16);
        events.push(CanEvent::ErrorDetected { kind, pos });

        if self.fc.state() == FaultState::ErrorPassive {
            // A passive node cannot participate in any agreement scheme: it
            // rejects and signals invisibly (the impairment the paper's
            // switch-off-at-warning policy exists to prevent).
            self.bump_error_counter(role, events);
            if role == Role::Transmitter {
                if let Some(p) = self.queue.first() {
                    events.push(CanEvent::RetransmissionScheduled {
                        frame: p.frame.clone(),
                    });
                }
            } else if !self.delivered_this_frame {
                events.push(CanEvent::Rejected {
                    basis: DecisionBasis::ErrorBeforeCommit,
                });
            }
            self.start_passive_flag(events);
            return;
        }

        match self.variant.eof_reaction(role, eof_bit) {
            EofReaction::RejectAndFlag => {
                self.bump_error_counter(role, events);
                match role {
                    Role::Transmitter => {
                        if let Some(p) = self.queue.first() {
                            events.push(CanEvent::RetransmissionScheduled {
                                frame: p.frame.clone(),
                            });
                        }
                    }
                    Role::Receiver => {
                        if !self.delivered_this_frame {
                            events.push(CanEvent::Rejected {
                                basis: DecisionBasis::ErrorBeforeCommit,
                            });
                        }
                    }
                }
                self.start_flag(FlagKind::ActiveError, AfterFlag::Delimiter, events);
            }
            EofReaction::AcceptAndOverload => {
                // Standard CAN last-bit rule: the frame is already accepted
                // (the receiver committed at the last-but-one bit).
                debug_assert!(role == Role::Receiver);
                events.push(CanEvent::OverloadCondition);
                self.start_flag(FlagKind::Overload, AfterFlag::Delimiter, events);
            }
            EofReaction::DeferPrimaryError => {
                self.deferred = Some(Deferred {
                    role,
                    frame: match role {
                        Role::Transmitter => self.tx.as_ref().map(|t| t.frame.clone()),
                        Role::Receiver => self.pipe.as_ref().and_then(|p| p.frame()).cloned(),
                    },
                });
                self.start_flag(FlagKind::ActiveError, AfterFlag::PrimaryProbe, events);
            }
            EofReaction::FlagAndVote => {
                self.deferred = Some(Deferred {
                    role,
                    frame: match role {
                        Role::Transmitter => self.tx.as_ref().map(|t| t.frame.clone()),
                        Role::Receiver => self.pipe.as_ref().and_then(|p| p.frame()).cloned(),
                    },
                });
                self.start_flag(
                    FlagKind::ActiveError,
                    AfterFlag::MajorHold { voting: true },
                    events,
                );
            }
            EofReaction::AcceptAndExtend => {
                events.push(CanEvent::FlagStarted {
                    kind: FlagKind::Extended,
                });
                match role {
                    Role::Transmitter => {
                        self.commit_tx_success(DecisionBasis::SecondSubfield, events)
                    }
                    Role::Receiver => {
                        self.commit_rx_delivery(DecisionBasis::SecondSubfield, events)
                    }
                }
                self.tx = None;
                self.pipe = None;
                self.state = CState::ExtendedFlag;
            }
        }
    }

    fn observe_in_frame(&mut self, now: u64, seen: Level, events: &mut Vec<CanEvent>) {
        let pos = self.pipe.as_ref().expect("InFrame implies pipeline").pos();

        // --- Transmitter monitoring -------------------------------------
        #[derive(PartialEq)]
        enum TxCheck {
            Fine,
            LostArbitration,
            BitError,
            AckError,
        }
        let check = if let Some(tx) = self.tx.as_mut() {
            let driven = tx.bits[tx.idx].level;
            tx.idx += 1;
            let ack_slot = pos.field == Field::AckSlot;
            if driven != seen {
                if pos.field.in_arbitration() && driven.is_recessive() && seen.is_dominant() {
                    TxCheck::LostArbitration
                } else if ack_slot && driven.is_recessive() && seen.is_dominant() {
                    // Acknowledgment from some receiver — expected.
                    TxCheck::Fine
                } else {
                    TxCheck::BitError
                }
            } else if ack_slot && seen.is_recessive() {
                TxCheck::AckError
            } else {
                TxCheck::Fine
            }
        } else {
            TxCheck::Fine
        };
        match check {
            TxCheck::Fine => {}
            TxCheck::LostArbitration => {
                // Back off, keep the frame queued and continue as a
                // receiver of the winning frame.
                let frame = self.tx.take().expect("transmitter checked").frame;
                events.push(CanEvent::ArbitrationLost { frame });
            }
            TxCheck::BitError => {
                if pos.field == Field::Eof {
                    self.eof_error(ErrorKind::Bit, pos.index as usize + 1, events);
                } else {
                    self.standard_error(now, ErrorKind::Bit, pos, events);
                }
                return;
            }
            TxCheck::AckError => {
                self.standard_error(now, ErrorKind::Ack, pos, events);
                return;
            }
        }

        // --- Shared receive pipeline ------------------------------------
        let pipe = self.pipe.as_mut().expect("pipeline still active");
        let step = pipe.push(seen);

        match step {
            RxStep::StuffError => {
                self.standard_error(now, ErrorKind::Stuff, pos, events);
                return;
            }
            RxStep::FormError => {
                if pos.field == Field::Eof {
                    self.eof_error(ErrorKind::Form, pos.index as usize + 1, events);
                } else {
                    self.standard_error(now, ErrorKind::Form, pos, events);
                }
                return;
            }
            RxStep::Ok | RxStep::FrameComplete => {}
        }

        // Start the agreement clock the moment EOF begins.
        let pipe = self.pipe.as_ref().expect("pipeline still active");
        let eof_begins = pipe.pos().field == Field::Eof && pipe.eof_done() == 0;
        if eof_begins {
            self.anchor_agreement_clock(now + 1);
        }
        let pipe = self.pipe.as_ref().expect("pipeline still active");

        // CRC verdict: receivers with a bad CRC start their error flag at
        // the first EOF bit (the bit following the ACK delimiter).
        if pos.field == Field::AckDelim && self.tx.is_none() && pipe.crc_ok() == Some(false) {
            self.standard_error(now, ErrorKind::Crc, WirePos::eof(1), events);
            return;
        }

        // Clean-bit commit logic within EOF.
        if pos.field == Field::Eof {
            let eof_bit = pos.index as usize + 1;
            if self.tx.is_none() && eof_bit == self.variant.commit_point(Role::Receiver) {
                self.commit_rx_delivery(DecisionBasis::CleanEof, events);
            }
        }

        if step == RxStep::FrameComplete {
            if self.tx.is_some() {
                self.tx = None;
                self.commit_tx_success(DecisionBasis::CleanEof, events);
            }
            self.pipe = None;
            self.state = CState::Intermission { done: 0 };
        }
    }

    #[allow(clippy::too_many_arguments)] // private FSM dispatch, mirrors the state fields
    fn observe_flag(
        &mut self,
        now: u64,
        seen: Level,
        kind: FlagKind,
        sent: u8,
        then: AfterFlag,
        overload: bool,
        events: &mut Vec<CanEvent>,
    ) {
        // Bit error while sending a dominant error-flag bit (a disturbed
        // view). Overload flags do not affect the error counters, and a
        // frame-tail bearer's flag is already inside the agreement episode
        // even for its bits before EOF bit 1 (where `eof_rel` is not yet
        // defined), so second-error suppression covers the whole flag.
        if seen.is_recessive()
            && kind != FlagKind::Overload
            && !matches!(then, AfterFlag::MajorHold { .. })
            && !self.suppressed(now)
        {
            match self.episode_role {
                Role::Transmitter => self.fc.on_transmit_error(&mut self.fc_scratch),
                Role::Receiver => self.fc.on_receive_error_aggravated(&mut self.fc_scratch),
            }
            self.drain_confinement(events);
            if self.crashed || matches!(self.state, CState::BusOff { .. }) {
                return;
            }
        }
        let sent = sent + 1;
        if sent >= 6 {
            match then {
                AfterFlag::Delimiter => {
                    self.state = CState::DelimWait {
                        overload,
                        probe: false,
                        first: true,
                    };
                }
                AfterFlag::PrimaryProbe => {
                    self.state = CState::DelimWait {
                        overload: false,
                        probe: true,
                        first: true,
                    };
                }
                AfterFlag::MajorHold { voting } => {
                    self.state = CState::Hold { votes: 0, voting };
                }
            }
        } else {
            self.state = CState::Flag {
                kind,
                sent,
                then,
                overload,
            };
        }
    }

    /// `true` when MajorCAN's second-error suppression is in force: the node
    /// is inside the EOF/agreement region of a variant that forbids
    /// signalling second errors there.
    fn suppressed(&self, now: u64) -> bool {
        if !self.variant.suppress_second_errors() {
            return false;
        }
        match (self.eof_rel(now), self.variant.agreement_end()) {
            (Some(rel), Some(end)) => rel <= end,
            _ => false,
        }
    }

    fn observe_delim_wait(
        &mut self,
        seen: Level,
        overload: bool,
        probe: bool,
        first: bool,
        events: &mut Vec<CanEvent>,
    ) {
        if probe && first {
            // MinorCAN Primary_error: a dominant bit right after our own
            // flag means another node reacted to *us* — we detected the
            // error first, nobody had rejected yet, so we accept. A
            // recessive bit means our flag answered someone else's: reject.
            let dominant = seen.is_dominant();
            self.resolve_deferred(
                dominant,
                DecisionBasis::PrimaryError {
                    dominant_after_flag: dominant,
                },
                events,
            );
            self.state = CState::DelimWait {
                overload,
                probe: false,
                first: false,
            };
            if seen.is_recessive() {
                self.state = CState::Delim {
                    remaining: self.variant.delimiter_len() - 1,
                    overload,
                };
            }
            return;
        }
        if seen.is_recessive() {
            self.state = CState::Delim {
                remaining: self.variant.delimiter_len() - 1,
                overload,
            };
        } else {
            if first && !overload {
                // Spec: a receiver detecting a dominant bit as the first bit
                // after sending an error flag increments its REC by 8.
                if self.episode_role == Role::Receiver {
                    self.fc.on_receive_error_aggravated(&mut self.fc_scratch);
                } else {
                    self.fc.on_transmit_error(&mut self.fc_scratch);
                }
                self.drain_confinement(events);
                if self.crashed || matches!(self.state, CState::BusOff { .. }) {
                    return;
                }
            }
            self.state = CState::DelimWait {
                overload,
                probe: false,
                first: false,
            };
        }
    }

    fn observe_delim(
        &mut self,
        now: u64,
        seen: Level,
        remaining: usize,
        overload: bool,
        events: &mut Vec<CanEvent>,
    ) {
        if seen.is_dominant() {
            if remaining == 1 {
                // Dominant at the last delimiter bit: overload condition.
                events.push(CanEvent::OverloadCondition);
                self.start_flag(FlagKind::Overload, AfterFlag::Delimiter, events);
            } else {
                // Form error within the delimiter.
                self.standard_error(
                    now,
                    ErrorKind::Form,
                    WirePos::new(
                        Field::Delim,
                        (self.variant.delimiter_len() - remaining) as u16,
                    ),
                    events,
                );
            }
            return;
        }
        if remaining <= 1 {
            self.state = CState::Intermission { done: 0 };
        } else {
            self.state = CState::Delim {
                remaining: remaining - 1,
                overload,
            };
        }
    }

    fn observe_intermission(&mut self, seen: Level, done: u8, events: &mut Vec<CanEvent>) {
        if seen.is_dominant() {
            if done < 2 {
                events.push(CanEvent::OverloadCondition);
                self.episode_role = Role::Receiver;
                self.start_flag(FlagKind::Overload, AfterFlag::Delimiter, events);
            } else {
                // Third intermission bit dominant ⇒ SOF of the next frame.
                self.start_frame_rx(seen);
            }
            return;
        }
        let done = done + 1;
        if done >= 3 {
            if self.fc.state() == FaultState::ErrorPassive && self.episode_role == Role::Transmitter
            {
                self.state = CState::Suspend { remaining: 8 };
            } else {
                self.state = CState::Idle;
            }
        } else {
            self.state = CState::Intermission { done };
        }
    }

    fn observe_extended_flag(&mut self, now: u64, events: &mut Vec<CanEvent>) {
        let _ = events;
        let end = self
            .variant
            .agreement_end()
            .expect("ExtendedFlag implies an agreement region");
        if self.eof_rel(now).is_some_and(|rel| rel >= end) {
            self.state = CState::DelimWait {
                overload: false,
                probe: false,
                first: true,
            };
        }
    }

    fn observe_hold(
        &mut self,
        now: u64,
        seen: Level,
        votes: u8,
        voting: bool,
        events: &mut Vec<CanEvent>,
    ) {
        let end = self
            .variant
            .agreement_end()
            .expect("Hold implies an agreement region");
        let rel = self.eof_rel(now).expect("Hold implies EOF clock running");
        let mut votes = votes;
        if voting {
            if let Some((ws, we)) = self.variant.sampling_window() {
                if rel >= ws && rel <= we && seen.is_dominant() {
                    votes += 1;
                }
            }
        }
        if rel >= end {
            if voting {
                let (ws, we) = self
                    .variant
                    .sampling_window()
                    .expect("voting implies a window");
                let window = (we - ws + 1) as u8;
                let accept = (votes as usize) >= self.variant.vote_threshold();
                self.resolve_deferred(
                    accept,
                    DecisionBasis::Vote {
                        dominant: votes,
                        window,
                    },
                    events,
                );
            }
            self.state = CState::DelimWait {
                overload: false,
                probe: false,
                first: true,
            };
        } else {
            self.state = CState::Hold { votes, voting };
        }
    }

    fn observe_bus_off(&mut self, seen: Level, recessive_run: u8, periods: u8) {
        // Recovery: 128 occurrences of 11 consecutive recessive bits.
        let (mut run, mut periods) = (recessive_run, periods);
        if seen.is_recessive() {
            run += 1;
            if run >= 11 {
                run = 0;
                periods += 1;
                if periods >= 128 {
                    self.fc.recover_from_bus_off(&mut self.fc_scratch);
                    // Confinement events announced on the next error-path
                    // drain; state change is what matters here.
                    self.state = CState::Integrating { recessive_run: 0 };
                    return;
                }
            }
        } else {
            run = 0;
        }
        self.state = CState::BusOff {
            recessive_run: run,
            periods,
        };
    }
}

impl<V: Variant> BitNode for Controller<V> {
    type Tag = WirePos;
    type Event = CanEvent;

    fn drive(&mut self, now: u64) -> Level {
        self.bit_now = now;
        if let Some(t) = self.config.fail_at {
            if now >= t && !self.crashed {
                self.crash();
            }
        }
        match self.state {
            CState::Crashed
            | CState::BusOff { .. }
            | CState::Integrating { .. }
            | CState::Suspend { .. }
            | CState::DelimWait { .. }
            | CState::Delim { .. }
            | CState::Intermission { .. }
            | CState::PassiveFlag { .. }
            | CState::Hold { .. } => Level::Recessive,
            CState::Idle => {
                if self.queue.is_empty() {
                    Level::Recessive
                } else {
                    // Transmission starts now: the SOF hits the wire in this
                    // bit; the TxStarted event is emitted by the observe
                    // phase of the same bit so it carries a timestamp.
                    let mut pending = std::mem::take(&mut self.pending_drive_events);
                    let level = self.start_frame_tx(&mut pending);
                    self.pending_drive_events = pending;
                    level
                }
            }
            CState::InFrame => {
                if let Some(tx) = &self.tx {
                    tx.bits[tx.idx].level
                } else if self.pipe.as_ref().is_some_and(|p| p.ack_due()) {
                    Level::Dominant
                } else {
                    Level::Recessive
                }
            }
            CState::Flag { .. } | CState::ExtendedFlag => Level::Dominant,
        }
    }

    fn tag(&self) -> WirePos {
        match &self.state {
            CState::Integrating { .. } => WirePos::new(Field::Integrating, 0),
            CState::Idle => WirePos::new(Field::Idle, 0),
            CState::InFrame => self
                .pipe
                .as_ref()
                .map(|p| p.pos())
                .unwrap_or(WirePos::new(Field::Idle, 0)),
            CState::Flag { kind, sent, .. } => {
                let field = match kind {
                    FlagKind::Overload => Field::OverloadFlag,
                    _ => Field::ErrorFlag,
                };
                WirePos::new(field, *sent as u16)
            }
            CState::PassiveFlag { sent } => WirePos::new(Field::PassiveErrorFlag, *sent as u16),
            CState::ExtendedFlag => {
                let idx = self.eof_rel(self.bit_now).map(|r| r as u16).unwrap_or(0);
                WirePos::new(Field::ExtendedFlag, idx)
            }
            CState::Hold { .. } => {
                let idx = self.eof_rel(self.bit_now).map(|r| r as u16).unwrap_or(0);
                WirePos::new(Field::AgreementHold, idx)
            }
            CState::DelimWait { .. } => WirePos::new(Field::DelimWait, 0),
            CState::Delim { remaining, .. } => WirePos::new(
                Field::Delim,
                (self.variant.delimiter_len().saturating_sub(*remaining)) as u16,
            ),
            CState::Intermission { done } => WirePos::new(Field::Intermission, *done as u16),
            CState::Suspend { remaining } => {
                WirePos::new(Field::Suspend, 8u16.saturating_sub(*remaining as u16))
            }
            CState::BusOff { .. } => WirePos::new(Field::BusOff, 0),
            CState::Crashed => WirePos::new(Field::Crashed, 0),
        }
    }

    fn quiescent_until(&self, now: u64) -> u64 {
        // Only two states are self-sustaining under a recessive view: an
        // idle controller with nothing queued, and a crashed one. Every
        // other state (including bus-off recovery and suspend, which also
        // drive recessive) counts bits and so changes every step.
        let idle = matches!(self.state, CState::Idle) && self.queue.is_empty();
        if !(idle || matches!(self.state, CState::Crashed))
            || !self.pending_drive_events.is_empty()
            || self.announce_crash
        {
            return now;
        }
        // A scheduled crash still due interrupts the quiet stretch: the
        // drive phase of bit `fail_at` must run so the crash (and its
        // event) lands on the same bit as in a stepped run.
        match self.config.fail_at {
            Some(t) if !self.crashed => t.max(now),
            _ => u64::MAX,
        }
    }

    fn observe(&mut self, now: u64, seen: Level, events: &mut Vec<CanEvent>) {
        if !self.pending_drive_events.is_empty() {
            events.append(&mut self.pending_drive_events);
        }
        if self.announce_crash {
            self.announce_crash = false;
            events.push(CanEvent::Crashed);
        }
        match self.state.clone() {
            CState::Crashed => {}
            CState::BusOff {
                recessive_run,
                periods,
            } => self.observe_bus_off(seen, recessive_run, periods),
            CState::Integrating { recessive_run } => {
                let run = if seen.is_recessive() {
                    recessive_run + 1
                } else {
                    0
                };
                self.state = if run >= 11 {
                    CState::Idle
                } else {
                    CState::Integrating { recessive_run: run }
                };
            }
            CState::Idle => {
                if seen.is_dominant() {
                    self.start_frame_rx(seen);
                }
            }
            CState::InFrame => self.observe_in_frame(now, seen, events),
            CState::Flag {
                kind,
                sent,
                then,
                overload,
            } => self.observe_flag(now, seen, kind, sent, then, overload, events),
            CState::PassiveFlag { sent } => {
                let sent = sent + 1;
                if sent >= 6 {
                    self.state = CState::DelimWait {
                        overload: false,
                        probe: false,
                        first: true,
                    };
                } else {
                    self.state = CState::PassiveFlag { sent };
                }
            }
            CState::ExtendedFlag => self.observe_extended_flag(now, events),
            CState::Hold { votes, voting } => self.observe_hold(now, seen, votes, voting, events),
            CState::DelimWait {
                overload,
                probe,
                first,
            } => self.observe_delim_wait(seen, overload, probe, first, events),
            CState::Delim {
                remaining,
                overload,
            } => self.observe_delim(now, seen, remaining, overload, events),
            CState::Intermission { done } => self.observe_intermission(seen, done, events),
            CState::Suspend { remaining } => {
                if seen.is_dominant() {
                    // Traffic started during suspend: join as receiver.
                    self.start_frame_rx(seen);
                } else if remaining <= 1 {
                    self.state = CState::Idle;
                } else {
                    self.state = CState::Suspend {
                        remaining: remaining - 1,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod frame_tail_tests {
    //! Boundary tests for the frame-tail bearer rule: which `AfterFlag` an
    //! error entering `standard_error` / `eof_error` selects at each field
    //! around the frame end, and where the agreement clock lands.

    use super::*;
    use crate::{FrameId, StandardCan};

    /// MajorCAN_3 geometry, declared locally: the real `MajorCan` lives in
    /// `majorcan-core`, which depends on this crate, so the boundary tests
    /// pin the controller's semantics against a minimal agreement variant
    /// carrying the same m = 3 numbers.
    #[derive(Debug, Clone, Copy)]
    struct Agreement3;

    impl Variant for Agreement3 {
        fn name(&self) -> String {
            "Agreement3".to_owned()
        }
        fn eof_len(&self) -> usize {
            6 // 2m
        }
        fn delimiter_len(&self) -> usize {
            7 // 2m + 1
        }
        fn eof_reaction(&self, _role: Role, eof_bit: usize) -> EofReaction {
            if eof_bit <= 3 {
                EofReaction::FlagAndVote
            } else {
                EofReaction::AcceptAndExtend
            }
        }
        fn commit_point(&self, _role: Role) -> usize {
            6
        }
        fn sampling_window(&self) -> Option<(usize, usize)> {
            Some((10, 14)) // (m+7, 3m+5)
        }
        fn vote_threshold(&self) -> usize {
            3
        }
        fn agreement_end(&self) -> Option<usize> {
            Some(14) // 3m+5
        }
    }

    /// MinorCAN geometry: CAN frame layout, Primary_error last-bit rule,
    /// no agreement region.
    #[derive(Debug, Clone, Copy)]
    struct Minorish;

    impl Variant for Minorish {
        fn name(&self) -> String {
            "Minorish".to_owned()
        }
        fn eof_len(&self) -> usize {
            7
        }
        fn delimiter_len(&self) -> usize {
            8
        }
        fn eof_reaction(&self, _role: Role, eof_bit: usize) -> EofReaction {
            if eof_bit == 7 {
                EofReaction::DeferPrimaryError
            } else {
                EofReaction::RejectAndFlag
            }
        }
        fn commit_point(&self, _role: Role) -> usize {
            7
        }
    }

    fn test_frame() -> Frame {
        Frame::new(FrameId::new(0x0AA).unwrap(), &[0xCD]).unwrap()
    }

    /// A 3-node cluster with node 0 holding a frame to transmit.
    fn cluster<V: Variant + Copy>(v: V) -> Vec<Controller<V>> {
        let mut nodes: Vec<Controller<V>> = (0..3).map(|_| Controller::new(v)).collect();
        nodes[0].enqueue(test_frame());
        nodes
    }

    /// Steps the cluster bit by bit on a wired-AND bus, flipping node `i`'s
    /// view whenever `disturb(now, i, tag)` says so, until `until` holds
    /// after an observe phase. Returns the stop time and the merged event
    /// log. Mirrors the engine's phase order: drive all, resolve, tag, then
    /// observe per node.
    fn run_until<V: Variant>(
        nodes: &mut [Controller<V>],
        disturb: impl Fn(u64, usize, WirePos) -> bool,
        until: impl Fn(&[Controller<V>]) -> bool,
    ) -> (u64, Vec<CanEvent>) {
        let mut events = Vec::new();
        for now in 0..600 {
            let driven: Vec<Level> = nodes.iter_mut().map(|n| n.drive(now)).collect();
            let wire = Level::resolve(driven.iter().copied());
            let tags: Vec<WirePos> = nodes.iter().map(|n| n.tag()).collect();
            for (i, node) in nodes.iter_mut().enumerate() {
                let seen = if disturb(now, i, tags[i]) {
                    !wire
                } else {
                    wire
                };
                node.observe(now, seen, &mut events);
            }
            if until(nodes) {
                return (now, events);
            }
        }
        panic!("predicate never satisfied within 600 bits");
    }

    fn in_flag<V: Variant>(nodes: &[Controller<V>], i: usize) -> bool {
        matches!(nodes[i].state, CState::Flag { .. })
    }

    /// The wire time of EOF bit 1 in an undisturbed run — "the paper's
    /// bit", where every tail bearer must anchor the agreement clock.
    fn clean_eof1<V: Variant + Copy>(v: V) -> u64 {
        let mut nodes = cluster(v);
        run_until(&mut nodes, |_, _, _| false, |ns| ns[1].eof_start.is_some());
        nodes[1].eof_start.unwrap()
    }

    #[test]
    fn last_crc_bit_error_takes_standard_recovery_even_with_agreement() {
        let mut nodes = cluster(Agreement3);
        run_until(
            &mut nodes,
            |_, i, tag| i == 0 && tag.field == Field::Crc && tag.index == 14 && !tag.stuff,
            |ns| in_flag(ns, 0),
        );
        match nodes[0].state {
            CState::Flag {
                kind: FlagKind::ActiveError,
                then: AfterFlag::Delimiter,
                ..
            } => {}
            ref s => panic!("expected standard recovery, got {s:?}"),
        }
        assert_eq!(
            nodes[0].eof_start, None,
            "a CRC-field bearer is outside the frame tail: no agreement clock"
        );
    }

    #[test]
    fn ack_slot_error_enters_the_hold_two_bits_before_eof() {
        let eof1 = clean_eof1(Agreement3);
        let mut nodes = cluster(Agreement3);
        let (t, _) = run_until(
            &mut nodes,
            |_, i, tag| i == 0 && tag.field == Field::AckSlot,
            |ns| in_flag(ns, 0),
        );
        match nodes[0].state {
            CState::Flag {
                then: AfterFlag::MajorHold { voting: false },
                ..
            } => {}
            ref s => panic!("expected frame-tail hold, got {s:?}"),
        }
        assert_eq!(t + 2, eof1, "the ACK slot is two bits before EOF bit 1");
        assert_eq!(nodes[0].eof_start, Some(eof1));
    }

    #[test]
    fn crc_delimiter_error_enters_the_hold_three_bits_before_eof() {
        let eof1 = clean_eof1(Agreement3);
        let mut nodes = cluster(Agreement3);
        let (t, _) = run_until(
            &mut nodes,
            |_, i, tag| i == 1 && tag.field == Field::CrcDelim,
            |ns| in_flag(ns, 1),
        );
        match nodes[1].state {
            CState::Flag {
                then: AfterFlag::MajorHold { voting: false },
                ..
            } => {}
            ref s => panic!("expected frame-tail hold, got {s:?}"),
        }
        assert_eq!(
            t + 3,
            eof1,
            "the CRC delimiter is three bits before EOF bit 1"
        );
        assert_eq!(nodes[1].eof_start, Some(eof1));
    }

    #[test]
    fn ack_delimiter_error_enters_the_hold_one_bit_before_eof() {
        let eof1 = clean_eof1(Agreement3);
        let mut nodes = cluster(Agreement3);
        let (t, _) = run_until(
            &mut nodes,
            |_, i, tag| i == 1 && tag.field == Field::AckDelim,
            |ns| in_flag(ns, 1),
        );
        match nodes[1].state {
            CState::Flag {
                then: AfterFlag::MajorHold { voting: false },
                ..
            } => {}
            ref s => panic!("expected frame-tail hold, got {s:?}"),
        }
        assert_eq!(t + 1, eof1, "the ACK delimiter is the bit before EOF bit 1");
        assert_eq!(nodes[1].eof_start, Some(eof1));
    }

    #[test]
    fn crc_verdict_flags_at_eof_bit_1_and_holds() {
        let eof1 = clean_eof1(Agreement3);
        let mut nodes = cluster(Agreement3);
        let (t, events) = run_until(
            &mut nodes,
            |_, i, tag| i == 1 && tag.field == Field::Crc && tag.index == 5 && !tag.stuff,
            |ns| in_flag(ns, 1),
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                CanEvent::ErrorDetected {
                    kind: ErrorKind::Crc,
                    ..
                }
            )),
            "the flag must come from the CRC verdict, not a stuff/form error: {events:?}"
        );
        match nodes[1].state {
            CState::Flag {
                then: AfterFlag::MajorHold { voting: false },
                ..
            } => {}
            ref s => panic!("expected frame-tail hold, got {s:?}"),
        }
        // The verdict is signalled while observing the ACK delimiter, so
        // the flag's first driven bit is EOF bit 1 itself.
        assert_eq!(t + 1, eof1, "CRC flag starts at EOF bit 1");
        assert_eq!(nodes[1].eof_start, Some(eof1));
    }

    #[test]
    fn eof_bit_1_error_flags_and_votes() {
        let eof1 = clean_eof1(Agreement3);
        let mut nodes = cluster(Agreement3);
        let (t, _) = run_until(
            &mut nodes,
            |_, i, tag| i == 1 && tag.field == Field::Eof && tag.index == 0,
            |ns| in_flag(ns, 1),
        );
        match nodes[1].state {
            CState::Flag {
                then: AfterFlag::MajorHold { voting: true },
                ..
            } => {}
            ref s => panic!("expected first-sub-field flag-and-vote, got {s:?}"),
        }
        assert_eq!(t, eof1, "the error was detected at EOF bit 1 itself");
        assert_eq!(
            nodes[1].eof_start,
            Some(eof1),
            "the clock was anchored by the clean pipeline entry into EOF"
        );
    }

    #[test]
    fn tail_errors_take_standard_recovery_without_an_agreement_region() {
        fn assert_delimiter_recovery<V: Variant + Copy>(v: V) {
            for (victim, field) in [
                (0usize, Field::AckSlot),
                (1usize, Field::AckDelim),
                (1usize, Field::CrcDelim),
            ] {
                let mut nodes = cluster(v);
                run_until(
                    &mut nodes,
                    |_, i, tag| i == victim && tag.field == field,
                    |ns| in_flag(ns, victim),
                );
                match nodes[victim].state {
                    CState::Flag {
                        then: AfterFlag::Delimiter,
                        ..
                    } => {}
                    ref s => panic!(
                        "{}: expected standard recovery at {field:?}, got {s:?}",
                        v.name()
                    ),
                }
                assert_eq!(nodes[victim].eof_start, None, "{}: {field:?}", v.name());
            }
        }
        assert_delimiter_recovery(StandardCan);
        assert_delimiter_recovery(Minorish);
    }
}
