//! The CAN CRC-15 frame check sequence.
//!
//! CAN protects the SOF-through-data portion of every frame with a 15-bit
//! CRC using the generator polynomial
//! `x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1` (`0x4599`). This code can
//! detect up to **5 randomly distributed bit errors** per frame — the figure
//! from which the paper derives its choice of `m = 5` for MajorCAN
//! ("standard CAN uses a CRC code that allows the detection of up to 5
//! randomly distributed bit errors; therefore it makes sense to guarantee
//! Atomic Broadcast at the same level").

/// The CAN generator polynomial, 15 significant bits.
pub const CRC15_POLY: u16 = 0x4599;

/// Incremental CRC-15 register, fed one destuffed bit at a time, exactly as
/// the bit-serial circuit in the CAN specification computes it.
///
/// # Examples
///
/// ```
/// use majorcan_can::Crc15;
///
/// let mut crc = Crc15::new();
/// for bit in [false, true, true, false, true] {
///     crc.push(bit);
/// }
/// assert!(crc.value() < (1 << 15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Crc15 {
    reg: u16,
}

impl Crc15 {
    /// A fresh register (all zeros, per the CAN specification).
    pub fn new() -> Crc15 {
        Crc15 { reg: 0 }
    }

    /// Feeds the next bit (`true` = recessive/logical 1) into the register.
    ///
    /// The algorithm mirrors the specification pseudo-code:
    /// `crcnxt = nxtbit XOR crc_rg(14); crc_rg <<= 1; if crcnxt, crc_rg ^= poly`.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let crcnxt = bit ^ ((self.reg >> 14) & 1 == 1);
        self.reg = (self.reg << 1) & 0x7FFF;
        if crcnxt {
            self.reg ^= CRC15_POLY;
        }
    }

    /// The current 15-bit CRC value.
    #[inline]
    pub fn value(&self) -> u16 {
        self.reg & 0x7FFF
    }

    /// Computes the CRC of a whole bit sequence at once.
    pub fn of_bits<I: IntoIterator<Item = bool>>(bits: I) -> u16 {
        let mut crc = Crc15::new();
        for b in bits {
            crc.push(b);
        }
        crc.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sequence_is_zero() {
        assert_eq!(Crc15::new().value(), 0);
        assert_eq!(Crc15::of_bits(std::iter::empty()), 0);
    }

    #[test]
    fn all_zero_bits_stay_zero() {
        assert_eq!(Crc15::of_bits(std::iter::repeat_n(false, 64)), 0);
    }

    #[test]
    fn single_one_bit_gives_polynomial() {
        // A single 1 entering an all-zero register XORs in the polynomial.
        assert_eq!(Crc15::of_bits([true]), CRC15_POLY);
    }

    #[test]
    fn incremental_matches_batch() {
        let bits: Vec<bool> = (0..97).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let mut inc = Crc15::new();
        for &b in &bits {
            inc.push(b);
        }
        assert_eq!(inc.value(), Crc15::of_bits(bits.iter().copied()));
    }

    #[test]
    fn value_is_15_bits() {
        let mut crc = Crc15::new();
        for i in 0..1000 {
            crc.push(i % 3 == 0);
            assert!(crc.value() < (1 << 15));
        }
    }

    #[test]
    fn crc_distinguishes_position() {
        // CRC of 1-then-0 differs from 0-then-1: position sensitivity.
        assert_ne!(Crc15::of_bits([true, false]), Crc15::of_bits([false, true]));
    }

    #[test]
    fn detects_any_single_bit_error() {
        // Fundamental CRC property: flipping any single bit of the message
        // changes the checksum.
        let msg: Vec<bool> = (0..83).map(|i| i % 4 == 1).collect();
        let clean = Crc15::of_bits(msg.iter().copied());
        for flip in 0..msg.len() {
            let mut corrupted = msg.clone();
            corrupted[flip] = !corrupted[flip];
            assert_ne!(
                Crc15::of_bits(corrupted.iter().copied()),
                clean,
                "single-bit flip at {flip} undetected"
            );
        }
    }

    #[test]
    fn detects_burst_errors_up_to_15() {
        // Bursts no longer than the CRC width are always detected.
        let msg: Vec<bool> = (0..120).map(|i| i % 7 == 2).collect();
        let clean = Crc15::of_bits(msg.iter().copied());
        for start in 0..msg.len() - 15 {
            for len in 2..=15usize {
                let mut corrupted = msg.clone();
                // Invert the first and last bits of the burst (a burst's
                // defining bits); fill interior with an arbitrary pattern.
                corrupted[start] = !corrupted[start];
                corrupted[start + len - 1] = !corrupted[start + len - 1];
                assert_ne!(
                    Crc15::of_bits(corrupted.iter().copied()),
                    clean,
                    "burst at {start} len {len} undetected"
                );
            }
        }
    }
}
