//! Protocol events emitted by the controller.

use crate::{Frame, WirePos};
use std::fmt;

/// The five CAN error-detection mechanisms, plus arbitration bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Transmitted level differs from monitored level.
    Bit,
    /// Six consecutive equal levels inside the stuffed region.
    Stuff,
    /// CRC sequence mismatch (signalled at the first EOF bit).
    Crc,
    /// Transmitter monitored no dominant bit in the ACK slot.
    Ack,
    /// Dominant level in a fixed-form field (delimiters, EOF).
    Form,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorKind::Bit => "bit error",
            ErrorKind::Stuff => "stuff error",
            ErrorKind::Crc => "CRC error",
            ErrorKind::Ack => "acknowledgment error",
            ErrorKind::Form => "form error",
        })
    }
}

/// The kind of flag a node transmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlagKind {
    /// Active error flag: 6 dominant bits.
    ActiveError,
    /// Passive error flag: 6 recessive bits (invisible to other nodes).
    PassiveError,
    /// Overload flag: 6 dominant bits, no frame rejection implied.
    Overload,
    /// MajorCAN extended error flag: dominant through EOF-relative `3m+5`,
    /// notifying that the sender accepted the frame.
    Extended,
}

impl fmt::Display for FlagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlagKind::ActiveError => "error flag",
            FlagKind::PassiveError => "passive error flag",
            FlagKind::Overload => "overload flag",
            FlagKind::Extended => "extended error flag",
        })
    }
}

/// How an accept/reject decision at the end of a frame was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionBasis {
    /// No error seen through the commit point.
    CleanEof,
    /// Standard CAN's receiver last-bit rule.
    LastBitRule,
    /// MinorCAN: the bit following the node's own flag was dominant
    /// (primary error ⇒ accept) or recessive (secondary ⇒ reject).
    PrimaryError {
        /// `true` if the post-flag sample was dominant.
        dominant_after_flag: bool,
    },
    /// MajorCAN: majority vote over the sampling window.
    Vote {
        /// Dominant samples seen.
        dominant: u8,
        /// Window size (`2m - 1`).
        window: u8,
    },
    /// MajorCAN: error detected in the second EOF sub-field
    /// (accept + extended flag).
    SecondSubfield,
    /// An error before or during the EOF forced rejection.
    ErrorBeforeCommit,
}

impl fmt::Display for DecisionBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionBasis::CleanEof => f.write_str("clean EOF"),
            DecisionBasis::LastBitRule => f.write_str("last-bit rule"),
            DecisionBasis::PrimaryError {
                dominant_after_flag,
            } => write!(
                f,
                "Primary_error sample ({})",
                if *dominant_after_flag {
                    "dominant: primary"
                } else {
                    "recessive: secondary"
                }
            ),
            DecisionBasis::Vote { dominant, window } => {
                write!(f, "majority vote ({dominant}/{window} dominant)")
            }
            DecisionBasis::SecondSubfield => f.write_str("second EOF sub-field"),
            DecisionBasis::ErrorBeforeCommit => f.write_str("error before commit point"),
        }
    }
}

/// Every externally observable action of a controller, in bit-time order.
///
/// Scenario assertions, figures and the Atomic Broadcast checker are all
/// driven from this log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanEvent {
    /// A frame transmission attempt began (SOF driven).
    TxStarted {
        /// Frame being sent.
        frame: Frame,
        /// 1-based attempt number (increments on each retransmission).
        attempt: u32,
    },
    /// The node backed off during arbitration and turned into a receiver.
    ArbitrationLost {
        /// The frame whose transmission was deferred.
        frame: Frame,
    },
    /// An error was detected.
    ErrorDetected {
        /// Which detection mechanism fired.
        kind: ErrorKind,
        /// Frame-relative position of the offending bit.
        pos: WirePos,
    },
    /// A flag transmission began.
    FlagStarted {
        /// Flag kind.
        kind: FlagKind,
    },
    /// An overload condition was recognised.
    OverloadCondition,
    /// The receiver delivered a frame to its host.
    Delivered {
        /// The delivered frame.
        frame: Frame,
        /// Why the frame was accepted.
        basis: DecisionBasis,
    },
    /// The receiver discarded the frame in progress.
    Rejected {
        /// Why the frame was rejected.
        basis: DecisionBasis,
    },
    /// The transmitter committed its frame as successfully broadcast.
    TxSucceeded {
        /// The transmitted frame.
        frame: Frame,
        /// Attempts used (1 = no retransmission).
        attempts: u32,
        /// Why the transmission was deemed successful.
        basis: DecisionBasis,
    },
    /// The transmitter scheduled an automatic retransmission.
    RetransmissionScheduled {
        /// The frame to retransmit.
        frame: Frame,
    },
    /// The error warning level (counter ≥ 96) was reached.
    ErrorWarning,
    /// The node entered the error-passive state.
    EnteredErrorPassive,
    /// The node returned to the error-active state.
    ReturnedErrorActive,
    /// The node disconnected after TEC ≥ 256.
    WentBusOff,
    /// The node crashed (fail-silent), by injected fault or by the
    /// switch-off-at-warning policy.
    Crashed,
}

impl fmt::Display for CanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanEvent::TxStarted { frame, attempt } => {
                write!(f, "tx start {frame} (attempt {attempt})")
            }
            CanEvent::ArbitrationLost { frame } => {
                write!(f, "arbitration lost, {frame} deferred")
            }
            CanEvent::ErrorDetected { kind, pos } => write!(f, "{kind} at {pos}"),
            CanEvent::FlagStarted { kind } => write!(f, "{kind} started"),
            CanEvent::OverloadCondition => f.write_str("overload condition"),
            CanEvent::Delivered { frame, basis } => {
                write!(f, "delivered {frame} [{basis}]")
            }
            CanEvent::Rejected { basis } => write!(f, "frame rejected [{basis}]"),
            CanEvent::TxSucceeded {
                frame,
                attempts,
                basis,
            } => write!(
                f,
                "tx success {frame} after {attempts} attempt(s) [{basis}]"
            ),
            CanEvent::RetransmissionScheduled { frame } => {
                write!(f, "retransmission scheduled for {frame}")
            }
            CanEvent::ErrorWarning => f.write_str("error warning (counter ≥ 96)"),
            CanEvent::EnteredErrorPassive => f.write_str("entered error-passive"),
            CanEvent::ReturnedErrorActive => f.write_str("returned error-active"),
            CanEvent::WentBusOff => f.write_str("went bus-off"),
            CanEvent::Crashed => f.write_str("crashed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, FrameId};

    #[test]
    fn display_smoke() {
        let frame = Frame::new(FrameId::new(0x42).unwrap(), &[1]).unwrap();
        let samples: Vec<CanEvent> = vec![
            CanEvent::TxStarted {
                frame: frame.clone(),
                attempt: 1,
            },
            CanEvent::ErrorDetected {
                kind: ErrorKind::Form,
                pos: WirePos::new(Field::Eof, 5),
            },
            CanEvent::Delivered {
                frame: frame.clone(),
                basis: DecisionBasis::Vote {
                    dominant: 7,
                    window: 9,
                },
            },
            CanEvent::Rejected {
                basis: DecisionBasis::PrimaryError {
                    dominant_after_flag: false,
                },
            },
            CanEvent::TxSucceeded {
                frame,
                attempts: 2,
                basis: DecisionBasis::CleanEof,
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
        assert_eq!(ErrorKind::Crc.to_string(), "CRC error");
        assert_eq!(FlagKind::Extended.to_string(), "extended error flag");
    }

    #[test]
    fn decision_basis_display_details() {
        assert!(DecisionBasis::Vote {
            dominant: 5,
            window: 9
        }
        .to_string()
        .contains("5/9"));
        assert!(DecisionBasis::PrimaryError {
            dominant_after_flag: true
        }
        .to_string()
        .contains("primary"));
        assert!(DecisionBasis::PrimaryError {
            dominant_after_flag: false
        }
        .to_string()
        .contains("secondary"));
    }
}
