//! CAN data frames (base format, 11-bit identifiers).

use std::fmt;

/// Errors arising when constructing frames or identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Identifier exceeds the 11-bit base-format range.
    IdOutOfRange(u16),
    /// Identifiers `0x7F0..=0x7FF` are reserved by the CAN specification
    /// (the seven most significant bits must not be all recessive).
    IdReserved(u16),
    /// Payload longer than the 8-byte CAN maximum.
    PayloadTooLong(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::IdOutOfRange(id) => {
                write!(f, "identifier {id:#x} does not fit in 11 bits")
            }
            FrameError::IdReserved(id) => {
                write!(f, "identifier {id:#x} is reserved (7 MSBs all recessive)")
            }
            FrameError::PayloadTooLong(len) => {
                write!(f, "payload of {len} bytes exceeds the 8-byte CAN maximum")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// An 11-bit CAN base-format identifier.
///
/// Lower numeric values are **higher priority**: during arbitration a
/// dominant (0) bit wins over a recessive (1) bit, so the frame whose
/// identifier has the first 0 at a differing position takes the bus.
///
/// # Examples
///
/// ```
/// use majorcan_can::FrameId;
///
/// let brake = FrameId::new(0x010)?;
/// let radio = FrameId::new(0x400)?;
/// assert!(brake.outranks(radio));
/// # Ok::<(), majorcan_can::FrameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(u16);

impl FrameId {
    /// Number of identifier bits in a base-format frame.
    pub const BITS: usize = 11;

    /// Creates an identifier, validating the 11-bit range and the CAN rule
    /// that the seven most significant bits must not be all recessive.
    ///
    /// # Errors
    ///
    /// [`FrameError::IdOutOfRange`] if `raw >= 0x800`;
    /// [`FrameError::IdReserved`] if `raw & 0x7F0 == 0x7F0`.
    pub fn new(raw: u16) -> Result<FrameId, FrameError> {
        if raw >= 1 << Self::BITS {
            Err(FrameError::IdOutOfRange(raw))
        } else if raw & 0x7F0 == 0x7F0 {
            Err(FrameError::IdReserved(raw))
        } else {
            Ok(FrameId(raw))
        }
    }

    /// The raw 11-bit identifier value.
    #[inline]
    pub fn raw(self) -> u16 {
        self.0
    }

    /// `true` if this identifier wins arbitration against `other`
    /// (lower value ⇒ higher priority).
    #[inline]
    pub fn outranks(self, other: FrameId) -> bool {
        self.0 < other.0
    }

    /// Identifier bit `i` (0 = most significant, transmitted first) as a
    /// logical bit (`true` = recessive).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 11`.
    #[inline]
    pub fn bit(self, i: usize) -> bool {
        assert!(i < Self::BITS, "identifier bit index {i} out of range");
        (self.0 >> (Self::BITS - 1 - i)) & 1 == 1
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#05x}", self.0)
    }
}

impl TryFrom<u16> for FrameId {
    type Error = FrameError;

    fn try_from(raw: u16) -> Result<Self, Self::Error> {
        FrameId::new(raw)
    }
}

impl fmt::LowerHex for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// A CAN base-format data frame: identifier plus 0–8 payload bytes.
///
/// Remote frames (RTR) are supported structurally (a remote frame carries a
/// DLC but no data field) because the wire codec must handle them, though no
/// paper experiment uses them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    id: FrameId,
    rtr: bool,
    dlc: u8,
    data: [u8; 8],
}

impl Frame {
    /// Creates a data frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::PayloadTooLong`] if `data.len() > 8`.
    ///
    /// # Examples
    ///
    /// ```
    /// use majorcan_can::{Frame, FrameId};
    ///
    /// let frame = Frame::new(FrameId::new(0x123)?, &[0xde, 0xad])?;
    /// assert_eq!(frame.data(), &[0xde, 0xad]);
    /// # Ok::<(), majorcan_can::FrameError>(())
    /// ```
    pub fn new(id: FrameId, data: &[u8]) -> Result<Frame, FrameError> {
        if data.len() > 8 {
            return Err(FrameError::PayloadTooLong(data.len()));
        }
        let mut buf = [0u8; 8];
        buf[..data.len()].copy_from_slice(data);
        Ok(Frame {
            id,
            rtr: false,
            dlc: data.len() as u8,
            data: buf,
        })
    }

    /// Creates a remote (RTR) frame requesting `dlc` bytes.
    ///
    /// # Errors
    ///
    /// [`FrameError::PayloadTooLong`] if `dlc > 8`.
    pub fn new_remote(id: FrameId, dlc: u8) -> Result<Frame, FrameError> {
        if dlc > 8 {
            return Err(FrameError::PayloadTooLong(dlc as usize));
        }
        Ok(Frame {
            id,
            rtr: true,
            dlc,
            data: [0u8; 8],
        })
    }

    /// The frame identifier.
    #[inline]
    pub fn id(&self) -> FrameId {
        self.id
    }

    /// `true` for remote (RTR) frames.
    #[inline]
    pub fn is_remote(&self) -> bool {
        self.rtr
    }

    /// The data length code.
    #[inline]
    pub fn dlc(&self) -> u8 {
        self.dlc
    }

    /// The payload bytes (empty for remote frames).
    #[inline]
    pub fn data(&self) -> &[u8] {
        if self.rtr {
            &[]
        } else {
            &self.data[..self.dlc as usize]
        }
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rtr {
            write!(f, "{}#R{}", self.id, self.dlc)
        } else {
            write!(f, "{}#", self.id)?;
            for b in self.data() {
                write!(f, "{b:02x}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_validation() {
        assert!(FrameId::new(0).is_ok());
        assert!(FrameId::new(0x7EF).is_ok());
        assert_eq!(FrameId::new(0x800), Err(FrameError::IdOutOfRange(0x800)));
        assert_eq!(FrameId::new(0xFFF), Err(FrameError::IdOutOfRange(0xFFF)));
        assert_eq!(FrameId::new(0x7F0), Err(FrameError::IdReserved(0x7F0)));
        assert_eq!(FrameId::new(0x7FF), Err(FrameError::IdReserved(0x7FF)));
    }

    #[test]
    fn id_bit_extraction_msb_first() {
        let id = FrameId::new(0b100_0000_0001).unwrap();
        assert!(id.bit(0), "MSB transmitted first");
        assert!(!id.bit(1));
        assert!(id.bit(10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_bit_out_of_range_panics() {
        FrameId::new(1).unwrap().bit(11);
    }

    #[test]
    fn priority_order() {
        let hi = FrameId::new(0x001).unwrap();
        let lo = FrameId::new(0x700).unwrap();
        assert!(hi.outranks(lo));
        assert!(!lo.outranks(hi));
        assert!(!hi.outranks(hi));
    }

    #[test]
    fn frame_round_trip_accessors() {
        let f = Frame::new(FrameId::new(0x55).unwrap(), &[1, 2, 3]).unwrap();
        assert_eq!(f.id().raw(), 0x55);
        assert_eq!(f.dlc(), 3);
        assert_eq!(f.data(), &[1, 2, 3]);
        assert!(!f.is_remote());
    }

    #[test]
    fn frame_rejects_long_payload() {
        let err = Frame::new(FrameId::new(1).unwrap(), &[0; 9]).unwrap_err();
        assert_eq!(err, FrameError::PayloadTooLong(9));
    }

    #[test]
    fn remote_frame_has_dlc_but_no_data() {
        let f = Frame::new_remote(FrameId::new(0x10).unwrap(), 4).unwrap();
        assert!(f.is_remote());
        assert_eq!(f.dlc(), 4);
        assert!(f.data().is_empty());
        assert!(Frame::new_remote(FrameId::new(0x10).unwrap(), 9).is_err());
    }

    #[test]
    fn display_formats() {
        let f = Frame::new(FrameId::new(0x123).unwrap(), &[0xab, 0x01]).unwrap();
        assert_eq!(f.to_string(), "0x123#ab01");
        let r = Frame::new_remote(FrameId::new(0x123).unwrap(), 2).unwrap();
        assert_eq!(r.to_string(), "0x123#R2");
        assert_eq!(format!("{:x}", FrameId::new(0x1a).unwrap()), "1a");
        assert_eq!(format!("{:b}", FrameId::new(0b101).unwrap()), "101");
    }

    #[test]
    fn errors_display() {
        assert!(FrameError::IdOutOfRange(0x900)
            .to_string()
            .contains("11 bits"));
        assert!(FrameError::IdReserved(0x7F3)
            .to_string()
            .contains("reserved"));
        assert!(FrameError::PayloadTooLong(12)
            .to_string()
            .contains("8-byte"));
    }
}
