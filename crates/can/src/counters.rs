//! Fault confinement: transmit/receive error counters and node states.
//!
//! CAN bounds the damage a faulty node can do through two counters. The
//! paper's dependability argument requires the **error-passive state never
//! to be reached**: a passive node signals errors with recessive flags that
//! cannot force a retransmission, so a passive receiver can silently lose a
//! frame everyone else keeps (violating Agreement). The recommended policy —
//! implemented here as [`FaultConfinement::shutoff_at_warning`] — disconnects
//! the node when the *error warning* level (96) is reached, "assuring that
//! every node is either helping to achieve data consistency or disconnected".

use std::fmt;

/// Counter level at which the error warning notification fires.
pub const WARNING_LIMIT: u16 = 96;
/// Counter level at which a node becomes error-passive.
pub const PASSIVE_LIMIT: u16 = 128;
/// Transmit counter level at which a node goes bus-off.
pub const BUS_OFF_LIMIT: u16 = 256;

/// The fault-confinement state of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultState {
    /// Normal operation: errors are signalled with dominant (active) flags.
    ErrorActive,
    /// Degraded: errors are signalled with recessive (passive) flags that
    /// other nodes cannot see — the state the paper insists must be avoided.
    ErrorPassive,
    /// Disconnected after TEC ≥ 256.
    BusOff,
}

impl fmt::Display for FaultState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultState::ErrorActive => "error-active",
            FaultState::ErrorPassive => "error-passive",
            FaultState::BusOff => "bus-off",
        })
    }
}

/// State-change notifications produced by counter updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfinementEvent {
    /// An error counter reached [`WARNING_LIMIT`].
    Warning,
    /// The node entered the error-passive state.
    EnteredPassive,
    /// The node returned to the error-active state.
    ReturnedActive,
    /// The node went bus-off.
    WentBusOff,
}

/// Transmit/receive error counters plus the derived node state.
///
/// Counter arithmetic follows the CAN specification's primary rules;
/// the rarely-exercised exception rules (e.g. the 8-point bump for a
/// dominant bit right after an error flag) are implemented where the
/// paper's scenarios can reach them and documented where simplified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfinement {
    tec: u16,
    rec: u16,
    state: FaultState,
    warned: bool,
    /// If `true` (the paper's policy), the node is switched off when a
    /// counter reaches the warning level, so it never becomes error-passive.
    pub shutoff_at_warning: bool,
}

impl Default for FaultConfinement {
    fn default() -> Self {
        FaultConfinement::new(true)
    }
}

impl FaultConfinement {
    /// Fresh counters in the error-active state.
    ///
    /// `shutoff_at_warning` selects the paper's switch-off-at-96 policy.
    pub fn new(shutoff_at_warning: bool) -> FaultConfinement {
        FaultConfinement {
            tec: 0,
            rec: 0,
            state: FaultState::ErrorActive,
            warned: false,
            shutoff_at_warning,
        }
    }

    /// Current transmit error counter.
    pub fn tec(&self) -> u16 {
        self.tec
    }

    /// Current receive error counter.
    pub fn rec(&self) -> u16 {
        self.rec
    }

    /// Current fault-confinement state.
    pub fn state(&self) -> FaultState {
        self.state
    }

    /// `true` once a counter has reached the warning level.
    pub fn warning_reached(&self) -> bool {
        self.warned
    }

    /// Records a transmitter-detected error (+8 on TEC per the spec).
    pub fn on_transmit_error(&mut self, events: &mut Vec<ConfinementEvent>) {
        self.tec = self.tec.saturating_add(8);
        self.update_state(events);
    }

    /// Records a receiver-detected error (+1 on REC).
    pub fn on_receive_error(&mut self, events: &mut Vec<ConfinementEvent>) {
        self.rec = self.rec.saturating_add(1);
        self.update_state(events);
    }

    /// Records the spec's aggravated receiver case: a dominant bit detected
    /// as the first bit after sending an error flag (+8 on REC).
    pub fn on_receive_error_aggravated(&mut self, events: &mut Vec<ConfinementEvent>) {
        self.rec = self.rec.saturating_add(8);
        self.update_state(events);
    }

    /// Records a successful transmission (−1 on TEC).
    pub fn on_transmit_success(&mut self, events: &mut Vec<ConfinementEvent>) {
        self.tec = self.tec.saturating_sub(1);
        self.update_state(events);
    }

    /// Records a successful reception. Per the spec, a REC above 127 is set
    /// back into the 119–127 band rather than decremented.
    pub fn on_receive_success(&mut self, events: &mut Vec<ConfinementEvent>) {
        self.rec = if self.rec > 127 {
            119
        } else {
            self.rec.saturating_sub(1)
        };
        self.update_state(events);
    }

    /// Resets counters after bus-off recovery (128 × 11 recessive bits).
    pub fn recover_from_bus_off(&mut self, events: &mut Vec<ConfinementEvent>) {
        self.tec = 0;
        self.rec = 0;
        self.warned = false;
        if self.state != FaultState::ErrorActive {
            self.state = FaultState::ErrorActive;
            events.push(ConfinementEvent::ReturnedActive);
        }
    }

    fn update_state(&mut self, events: &mut Vec<ConfinementEvent>) {
        if !self.warned && (self.tec >= WARNING_LIMIT || self.rec >= WARNING_LIMIT) {
            self.warned = true;
            events.push(ConfinementEvent::Warning);
        } else if self.warned && self.tec < WARNING_LIMIT && self.rec < WARNING_LIMIT {
            // Both counters decayed below the warning level: re-arm, so a
            // later climb warns again. Long soak runs cycle through many
            // warning episodes; a one-shot latch would silently swallow
            // every episode after the first (and, under the paper's
            // shutoff policy, would leave a reconnected node unprotected).
            self.warned = false;
        }
        let next = if self.tec >= BUS_OFF_LIMIT {
            FaultState::BusOff
        } else if self.tec >= PASSIVE_LIMIT || self.rec >= PASSIVE_LIMIT {
            FaultState::ErrorPassive
        } else {
            FaultState::ErrorActive
        };
        if next != self.state {
            // Bus-off is sticky: only `recover_from_bus_off` leaves it.
            if self.state == FaultState::BusOff {
                return;
            }
            match next {
                FaultState::ErrorPassive => events.push(ConfinementEvent::EnteredPassive),
                FaultState::BusOff => events.push(ConfinementEvent::WentBusOff),
                FaultState::ErrorActive => events.push(ConfinementEvent::ReturnedActive),
            }
            self.state = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(
        fc: &mut FaultConfinement,
        f: impl Fn(&mut FaultConfinement, &mut Vec<ConfinementEvent>),
    ) -> Vec<ConfinementEvent> {
        let mut ev = Vec::new();
        f(fc, &mut ev);
        ev
    }

    #[test]
    fn starts_active_and_zeroed() {
        let fc = FaultConfinement::default();
        assert_eq!(fc.tec(), 0);
        assert_eq!(fc.rec(), 0);
        assert_eq!(fc.state(), FaultState::ErrorActive);
        assert!(!fc.warning_reached());
    }

    #[test]
    fn transmit_errors_bump_by_eight() {
        let mut fc = FaultConfinement::default();
        let mut ev = Vec::new();
        fc.on_transmit_error(&mut ev);
        assert_eq!(fc.tec(), 8);
        fc.on_transmit_success(&mut ev);
        assert_eq!(fc.tec(), 7);
    }

    #[test]
    fn receive_errors_bump_by_one_and_aggravated_by_eight() {
        let mut fc = FaultConfinement::default();
        let mut ev = Vec::new();
        fc.on_receive_error(&mut ev);
        assert_eq!(fc.rec(), 1);
        fc.on_receive_error_aggravated(&mut ev);
        assert_eq!(fc.rec(), 9);
        fc.on_receive_success(&mut ev);
        assert_eq!(fc.rec(), 8);
    }

    #[test]
    fn counters_never_underflow() {
        let mut fc = FaultConfinement::default();
        let mut ev = Vec::new();
        fc.on_transmit_success(&mut ev);
        fc.on_receive_success(&mut ev);
        assert_eq!(fc.tec(), 0);
        assert_eq!(fc.rec(), 0);
    }

    #[test]
    fn warning_fires_once_at_96() {
        let mut fc = FaultConfinement::new(true);
        let mut all = Vec::new();
        for _ in 0..12 {
            fc.on_transmit_error(&mut all);
        }
        assert_eq!(fc.tec(), 96);
        assert_eq!(
            all.iter()
                .filter(|e| matches!(e, ConfinementEvent::Warning))
                .count(),
            1
        );
        assert!(fc.warning_reached());
    }

    #[test]
    fn passive_at_128_and_back_to_active() {
        let mut fc = FaultConfinement::new(false);
        let mut ev = Vec::new();
        for _ in 0..16 {
            fc.on_transmit_error(&mut ev);
        }
        assert_eq!(fc.tec(), 128);
        assert_eq!(fc.state(), FaultState::ErrorPassive);
        assert!(ev.contains(&ConfinementEvent::EnteredPassive));
        ev.clear();
        fc.on_transmit_success(&mut ev);
        assert_eq!(fc.state(), FaultState::ErrorActive);
        assert!(ev.contains(&ConfinementEvent::ReturnedActive));
    }

    #[test]
    fn rec_above_127_resets_to_119_on_success() {
        let mut fc = FaultConfinement::new(false);
        let mut ev = Vec::new();
        for _ in 0..17 {
            fc.on_receive_error_aggravated(&mut ev);
        }
        assert_eq!(fc.rec(), 136);
        assert_eq!(fc.state(), FaultState::ErrorPassive);
        fc.on_receive_success(&mut ev);
        assert_eq!(fc.rec(), 119);
        assert_eq!(fc.state(), FaultState::ErrorActive);
    }

    #[test]
    fn bus_off_at_256_and_sticky() {
        let mut fc = FaultConfinement::new(false);
        let mut ev = Vec::new();
        for _ in 0..32 {
            fc.on_transmit_error(&mut ev);
        }
        assert_eq!(fc.state(), FaultState::BusOff);
        assert!(ev.contains(&ConfinementEvent::WentBusOff));
        // Successes do not resurrect a bus-off node.
        for _ in 0..300 {
            fc.on_transmit_success(&mut ev);
        }
        assert_eq!(fc.state(), FaultState::BusOff);
        let rec = drain(&mut fc, |fc, ev| fc.recover_from_bus_off(ev));
        assert_eq!(rec, vec![ConfinementEvent::ReturnedActive]);
        assert_eq!(fc.state(), FaultState::ErrorActive);
        assert_eq!(fc.tec(), 0);
    }

    #[test]
    fn warning_rearms_after_counters_decay() {
        let mut fc = FaultConfinement::new(false);
        let mut all = Vec::new();
        for _ in 0..12 {
            fc.on_transmit_error(&mut all); // TEC 96: first warning
        }
        for _ in 0..96 {
            fc.on_transmit_success(&mut all); // decay to 0
        }
        assert!(!fc.warning_reached(), "warning re-armed below the limit");
        for _ in 0..12 {
            fc.on_transmit_error(&mut all); // climb back: second warning
        }
        let warnings = all
            .iter()
            .filter(|e| matches!(e, ConfinementEvent::Warning))
            .count();
        assert_eq!(warnings, 2, "each warning episode fires");
    }

    #[test]
    fn warning_does_not_rearm_while_other_counter_high() {
        let mut fc = FaultConfinement::new(false);
        let mut all = Vec::new();
        for _ in 0..12 {
            fc.on_transmit_error(&mut all);
        }
        for _ in 0..13 {
            fc.on_receive_error_aggravated(&mut all); // REC 104
        }
        for _ in 0..96 {
            fc.on_transmit_success(&mut all); // TEC decays, REC stays high
        }
        assert!(fc.warning_reached(), "REC still at warning level");
        let warnings = all
            .iter()
            .filter(|e| matches!(e, ConfinementEvent::Warning))
            .count();
        assert_eq!(warnings, 1);
    }

    #[test]
    fn passive_entry_exit_cycles_are_stable_over_thousands_of_frames() {
        // A long alternation of error clusters and clean stretches: the
        // node must oscillate between passive and active without drift —
        // the same counter positions recur every cycle.
        let mut fc = FaultConfinement::new(false);
        let mut all = Vec::new();
        let mut cycle_state = Vec::new();
        for _ in 0..500 {
            for _ in 0..17 {
                fc.on_transmit_error(&mut all); // 17 × 8 = 136 ≥ 128
            }
            assert_eq!(fc.state(), FaultState::ErrorPassive);
            for _ in 0..136 {
                fc.on_transmit_success(&mut all);
            }
            assert_eq!(fc.state(), FaultState::ErrorActive);
            assert_eq!(fc.tec(), 0, "full decay every cycle");
            cycle_state.push((fc.tec(), fc.rec(), fc.warning_reached()));
        }
        assert!(
            cycle_state.windows(2).all(|w| w[0] == w[1]),
            "no drift across cycles"
        );
        let entered = all
            .iter()
            .filter(|e| matches!(e, ConfinementEvent::EnteredPassive))
            .count();
        let returned = all
            .iter()
            .filter(|e| matches!(e, ConfinementEvent::ReturnedActive))
            .count();
        let warnings = all
            .iter()
            .filter(|e| matches!(e, ConfinementEvent::Warning))
            .count();
        assert_eq!(entered, 500, "every entry observed");
        assert_eq!(returned, 500, "every exit observed");
        assert_eq!(warnings, 500, "every warning episode observed");
    }

    #[test]
    fn receiver_cycles_use_the_119_reentry_band() {
        // REC climbs past 127, then successful receptions: first success
        // snaps to 119, the rest decrement — repeated over many cycles the
        // counters stay inside the spec band and keep signalling.
        let mut fc = FaultConfinement::new(false);
        let mut all = Vec::new();
        for _ in 0..1000 {
            while fc.rec() <= 127 {
                fc.on_receive_error_aggravated(&mut all);
            }
            assert_eq!(fc.state(), FaultState::ErrorPassive);
            fc.on_receive_success(&mut all);
            assert_eq!(fc.rec(), 119, "snap into the 119–127 band");
            for _ in 0..119 {
                fc.on_receive_success(&mut all);
            }
            assert_eq!(fc.rec(), 0);
            assert_eq!(fc.state(), FaultState::ErrorActive);
            assert!(!fc.warning_reached());
        }
        let entered = all
            .iter()
            .filter(|e| matches!(e, ConfinementEvent::EnteredPassive))
            .count();
        assert_eq!(entered, 1000);
    }

    #[test]
    fn bus_off_recovery_cycles_do_not_leak_state() {
        let mut fc = FaultConfinement::new(false);
        let mut all = Vec::new();
        for _ in 0..200 {
            for _ in 0..32 {
                fc.on_transmit_error(&mut all);
            }
            assert_eq!(fc.state(), FaultState::BusOff);
            fc.recover_from_bus_off(&mut all);
            assert_eq!(fc, FaultConfinement::new(false), "recovery is a reset");
        }
        let bus_offs = all
            .iter()
            .filter(|e| matches!(e, ConfinementEvent::WentBusOff))
            .count();
        assert_eq!(bus_offs, 200, "every bus-off observed");
    }

    #[test]
    fn fault_state_display() {
        assert_eq!(FaultState::ErrorActive.to_string(), "error-active");
        assert_eq!(FaultState::ErrorPassive.to_string(), "error-passive");
        assert_eq!(FaultState::BusOff.to_string(), "bus-off");
    }
}
