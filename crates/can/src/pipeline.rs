//! The per-frame receive pipeline.
//!
//! Every node on the bus — receivers *and* the transmitter, which monitors
//! its own frame — runs one [`RxPipeline`] per frame. The pipeline consumes
//! the node's **view** of each bus bit, tracks the frame-relative position,
//! destuffs the stuffed region, decodes fields, evaluates the CRC and checks
//! the fixed-form tail. It makes no accept/reject decisions: those belong to
//! the controller and its protocol [`Variant`](crate::Variant).

use crate::{Crc15, Field, Frame, FrameId, Layout, WirePos};
use majorcan_sim::Level;

/// Outcome of feeding one bit into the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxStep {
    /// Bit consumed without protocol violation.
    Ok,
    /// Six consecutive equal levels inside the stuffed region.
    StuffError,
    /// Dominant level in a fixed-form field (CRC delimiter, ACK delimiter,
    /// or an EOF bit — the controller decides what an EOF violation means
    /// under the active protocol variant).
    FormError,
    /// The final EOF bit was consumed; the frame is complete on the wire.
    FrameComplete,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Inside SOF..CRC, destuffing.
    Stuffed,
    CrcDelim,
    AckSlot,
    AckDelim,
    Eof,
    Done,
}

/// Incremental decoder for a single frame, fed one seen bit per bit time.
#[derive(Debug, Clone)]
pub struct RxPipeline {
    eof_len: usize,
    stage: Stage,
    // --- stuffed-region state ---
    destuffed: usize,
    run_level: Option<Level>,
    run_len: u8,
    expect_stuff: bool,
    layout: Layout,
    crc: Crc15,
    // --- decoded fields ---
    id_bits: u16,
    rtr: bool,
    dlc: u8,
    data: [u8; 8],
    crc_received: u16,
    crc_ok: Option<bool>,
    frame: Option<Frame>,
    // --- tail state ---
    eof_done: usize,
    ack_seen_dominant: bool,
}

impl RxPipeline {
    /// Starts a pipeline for a frame whose SOF has just been recognised.
    /// The SOF bit itself must still be [pushed](RxPipeline::push).
    ///
    /// `eof_len` is the variant's EOF length (7 for CAN, `2m` for MajorCAN).
    pub fn new(eof_len: usize) -> RxPipeline {
        RxPipeline {
            eof_len,
            stage: Stage::Stuffed,
            destuffed: 0,
            run_level: None,
            run_len: 0,
            expect_stuff: false,
            layout: Layout::new(0),
            crc: Crc15::new(),
            id_bits: 0,
            rtr: false,
            dlc: 0,
            data: [0u8; 8],
            crc_received: 0,
            crc_ok: None,
            frame: None,
            eof_done: 0,
            ack_seen_dominant: false,
        }
    }

    /// Frame-relative position of the **next** bit to be pushed.
    pub fn pos(&self) -> WirePos {
        match self.stage {
            Stage::Stuffed => {
                if self.expect_stuff {
                    let (field, index) = self.layout.field_at(self.destuffed - 1);
                    WirePos {
                        field,
                        index,
                        stuff: true,
                    }
                } else {
                    let (field, index) = self.layout.field_at(self.destuffed);
                    WirePos::new(field, index)
                }
            }
            Stage::CrcDelim => WirePos::new(Field::CrcDelim, 0),
            Stage::AckSlot => WirePos::new(Field::AckSlot, 0),
            Stage::AckDelim => WirePos::new(Field::AckDelim, 0),
            Stage::Eof => WirePos::new(Field::Eof, self.eof_done as u16),
            Stage::Done => WirePos::new(Field::Intermission, 0),
        }
    }

    /// `true` when the next bit is the ACK slot and the CRC matched, i.e.
    /// a receiver should drive dominant.
    pub fn ack_due(&self) -> bool {
        self.stage == Stage::AckSlot && self.crc_ok == Some(true)
    }

    /// `true` when the next bit is the ACK slot, regardless of CRC.
    pub fn at_ack_slot(&self) -> bool {
        self.stage == Stage::AckSlot
    }

    /// Whether a dominant level was seen in the ACK slot (meaningful to the
    /// transmitter: recessive ⇒ acknowledgment error).
    pub fn ack_seen_dominant(&self) -> bool {
        self.ack_seen_dominant
    }

    /// CRC verdict, available once the CRC sequence has been consumed.
    pub fn crc_ok(&self) -> Option<bool> {
        self.crc_ok
    }

    /// The decoded frame, available once the CRC sequence has been consumed
    /// (content is meaningful only if [`RxPipeline::crc_ok`] is true).
    pub fn frame(&self) -> Option<&Frame> {
        self.frame.as_ref()
    }

    /// Number of EOF bits consumed so far.
    pub fn eof_done(&self) -> usize {
        self.eof_done
    }

    /// `true` once the whole frame, EOF included, has been consumed.
    pub fn is_done(&self) -> bool {
        self.stage == Stage::Done
    }

    /// Consumes the node's view of the next bus bit.
    pub fn push(&mut self, seen: Level) -> RxStep {
        match self.stage {
            Stage::Stuffed => self.push_stuffed(seen),
            Stage::CrcDelim => {
                self.stage = Stage::AckSlot;
                if seen.is_dominant() {
                    RxStep::FormError
                } else {
                    RxStep::Ok
                }
            }
            Stage::AckSlot => {
                self.ack_seen_dominant = seen.is_dominant();
                self.stage = Stage::AckDelim;
                RxStep::Ok
            }
            Stage::AckDelim => {
                self.stage = Stage::Eof;
                if seen.is_dominant() {
                    RxStep::FormError
                } else {
                    RxStep::Ok
                }
            }
            Stage::Eof => {
                self.eof_done += 1;
                if self.eof_done == self.eof_len {
                    self.stage = Stage::Done;
                }
                if seen.is_dominant() {
                    RxStep::FormError
                } else if self.stage == Stage::Done {
                    RxStep::FrameComplete
                } else {
                    RxStep::Ok
                }
            }
            Stage::Done => RxStep::Ok,
        }
    }

    fn push_stuffed(&mut self, seen: Level) -> RxStep {
        if self.expect_stuff {
            // The stuff bit must complement the preceding run.
            self.expect_stuff = false;
            if Some(seen) == self.run_level {
                return RxStep::StuffError;
            }
            self.run_level = Some(seen);
            self.run_len = 1;
            self.maybe_finish_stuffed_region();
            return RxStep::Ok;
        }

        // Run tracking for stuff detection.
        if Some(seen) == self.run_level {
            self.run_len += 1;
        } else {
            self.run_level = Some(seen);
            self.run_len = 1;
        }

        self.consume_payload_bit(seen);

        if self.run_len == 5 {
            // A run of five forces a stuff bit — even when the run ends on
            // the very last CRC bit, one stuff bit precedes the delimiter.
            self.expect_stuff = true;
        } else {
            self.maybe_finish_stuffed_region();
        }
        RxStep::Ok
    }

    fn maybe_finish_stuffed_region(&mut self) {
        if self.destuffed == self.layout.stuffed_region_len() && !self.expect_stuff {
            self.stage = Stage::CrcDelim;
            self.finish_crc();
        }
    }

    fn consume_payload_bit(&mut self, seen: Level) {
        let i = self.destuffed;
        let bit = seen.is_recessive();
        if i < self.layout.crc_start() {
            self.crc.push(bit);
        }
        match i {
            0 => {} // SOF
            1..=11 => {
                self.id_bits = (self.id_bits << 1) | bit as u16;
            }
            12 => self.rtr = bit,
            13 | 14 => {} // IDE, r0
            15..=18 => {
                self.dlc = (self.dlc << 1) | bit as u8;
                if i == 18 {
                    let data_len = if self.rtr {
                        0
                    } else {
                        (self.dlc as usize).min(8)
                    };
                    self.layout = Layout::new(data_len);
                }
            }
            _ if i < self.layout.crc_start() => {
                let data_idx = i - Layout::DATA_START;
                let byte = data_idx / 8;
                self.data[byte] = (self.data[byte] << 1) | bit as u8;
            }
            _ => {
                self.crc_received = (self.crc_received << 1) | bit as u16;
            }
        }
        self.destuffed += 1;
    }

    fn finish_crc(&mut self) {
        let ok = self.crc.value() == self.crc_received;
        self.crc_ok = Some(ok);
        // Reconstruct the frame. Identifier reserved-range violations can
        // only reach here through channel corruption; such frames fail CRC
        // in practice, but reconstruct defensively either way.
        let id = match FrameId::new(self.id_bits) {
            Ok(id) => id,
            Err(_) => {
                self.crc_ok = Some(false);
                return;
            }
        };
        let frame = if self.rtr {
            Frame::new_remote(id, self.dlc.min(8))
        } else {
            let len = (self.dlc as usize).min(8);
            Frame::new(id, &self.data[..len])
        };
        match frame {
            Ok(f) => self.frame = Some(f),
            Err(_) => self.crc_ok = Some(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_frame, StandardCan, Variant};

    fn feed_whole_frame(frame: &Frame) -> (RxPipeline, Vec<RxStep>) {
        let wire = encode_frame(frame, &StandardCan);
        let mut pipe = RxPipeline::new(StandardCan.eof_len());
        let steps = wire.iter().map(|wb| pipe.push(wb.level)).collect();
        (pipe, steps)
    }

    fn fid(raw: u16) -> FrameId {
        FrameId::new(raw).unwrap()
    }

    #[test]
    fn decodes_clean_frame() {
        let frame = Frame::new(fid(0x2A3), &[0xde, 0xad, 0xbe]).unwrap();
        let (pipe, steps) = feed_whole_frame(&frame);
        assert!(pipe.is_done());
        assert_eq!(pipe.crc_ok(), Some(true));
        assert_eq!(pipe.frame(), Some(&frame));
        assert_eq!(steps.last(), Some(&RxStep::FrameComplete));
        assert!(steps[..steps.len() - 1].iter().all(|s| *s == RxStep::Ok));
    }

    #[test]
    fn decodes_all_payload_lengths() {
        for len in 0..=8usize {
            let payload: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            let frame = Frame::new(fid(0x100 + len as u16), &payload).unwrap();
            let (pipe, _) = feed_whole_frame(&frame);
            assert_eq!(pipe.frame(), Some(&frame), "len {len}");
            assert_eq!(pipe.crc_ok(), Some(true));
        }
    }

    #[test]
    fn decodes_remote_frame() {
        let frame = Frame::new_remote(fid(0x123), 3).unwrap();
        let (pipe, _) = feed_whole_frame(&frame);
        assert_eq!(pipe.frame(), Some(&frame));
        assert_eq!(pipe.crc_ok(), Some(true));
    }

    #[test]
    fn positions_track_fields() {
        let frame = Frame::new(fid(0x2A3), &[0x55]).unwrap();
        let wire = encode_frame(&frame, &StandardCan);
        let mut pipe = RxPipeline::new(7);
        for wb in &wire {
            assert_eq!(pipe.pos(), wb.pos, "position mismatch before {:?}", wb.pos);
            pipe.push(wb.level);
        }
        assert_eq!(pipe.pos().field, Field::Intermission);
    }

    #[test]
    fn corrupted_payload_bit_fails_crc() {
        let frame = Frame::new(fid(0x2A3), &[0xAA]).unwrap();
        let wire = encode_frame(&frame, &StandardCan);
        // Flip one data bit on the wire; pick a non-stuff payload bit.
        let idx = wire
            .iter()
            .position(|wb| wb.pos.field == Field::Data && !wb.pos.stuff)
            .unwrap();
        let mut pipe = RxPipeline::new(7);
        let mut stuff_error = false;
        for (i, wb) in wire.iter().enumerate() {
            let level = if i == idx { !wb.level } else { wb.level };
            if pipe.push(level) == RxStep::StuffError {
                stuff_error = true;
                break;
            }
        }
        // The flip either breaks stuffing or the CRC.
        if !stuff_error {
            assert_eq!(pipe.crc_ok(), Some(false));
        }
    }

    #[test]
    fn ack_due_only_with_good_crc() {
        let frame = Frame::new(fid(0x77), &[]).unwrap();
        let wire = encode_frame(&frame, &StandardCan);
        let mut pipe = RxPipeline::new(7);
        let mut was_due = false;
        for wb in &wire {
            if pipe.at_ack_slot() {
                was_due = pipe.ack_due();
                // Simulate some receiver acknowledging.
                pipe.push(Level::Dominant);
                continue;
            }
            pipe.push(wb.level);
        }
        assert!(was_due);
        assert!(pipe.ack_seen_dominant());
    }

    #[test]
    fn no_ack_seen_reports_recessive() {
        let frame = Frame::new(fid(0x77), &[]).unwrap();
        let (pipe, _) = feed_whole_frame(&frame);
        assert!(!pipe.ack_seen_dominant(), "transmitter alone: no ACK");
    }

    #[test]
    fn stuff_error_on_six_equal() {
        let mut pipe = RxPipeline::new(7);
        // SOF dominant + 5 more dominants = 6 equal -> the 6th must be a
        // recessive stuff bit; pushing dominant is a stuff violation.
        for _ in 0..5 {
            assert_eq!(pipe.push(Level::Dominant), RxStep::Ok);
        }
        assert_eq!(pipe.push(Level::Dominant), RxStep::StuffError);
    }

    #[test]
    fn form_error_on_dominant_crc_delim() {
        let frame = Frame::new(fid(0x2A3), &[]).unwrap();
        let wire = encode_frame(&frame, &StandardCan);
        let mut pipe = RxPipeline::new(7);
        for wb in &wire {
            if wb.pos.field == Field::CrcDelim {
                assert_eq!(pipe.push(Level::Dominant), RxStep::FormError);
                return;
            }
            pipe.push(wb.level);
        }
        panic!("CRC delimiter not reached");
    }

    #[test]
    fn form_error_on_dominant_eof_bit_with_position() {
        let frame = Frame::new(fid(0x2A3), &[]).unwrap();
        let wire = encode_frame(&frame, &StandardCan);
        let mut pipe = RxPipeline::new(7);
        for wb in &wire {
            if wb.pos == WirePos::eof(6) {
                assert_eq!(pipe.pos(), WirePos::eof(6));
                assert_eq!(pipe.push(Level::Dominant), RxStep::FormError);
                return;
            }
            pipe.push(wb.level);
        }
        panic!("EOF bit 6 not reached");
    }

    #[test]
    fn majorcan_eof_length_respected() {
        // A 10-bit EOF (m = 5) pipeline completes after 10 EOF bits.
        let frame = Frame::new(fid(0x2A3), &[]).unwrap();
        let wire = encode_frame(&frame, &StandardCan);
        let mut pipe = RxPipeline::new(10);
        for wb in wire.iter().filter(|wb| wb.pos.field != Field::Eof) {
            assert_eq!(pipe.push(wb.level), RxStep::Ok);
        }
        for i in 0..10 {
            let step = pipe.push(Level::Recessive);
            if i == 9 {
                assert_eq!(step, RxStep::FrameComplete);
            } else {
                assert_eq!(step, RxStep::Ok, "EOF bit {i}");
            }
        }
        assert!(pipe.is_done());
    }

    #[test]
    fn dlc_above_eight_clamps_to_eight_bytes() {
        // Hand-craft destuffed bits with DLC = 0b1111 (15) and 8 data bytes;
        // CRC computed accordingly. The pipeline must clamp to 8 bytes.
        let mut bits: Vec<bool> = Vec::new();
        bits.push(false); // SOF
        for i in 0..11 {
            bits.push(fid(0x155).bit(i));
        }
        bits.extend([false, false, false]); // RTR, IDE, r0
        bits.extend([true, true, true, true]); // DLC = 15
        for byte in 0u8..8 {
            for i in (0..8).rev() {
                bits.push((byte.wrapping_mul(31) >> i) & 1 == 1);
            }
        }
        let crc = Crc15::of_bits(bits.iter().copied());
        for i in (0..15).rev() {
            bits.push((crc >> i) & 1 == 1);
        }
        let levels: Vec<Level> = bits.iter().map(|&b| Level::from_bit(b)).collect();
        let stuffed = crate::stuff(&levels);
        let mut pipe = RxPipeline::new(7);
        for (level, _) in stuffed {
            assert_ne!(pipe.push(level), RxStep::StuffError);
        }
        // Tail.
        pipe.push(Level::Recessive); // CRC delim
        pipe.push(Level::Dominant); // ACK
        pipe.push(Level::Recessive); // ACK delim
        for _ in 0..7 {
            pipe.push(Level::Recessive);
        }
        assert_eq!(pipe.crc_ok(), Some(true));
        let frame = pipe.frame().expect("frame decoded");
        assert_eq!(frame.data().len(), 8);
    }
}
