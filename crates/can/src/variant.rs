//! The protocol-variant abstraction: where MinorCAN and MajorCAN differ
//! from standard CAN.
//!
//! The paper's two proposals are deliberately *small* modifications of CAN:
//! everything about frames, stuffing, CRC, arbitration and error flags is
//! untouched; what changes is the end-of-frame geometry and the decision
//! rule applied when an error is detected during the EOF. The [`Variant`]
//! trait captures exactly those degrees of freedom, so one controller
//! state machine (see [`Controller`](crate::Controller)) runs all three
//! protocols.

use std::fmt;

/// A node's role with respect to the frame currently on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The node is transmitting the frame (and monitoring it).
    Transmitter,
    /// The node is receiving the frame.
    Receiver,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Transmitter => "tx",
            Role::Receiver => "rx",
        })
    }
}

/// What a node does upon detecting an error at a given EOF bit.
///
/// "Reject" means: discard the frame (receiver) / schedule the automatic
/// retransmission (transmitter). "Accept" means: deliver the frame
/// (receiver) / consider the transmission successful (transmitter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EofReaction {
    /// Reject and signal a 6-bit error flag starting the next bit
    /// (standard CAN behaviour for every EOF bit except the receiver's
    /// last).
    RejectAndFlag,
    /// Keep the already-accepted frame and signal a 6-bit overload flag
    /// (standard CAN's receiver last-bit rule).
    AcceptAndOverload,
    /// Send a 6-bit flag, then decide by the *Primary_error* criterion:
    /// accept if a dominant bit immediately follows the node's own flag
    /// (someone reacted to *us*, so we were first and nobody had rejected
    /// yet), reject otherwise. MinorCAN's last-bit rule.
    DeferPrimaryError,
    /// Send a 6-bit flag, then sample the [`Variant::sampling_window`] and
    /// accept iff at least [`Variant::vote_threshold`] dominant bits are
    /// seen. MajorCAN's rule for errors in the first EOF sub-field.
    FlagAndVote,
    /// Accept immediately and notify by driving dominant through EOF-relative
    /// bit [`Variant::agreement_end`]. MajorCAN's rule for errors in the
    /// second EOF sub-field.
    AcceptAndExtend,
}

/// A CAN protocol variant: standard CAN, MinorCAN, or MajorCAN(m).
///
/// Implementations are data-only descriptions; all mechanics live in the
/// controller. The trait is sealed in spirit — implementing it outside this
/// workspace is possible but unsupported.
pub trait Variant: fmt::Debug + Clone + Send + Sync + 'static {
    /// Human-readable protocol name (e.g. `"MajorCAN_5"`).
    fn name(&self) -> String;

    /// Number of recessive EOF bits following the ACK delimiter
    /// (7 in standard CAN and MinorCAN; `2m` in MajorCAN).
    fn eof_len(&self) -> usize;

    /// Total error/overload delimiter length, counting from the first
    /// recessive bit observed after a flag (8 in standard CAN; `2m+1` in
    /// MajorCAN, matching the `2m+1` recessive bits that end every frame).
    fn delimiter_len(&self) -> usize;

    /// Reaction to an error first detected at EOF bit `eof_bit`
    /// (**1-based**, as the paper counts) by a node in `role`.
    fn eof_reaction(&self, role: Role, eof_bit: usize) -> EofReaction;

    /// Number of clean EOF bits after which a node in `role` commits to the
    /// frame (receiver delivery / transmitter success). Standard CAN:
    /// receivers commit after `eof_len - 1` bits (the last-bit rule),
    /// transmitters after `eof_len`; MinorCAN and MajorCAN: both roles after
    /// `eof_len`.
    fn commit_point(&self, role: Role) -> usize;

    /// MajorCAN's sampling window in EOF-relative 1-based bit positions,
    /// inclusive on both ends: `(m+7, 3m+5)`. `None` for variants without a
    /// voting phase.
    fn sampling_window(&self) -> Option<(usize, usize)> {
        None
    }

    /// Minimum number of dominant samples within the window required to
    /// accept (majority of `2m-1`, i.e. `m`). Unused when
    /// [`Variant::sampling_window`] is `None`.
    fn vote_threshold(&self) -> usize {
        usize::MAX
    }

    /// EOF-relative 1-based bit position at which the MajorCAN agreement
    /// phase ends (`3m+5`): extended flags stop, votes are tallied, and all
    /// involved nodes proceed to the error delimiter. `None` for variants
    /// without an agreement phase.
    fn agreement_end(&self) -> Option<usize> {
        None
    }

    /// `true` if second errors detected during the EOF/agreement region must
    /// *not* be signalled with additional error flags (MajorCAN: "otherwise
    /// error flags of second errors could spoil the agreement process").
    fn suppress_second_errors(&self) -> bool {
        self.agreement_end().is_some()
    }
}

/// The unmodified CAN protocol (ISO 11898).
///
/// * 7-bit EOF, 8-bit error delimiter.
/// * Receivers commit after the last-but-one EOF bit; an error in the last
///   bit leaves the frame accepted and triggers an overload flag.
/// * The transmitter treats an error in **any** EOF bit as a transmission
///   failure and retransmits — the asymmetry that produces double receptions
///   (Fig. 1b) and, combined with failures or further errors, inconsistent
///   message omissions (Figs. 1c, 3a).
///
/// # Examples
///
/// ```
/// use majorcan_can::{EofReaction, Role, StandardCan, Variant};
///
/// let can = StandardCan;
/// assert_eq!(can.eof_len(), 7);
/// // Receiver at the last bit: accept + overload (the last-bit rule).
/// assert_eq!(can.eof_reaction(Role::Receiver, 7), EofReaction::AcceptAndOverload);
/// // Transmitter at the last bit: reject + retransmit.
/// assert_eq!(can.eof_reaction(Role::Transmitter, 7), EofReaction::RejectAndFlag);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardCan;

impl Variant for StandardCan {
    fn name(&self) -> String {
        "CAN".to_owned()
    }

    fn eof_len(&self) -> usize {
        7
    }

    fn delimiter_len(&self) -> usize {
        8
    }

    fn eof_reaction(&self, role: Role, eof_bit: usize) -> EofReaction {
        debug_assert!((1..=self.eof_len()).contains(&eof_bit));
        match role {
            Role::Transmitter => EofReaction::RejectAndFlag,
            Role::Receiver if eof_bit == self.eof_len() => EofReaction::AcceptAndOverload,
            Role::Receiver => EofReaction::RejectAndFlag,
        }
    }

    fn commit_point(&self, role: Role) -> usize {
        match role {
            Role::Transmitter => self.eof_len(),
            Role::Receiver => self.eof_len() - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_can_geometry() {
        let v = StandardCan;
        assert_eq!(v.eof_len(), 7);
        assert_eq!(v.delimiter_len(), 8);
        assert_eq!(v.name(), "CAN");
        assert_eq!(v.sampling_window(), None);
        assert_eq!(v.agreement_end(), None);
        assert!(!v.suppress_second_errors());
    }

    #[test]
    fn standard_can_commit_points_differ_by_role() {
        let v = StandardCan;
        assert_eq!(v.commit_point(Role::Receiver), 6, "last-but-one bit");
        assert_eq!(v.commit_point(Role::Transmitter), 7, "full EOF");
    }

    #[test]
    fn standard_can_reactions() {
        let v = StandardCan;
        for bit in 1..=6 {
            assert_eq!(
                v.eof_reaction(Role::Receiver, bit),
                EofReaction::RejectAndFlag
            );
        }
        assert_eq!(
            v.eof_reaction(Role::Receiver, 7),
            EofReaction::AcceptAndOverload
        );
        for bit in 1..=7 {
            assert_eq!(
                v.eof_reaction(Role::Transmitter, bit),
                EofReaction::RejectAndFlag
            );
        }
    }

    #[test]
    fn role_display() {
        assert_eq!(Role::Transmitter.to_string(), "tx");
        assert_eq!(Role::Receiver.to_string(), "rx");
    }
}
