//! Behavioural tests for the standard CAN controller: clean traffic,
//! arbitration, acknowledgment, error signalling, and the paper's Fig. 1
//! inconsistency scenarios.

use majorcan_can::{
    CanEvent, Controller, ControllerConfig, DecisionBasis, ErrorKind, Field, Frame, FrameId,
    StandardCan, WirePos,
};
use majorcan_sim::{FnChannel, Level, NodeId, Simulator, TimedEvent};

type Sim<C> = Simulator<Controller<StandardCan>, C>;

fn frame(id: u16, data: &[u8]) -> Frame {
    Frame::new(FrameId::new(id).unwrap(), data).unwrap()
}

fn build<C: majorcan_sim::ChannelModel<WirePos>>(n: usize, channel: C) -> Sim<C> {
    let mut sim = Simulator::new(channel);
    for _ in 0..n {
        sim.attach(Controller::new(StandardCan));
    }
    sim
}

fn deliveries(events: &[TimedEvent<CanEvent>], node: NodeId) -> Vec<Frame> {
    events
        .iter()
        .filter(|e| e.node == node)
        .filter_map(|e| match &e.event {
            CanEvent::Delivered { frame, .. } => Some(frame.clone()),
            _ => None,
        })
        .collect()
}

fn tx_successes(events: &[TimedEvent<CanEvent>], node: NodeId) -> usize {
    events
        .iter()
        .filter(|e| e.node == node)
        .filter(|e| matches!(e.event, CanEvent::TxSucceeded { .. }))
        .count()
}

fn count_retransmissions(events: &[TimedEvent<CanEvent>], node: NodeId) -> usize {
    events
        .iter()
        .filter(|e| e.node == node)
        .filter(|e| matches!(e.event, CanEvent::RetransmissionScheduled { .. }))
        .count()
}

#[test]
fn clean_broadcast_reaches_every_receiver_once() {
    let mut sim = build(5, majorcan_sim::NoFaults);
    let f = frame(0x123, &[1, 2, 3, 4]);
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(300);
    let events = sim.events();
    for rx in 1..5 {
        assert_eq!(deliveries(events, NodeId(rx)), vec![f.clone()], "rx {rx}");
    }
    assert_eq!(tx_successes(events, NodeId(0)), 1);
    assert_eq!(
        deliveries(events, NodeId(0)),
        vec![],
        "tx does not self-deliver"
    );
}

#[test]
fn back_to_back_frames_all_delivered_in_order() {
    let mut sim = build(3, majorcan_sim::NoFaults);
    let frames: Vec<Frame> = (0..4).map(|i| frame(0x100 + i, &[i as u8])).collect();
    for f in &frames {
        sim.node_mut(NodeId(0)).enqueue(f.clone());
    }
    sim.run(1000);
    let events = sim.events();
    assert_eq!(deliveries(events, NodeId(1)), frames);
    assert_eq!(deliveries(events, NodeId(2)), frames);
    assert_eq!(tx_successes(events, NodeId(0)), 4);
}

#[test]
fn receiver_commits_at_last_but_one_eof_bit() {
    // The Delivered event of a receiver must occur exactly one bit before
    // the transmitter's TxSucceeded (commit points 6 vs 7).
    let mut sim = build(2, majorcan_sim::NoFaults);
    sim.node_mut(NodeId(0)).enqueue(frame(0x40, &[9]));
    sim.run(300);
    let deliver_at = sim
        .events()
        .iter()
        .find(|e| matches!(e.event, CanEvent::Delivered { .. }))
        .expect("delivered")
        .at;
    let success_at = sim
        .events()
        .iter()
        .find(|e| matches!(e.event, CanEvent::TxSucceeded { .. }))
        .expect("tx success")
        .at;
    assert_eq!(success_at - deliver_at, 1, "rx commits one bit earlier");
}

#[test]
fn arbitration_lower_id_wins_and_loser_retries() {
    let mut sim = build(3, majorcan_sim::NoFaults);
    let hi = frame(0x050, b"high");
    let lo = frame(0x650, b"low");
    sim.node_mut(NodeId(0)).enqueue(lo.clone());
    sim.node_mut(NodeId(1)).enqueue(hi.clone());
    sim.run(600);
    let events = sim.events();

    // Node 0 must have lost arbitration at least once.
    assert!(events
        .iter()
        .any(|e| e.node == NodeId(0) && matches!(e.event, CanEvent::ArbitrationLost { .. })));
    // Both frames delivered to node 2, high priority first.
    assert_eq!(deliveries(events, NodeId(2)), vec![hi.clone(), lo.clone()]);
    // The arbitration loser received the winner's frame.
    assert_eq!(deliveries(events, NodeId(0)), vec![hi]);
    assert_eq!(deliveries(events, NodeId(1)), vec![lo]);
}

#[test]
fn identical_prefix_arbitration_resolved_by_later_bit() {
    let mut sim = build(3, majorcan_sim::NoFaults);
    // IDs differing only in the last bit: 0b00000001010 vs 0b00000001011.
    let a = frame(0x00A, &[0xAA]);
    let b = frame(0x00B, &[0xBB]);
    sim.node_mut(NodeId(0)).enqueue(b.clone());
    sim.node_mut(NodeId(1)).enqueue(a.clone());
    sim.run(600);
    assert_eq!(deliveries(sim.events(), NodeId(2)), vec![a, b]);
}

#[test]
fn lonely_transmitter_suffers_ack_error_and_retries() {
    let mut sim = build(1, majorcan_sim::NoFaults);
    sim.node_mut(NodeId(0)).enqueue(frame(0x111, &[1]));
    sim.run(400);
    let events = sim.events();
    assert!(events.iter().any(|e| matches!(
        e.event,
        CanEvent::ErrorDetected {
            kind: ErrorKind::Ack,
            ..
        }
    )));
    assert_eq!(tx_successes(events, NodeId(0)), 0);
    assert!(count_retransmissions(events, NodeId(0)) >= 2);
}

#[test]
fn priority_queueing_within_a_node() {
    let mut sim = build(2, majorcan_sim::NoFaults);
    let lo = frame(0x700, &[1]);
    let hi = frame(0x001, &[2]);
    sim.node_mut(NodeId(0)).enqueue(lo.clone());
    sim.node_mut(NodeId(0)).enqueue(hi.clone());
    // Both enqueued before the bus goes idle: the controller must pick the
    // higher-priority (lower id) frame first, like multi-buffer hardware.
    sim.run(700);
    assert_eq!(deliveries(sim.events(), NodeId(1)), vec![hi, lo]);
}

/// Flip one node's view of one frame-relative position, once.
fn flip_once(
    target: NodeId,
    field: Field,
    index: u16,
) -> FnChannel<impl FnMut(u64, NodeId, &WirePos, Level) -> bool> {
    let mut fired = false;
    FnChannel(move |_bit, node, tag: &WirePos, _wire| {
        if !fired && node == target && tag.field == field && tag.index == index && !tag.stuff {
            fired = true;
            true
        } else {
            false
        }
    })
}

#[test]
fn corrupted_data_bit_forces_global_retransmission() {
    // Receiver 1's view of a data bit is flipped: it signals (stuff/CRC/bit
    // error), everyone rejects, the transmitter retransmits, and in the end
    // every receiver has exactly one copy.
    let mut sim = build(3, flip_once(NodeId(1), Field::Data, 3));
    let f = frame(0x123, &[0x0F, 0xF0]);
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(600);
    let events = sim.events();
    assert!(count_retransmissions(events, NodeId(0)) >= 1);
    assert_eq!(deliveries(events, NodeId(1)), vec![f.clone()]);
    assert_eq!(deliveries(events, NodeId(2)), vec![f]);
    assert_eq!(tx_successes(events, NodeId(0)), 1);
}

#[test]
fn corrupted_crc_region_detected_and_recovered() {
    let mut sim = build(3, flip_once(NodeId(2), Field::Crc, 7));
    let f = frame(0x222, &[7; 8]);
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(800);
    let events = sim.events();
    assert_eq!(deliveries(events, NodeId(1)), vec![f.clone()]);
    assert_eq!(deliveries(events, NodeId(2)), vec![f]);
}

// --------------------------------------------------------------------------
// The paper's Fig. 1 scenarios on standard CAN.
// Node 0 = transmitter, node 1 = X set, node 2 = Y set.
// --------------------------------------------------------------------------

#[test]
fn fig1a_error_in_last_eof_bit_stays_consistent() {
    // X sees a dominant in the last EOF bit: the last-bit rule makes X
    // accept anyway; its overload flag delays the bus but nothing is lost.
    let mut sim = build(3, flip_once(NodeId(1), Field::Eof, 6));
    let f = frame(0x0AA, &[0xCD]);
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(600);
    let events = sim.events();
    assert_eq!(deliveries(events, NodeId(1)), vec![f.clone()], "X accepts");
    assert_eq!(deliveries(events, NodeId(2)), vec![f], "Y accepts");
    assert_eq!(tx_successes(events, NodeId(0)), 1);
    assert_eq!(
        count_retransmissions(events, NodeId(0)),
        0,
        "no retransmission in Fig. 1a"
    );
    // X accepted through the last-bit rule and raised an overload condition.
    assert!(events
        .iter()
        .any(|e| e.node == NodeId(1) && matches!(e.event, CanEvent::OverloadCondition)));
}

#[test]
fn fig1b_double_reception_at_y() {
    // X sees a dominant in the LAST-BUT-ONE EOF bit: X rejects and flags;
    // the transmitter and Y see that flag in their last bit. Y accepts by
    // the last-bit rule, the transmitter retransmits — so Y receives the
    // frame twice. (CAN3: at-least-once delivery.)
    let mut sim = build(3, flip_once(NodeId(1), Field::Eof, 5));
    let f = frame(0x0AA, &[0xCD]);
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(800);
    let events = sim.events();
    assert_eq!(
        deliveries(events, NodeId(2)),
        vec![f.clone(), f.clone()],
        "Y delivers twice: the double reception of Fig. 1b"
    );
    assert_eq!(
        deliveries(events, NodeId(1)),
        vec![f],
        "X only delivers the retransmission"
    );
    assert_eq!(count_retransmissions(events, NodeId(0)), 1);
    assert_eq!(tx_successes(events, NodeId(0)), 1);
}

#[test]
fn fig1c_transmitter_crash_causes_inconsistent_omission() {
    // Fig. 1b plus a transmitter crash before the retransmission: Y keeps
    // the frame, X never receives it — an inconsistent message omission.
    // First find when the transmitter schedules the retransmission.
    let mut probe = build(3, flip_once(NodeId(1), Field::Eof, 5));
    let f = frame(0x0AA, &[0xCD]);
    probe.node_mut(NodeId(0)).enqueue(f.clone());
    probe.run(800);
    let resched_at = probe
        .events()
        .iter()
        .find(|e| matches!(e.event, CanEvent::RetransmissionScheduled { .. }))
        .expect("retransmission scheduled")
        .at;

    // Re-run with the transmitter crashing right after scheduling it.
    let mut sim = Simulator::new(flip_once(NodeId(1), Field::Eof, 5));
    sim.attach(Controller::with_config(
        StandardCan,
        ControllerConfig {
            fail_at: Some(resched_at + 1),
            ..ControllerConfig::default()
        },
    ));
    sim.attach(Controller::new(StandardCan));
    sim.attach(Controller::new(StandardCan));
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(800);
    let events = sim.events();

    assert!(events
        .iter()
        .any(|e| e.node == NodeId(0) && matches!(e.event, CanEvent::Crashed)));
    assert_eq!(deliveries(events, NodeId(2)), vec![f], "Y has the frame");
    assert_eq!(
        deliveries(events, NodeId(1)),
        vec![],
        "X never receives it: inconsistent message omission"
    );
}

#[test]
fn fig3a_new_scenario_imo_with_correct_transmitter() {
    // The paper's new scenario: X sees a dominant at the last-but-one EOF
    // bit (rejects, flags); one *additional* disturbance hides X's error
    // flag from the transmitter's view of its last EOF bit. The transmitter
    // completes cleanly and never retransmits; Y accepted via the last-bit
    // rule. X is left without the frame although the transmitter stayed
    // correct — Agreement (AB2/CAN2) is violated with only TWO disturbed
    // bit-views.
    let mut fired_x = false;
    let mut fired_tx = false;
    let channel = FnChannel(move |_bit, node, tag: &WirePos, _wire| {
        if !fired_x && node == NodeId(1) && tag.field == Field::Eof && tag.index == 5 {
            fired_x = true;
            return true;
        }
        // The transmitter's view of its last EOF bit (wire carries X's
        // flag, the disturbance flips it back to recessive).
        if !fired_tx && node == NodeId(0) && tag.field == Field::Eof && tag.index == 6 {
            fired_tx = true;
            return true;
        }
        false
    });
    let mut sim = build(3, channel);
    let f = frame(0x0AA, &[0xCD]);
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(800);
    let events = sim.events();

    assert_eq!(
        tx_successes(events, NodeId(0)),
        1,
        "tx believes it succeeded"
    );
    assert_eq!(count_retransmissions(events, NodeId(0)), 0);
    assert_eq!(deliveries(events, NodeId(2)), vec![f], "Y accepted");
    assert_eq!(
        deliveries(events, NodeId(1)),
        vec![],
        "X never receives the frame although the transmitter stayed correct"
    );
    assert!(
        !sim.node(NodeId(0)).is_crashed(),
        "transmitter remained correct the whole time"
    );
}

#[test]
fn rejected_receiver_emits_rejection_event() {
    let mut sim = build(3, flip_once(NodeId(1), Field::Eof, 5));
    sim.node_mut(NodeId(0)).enqueue(frame(0x0AA, &[0xCD]));
    sim.run(800);
    assert!(sim.events().iter().any(|e| e.node == NodeId(1)
        && matches!(
            e.event,
            CanEvent::Rejected {
                basis: DecisionBasis::ErrorBeforeCommit
            }
        )));
}

#[test]
fn crash_via_api_silences_node() {
    let mut sim = build(2, majorcan_sim::NoFaults);
    sim.node_mut(NodeId(0)).crash();
    sim.node_mut(NodeId(0)).enqueue(frame(0x100, &[1]));
    sim.run(300);
    assert!(sim.node(NodeId(0)).is_crashed());
    assert_eq!(deliveries(sim.events(), NodeId(1)), vec![]);
}

#[test]
fn error_counters_move_with_traffic() {
    // One corrupted frame bumps the receiver's REC and the transmitter's
    // TEC; subsequent clean traffic decays them.
    let mut sim = build(2, flip_once(NodeId(1), Field::Data, 0));
    let f = frame(0x123, &[0xFF]);
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(600);
    // After the error: REC = 1 + aggravations, then -1 per clean frame.
    let rec = sim.node(NodeId(1)).fault_confinement().rec();
    let tec = sim.node(NodeId(0)).fault_confinement().tec();
    assert!(rec <= 9, "rec={rec}");
    assert!(tec <= 8, "tec={tec}");
    assert_eq!(tx_successes(sim.events(), NodeId(0)), 1);
    // Now push several clean frames; counters must decay to 0.
    for i in 0..10 {
        sim.node_mut(NodeId(0))
            .enqueue(frame(0x200 + i, &[i as u8]));
    }
    sim.run(2500);
    assert_eq!(sim.node(NodeId(0)).fault_confinement().tec(), 0);
    assert_eq!(sim.node(NodeId(1)).fault_confinement().rec(), 0);
}

#[test]
fn overload_condition_on_dominant_intermission_bit() {
    // Flip a receiver's view of the first intermission bit: it must raise
    // an overload condition, not reject anything.
    let mut fired = false;
    let channel = FnChannel(move |_b, node, tag: &WirePos, _w| {
        if !fired && node == NodeId(1) && tag.field == Field::Intermission && tag.index == 0 {
            fired = true;
            true
        } else {
            false
        }
    });
    let mut sim = build(3, channel);
    let f = frame(0x0AA, &[1]);
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(600);
    let events = sim.events();
    assert!(events
        .iter()
        .any(|e| e.node == NodeId(1) && matches!(e.event, CanEvent::OverloadCondition)));
    assert_eq!(deliveries(events, NodeId(1)), vec![f.clone()]);
    assert_eq!(deliveries(events, NodeId(2)), vec![f]);
    assert_eq!(count_retransmissions(events, NodeId(0)), 0);
}

#[test]
fn traffic_resumes_after_error_frames() {
    // An error on frame 1 must not prevent frames 2..n from flowing.
    let mut sim = build(3, flip_once(NodeId(1), Field::Dlc, 1));
    let frames: Vec<Frame> = (0..3).map(|i| frame(0x300 + i, &[i as u8; 4])).collect();
    for f in &frames {
        sim.node_mut(NodeId(0)).enqueue(f.clone());
    }
    sim.run(1500);
    assert_eq!(deliveries(sim.events(), NodeId(2)), frames.clone());
    assert_eq!(deliveries(sim.events(), NodeId(1)), frames);
}

#[test]
fn worst_case_stuffing_frame_round_trips() {
    // Identifier 0 with an all-zero payload maximizes stuff insertions
    // (long dominant runs); the frame must still cross the bus intact.
    let mut sim = build(3, majorcan_sim::NoFaults);
    let f = frame(0x000, &[0x00; 8]);
    let wire = majorcan_can::encode_frame(&f, &StandardCan);
    let stuff_bits = wire.iter().filter(|wb| wb.pos.stuff).count();
    assert!(
        stuff_bits >= 10,
        "worst-case frame really stuffs: {stuff_bits}"
    );
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(400);
    assert_eq!(deliveries(sim.events(), NodeId(1)), vec![f.clone()]);
    assert_eq!(deliveries(sim.events(), NodeId(2)), vec![f]);
}

#[test]
fn alternating_payload_has_no_stuff_bits_and_round_trips() {
    let mut sim = build(2, majorcan_sim::NoFaults);
    let f = frame(0x2AA, &[0x55, 0xAA, 0x55, 0xAA]);
    sim.node_mut(NodeId(0)).enqueue(f.clone());
    sim.run(400);
    assert_eq!(deliveries(sim.events(), NodeId(1)), vec![f]);
}
