//! Property-based tests of the wire codec: stuffing, CRC, frame
//! encode/decode and the receive pipeline, over arbitrary frames.

use majorcan_can::{
    destuff, encode_frame, frame_payload_bits, stuff, Crc15, Frame, FrameId, RxPipeline, RxStep,
    StandardCan, Variant,
};
use majorcan_sim::Level;
use proptest::prelude::*;

fn arb_frame_id() -> impl Strategy<Value = FrameId> {
    (0u16..0x7F0).prop_map(|raw| FrameId::new(raw).expect("below reserved range"))
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        arb_frame_id(),
        proptest::collection::vec(any::<u8>(), 0..=8),
    )
        .prop_map(|(id, data)| Frame::new(id, &data).expect("payload within range"))
}

fn arb_levels() -> impl Strategy<Value = Vec<Level>> {
    proptest::collection::vec(any::<bool>().prop_map(Level::from_bit), 0..200)
}

proptest! {
    #[test]
    fn stuffing_round_trips(levels in arb_levels()) {
        let stuffed: Vec<Level> = stuff(&levels).into_iter().map(|(l, _)| l).collect();
        prop_assert_eq!(destuff(&stuffed).expect("own output destuffs"), levels);
    }

    #[test]
    fn stuffed_streams_never_have_six_equal(levels in arb_levels()) {
        let stuffed: Vec<Level> = stuff(&levels).into_iter().map(|(l, _)| l).collect();
        let mut run = 0u32;
        let mut prev = None;
        for &l in &stuffed {
            run = if Some(l) == prev { run + 1 } else { 1 };
            prev = Some(l);
            prop_assert!(run <= 5);
        }
    }

    #[test]
    fn stuffing_overhead_is_bounded(levels in arb_levels()) {
        let stuffed = stuff(&levels);
        // At most one stuff bit per four payload bits (after the first).
        let max = levels.len() + if levels.is_empty() { 0 } else { (levels.len() - 1) / 4 + 1 };
        prop_assert!(stuffed.len() <= max, "{} > {}", stuffed.len(), max);
    }

    #[test]
    fn crc_detects_any_single_flip(bits in proptest::collection::vec(any::<bool>(), 1..120),
                                   idx in any::<proptest::sample::Index>()) {
        let clean = Crc15::of_bits(bits.iter().copied());
        let flip = idx.index(bits.len());
        let mut corrupted = bits.clone();
        corrupted[flip] = !corrupted[flip];
        prop_assert_ne!(Crc15::of_bits(corrupted.iter().copied()), clean);
    }

    #[test]
    fn pipeline_decodes_every_encoded_frame(frame in arb_frame()) {
        let wire = encode_frame(&frame, &StandardCan);
        let mut pipe = RxPipeline::new(StandardCan.eof_len());
        for wb in &wire {
            prop_assert_eq!(pipe.pos(), wb.pos, "position tracking diverged");
            let step = pipe.push(wb.level);
            prop_assert!(step == RxStep::Ok || step == RxStep::FrameComplete);
        }
        prop_assert!(pipe.is_done());
        prop_assert_eq!(pipe.crc_ok(), Some(true));
        prop_assert_eq!(pipe.frame(), Some(&frame));
    }

    #[test]
    fn payload_bits_embed_the_crc(frame in arb_frame()) {
        let bits = frame_payload_bits(&frame);
        let body = &bits[..bits.len() - 15];
        let crc = Crc15::of_bits(body.iter().copied());
        let mut embedded = 0u16;
        for &b in &bits[bits.len() - 15..] {
            embedded = (embedded << 1) | b as u16;
        }
        prop_assert_eq!(crc, embedded);
    }

    #[test]
    fn a_corrupted_wire_never_yields_a_silently_wrong_frame(
        frame in arb_frame(),
        flip in any::<proptest::sample::Index>(),
    ) {
        // Flip one wire bit of the stuffed region: the pipeline must either
        // flag a stuff error or fail the CRC — it must never hand over a
        // frame differing from the original while claiming CRC validity.
        let wire = encode_frame(&frame, &StandardCan);
        let stuffed_len = wire.iter().filter(|wb| wb.pos.field.in_arbitration()
            || matches!(wb.pos.field,
                majorcan_can::Field::Sof
                | majorcan_can::Field::Ide
                | majorcan_can::Field::R0
                | majorcan_can::Field::Dlc
                | majorcan_can::Field::Data
                | majorcan_can::Field::Crc)).count();
        let target = flip.index(stuffed_len);
        let mut pipe = RxPipeline::new(StandardCan.eof_len());
        let mut violated = false;
        for (i, wb) in wire.iter().enumerate() {
            let level = if i == target { !wb.level } else { wb.level };
            match pipe.push(level) {
                RxStep::StuffError | RxStep::FormError => {
                    violated = true;
                    break;
                }
                _ => {}
            }
        }
        if !violated && pipe.crc_ok() == Some(true) {
            prop_assert_eq!(pipe.frame(), Some(&frame),
                "CRC accepted a frame that differs from the original");
        }
    }

    #[test]
    fn frame_display_is_parseable_shape(frame in arb_frame()) {
        let text = frame.to_string();
        prop_assert!(text.contains('#'));
        prop_assert!(text.starts_with("0x"));
    }
}
