//! End-to-end content integrity: whatever the channel does, a delivered
//! frame is byte-identical to a frame some node actually queued — the
//! CRC-15, stuffing and form checks must never let a corrupted payload
//! through as valid.

use majorcan_can::{CanEvent, Controller, ControllerConfig, Frame, FrameId, StandardCan};
use majorcan_faults::IndependentBitErrors;
use majorcan_sim::{NodeId, Simulator};

#[test]
fn deliveries_are_always_byte_identical_to_the_queued_frame() {
    // 300 deterministic trials under a fierce random channel: every
    // Delivered event must carry exactly the queued frame. (An undetected
    // corruption would need a 15-bit CRC collision *and* consistent
    // stuffing — the seeds below are fixed, so this is reproducible.)
    for trial in 0..300u64 {
        let sent = Frame::new(
            FrameId::new(0x100 + (trial % 0x400) as u16).unwrap(),
            &[trial as u8, (trial >> 8) as u8, 0x5A],
        )
        .unwrap();
        let channel = IndependentBitErrors::new(8e-3, 0x17E6 ^ trial);
        let mut sim = Simulator::new(channel);
        for _ in 0..3 {
            sim.attach(Controller::with_config(
                StandardCan,
                ControllerConfig {
                    shutoff_at_warning: false,
                    fail_at: None,
                },
            ));
        }
        sim.node_mut(NodeId(0)).enqueue(sent.clone());
        sim.run(1_500);
        for e in sim.events() {
            if let CanEvent::Delivered { frame, .. } = &e.event {
                assert_eq!(
                    frame, &sent,
                    "trial {trial}: corrupted frame delivered at {}",
                    e.node
                );
            }
        }
    }
}
