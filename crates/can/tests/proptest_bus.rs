//! Property-based tests of whole-bus behaviour: arbitrary frames and node
//! counts on a fault-free bus always yield exactly-once delivery, and
//! arbitration always serializes by priority.

use majorcan_can::{CanEvent, Controller, Frame, FrameId, StandardCan};
use majorcan_sim::{NoFaults, NodeId, Simulator};
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..=8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clean_broadcast_exactly_once(
        raw_id in 0u16..0x7F0,
        payload in arb_payload(),
        n_rx in 1usize..6,
    ) {
        let frame = Frame::new(FrameId::new(raw_id).unwrap(), &payload).unwrap();
        let mut sim = Simulator::new(NoFaults);
        for _ in 0..=n_rx {
            sim.attach(Controller::new(StandardCan));
        }
        sim.node_mut(NodeId(0)).enqueue(frame.clone());
        sim.run(300);
        for rx in 1..=n_rx {
            let count = sim.events().iter()
                .filter(|e| e.node == NodeId(rx))
                .filter(|e| matches!(&e.event, CanEvent::Delivered { frame: f, .. } if *f == frame))
                .count();
            prop_assert_eq!(count, 1, "rx {} of {}", rx, n_rx);
        }
        let successes = sim.events().iter()
            .filter(|e| matches!(e.event, CanEvent::TxSucceeded { .. }))
            .count();
        prop_assert_eq!(successes, 1);
    }

    #[test]
    fn arbitration_always_serializes_by_priority(
        ids in proptest::collection::btree_set(0u16..0x7F0, 2..=4),
    ) {
        // One transmitter per distinct id, all starting simultaneously: the
        // delivery order at a pure receiver must be ascending by id.
        let ids: Vec<u16> = ids.into_iter().collect();
        let mut sim = Simulator::new(NoFaults);
        for _ in 0..ids.len() + 1 {
            sim.attach(Controller::new(StandardCan));
        }
        for (k, &id) in ids.iter().enumerate() {
            let frame = Frame::new(FrameId::new(id).unwrap(), &[k as u8]).unwrap();
            sim.node_mut(NodeId(k)).enqueue(frame);
        }
        let observer = NodeId(ids.len());
        sim.run(400 * ids.len() as u64);
        let seen: Vec<u16> = sim.events().iter()
            .filter(|e| e.node == observer)
            .filter_map(|e| match &e.event {
                CanEvent::Delivered { frame, .. } => Some(frame.id().raw()),
                _ => None,
            })
            .collect();
        let mut expected = ids.clone();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected, "bus must serialize by priority");
    }

    #[test]
    fn back_to_back_sequences_preserve_order(
        payloads in proptest::collection::vec(arb_payload(), 1..6),
    ) {
        let frames: Vec<Frame> = payloads.iter().enumerate()
            .map(|(k, p)| Frame::new(FrameId::new(0x100 + k as u16).unwrap(), p).unwrap())
            .collect();
        let mut sim = Simulator::new(NoFaults);
        sim.attach(Controller::new(StandardCan));
        sim.attach(Controller::new(StandardCan));
        for f in &frames {
            sim.node_mut(NodeId(0)).enqueue(f.clone());
        }
        sim.run(400 * frames.len() as u64);
        let seen: Vec<Frame> = sim.events().iter()
            .filter(|e| e.node == NodeId(1))
            .filter_map(|e| match &e.event {
                CanEvent::Delivered { frame, .. } => Some(frame.clone()),
                _ => None,
            })
            .collect();
        prop_assert_eq!(seen, frames);
    }
}
