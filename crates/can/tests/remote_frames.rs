//! Remote (RTR) frames over the simulated bus: encoding, delivery, and
//! the classic request/response pattern.

use majorcan_can::{CanEvent, Controller, Frame, FrameId, StandardCan};
use majorcan_sim::{NoFaults, NodeId, Simulator};

fn deliveries(sim: &Simulator<Controller<StandardCan>, NoFaults>, node: usize) -> Vec<Frame> {
    sim.events()
        .iter()
        .filter(|e| e.node == NodeId(node))
        .filter_map(|e| match &e.event {
            CanEvent::Delivered { frame, .. } => Some(frame.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn remote_frame_crosses_the_bus_intact() {
    let mut sim = Simulator::new(NoFaults);
    sim.attach(Controller::new(StandardCan));
    sim.attach(Controller::new(StandardCan));
    let request = Frame::new_remote(FrameId::new(0x155).unwrap(), 4).unwrap();
    sim.node_mut(NodeId(0)).enqueue(request.clone());
    sim.run(300);
    assert_eq!(deliveries(&sim, 1), vec![request]);
}

#[test]
fn remote_request_then_data_response() {
    // The RTR pattern: node 0 requests id 0x155; node 1 answers with the
    // data frame of the same identifier. A data frame outranks a remote
    // frame of the same id in arbitration (its RTR bit is dominant), but
    // here they flow sequentially.
    let mut sim = Simulator::new(NoFaults);
    sim.attach(Controller::new(StandardCan));
    sim.attach(Controller::new(StandardCan));
    let id = FrameId::new(0x155).unwrap();
    sim.node_mut(NodeId(0))
        .enqueue(Frame::new_remote(id, 2).unwrap());
    sim.run_until(2_000, |s| {
        s.events()
            .iter()
            .any(|e| e.node == NodeId(1) && matches!(e.event, CanEvent::Delivered { .. }))
    });
    // Node 1 saw the request; it responds with data.
    let response = Frame::new(id, &[0xBE, 0xEF]).unwrap();
    sim.node_mut(NodeId(1)).enqueue(response.clone());
    sim.run(300);
    let got = deliveries(&sim, 0);
    assert_eq!(got, vec![response], "requester received the data response");
}

#[test]
fn data_frame_wins_arbitration_against_remote_frame_of_same_id() {
    // Same identifier, one data frame and one remote frame starting
    // simultaneously: the data frame's dominant RTR bit wins (ISO 11898).
    let mut sim = Simulator::new(NoFaults);
    sim.attach(Controller::new(StandardCan));
    sim.attach(Controller::new(StandardCan));
    sim.attach(Controller::new(StandardCan));
    let id = FrameId::new(0x155).unwrap();
    let data = Frame::new(id, &[1]).unwrap();
    let remote = Frame::new_remote(id, 1).unwrap();
    sim.node_mut(NodeId(0)).enqueue(remote.clone());
    sim.node_mut(NodeId(1)).enqueue(data.clone());
    sim.run(600);
    let observer = deliveries(&sim, 2);
    assert_eq!(
        observer,
        vec![data, remote],
        "data frame first, deferred remote frame second"
    );
    assert!(sim
        .events()
        .iter()
        .any(|e| e.node == NodeId(0) && matches!(e.event, CanEvent::ArbitrationLost { .. })));
}
