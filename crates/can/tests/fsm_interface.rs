//! White-box tests of the controller through its raw [`BitNode`]
//! interface: feeding bits by hand and checking the frame-position tags,
//! integration behaviour, and delivery timing — no simulator involved.

use majorcan_can::{
    encode_frame, CanEvent, Controller, Field, Frame, FrameId, StandardCan, Variant,
};
use majorcan_sim::{BitNode, Level};

fn frame() -> Frame {
    Frame::new(FrameId::new(0x355).unwrap(), &[0xA5, 0x5A]).unwrap()
}

/// Steps a lone controller one bit: drive, tag, observe(`seen`).
fn step(ctrl: &mut Controller<StandardCan>, now: u64, seen: Level) -> (Level, Vec<CanEvent>) {
    let driven = ctrl.drive(now);
    let mut events = Vec::new();
    ctrl.observe(now, seen, &mut events);
    (driven, events)
}

#[test]
fn integration_requires_eleven_recessive_bits() {
    let mut ctrl = Controller::new(StandardCan);
    // A dominant bit at position 5 restarts the count.
    for now in 0..5u64 {
        step(&mut ctrl, now, Level::Recessive);
        assert_eq!(ctrl.tag().field, Field::Integrating);
    }
    step(&mut ctrl, 5, Level::Dominant);
    for now in 6..16u64 {
        step(&mut ctrl, now, Level::Recessive);
        assert_eq!(ctrl.tag().field, Field::Integrating, "bit {now}");
    }
    // The 11th consecutive recessive bit completes integration.
    step(&mut ctrl, 16, Level::Recessive);
    assert!(ctrl.is_idle());
    assert_eq!(ctrl.tag().field, Field::Idle);
}

#[test]
fn receiver_tags_walk_the_frame_fields_in_order() {
    let mut ctrl = Controller::new(StandardCan);
    let mut now = 0u64;
    for _ in 0..11 {
        step(&mut ctrl, now, Level::Recessive);
        now += 1;
    }
    // Feed the encoded frame bit by bit; before each sample the tag must
    // equal the encoder's position for that bit.
    let wire = encode_frame(&frame(), &StandardCan);
    let mut delivered = false;
    for (i, wb) in wire.iter().enumerate() {
        let driven = ctrl.drive(now);
        assert_eq!(
            driven,
            if ctrl.tag().field == Field::AckSlot {
                Level::Dominant // the receiver acknowledges
            } else {
                Level::Recessive
            },
            "receiver drives only the ACK"
        );
        if i == 0 {
            // An idle node cannot know the incoming bit is a SOF until it
            // samples the dominant level; its tag still reads Idle here.
            assert_eq!(ctrl.tag().field, Field::Idle);
        } else {
            assert_eq!(ctrl.tag(), wb.pos, "position before sampling {:?}", wb.pos);
        }
        let mut events = Vec::new();
        // The wire carries the transmitted level; the ACK slot reads
        // dominant because this receiver itself acknowledges.
        let seen = if wb.pos.field == Field::AckSlot {
            Level::Dominant
        } else {
            wb.level
        };
        ctrl.observe(now, seen, &mut events);
        delivered |= events
            .iter()
            .any(|e| matches!(e, CanEvent::Delivered { frame: f, .. } if *f == frame()));
        now += 1;
    }
    assert!(delivered, "hand-fed frame delivered");
    assert_eq!(ctrl.tag().field, Field::Intermission);
    // Three recessive bits of interframe space, then idle.
    for _ in 0..3 {
        step(&mut ctrl, now, Level::Recessive);
        now += 1;
    }
    assert!(ctrl.is_idle());
}

#[test]
fn transmitter_emits_its_encoded_bits_verbatim() {
    let mut ctrl = Controller::new(StandardCan);
    ctrl.enqueue(frame());
    let mut now = 0u64;
    for _ in 0..11 {
        step(&mut ctrl, now, Level::Recessive);
        now += 1;
    }
    let wire = encode_frame(&frame(), &StandardCan);
    for wb in &wire {
        let driven = ctrl.drive(now);
        assert_eq!(driven, wb.level, "tx bit at {:?}", wb.pos);
        let mut events = Vec::new();
        // Loop back its own level; fake the ACK from a phantom receiver.
        let seen = if wb.pos.field == Field::AckSlot {
            Level::Dominant
        } else {
            driven
        };
        ctrl.observe(now, seen, &mut events);
        now += 1;
    }
    assert_eq!(ctrl.pending(), 0, "frame committed");
    assert!(!ctrl.is_transmitting());
}

#[test]
fn crash_is_idempotent_and_silences_drive() {
    let mut ctrl = Controller::new(StandardCan);
    ctrl.enqueue(frame());
    ctrl.crash();
    ctrl.crash();
    assert!(ctrl.is_crashed());
    for now in 0..30u64 {
        let (driven, events) = step(&mut ctrl, now, Level::Dominant);
        assert_eq!(driven, Level::Recessive);
        // The single Crashed announcement comes on the first observe.
        if now > 0 {
            assert!(events.is_empty(), "bit {now}: {events:?}");
        }
    }
    assert_eq!(ctrl.tag().field, Field::Crashed);
}

#[test]
fn queue_orders_by_priority_not_insertion() {
    let mut ctrl = Controller::new(StandardCan);
    ctrl.enqueue(Frame::new(FrameId::new(0x500).unwrap(), &[1]).unwrap());
    ctrl.enqueue(Frame::new(FrameId::new(0x100).unwrap(), &[2]).unwrap());
    ctrl.enqueue(Frame::new(FrameId::new(0x300).unwrap(), &[3]).unwrap());
    assert_eq!(ctrl.pending(), 3);
    // Integrate, then observe which frame's SOF/ID goes out first.
    let mut now = 0u64;
    for _ in 0..11 {
        step(&mut ctrl, now, Level::Recessive);
        now += 1;
    }
    let expected = encode_frame(
        &Frame::new(FrameId::new(0x100).unwrap(), &[2]).unwrap(),
        &StandardCan,
    );
    for wb in expected.iter().take(13) {
        let driven = ctrl.drive(now);
        assert_eq!(
            driven, wb.level,
            "highest-priority frame first at {:?}",
            wb.pos
        );
        let mut events = Vec::new();
        ctrl.observe(now, driven, &mut events);
        now += 1;
    }
}

#[test]
fn config_and_accessors() {
    let ctrl = Controller::new(StandardCan);
    assert!(ctrl.config().shutoff_at_warning);
    assert_eq!(ctrl.config().fail_at, None);
    assert_eq!(ctrl.variant().eof_len(), 7);
    assert!(!ctrl.is_transmitting());
    assert!(!ctrl.is_idle(), "starts integrating, not idle");
    assert_eq!(ctrl.fault_confinement().tec(), 0);
}
