//! Fault-confinement behaviour at the bus level: the error-passive
//! impairment from the paper's introduction, the switch-off-at-warning
//! policy that prevents it, and bus-off.
//!
#![allow(clippy::type_complexity)] // test fixtures return the concrete sim type

//! "A CAN node in the error-passive state signals the transmission errors
//! in a way that cannot force the other nodes to see the error. If this
//! node is the only one suffering the error an inconsistency appears in
//! the network." — the reason every MajorCAN deployment pairs the protocol
//! with the switch-off-at-warning policy.

use majorcan_can::{
    CanEvent, Controller, ControllerConfig, FaultState, Field, Frame, FrameId, StandardCan, WirePos,
};
use majorcan_sim::{FnChannel, Level, NodeId, Simulator};

fn frame(id: u16, data: &[u8]) -> Frame {
    Frame::new(FrameId::new(id).unwrap(), data).unwrap()
}

/// A channel that flips node 1's view of one data bit of every frame until
/// `budget` flips are spent, then optionally one final flip.
fn pump_channel(
    budget: u32,
    finale: bool,
) -> FnChannel<impl FnMut(u64, NodeId, &WirePos, Level) -> bool> {
    let mut remaining = budget;
    let mut finale_armed = finale;
    let mut last_frame_marker = u64::MAX;
    FnChannel(move |bit, node, tag: &WirePos, _wire| {
        if node != NodeId(1) || tag.field != Field::Data || tag.index != 2 || tag.stuff {
            return false;
        }
        // One flip per frame visit (Data bit 2 is visited once per frame).
        if bit == last_frame_marker {
            return false;
        }
        last_frame_marker = bit;
        if remaining > 0 {
            remaining -= 1;
            true
        } else {
            std::mem::take(&mut finale_armed)
        }
    })
}

fn no_shutoff() -> ControllerConfig {
    ControllerConfig {
        shutoff_at_warning: false,
        fail_at: None,
    }
}

/// Drives node 1's REC above the passive limit with repeated targeted
/// corruption, then returns the sim for the follow-up experiment.
fn pump_until_passive(
    finale: bool,
    shutoff: bool,
) -> Simulator<Controller<StandardCan>, FnChannel<impl FnMut(u64, NodeId, &WirePos, Level) -> bool>>
{
    let mut sim = Simulator::new(pump_channel(18, finale));
    for _ in 0..3 {
        sim.attach(Controller::with_config(
            StandardCan,
            if shutoff {
                ControllerConfig::default()
            } else {
                no_shutoff()
            },
        ));
    }
    // Frame 1 is corrupted in node 1's view on 18 consecutive
    // (re)transmissions, driving its REC up (+1 per detection, +8 when its
    // flag is answered); the optional finale flip then hits frame 2 while
    // node 1 is still passive. A few clean frames follow.
    for k in 0..20u16 {
        sim.node_mut(NodeId(0))
            .enqueue(frame(0x100 + k, &[0xFF, 0xFF, 0xFF]));
    }
    sim.run(12_000);
    sim
}

#[test]
fn repeated_errors_drive_a_receiver_into_error_passive() {
    let sim = pump_until_passive(false, false);
    assert!(sim
        .events()
        .iter()
        .any(|e| e.node == NodeId(1) && matches!(e.event, CanEvent::ErrorWarning)));
    assert!(sim
        .events()
        .iter()
        .any(|e| e.node == NodeId(1) && matches!(e.event, CanEvent::EnteredErrorPassive)));
    // After the error burst ends, clean receptions decay the REC and the
    // node returns to error-active — both transitions observable.
    assert!(sim
        .events()
        .iter()
        .any(|e| e.node == NodeId(1) && matches!(e.event, CanEvent::ReturnedErrorActive)));
    assert_eq!(
        sim.node(NodeId(1)).fault_confinement().state(),
        FaultState::ErrorActive
    );
    assert!(!sim.node(NodeId(1)).is_crashed(), "shutoff disabled");
}

#[test]
fn passive_receivers_error_is_invisible_and_causes_omission() {
    // The paper's introduction scenario: after node 1 goes passive, one
    // more error seen only by node 1 is signalled with a recessive flag
    // nobody notices. The transmitter never retransmits; node 1 misses a
    // frame that node 2 keeps — an inconsistent message omission.
    let sim = pump_until_passive(true, false);
    // Count per-node deliveries: node 2 (never disturbed) has all 20;
    // node 1 lost at least the finale frame for good.
    let count = |n: usize| {
        sim.events()
            .iter()
            .filter(|e| e.node == NodeId(n) && matches!(e.event, CanEvent::Delivered { .. }))
            .count()
    };
    assert_eq!(count(2), 20, "the healthy receiver has everything");
    assert!(
        count(1) < 20,
        "the passive receiver silently lost at least one frame: {}",
        count(1)
    );
    // Its passive flag really went out — and nobody retransmitted after it.
    assert!(sim.events().iter().any(|e| e.node == NodeId(1)
        && matches!(
            e.event,
            CanEvent::FlagStarted {
                kind: majorcan_can::FlagKind::PassiveError
            }
        )));
}

#[test]
fn shutoff_at_warning_prevents_the_passive_state() {
    // Same error history under the paper's recommended policy: the node
    // disconnects at the warning level and never becomes error-passive —
    // "every node is either helping to achieve data consistency or
    // disconnected".
    let sim = pump_until_passive(true, true);
    assert!(sim.node(NodeId(1)).is_crashed());
    assert!(!sim
        .events()
        .iter()
        .any(|e| e.node == NodeId(1) && matches!(e.event, CanEvent::EnteredErrorPassive)));
    // The crashed node is not correct, so Agreement among correct nodes is
    // intact: node 2 still has every frame.
    let count2 = sim
        .events()
        .iter()
        .filter(|e| e.node == NodeId(2) && matches!(e.event, CanEvent::Delivered { .. }))
        .count();
    assert_eq!(count2, 20);
}

#[test]
fn lonely_transmitter_eventually_goes_bus_off() {
    // Without receivers every attempt ends in an ACK error (+8 TEC); at
    // 256 the node disconnects.
    let mut sim = Simulator::new(majorcan_sim::NoFaults);
    sim.attach(Controller::with_config(StandardCan, no_shutoff()));
    sim.node_mut(NodeId(0)).enqueue(frame(0x111, &[1]));
    sim.run(6_000);
    let bus_off_at = sim
        .events()
        .iter()
        .find(|e| matches!(e.event, CanEvent::WentBusOff))
        .expect("bus-off reached")
        .at;
    // A bus-off node stays silent for the whole recovery interval
    // (128 × 11 recessive bits) even with frames still pending…
    let silent_window = 128 * 11;
    let premature = sim
        .events()
        .iter()
        .filter(|e| {
            matches!(e.event, CanEvent::TxStarted { .. })
                && e.at > bus_off_at
                && e.at < bus_off_at + silent_window
        })
        .count();
    assert_eq!(
        premature, 0,
        "bus-off nodes do not transmit during recovery"
    );
    // …and then recovers per the specification and retries.
    sim.run(4_000);
    let resumed = sim.events().iter().any(|e| {
        matches!(e.event, CanEvent::TxStarted { .. }) && e.at > bus_off_at + silent_window
    });
    assert!(resumed, "recovered node resumes transmission");
}

#[test]
fn transmitter_error_counting_decays_with_successes() {
    // TEC rises by 8 per signalled error episode and falls by 1 per
    // success; a burst of corrupted frames followed by clean traffic must
    // return the transmitter to a low TEC without tripping the warning.
    let mut sim = Simulator::new(pump_channel(4, false));
    for _ in 0..3 {
        sim.attach(Controller::with_config(StandardCan, no_shutoff()));
    }
    for k in 0..40u16 {
        sim.node_mut(NodeId(0))
            .enqueue(frame(0x100 + k, &[0xEE, 0xEE, 0xEE]));
    }
    sim.run(16_000);
    let tec = sim.node(NodeId(0)).fault_confinement().tec();
    assert!(tec <= 8, "tec decayed to {tec}");
    assert!(!sim
        .events()
        .iter()
        .any(|e| e.node == NodeId(0) && matches!(e.event, CanEvent::ErrorWarning)));
}
