//! Exhaustive state-machine check of the fault-confinement counters.
//!
//! The attacker model (crates/faults) turns the error counters into an
//! attack surface: a dominant-flooding adversary walks a victim
//! error-active → error-passive → bus-off, and every limit crossing
//! changes the protocol's failure semantics. This harness re-implements
//! the CAN specification's counter rules as an independent reference
//! model and drives both model and implementation over
//!
//! * **every reachable configuration** inside the operational envelope
//!   (all `(TEC, REC, state, warned)` states reachable from reset with
//!   counters up to 320, i.e. past every limit: warning 96, passive 128,
//!   bus-off 256, the 119 re-entry band, the sticky bus-off latch and
//!   the 128 × 11-recessive recovery reset), via breadth-first
//!   exploration of all six inputs from each state, and
//! * a long saturation walk beyond the envelope cap.
//!
//! Any divergence — counter value, derived state, warning latch or
//! emitted event — fails with the offending input path.

use majorcan_can::{
    ConfinementEvent, FaultConfinement, FaultState, BUS_OFF_LIMIT, PASSIVE_LIMIT, WARNING_LIMIT,
};
use std::collections::{HashSet, VecDeque};

/// The six counter-relevant bus happenings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Input {
    TxError,
    RxError,
    RxErrorAggravated,
    TxSuccess,
    RxSuccess,
    Recover,
}

const INPUTS: [Input; 6] = [
    Input::TxError,
    Input::RxError,
    Input::RxErrorAggravated,
    Input::TxSuccess,
    Input::RxSuccess,
    Input::Recover,
];

/// Independent reference model of the specification's counter rules.
/// Deliberately re-derived from the spec text, not from `counters.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Model {
    tec: u16,
    rec: u16,
    state: FaultState,
    warned: bool,
}

impl Model {
    fn reset() -> Model {
        Model {
            tec: 0,
            rec: 0,
            state: FaultState::ErrorActive,
            warned: false,
        }
    }

    fn step(&mut self, input: Input) -> Vec<ConfinementEvent> {
        let mut events = Vec::new();
        match input {
            Input::TxError => self.tec = self.tec.saturating_add(8),
            Input::RxError => self.rec = self.rec.saturating_add(1),
            Input::RxErrorAggravated => self.rec = self.rec.saturating_add(8),
            Input::TxSuccess => self.tec = self.tec.saturating_sub(1),
            Input::RxSuccess => {
                // Spec: a REC above 127 is set into the 119–127 band on a
                // successful reception instead of being decremented.
                self.rec = if self.rec > 127 {
                    119
                } else {
                    self.rec.saturating_sub(1)
                };
            }
            Input::Recover => {
                // The 128 × 11-recessive recovery sequence: full reset.
                self.tec = 0;
                self.rec = 0;
                self.warned = false;
                if self.state != FaultState::ErrorActive {
                    self.state = FaultState::ErrorActive;
                    events.push(ConfinementEvent::ReturnedActive);
                }
                return events;
            }
        }
        // Warning latch: fires on the upward crossing of 96 on either
        // counter, re-arms only when both have decayed below it.
        let at_warning = self.tec >= WARNING_LIMIT || self.rec >= WARNING_LIMIT;
        if !self.warned && at_warning {
            self.warned = true;
            events.push(ConfinementEvent::Warning);
        } else if self.warned && !at_warning {
            self.warned = false;
        }
        // State derivation; bus-off is sticky until `Recover`.
        let next = if self.tec >= BUS_OFF_LIMIT {
            FaultState::BusOff
        } else if self.tec >= PASSIVE_LIMIT || self.rec >= PASSIVE_LIMIT {
            FaultState::ErrorPassive
        } else {
            FaultState::ErrorActive
        };
        if next != self.state && self.state != FaultState::BusOff {
            match next {
                FaultState::ErrorActive => events.push(ConfinementEvent::ReturnedActive),
                FaultState::ErrorPassive => events.push(ConfinementEvent::EnteredPassive),
                FaultState::BusOff => events.push(ConfinementEvent::WentBusOff),
            }
            self.state = next;
        }
        events
    }
}

fn apply(fc: &mut FaultConfinement, input: Input) -> Vec<ConfinementEvent> {
    let mut events = Vec::new();
    match input {
        Input::TxError => fc.on_transmit_error(&mut events),
        Input::RxError => fc.on_receive_error(&mut events),
        Input::RxErrorAggravated => fc.on_receive_error_aggravated(&mut events),
        Input::TxSuccess => fc.on_transmit_success(&mut events),
        Input::RxSuccess => fc.on_receive_success(&mut events),
        Input::Recover => fc.recover_from_bus_off(&mut events),
    }
    events
}

fn snapshot(fc: &FaultConfinement) -> Model {
    Model {
        tec: fc.tec(),
        rec: fc.rec(),
        state: fc.state(),
        warned: fc.warning_reached(),
    }
}

/// Breadth-first exploration of the whole reachable envelope: every
/// distinct `(TEC, REC, state, warned)` with both counters ≤ CAP is
/// visited once and all six inputs are verified from it. The frontier
/// carries the implementation state alongside the model, so each
/// verified transition extends a path of already-verified transitions
/// back to reset. Transitions leaving the cap are still verified, just
/// not expanded further.
#[test]
fn every_reachable_configuration_agrees_with_the_reference_model() {
    const CAP: u16 = 320;
    let mut seen: HashSet<Model> = HashSet::new();
    let mut frontier: VecDeque<(Model, FaultConfinement)> = VecDeque::new();
    let start = Model::reset();
    seen.insert(start);
    frontier.push_back((start, FaultConfinement::new(false)));
    let mut transitions = 0u64;

    while let Some((state, fc)) = frontier.pop_front() {
        for input in INPUTS {
            let mut fc = fc.clone();
            let mut model = state;
            let model_events = model.step(input);
            let impl_events = apply(&mut fc, input);
            assert_eq!(
                impl_events, model_events,
                "event divergence from {state:?} on {input:?}"
            );
            assert_eq!(
                snapshot(&fc),
                model,
                "state divergence from {state:?} on {input:?}"
            );
            transitions += 1;
            if model.tec <= CAP && model.rec <= CAP && seen.insert(model) {
                frontier.push_back((model, fc));
            }
        }
    }
    // The envelope is substantial: both counters sweep past every limit
    // in all three states with both latch polarities.
    assert!(
        seen.len() > 50_000,
        "explored only {} states — envelope too small",
        seen.len()
    );
    assert!(transitions >= seen.len() as u64 * 6 - 6);
}

/// The canonical attack trajectory, step by step: dominant flooding
/// bumps TEC +8 per hammered (re)transmission — warning at 96, passive
/// at 128, bus-off at exactly 256, recovery resets everything.
#[test]
fn dominant_flooding_trajectory_crosses_every_limit_in_order() {
    let mut fc = FaultConfinement::new(false);
    let mut model = Model::reset();
    let mut all = Vec::new();
    for rep in 1..=40u16 {
        let impl_events = apply(&mut fc, Input::TxError);
        let model_events = model.step(Input::TxError);
        assert_eq!(impl_events, model_events, "rep {rep}");
        all.extend(impl_events);
        match rep {
            11 => assert_eq!(fc.state(), FaultState::ErrorActive),
            12 => assert!(fc.warning_reached(), "warning at 12 × 8 = 96"),
            16 => assert_eq!(
                fc.state(),
                FaultState::ErrorPassive,
                "passive at 16 × 8 = 128"
            ),
            31 => assert_eq!(fc.state(), FaultState::ErrorPassive, "248 still passive"),
            32 => assert_eq!(fc.state(), FaultState::BusOff, "bus-off at 32 × 8 = 256"),
            _ => {}
        }
    }
    assert_eq!(
        all,
        vec![
            ConfinementEvent::Warning,
            ConfinementEvent::EnteredPassive,
            ConfinementEvent::WentBusOff,
        ],
        "exactly one crossing per limit, in order"
    );
    // The 128 × 11-recessive recovery is a full reset in both worlds.
    let impl_events = apply(&mut fc, Input::Recover);
    assert_eq!(impl_events, model.step(Input::Recover));
    assert_eq!(impl_events, vec![ConfinementEvent::ReturnedActive]);
    assert_eq!(snapshot(&fc), Model::reset());
}

/// A long pseudo-random walk that leaves the BFS envelope: counters
/// driven deep into saturation and back, many bus-off/recovery cycles.
#[test]
fn saturation_walk_agrees_with_the_reference_model() {
    let mut fc = FaultConfinement::new(false);
    let mut model = Model::reset();
    // Deterministic xorshift so the walk is reproducible without rand.
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut recoveries = 0u32;
    for step in 0..200_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // Errors twice as likely as successes; recovery rare, so the walk
        // spends real time saturated in bus-off.
        let input = match x % 13 {
            0..=2 => Input::TxError,
            3..=4 => Input::RxError,
            5..=6 => Input::RxErrorAggravated,
            7..=9 => Input::TxSuccess,
            10..=11 => Input::RxSuccess,
            _ => {
                recoveries += 1;
                Input::Recover
            }
        };
        let impl_events = apply(&mut fc, input);
        let model_events = model.step(input);
        assert_eq!(impl_events, model_events, "step {step}: {input:?}");
        assert_eq!(snapshot(&fc), model, "step {step}: {input:?}");
    }
    assert!(recoveries > 10_000, "the walk exercised recovery");
}
