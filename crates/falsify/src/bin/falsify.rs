//! Adversarial fault-schedule falsifier.
//!
//! Synthesizes thousands of seeded disturbance schedules per protocol
//! target, hunts Atomic Broadcast violations, shrinks every finding to
//! its causal core and (with `--corpus`) archives the minima as
//! replayable JSON repros.
//!
//! ```text
//! falsify [schedules_per_target] [--seed <u64>] [--jobs <n>] [--out <f.jsonl>]
//!         [--quiet] [--corpus <dir>] [--targets <csv>] [--max-errors <n>]
//!         [--nodes <n>] [--probe <entry.json>]
//!         [--shard <k/n> --shard-dir <dir>] [--merge] [--scavenge]
//! ```
//!
//! Results are bit-identical for any `--jobs`. The process exits with
//! status 3 if any MajorCAN target yields a finding — the falsifier
//! doubles as a regression gate for the protocol under test. `--probe`
//! replays one archived corpus entry — a benign disturbance repro or a
//! `corpus/attack/` cheapest-attack certificate — through its oracle
//! before the verdict: a probe that falsifies (or breaks) a MajorCAN
//! target trips the same exit-3 gate as a search finding.
//!
//! With `--shard k/n --shard-dir d` the same campaign runs as one shard
//! of a crash-tolerant fleet (see `docs/FLEET.md`): per-shard transcripts
//! carry content anchors, and the merged artifact is verified
//! bit-identical to a single-process run. The fleet verdict gates on the
//! merged outcome counters; shrinking and `--corpus` archiving remain
//! single-process concerns.

use majorcan_bench::cli::{exit_code, fleet, open_sink, with_shard_flags, CliArgs, ExtraFlag};
use majorcan_campaign::{json, Manifest, ProtocolSpec, Totals};
use majorcan_falsify::{
    build_jobs, execute_search_job, run_search, write_corpus, AttackCorpusEntry, CorpusEntry,
    Engine, Oracle, SearchConfig, SearchReport,
};
use std::path::Path;

const DEFAULT_SEED: u64 = 0xFA15;
const DEFAULT_SCHEDULES: u64 = 400;

const EXTRAS: &[ExtraFlag] = &[
    ExtraFlag::value("--corpus", "<dir: archive shrunk repros>"),
    ExtraFlag::value("--targets", "<csv: default CAN,MinorCAN,MajorCAN_5,TOTCAN>"),
    ExtraFlag::value("--max-errors", "<n: disturbances per schedule, default 4>"),
    ExtraFlag::value("--nodes", "<n: bus size, default 3>"),
    ExtraFlag::value("--probe", "<entry.json: replay one archived repro>"),
    ExtraFlag::switch("--scalar", "(evaluate schedule-by-schedule, not laned)"),
    ExtraFlag::switch(
        "--batch",
        "(evaluate via the prefix-fork batcher, not lanes)",
    ),
];

/// Replays one archived corpus entry — benign disturbance repro or
/// cheapest-attack certificate — through its oracle and reports whether
/// it counts as a finding against a MajorCAN target.
fn run_probe(path: &str) -> bool {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: reading probe {path}: {e}");
        std::process::exit(exit_code::IO);
    });
    let value = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: parsing probe {path}: {e}");
        std::process::exit(exit_code::IO);
    });
    if let Some(entry) = CorpusEntry::from_json(&value) {
        let outcome = entry.replay();
        println!(
            "probe {}: {} on {} (expected {}) {}",
            path,
            outcome.token(),
            entry.protocol,
            entry.expected,
            entry.schedule
        );
        return outcome.is_finding() && matches!(entry.protocol, ProtocolSpec::MajorCan { .. });
    }
    if let Some(entry) = AttackCorpusEntry::from_json(&value) {
        let outcome = entry.replay();
        println!(
            "probe {}: attack {} on {} (expected {}, cost {}) {}",
            path,
            outcome.token(),
            entry.protocol,
            entry.expected,
            entry.provenance.cost,
            entry.schedule
        );
        return outcome.is_break() && matches!(entry.protocol, ProtocolSpec::MajorCan { .. });
    }
    eprintln!("error: {path} is not a corpus entry");
    std::process::exit(exit_code::IO);
}

fn parse_targets(text: &str) -> Vec<ProtocolSpec> {
    text.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            ProtocolSpec::from_name(t).unwrap_or_else(|| {
                eprintln!("error: unknown protocol target {t:?}");
                std::process::exit(exit_code::USAGE);
            })
        })
        .collect()
}

fn print_summary(cfg: &SearchConfig, report: &SearchReport) {
    for &target in &cfg.targets {
        let prefix = format!("outcome/{target}/");
        let mut parts: Vec<String> = report
            .totals
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(k, v)| format!("{} {v}", &k[prefix.len()..]))
            .collect();
        if parts.is_empty() {
            parts.push("none explored".to_string());
        }
        println!(
            "{target:>11}: {} schedules, {} distinct findings ({})",
            report.explored_for(target),
            report.findings_for(target),
            parts.join(", ")
        );
    }
    println!(
        "shrunk {} corpus entries ({} shrink evaluations, {} findings dropped by class caps)",
        report.entries.len(),
        report.shrink_evaluations,
        report.dropped
    );
    for entry in &report.entries {
        println!(
            "  {} [{}] {}",
            entry.file_name(),
            entry.expected,
            entry.schedule
        );
    }
}

/// The fleet-mode verdict, read off merged outcome counters: any
/// finding-class outcome (`double`, `omission`, `validity`, `panic`)
/// against a MajorCAN target falsifies the protocol under test.
fn merged_majorcan_findings(totals: &Totals) -> Option<String> {
    let findings: u64 = totals
        .counters
        .iter()
        .filter(|(key, _)| {
            let Some(rest) = key.strip_prefix("outcome/") else {
                return false;
            };
            let Some((target, token)) = rest.split_once('/') else {
                return false;
            };
            target.starts_with("MajorCAN")
                && matches!(token, "double" | "omission" | "validity" | "panic")
        })
        .map(|(_, v)| v)
        .sum();
    (findings > 0).then(|| {
        format!("FALSIFIED: {findings} MajorCAN finding(s) in the merged outcome counters")
    })
}

fn main() {
    let mut cli = CliArgs::parse_with_extras(DEFAULT_SEED, &with_shard_flags(EXTRAS));
    let schedules_per_target = cli.positional(DEFAULT_SCHEDULES);
    let mut cfg = SearchConfig::new(cli.seed, schedules_per_target);
    cfg.targets = parse_targets(
        cli.extra("--targets")
            .unwrap_or("CAN,MinorCAN,MajorCAN_5,TOTCAN"),
    );
    cfg.max_errors = cli.extra_u64("--max-errors", 4) as usize;
    cfg.n_nodes = cli.extra_u64("--nodes", 3) as usize;
    cfg.engine = match (cli.extra_flag("--scalar"), cli.extra_flag("--batch")) {
        (true, true) => {
            eprintln!("error: --scalar and --batch are mutually exclusive");
            std::process::exit(exit_code::USAGE);
        }
        (true, false) => Engine::Scalar,
        (false, true) => Engine::Batch,
        (false, false) => Engine::Lanes,
    };

    let engine = cfg.engine;
    let factory = move || Oracle::with_engine(engine);
    if let Some(code) = fleet(
        &cli,
        "falsify",
        &build_jobs(&cfg),
        factory,
        execute_search_job,
        merged_majorcan_findings,
    ) {
        std::process::exit(code);
    }

    let opts = cli.campaign_options();
    let report = match &cli.out {
        Some(path) => {
            let manifest = Manifest::for_jobs("falsify", cli.seed, &build_jobs(&cfg));
            let mut sink = open_sink(path, &manifest);
            run_search(&cfg, &opts, Some(&mut sink))
        }
        None => run_search(&cfg, &opts, None),
    }
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(exit_code::IO);
    });

    print_summary(&cfg, &report);

    let probe_finding = cli.extra("--probe").is_some_and(run_probe);

    if let Some(dir) = cli.extra("--corpus") {
        let written = write_corpus(Path::new(dir), &report.entries).unwrap_or_else(|e| {
            eprintln!("error: writing corpus to {dir}: {e}");
            std::process::exit(exit_code::IO);
        });
        println!("archived {} repros under {dir}/", written.len());
    }

    let protected: Vec<&ProtocolSpec> = cfg
        .targets
        .iter()
        .filter(|t| matches!(t, ProtocolSpec::MajorCan { .. }))
        .collect();
    for target in protected {
        let n = report.findings_for(*target);
        if n > 0 {
            eprintln!("FALSIFIED: {n} finding(s) against {target} — see the corpus entries above");
            std::process::exit(exit_code::FINDING);
        }
    }
    if probe_finding {
        eprintln!("FALSIFIED: the probed repro falsifies its MajorCAN target — see above");
        std::process::exit(exit_code::FINDING);
    }
}
