//! Regenerates `BENCH_attack.json`: attack-search throughput
//! (attack schedules evaluated per second) per link-layer protocol
//! target, plus the deterministic break counts the search produced.
//!
//! ```text
//! cargo run --release -p majorcan-falsify --bin bench_attack -- \
//!     [--quick] [--seed <u64>] [--out BENCH_attack.json]
//! ```
//!
//! When the output file already exists its schema is compared against the
//! freshly rendered document; any drift (keys added, removed or renamed)
//! is an error, so `scripts/check.sh` catches accidental format changes
//! before they reach the committed artifact. The throughput numbers are
//! machine-dependent; `attacks`, `breaks`, `certificates` and
//! `min_break_cost` are deterministic for a given seed.

use majorcan_campaign::{json, CampaignOptions, ProtocolSpec};
use majorcan_falsify::{run_attack_search, AttackSearchConfig};
use majorcan_testbed::hotpath::schema_fingerprint;
use std::time::Instant;

const N_NODES: usize = 3;
const FULL_ATTACKS: u64 = 600;
const QUICK_ATTACKS: u64 = 60;

struct Row {
    protocol: ProtocolSpec,
    attacks: u64,
    attacks_per_sec: f64,
    breaks: usize,
    certificates: usize,
    min_break_cost: Option<u64>,
}

fn measure(protocol: ProtocolSpec, attacks: u64, seed: u64) -> Row {
    let mut cfg = AttackSearchConfig::new(seed, attacks);
    cfg.targets = vec![protocol];
    cfg.n_nodes = N_NODES;
    let start = Instant::now();
    let report =
        run_attack_search(&cfg, &CampaignOptions::quiet(0), None).expect("no sink, no I/O");
    let secs = start.elapsed().as_secs_f64();
    Row {
        protocol,
        attacks: report.explored_for(protocol),
        attacks_per_sec: report.explored_for(protocol) as f64 / secs,
        breaks: report.findings_for(protocol),
        certificates: report.entries.len(),
        min_break_cost: report.entries.iter().map(|e| e.provenance.cost).min(),
    }
}

fn report_to_json(mode: &str, seed: u64, rows: &[Row]) -> json::Value {
    let mut doc = json::Value::obj();
    doc.set("schema", json::Value::from("majorcan-bench-attack-v1"))
        .set("mode", json::Value::from(mode))
        .set("seed", json::Value::U64(seed))
        .set("n_nodes", json::Value::from(N_NODES));
    let rows_json: Vec<json::Value> = rows
        .iter()
        .map(|r| {
            let mut row = json::Value::obj();
            row.set("protocol", json::Value::from(r.protocol.to_string()))
                .set("attacks", json::Value::U64(r.attacks))
                .set("attacks_per_sec", json::Value::from(r.attacks_per_sec))
                .set("breaks", json::Value::from(r.breaks))
                .set("certificates", json::Value::from(r.certificates))
                .set(
                    "min_break_cost",
                    match r.min_break_cost {
                        Some(cost) => json::Value::U64(cost),
                        None => json::Value::Null,
                    },
                );
            row
        })
        .collect();
    doc.set("rows", json::Value::Arr(rows_json));
    doc
}

fn main() {
    let mut quick = false;
    let mut seed: u64 = 0xA77AC4;
    let mut out = String::from("BENCH_attack.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                seed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| v.parse())
                    .expect("--seed wants an integer");
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let (mode, attacks) = if quick {
        ("quick", QUICK_ATTACKS)
    } else {
        ("full", FULL_ATTACKS)
    };
    let protocols = [
        ProtocolSpec::StandardCan,
        ProtocolSpec::MinorCan,
        ProtocolSpec::MajorCan { m: 5 },
    ];
    let mut rows = Vec::new();
    for protocol in protocols {
        let row = measure(protocol, attacks, seed);
        println!(
            "{:<12} {:>7} attacks {:>8.0} attacks/s   breaks {:>3}   certificates {}   min cost {}",
            row.protocol.to_string(),
            row.attacks,
            row.attacks_per_sec,
            row.breaks,
            row.certificates,
            row.min_break_cost
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        rows.push(row);
    }
    let doc = report_to_json(mode, seed, &rows);

    if let Ok(existing) = std::fs::read_to_string(&out) {
        let old = json::parse(&existing)
            .unwrap_or_else(|e| panic!("{out} exists but does not parse as JSON: {e}"));
        if schema_fingerprint(&old) != schema_fingerprint(&doc) {
            eprintln!("error: schema drift against existing {out}");
            eprintln!("  committed: {:?}", schema_fingerprint(&old));
            eprintln!("  generated: {:?}", schema_fingerprint(&doc));
            std::process::exit(1);
        }
    }

    std::fs::write(&out, format!("{doc}\n")).expect("write artifact");
    println!("wrote {out} ({mode} mode, {attacks} attacks per protocol)");
}
