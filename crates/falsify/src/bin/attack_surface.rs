//! The E18 attack-surface campaign: cost-to-break per protocol variant.
//!
//! Synthesizes budgeted dominant-injection attack schedules against CAN,
//! MinorCAN and MajorCAN_3/4/5, shrinks every break to its cheapest form
//! and prints a cost-to-break table: the minimum attack cost found per
//! `(variant, outcome class)`. Archived entries (with `--corpus`) are
//! cheapest-attack certificates carrying cost and strategy in provenance.
//!
//! ```text
//! attack_surface [attacks_per_target] [--seed <u64>] [--jobs <n>]
//!                [--out <f.jsonl>] [--quiet] [--corpus <dir>]
//!                [--targets <csv>] [--max-cost <n>] [--nodes <n>]
//!                [--shard <k/n> --shard-dir <dir>] [--merge] [--scavenge]
//! ```
//!
//! Results are bit-identical for any `--jobs`. Exit codes: `0` — MajorCAN's
//! cheapest Agreement break (if any) costs strictly more than standard
//! CAN's; `2` — bad arguments; `3` — some MajorCAN target broke at a cost
//! less than or equal to CAN's cheapest Agreement break (the voting window
//! buys no attack-cost margin — a reproduction regression).
//!
//! With `--shard k/n --shard-dir d` the exploration runs as one shard of
//! a crash-tolerant fleet (see `docs/FLEET.md`). The fleet merge is an
//! integrity gate only: break *costs* live in the in-process shrink/side
//! channel, not the counters, so the cost-margin verdict remains a
//! single-process concern — a verified merge exits 0, any transcript
//! tampering or incomplete shard exits 3.

use majorcan_bench::cli::{exit_code, fleet, open_sink, with_shard_flags, CliArgs, ExtraFlag};
use majorcan_campaign::{Manifest, ProtocolSpec};
use majorcan_falsify::{
    build_attack_jobs, execute_attack_search_job, run_attack_search, write_attack_corpus,
    AttackOracle, AttackSearchConfig, AttackSearchReport,
};
use std::path::Path;

const DEFAULT_SEED: u64 = 0xA77AC4;
const DEFAULT_ATTACKS: u64 = 400;

/// The verdict classes of the paper's Agreement/Validity argument.
const AGREEMENT_CLASSES: &[&str] = &["double", "omission", "validity"];
/// Every break class the table reports.
const BREAK_CLASSES: &[&str] = &["busoff", "double", "omission", "validity", "panic"];

const EXTRAS: &[ExtraFlag] = &[
    ExtraFlag::value("--corpus", "<dir: archive cheapest-attack certificates>"),
    ExtraFlag::value(
        "--targets",
        "<csv: default CAN,MinorCAN,MajorCAN_3,MajorCAN_4,MajorCAN_5>",
    ),
    ExtraFlag::value(
        "--max-cost",
        "<n: nominal cost cap per schedule, default 40>",
    ),
    ExtraFlag::value("--nodes", "<n: bus size, default 3>"),
];

fn parse_targets(text: &str) -> Vec<ProtocolSpec> {
    text.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| match ProtocolSpec::from_name(t) {
            Some(spec) if !spec.is_hlp() => spec,
            Some(_) => {
                eprintln!("error: {t} is a higher-level protocol; attacks target the link layer");
                std::process::exit(exit_code::USAGE);
            }
            None => {
                eprintln!("error: unknown protocol target {t:?}");
                std::process::exit(exit_code::USAGE);
            }
        })
        .collect()
}

/// The minimum archived cost for `target` in `class`, if that class broke.
fn min_cost(report: &AttackSearchReport, target: ProtocolSpec, class: &str) -> Option<u64> {
    report
        .cheapest_for(target, class)
        .map(|e| e.provenance.cost)
}

/// The minimum archived Agreement-class break cost for `target`.
fn min_agreement_cost(report: &AttackSearchReport, target: ProtocolSpec) -> Option<u64> {
    AGREEMENT_CLASSES
        .iter()
        .filter_map(|class| min_cost(report, target, class))
        .min()
}

fn print_table(cfg: &AttackSearchConfig, report: &AttackSearchReport) {
    println!(
        "{:<11} {:>8} {:>7} {:>7} {:>7} {:>9} {:>9} {:>6}  cheapest agreement break",
        "protocol", "attacks", "breaks", "busoff", "double", "omission", "validity", "panic"
    );
    for &target in &cfg.targets {
        let cell = |class: &str| {
            min_cost(report, target, class)
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".to_string())
        };
        let cheapest = AGREEMENT_CLASSES
            .iter()
            .filter_map(|class| report.cheapest_for(target, class))
            .min_by_key(|e| e.provenance.cost)
            .map(|e| {
                format!(
                    "cost {} ({}: {})",
                    e.provenance.cost, e.provenance.strategy, e.schedule
                )
            })
            .unwrap_or_else(|| "none found".to_string());
        println!(
            "{:<11} {:>8} {:>7} {:>7} {:>7} {:>9} {:>9} {:>6}  {}",
            target.to_string(),
            report.explored_for(target),
            report.findings_for(target),
            cell("busoff"),
            cell("double"),
            cell("omission"),
            cell("validity"),
            cell("panic"),
            cheapest,
        );
    }
    println!(
        "archived {} certificates ({} shrink evaluations, {} findings dropped by class caps)",
        report.entries.len(),
        report.shrink_evaluations,
        report.dropped
    );
    for entry in &report.entries {
        println!(
            "  {} [{} cost {} strategy {}] {}",
            entry.file_name(),
            entry.expected,
            entry.provenance.cost,
            entry.provenance.strategy,
            entry.schedule
        );
    }
    let _ = BREAK_CLASSES; // table columns above enumerate them explicitly
}

fn main() {
    let mut cli = CliArgs::parse_with_extras(DEFAULT_SEED, &with_shard_flags(EXTRAS));
    let attacks_per_target = cli.positional(DEFAULT_ATTACKS);
    let mut cfg = AttackSearchConfig::new(cli.seed, attacks_per_target);
    if let Some(text) = cli.extra("--targets") {
        cfg.targets = parse_targets(text);
    }
    cfg.max_cost = cli.extra_u64("--max-cost", 40);
    cfg.n_nodes = cli.extra_u64("--nodes", 3) as usize;

    // Fleet mode: integrity gate only — break costs live in the
    // in-process shrink channel, so the cost-margin verdict stays
    // single-process (see the module docs).
    if let Some(code) = fleet(
        &cli,
        "attack-surface",
        &build_attack_jobs(&cfg),
        AttackOracle::new,
        execute_attack_search_job,
        |_| None,
    ) {
        std::process::exit(code);
    }

    let opts = cli.campaign_options();
    let report = match &cli.out {
        Some(path) => {
            let manifest = Manifest::for_jobs("attack-surface", cli.seed, &build_attack_jobs(&cfg));
            let mut sink = open_sink(path, &manifest);
            run_attack_search(&cfg, &opts, Some(&mut sink))
        }
        None => run_attack_search(&cfg, &opts, None),
    }
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(exit_code::IO);
    });

    print_table(&cfg, &report);

    if let Some(dir) = cli.extra("--corpus") {
        let written = write_attack_corpus(Path::new(dir), &report.entries).unwrap_or_else(|e| {
            eprintln!("error: writing attack corpus to {dir}: {e}");
            std::process::exit(exit_code::IO);
        });
        println!("archived {} certificates under {dir}/", written.len());
    }

    // The reproduction claim under attack: MajorCAN's voting window must
    // raise the Agreement break cost strictly above standard CAN's. Only
    // meaningful when CAN itself was searched for the baseline.
    if !cfg.targets.contains(&ProtocolSpec::StandardCan) {
        return;
    }
    let can_floor = min_agreement_cost(&report, ProtocolSpec::StandardCan);
    let mut regression = false;
    for &target in &cfg.targets {
        let ProtocolSpec::MajorCan { .. } = target else {
            continue;
        };
        let Some(major_cost) = min_agreement_cost(&report, target) else {
            continue; // no Agreement break found — the strongest outcome
        };
        match can_floor {
            Some(floor) if major_cost > floor => {
                println!(
                    "{target}: cheapest agreement break costs {major_cost} > CAN's {floor} — margin holds"
                );
            }
            Some(floor) => {
                eprintln!(
                    "ATTACK-SURFACE REGRESSION: {target} breaks at cost {major_cost} <= CAN's {floor}"
                );
                regression = true;
            }
            None => {
                eprintln!(
                    "ATTACK-SURFACE REGRESSION: {target} breaks (cost {major_cost}) while CAN did not break at all"
                );
                regression = true;
            }
        }
    }
    if regression {
        std::process::exit(exit_code::FINDING);
    }
}
