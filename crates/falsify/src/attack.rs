//! Attack schedules, the attack oracle, and the cheapest-attack corpus.
//!
//! The benign falsifier asks "can any small error schedule break a
//! protocol?"; this module asks the security question instead: **what is
//! the cheapest thing an attacker with physical bus access can do?** An
//! [`AttackSchedule`] is an ordered list of budgeted
//! [`AttackAction`]s — dominant injections only, each with an explicit
//! nominal cost — and the [`AttackOracle`] classifies a run under attack
//! into the [`AttackOutcome`] vocabulary, which extends the benign one
//! with [`AttackOutcome::VictimBusOff`]: a node disconnected by a bus-off
//! attack is an availability loss the Atomic Broadcast checker alone
//! cannot see (a silenced node delivers nothing, violating nothing).
//!
//! Attack runs disable the paper's warning-shutoff policy: fail-silence at
//! the warning limit *prevents* the fault-confinement walk a bus-off
//! attack exploits (the victim crashes at TEC 96, twelve injections in,
//! long before TEC 256), so the policy itself is part of the measured
//! attack surface — see EXPERIMENTS.md §E18.
//!
//! Shrunk cheapest attacks are archived under `corpus/attack/` as
//! [`AttackCorpusEntry`] files carrying cost and strategy in provenance —
//! cheapest-attack certificates, replayed by CI like the benign corpus.

use majorcan_abcast::Verdict;
use majorcan_campaign::json::{parse, Value};
use majorcan_campaign::ProtocolSpec;
use majorcan_can::{CanEvent, Field};
use majorcan_faults::{AttackAction, Attacker, Strategy};
use majorcan_testbed::{Outcome, Testbed};
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Bit budget for one attack evaluation: long enough for a sustained
/// bus-off hammer (~32 retransmissions) to reach TEC 256 and for the bus
/// to settle afterwards.
pub const ATTACK_BUDGET: u64 = 12_000;

/// An ordered, budgeted attack schedule — the unit the attack search
/// generates, evaluates, shrinks and archives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackSchedule {
    actions: Vec<AttackAction>,
}

impl AttackSchedule {
    /// Wraps an action list.
    pub fn new(actions: Vec<AttackAction>) -> AttackSchedule {
        AttackSchedule { actions }
    }

    /// A schedule running one canned [`Strategy`].
    pub fn from_strategy(strategy: &Strategy) -> AttackSchedule {
        AttackSchedule::new(strategy.actions())
    }

    /// The attack actions, in order.
    pub fn actions(&self) -> &[AttackAction] {
        &self.actions
    }

    /// An owned copy of the action list (what
    /// [`Testbed::run_attack`](majorcan_testbed::Testbed::run_attack)
    /// consumes).
    pub fn to_vec(&self) -> Vec<AttackAction> {
        self.actions.clone()
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` for the empty schedule.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The schedule's nominal cost: the sum of its actions' costs. This is
    /// what the shrinker minimizes and what the cost-to-break table
    /// reports.
    pub fn cost(&self) -> u64 {
        self.actions.iter().map(AttackAction::cost).sum()
    }

    /// The strategy family this schedule belongs to, derived from its
    /// content (so the label survives shrinking): `flood` if any flood,
    /// else `busoff` if any CRC-delimiter hammer, else `counter` if any
    /// other hammer, else `pulse`.
    pub fn strategy_name(&self) -> &'static str {
        let mut hammer = None;
        for action in &self.actions {
            match action {
                AttackAction::Flood { .. } => return "flood",
                AttackAction::Hammer {
                    field: Field::CrcDelim,
                    ..
                } => return "busoff",
                AttackAction::Hammer { .. } => hammer = Some("counter"),
                AttackAction::Pulse { .. } => {}
            }
        }
        hammer.unwrap_or("pulse")
    }

    /// The schedule as a JSON array of tagged action objects.
    pub fn to_json(&self) -> Value {
        Value::Arr(self.actions.iter().map(action_to_json).collect())
    }

    /// Parses what [`AttackSchedule::to_json`] produced.
    pub fn from_json(v: &Value) -> Option<AttackSchedule> {
        let Value::Arr(items) = v else { return None };
        items
            .iter()
            .map(action_from_json)
            .collect::<Option<Vec<AttackAction>>>()
            .map(AttackSchedule::new)
    }

    /// Canonical serialization, used as a deduplication key.
    pub fn key(&self) -> String {
        self.to_json().to_string()
    }

    /// FNV-1a hash of [`AttackSchedule::key`] — stable across runs and
    /// platforms, used in corpus file names.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in self.key().bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

impl fmt::Display for AttackSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.actions.is_empty() {
            return f.write_str("(empty attack)");
        }
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

fn action_to_json(a: &AttackAction) -> Value {
    let mut v = Value::obj();
    match a {
        AttackAction::Flood { start, len } => {
            v.set("kind", Value::Str("flood".to_string()))
                .set("start", Value::U64(*start))
                .set("len", Value::U64(*len));
        }
        AttackAction::Pulse {
            node,
            field,
            index,
            occurrence,
        } => {
            v.set("kind", Value::Str("pulse".to_string()))
                .set("node", Value::U64(*node as u64))
                .set("field", Value::Str(field.to_string()))
                .set("index", Value::U64(u64::from(*index)))
                .set("occurrence", Value::U64(u64::from(*occurrence)));
        }
        AttackAction::Hammer {
            node,
            field,
            index,
            reps,
        } => {
            v.set("kind", Value::Str("hammer".to_string()))
                .set("node", Value::U64(*node as u64))
                .set("field", Value::Str(field.to_string()))
                .set("index", Value::U64(u64::from(*index)))
                .set("reps", Value::U64(u64::from(*reps)));
        }
    }
    v
}

fn action_from_json(v: &Value) -> Option<AttackAction> {
    match v.get("kind")?.as_str()? {
        "flood" => Some(AttackAction::Flood {
            start: v.get("start")?.as_u64()?,
            len: v.get("len")?.as_u64()?,
        }),
        "pulse" => Some(AttackAction::Pulse {
            node: v.get("node")?.as_u64()? as usize,
            field: Field::from_token(v.get("field")?.as_str()?)?,
            index: u16::try_from(v.get("index")?.as_u64()?).ok()?,
            occurrence: u32::try_from(v.get("occurrence")?.as_u64()?).ok()?,
        }),
        "hammer" => Some(AttackAction::Hammer {
            node: v.get("node")?.as_u64()? as usize,
            field: Field::from_token(v.get("field")?.as_str()?)?,
            index: u16::try_from(v.get("index")?.as_u64()?).ok()?,
            reps: u32::try_from(v.get("reps")?.as_u64()?).ok()?,
        }),
        _ => None,
    }
}

/// The classification of one run under attack.
///
/// Extends the benign [`Outcome`] vocabulary with victim bus-off — an
/// availability loss invisible to the Atomic Broadcast checker (a
/// disconnected node delivers nothing and violates nothing), yet exactly
/// what a bus-off attack buys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// Every checked property held, no node was disconnected, and the
    /// whole schedule engaged the bus.
    Survived,
    /// Survived, but `unfired` actions never engaged the bus — the attack
    /// did not test what it claims to test.
    Vacuous {
        /// Number of armed actions that never fired an injection.
        unfired: usize,
    },
    /// A node was driven bus-off (TEC ≥ 256) by the attack.
    VictimBusOff {
        /// The disconnected node.
        node: usize,
    },
    /// A broken Atomic Broadcast property.
    Violation(Verdict),
    /// The simulator or checker panicked; the payload message is kept.
    Panic(String),
}

impl AttackOutcome {
    /// Stable token for counters and corpus files: `survived`, `vacuous`,
    /// `busoff`, the checker's verdict tokens (`double` / `omission` /
    /// `validity`), or `panic`.
    pub fn token(&self) -> &'static str {
        match self {
            AttackOutcome::Survived => "survived",
            AttackOutcome::Vacuous { .. } => "vacuous",
            AttackOutcome::VictimBusOff { .. } => "busoff",
            AttackOutcome::Violation(v) => v.token(),
            AttackOutcome::Panic(_) => "panic",
        }
    }

    /// `true` for the outcomes the attack search hunts: bus-off, property
    /// violations and panics.
    pub fn is_break(&self) -> bool {
        matches!(
            self,
            AttackOutcome::VictimBusOff { .. }
                | AttackOutcome::Violation(_)
                | AttackOutcome::Panic(_)
        )
    }

    /// `true` for Agreement/Validity breaks — the verdict classes the
    /// paper's `m`-tolerance argument covers. Bus-off and panics are
    /// breaks of a different kind (availability / harness).
    pub fn is_agreement_break(&self) -> bool {
        matches!(self, AttackOutcome::Violation(_))
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackOutcome::VictimBusOff { node } => write!(f, "busoff(n{node})"),
            AttackOutcome::Panic(msg) => write!(f, "panic({msg})"),
            other => f.write_str(other.token()),
        }
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Folds a benign run classification and a scan of the event log into an
/// [`AttackOutcome`]. Bus-off outranks a property violation: a schedule
/// that disconnects a node *and* breaks a property certifies the bus-off
/// class (the cheaper pure-violation schedules certify the violation
/// classes on their own).
fn classify_attack(outcome: Outcome, bus_off_node: Option<usize>) -> AttackOutcome {
    match (bus_off_node, outcome) {
        (_, Outcome::CheckerPanic(msg)) => AttackOutcome::Panic(msg),
        (Some(node), _) => AttackOutcome::VictimBusOff { node },
        (None, Outcome::Violation(v)) => AttackOutcome::Violation(v),
        (None, Outcome::Vacuous { unfired }) => AttackOutcome::Vacuous { unfired },
        // `run_attack` grades the full budget without the truncation
        // demotion, so this arm is dormant — but were it ever reached, a
        // truncated run certifies nothing, exactly like a vacuous one.
        (None, Outcome::Truncated { unfired }) => AttackOutcome::Vacuous { unfired },
        (None, Outcome::Consistent) => AttackOutcome::Survived,
    }
}

/// A reusable attack evaluator with a cached testbed (the attack twin of
/// [`Oracle`](crate::Oracle)).
///
/// Clusters are built with the warning-shutoff policy **off** so the
/// fault-confinement walk to bus-off is reachable, and evaluation scans
/// the event log for [`CanEvent::WentBusOff`] after grading the run.
/// Attack targets are link-layer protocols only: attacks address frame
/// positions of the CAN format itself.
#[derive(Debug, Default)]
pub struct AttackOracle {
    cached: Option<((ProtocolSpec, usize), Testbed)>,
}

impl AttackOracle {
    /// A fresh oracle with an empty testbed cache.
    pub fn new() -> AttackOracle {
        AttackOracle { cached: None }
    }

    /// Evaluates `schedule` against `target` and classifies the run.
    /// Panics inside the simulator or checker are caught and reported as
    /// [`AttackOutcome::Panic`] — the oracle itself never unwinds.
    pub fn evaluate(
        &mut self,
        target: ProtocolSpec,
        schedule: &AttackSchedule,
        n_nodes: usize,
    ) -> AttackOutcome {
        let key = (target, n_nodes);
        if self.cached.as_ref().map(|(k, _)| *k) != Some(key) {
            self.cached = None; // drop the old cluster before building
            let built = catch_unwind(AssertUnwindSafe(|| {
                Testbed::builder(target)
                    .nodes(n_nodes)
                    .budget(ATTACK_BUDGET)
                    .shutoff_at_warning(false)
                    .build()
            }));
            match built {
                Ok(testbed) => self.cached = Some((key, testbed)),
                Err(payload) => return AttackOutcome::Panic(panic_text(payload)),
            }
        }
        let (_, testbed) = self.cached.as_mut().expect("testbed cached above");
        // The cost budget equals the schedule's nominal cost: the attacker
        // is granted exactly what the schedule claims to spend, so a
        // schedule cannot outspend its own certificate.
        let cost_budget = schedule.cost();
        let run = catch_unwind(AssertUnwindSafe(|| {
            let outcome = testbed.run_attack(schedule.actions(), cost_budget);
            let bus_off = testbed
                .can_events()
                .iter()
                .find(|e| matches!(e.event, CanEvent::WentBusOff))
                .map(|e| e.node.index());
            (outcome, bus_off)
        }));
        match run {
            Ok((outcome, bus_off)) => classify_attack(outcome, bus_off),
            Err(payload) => {
                self.cached = None;
                AttackOutcome::Panic(panic_text(payload))
            }
        }
    }
}

/// Evaluates `schedule` against `target` on a fresh testbed (see
/// [`AttackOracle::evaluate`]). Loops should hold an [`AttackOracle`].
pub fn evaluate_attack(
    target: ProtocolSpec,
    schedule: &AttackSchedule,
    n_nodes: usize,
) -> AttackOutcome {
    AttackOracle::new().evaluate(target, schedule, n_nodes)
}

/// Installs `schedule` on a scratch [`Attacker`] and reports its nominal
/// cost alongside the runtime charge after `bits` of a canonical run —
/// used by tests asserting the certificate cost is honest.
pub fn runtime_spend(target: ProtocolSpec, schedule: &AttackSchedule, n_nodes: usize) -> u64 {
    let mut testbed = Testbed::builder(target)
        .nodes(n_nodes)
        .budget(ATTACK_BUDGET)
        .shutoff_at_warning(false)
        .build();
    testbed.run_attack(schedule.actions(), schedule.cost());
    testbed
        .attacker()
        .map(Attacker::spent)
        .expect("run_attack installs an attack channel")
}

/// Where an attack corpus entry came from: the discovering search
/// coordinates plus the certificate payload — the strategy family and the
/// schedule's nominal cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackProvenance {
    /// Campaign seed of the discovering search.
    pub campaign_seed: u64,
    /// Job id within that campaign.
    pub job_id: u64,
    /// Trial index within that job.
    pub trial: u64,
    /// Strategy family of the shrunk schedule (see
    /// [`AttackSchedule::strategy_name`]).
    pub strategy: String,
    /// Nominal cost of the shrunk schedule in budget units.
    pub cost: u64,
}

/// One archived cheapest-attack certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCorpusEntry {
    /// Protocol the attack breaks.
    pub protocol: ProtocolSpec,
    /// Bus size of the repro.
    pub n_nodes: usize,
    /// Expected [`AttackOutcome::token`] on replay.
    pub expected: String,
    /// The (cost-shrunk) attack schedule.
    pub schedule: AttackSchedule,
    /// Discovery provenance, including strategy and cost.
    pub provenance: AttackProvenance,
}

impl AttackCorpusEntry {
    /// The entry's file name: an `attack-` prefix (so attack entries are
    /// recognizable at a glance), protocol, expected token and a schedule
    /// fingerprint — content-addressed like the benign corpus.
    pub fn file_name(&self) -> String {
        format!(
            "attack-{}-{}-{:08x}.json",
            self.protocol.to_string().to_lowercase(),
            self.expected,
            self.schedule.fingerprint() & 0xFFFF_FFFF
        )
    }

    /// The entry as one JSON document. The `kind` discriminator keeps
    /// attack entries from parsing as benign corpus entries (and vice
    /// versa); the `pretty` array is ignored on load.
    pub fn to_json(&self) -> Value {
        let mut prov = Value::obj();
        prov.set("campaign_seed", Value::U64(self.provenance.campaign_seed))
            .set("job_id", Value::U64(self.provenance.job_id))
            .set("trial", Value::U64(self.provenance.trial))
            .set("strategy", Value::Str(self.provenance.strategy.clone()))
            .set("cost", Value::U64(self.provenance.cost));
        let mut v = Value::obj();
        v.set("kind", Value::Str("attack".to_string()))
            .set("protocol", Value::Str(self.protocol.to_string()))
            .set("n_nodes", Value::U64(self.n_nodes as u64))
            .set("expected", Value::Str(self.expected.clone()))
            .set("attack", self.schedule.to_json())
            .set(
                "pretty",
                Value::Arr(
                    self.schedule
                        .actions()
                        .iter()
                        .map(|a| Value::Str(a.to_string()))
                        .collect(),
                ),
            )
            .set("provenance", prov);
        v
    }

    /// Parses what [`AttackCorpusEntry::to_json`] produced.
    pub fn from_json(v: &Value) -> Option<AttackCorpusEntry> {
        if v.get("kind")?.as_str()? != "attack" {
            return None;
        }
        let prov = v.get("provenance")?;
        Some(AttackCorpusEntry {
            protocol: ProtocolSpec::from_name(v.get("protocol")?.as_str()?)?,
            n_nodes: v.get("n_nodes")?.as_u64()? as usize,
            expected: v.get("expected")?.as_str()?.to_string(),
            schedule: AttackSchedule::from_json(v.get("attack")?)?,
            provenance: AttackProvenance {
                campaign_seed: prov.get("campaign_seed")?.as_u64()?,
                job_id: prov.get("job_id")?.as_u64()?,
                trial: prov.get("trial")?.as_u64()?,
                strategy: prov.get("strategy")?.as_str()?.to_string(),
                cost: prov.get("cost")?.as_u64()?,
            },
        })
    }

    /// Re-evaluates the entry's schedule against its target.
    pub fn replay(&self) -> AttackOutcome {
        evaluate_attack(self.protocol, &self.schedule, self.n_nodes)
    }
}

/// Writes `entries` into `dir` (created if missing), one file each, and
/// returns the paths written.
pub fn write_attack_corpus(dir: &Path, entries: &[AttackCorpusEntry]) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    entries
        .iter()
        .map(|entry| {
            let path = dir.join(entry.file_name());
            std::fs::write(&path, format!("{}\n", entry.to_json()))?;
            Ok(path)
        })
        .collect()
}

/// Loads every `*.json` attack entry in `dir`, sorted by file name.
/// Returns an empty list if `dir` does not exist (a repo with no archived
/// attacks yet is not an error).
pub fn load_attack_corpus(dir: &Path) -> io::Result<Vec<AttackCorpusEntry>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)?;
            let value = parse(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            AttackCorpusEntry::from_json(&value).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: not an attack corpus entry", path.display()),
                )
            })
        })
        .collect()
}

/// The repository's checked-in attack corpus directory
/// (`corpus/attack/` — a subdirectory, so the benign
/// [`load_corpus`](crate::load_corpus) never sees attack entries).
pub fn repo_attack_corpus_dir() -> PathBuf {
    crate::repo_corpus_dir().join("attack")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busoff_schedule(reps: u32) -> AttackSchedule {
        AttackSchedule::from_strategy(&Strategy::BusOffAttack { victim: 0, reps })
    }

    fn fig1b_attack() -> AttackSchedule {
        // The attack twin of Fig. 1b: one dominant pulse into node 1's
        // view of the last-but-one EOF bit (0-based index 5 of 7).
        AttackSchedule::new(vec![AttackAction::Pulse {
            node: 1,
            field: Field::Eof,
            index: 5,
            occurrence: 1,
        }])
    }

    #[test]
    fn schedule_cost_sums_action_costs() {
        let s = AttackSchedule::new(vec![
            AttackAction::Pulse {
                node: 0,
                field: Field::Eof,
                index: 6,
                occurrence: 1,
            },
            AttackAction::Flood { start: 40, len: 9 },
            AttackAction::Hammer {
                node: 1,
                field: Field::CrcDelim,
                index: 0,
                reps: 5,
            },
        ]);
        assert_eq!(s.cost(), 1 + 9 + 5);
        assert_eq!(s.strategy_name(), "flood");
        assert_eq!(busoff_schedule(32).strategy_name(), "busoff");
        assert_eq!(fig1b_attack().strategy_name(), "pulse");
        assert_eq!(
            AttackSchedule::from_strategy(&Strategy::CounterManipulation {
                victim: 1,
                reps: 16
            })
            .strategy_name(),
            "counter"
        );
    }

    #[test]
    fn schedule_json_round_trips_every_action_kind() {
        let s = AttackSchedule::new(vec![
            AttackAction::Flood { start: 7, len: 3 },
            AttackAction::Pulse {
                node: 2,
                field: Field::Eof,
                index: 5,
                occurrence: 2,
            },
            AttackAction::Hammer {
                node: 0,
                field: Field::CrcDelim,
                index: 0,
                reps: 12,
            },
        ]);
        let text = s.to_json().to_string();
        assert!(text.contains("\"kind\":\"flood\""), "{text}");
        assert!(text.contains("\"field\":\"CRCDEL\""), "{text}");
        let back = AttackSchedule::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(s.fingerprint(), back.fingerprint());
    }

    #[test]
    fn pulse_attack_twin_of_fig1b_breaks_can_not_majorcan() {
        let s = fig1b_attack();
        assert_eq!(
            evaluate_attack(ProtocolSpec::StandardCan, &s, 3),
            AttackOutcome::Violation(Verdict::DoubleReception)
        );
        assert!(!evaluate_attack(ProtocolSpec::MajorCan { m: 5 }, &s, 3).is_break());
    }

    #[test]
    fn busoff_hammer_disconnects_the_victim_on_every_variant() {
        // 32 induced transmit errors walk TEC 0 → 256 (+8 each).
        let s = busoff_schedule(32);
        for target in [
            ProtocolSpec::StandardCan,
            ProtocolSpec::MinorCan,
            ProtocolSpec::MajorCan { m: 3 },
        ] {
            let outcome = evaluate_attack(target, &s, 3);
            assert_eq!(
                outcome,
                AttackOutcome::VictimBusOff { node: 0 },
                "{target}: {outcome}"
            );
        }
    }

    #[test]
    fn underfunded_busoff_hammer_does_not_disconnect() {
        // 8 strikes move TEC to 64: error-active throughout, and the frame
        // eventually goes through.
        let outcome = evaluate_attack(ProtocolSpec::StandardCan, &busoff_schedule(8), 3);
        assert!(!outcome.is_break(), "{outcome}");
    }

    #[test]
    fn runtime_spend_never_exceeds_the_nominal_cost() {
        for schedule in [fig1b_attack(), busoff_schedule(32), busoff_schedule(8)] {
            let spent = runtime_spend(ProtocolSpec::StandardCan, &schedule, 3);
            assert!(
                spent <= schedule.cost(),
                "{schedule}: spent {spent} > nominal {}",
                schedule.cost()
            );
        }
    }

    #[test]
    fn unengaged_actions_classify_as_vacuous() {
        // A flood far beyond the run budget never fires.
        let s = AttackSchedule::new(vec![AttackAction::Flood {
            start: ATTACK_BUDGET * 2,
            len: 5,
        }]);
        assert_eq!(
            evaluate_attack(ProtocolSpec::StandardCan, &s, 3),
            AttackOutcome::Vacuous { unfired: 1 }
        );
    }

    #[test]
    fn empty_attack_survives_everywhere() {
        let s = AttackSchedule::new(vec![]);
        for target in [
            ProtocolSpec::StandardCan,
            ProtocolSpec::MinorCan,
            ProtocolSpec::MajorCan { m: 5 },
        ] {
            assert_eq!(evaluate_attack(target, &s, 3), AttackOutcome::Survived);
        }
    }

    #[test]
    fn outcome_tokens_and_classes() {
        assert_eq!(AttackOutcome::Survived.token(), "survived");
        assert_eq!(AttackOutcome::Vacuous { unfired: 2 }.token(), "vacuous");
        assert_eq!(AttackOutcome::VictimBusOff { node: 1 }.token(), "busoff");
        assert_eq!(
            AttackOutcome::Violation(Verdict::Omission).token(),
            "omission"
        );
        assert_eq!(AttackOutcome::Panic("x".into()).token(), "panic");
        assert!(AttackOutcome::VictimBusOff { node: 0 }.is_break());
        assert!(!AttackOutcome::VictimBusOff { node: 0 }.is_agreement_break());
        assert!(AttackOutcome::Violation(Verdict::DoubleReception).is_agreement_break());
        assert!(!AttackOutcome::Survived.is_break());
    }

    #[test]
    fn attack_entry_round_trips_and_is_not_a_benign_entry() {
        let entry = AttackCorpusEntry {
            protocol: ProtocolSpec::StandardCan,
            n_nodes: 3,
            expected: "double".to_string(),
            schedule: fig1b_attack(),
            provenance: AttackProvenance {
                campaign_seed: 0xA77,
                job_id: 2,
                trial: 9,
                strategy: "pulse".to_string(),
                cost: 1,
            },
        };
        let text = entry.to_json().to_string();
        assert!(text.contains("\"kind\":\"attack\""), "{text}");
        assert!(text.contains("\"cost\":1"), "{text}");
        let back = AttackCorpusEntry::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, entry);
        assert_eq!(back.replay().token(), "double");
        assert!(
            crate::CorpusEntry::from_json(&parse(&text).unwrap()).is_none(),
            "attack entries must not parse as benign corpus entries"
        );
        assert!(entry.file_name().starts_with("attack-can-double-"));
    }

    #[test]
    fn attack_corpus_directory_round_trips_and_tolerates_absence() {
        let dir = std::env::temp_dir().join(format!(
            "majorcan-falsify-attack-corpus-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_attack_corpus(&dir).unwrap().is_empty());
        let entry = AttackCorpusEntry {
            protocol: ProtocolSpec::MinorCan,
            n_nodes: 3,
            expected: "busoff".to_string(),
            schedule: busoff_schedule(32),
            provenance: AttackProvenance {
                campaign_seed: 1,
                job_id: 0,
                trial: 0,
                strategy: "busoff".to_string(),
                cost: 32,
            },
        };
        let written = write_attack_corpus(&dir, std::slice::from_ref(&entry)).unwrap();
        assert_eq!(written.len(), 1);
        let loaded = load_attack_corpus(&dir).unwrap();
        assert_eq!(loaded, vec![entry]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
