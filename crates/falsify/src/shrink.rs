//! Delta-debugging counterexample minimization.
//!
//! A raw finding often carries passenger disturbances that play no part in
//! the violation. [`shrink`] minimizes a schedule while preserving its
//! outcome *class* (the [`Outcome::token`]): first drop disturbances one
//! at a time to a fixpoint (ddmin at granularity 1 — schedules are short),
//! then normalize each survivor to its canonical form — first occurrence,
//! real bit rather than stuff bit, earliest bit index that still
//! reproduces — and finally sort into a canonical order if that preserves
//! the class. The result is deterministic: same schedule in, same minimum
//! out, bounded by [`MAX_EVALUATIONS`] oracle calls.

use crate::oracle::{Oracle, Outcome};
use crate::schedule::Schedule;
use majorcan_campaign::ProtocolSpec;
use majorcan_faults::Disturbance;

/// Hard cap on oracle evaluations per shrink (each one is a full
/// simulator run; the greedy passes converge far earlier in practice).
pub const MAX_EVALUATIONS: usize = 400;

/// The result of a shrink: the minimized schedule, the preserved outcome,
/// and how many oracle calls it took.
#[derive(Debug, Clone, PartialEq)]
pub struct Shrunk {
    /// The minimized schedule (reproduces the same outcome token).
    pub schedule: Schedule,
    /// The outcome of the original schedule, which the minimized one
    /// still produces.
    pub outcome: Outcome,
    /// Oracle evaluations spent.
    pub evaluations: usize,
}

fn preserves(
    oracle: &mut Oracle,
    target: ProtocolSpec,
    candidate: Vec<Disturbance>,
    n_nodes: usize,
    budget: u64,
    token: &str,
    evals: &mut usize,
) -> bool {
    if *evals >= MAX_EVALUATIONS {
        return false;
    }
    *evals += 1;
    oracle
        .evaluate(target, &Schedule::new(candidate), n_nodes, budget)
        .token()
        == token
}

fn canonical_key(d: &Disturbance) -> (usize, String, u16, u32, bool) {
    (d.node, d.field.to_string(), d.index, d.occurrence, d.stuff)
}

/// Minimizes `schedule` against `target`, preserving its outcome class.
///
/// Intended for findings (violations and panics), but works for any
/// outcome; the minimum of a one-disturbance violating schedule is
/// itself.
pub fn shrink(target: ProtocolSpec, schedule: &Schedule, n_nodes: usize, budget: u64) -> Shrunk {
    shrink_with(&mut Oracle::new(), target, schedule, n_nodes, budget)
}

/// As [`shrink`], evaluating through a caller-provided [`Oracle`] so the
/// hundreds of candidate runs share one cached testbed.
pub fn shrink_with(
    oracle: &mut Oracle,
    target: ProtocolSpec,
    schedule: &Schedule,
    n_nodes: usize,
    budget: u64,
) -> Shrunk {
    let outcome = oracle.evaluate(target, schedule, n_nodes, budget);
    let token = outcome.token();
    let mut best = schedule.to_vec();
    let mut evals = 1usize;

    // Pass 1 — drop passengers to a fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < best.len() && best.len() > 1 {
            let mut candidate = best.clone();
            candidate.remove(i);
            if preserves(
                oracle,
                target,
                candidate.clone(),
                n_nodes,
                budget,
                token,
                &mut evals,
            ) {
                best = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
    }

    // Pass 2 — normalize each survivor: first occurrence, the field bit
    // rather than its stuff bit, then the earliest index that still
    // reproduces.
    for i in 0..best.len() {
        if best[i].occurrence != 1 {
            let mut candidate = best.clone();
            candidate[i].occurrence = 1;
            if preserves(
                oracle,
                target,
                candidate.clone(),
                n_nodes,
                budget,
                token,
                &mut evals,
            ) {
                best = candidate;
            }
        }
        if best[i].stuff {
            let mut candidate = best.clone();
            candidate[i].stuff = false;
            if preserves(
                oracle,
                target,
                candidate.clone(),
                n_nodes,
                budget,
                token,
                &mut evals,
            ) {
                best = candidate;
            }
        }
        for index in 0..best[i].index {
            let mut candidate = best.clone();
            candidate[i].index = index;
            if preserves(
                oracle,
                target,
                candidate.clone(),
                n_nodes,
                budget,
                token,
                &mut evals,
            ) {
                best = candidate;
                break;
            }
        }
    }

    // Pass 3 — canonical order, when order doesn't matter to the outcome.
    let mut sorted = best.clone();
    sorted.sort_by_key(canonical_key);
    if sorted != best
        && preserves(
            oracle,
            target,
            sorted.clone(),
            n_nodes,
            budget,
            token,
            &mut evals,
        )
    {
        best = sorted;
    }

    Shrunk {
        schedule: Schedule::new(best),
        outcome,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::LINK_BUDGET;
    use majorcan_abcast::Verdict;
    use majorcan_can::Field;
    use majorcan_faults::Scenario;

    #[test]
    fn passenger_disturbances_are_dropped() {
        // Fig. 1b plus two passengers that do not change the verdict.
        let mut ds = Scenario::fig1b().disturbances;
        ds.push(Disturbance::first(2, Field::Intermission, 1));
        ds.push(Disturbance::first(2, Field::Crc, 12));
        let shrunk = shrink(
            ProtocolSpec::StandardCan,
            &Schedule::new(ds),
            3,
            LINK_BUDGET,
        );
        assert_eq!(shrunk.outcome, Outcome::Violation(Verdict::DoubleReception));
        assert_eq!(
            shrunk.schedule.to_vec(),
            Scenario::fig1b().disturbances,
            "only the causal flip survives"
        );
        assert!(shrunk.evaluations <= MAX_EVALUATIONS);
    }

    #[test]
    fn fig3a_is_already_minimal() {
        let s = Schedule::new(Scenario::fig3a().disturbances);
        let shrunk = shrink(ProtocolSpec::StandardCan, &s, 3, LINK_BUDGET);
        assert_eq!(shrunk.outcome, Outcome::Violation(Verdict::Omission));
        assert_eq!(
            shrunk.schedule.len(),
            2,
            "both flips are causal: {}",
            shrunk.schedule
        );
    }

    #[test]
    fn occurrence_and_index_normalize_toward_the_canonical_repro() {
        // The same double-reception class, written with a needlessly exotic
        // schedule: the shrinker should find an equivalent ≤-sized repro
        // producing the same token.
        let baroque = Schedule::new(vec![
            Disturbance {
                node: 1,
                field: Field::Eof,
                index: 5,
                occurrence: 1,
                stuff: false,
            },
            Disturbance::first(1, Field::Intermission, 2),
        ]);
        let shrunk = shrink(ProtocolSpec::StandardCan, &baroque, 3, LINK_BUDGET);
        assert_eq!(shrunk.outcome.token(), "double");
        assert_eq!(shrunk.schedule.len(), 1);
        assert_eq!(shrunk.schedule.disturbances()[0].occurrence, 1);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let mut ds = Scenario::fig3a().disturbances;
        ds.push(Disturbance::first(2, Field::Delim, 3));
        let s = Schedule::new(ds);
        let a = shrink(ProtocolSpec::MinorCan, &s, 3, LINK_BUDGET);
        let b = shrink(ProtocolSpec::MinorCan, &s, 3, LINK_BUDGET);
        assert_eq!(a, b);
    }
}
