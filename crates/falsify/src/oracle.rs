//! The falsification oracle: schedule in, verdict out.
//!
//! [`evaluate`] runs one disturbance [`Schedule`] against any protocol
//! target — a link-layer variant through
//! [`run_script`](majorcan_faults::run_script), or one of the FTCS'98
//! higher-level protocols over a standard-CAN link — feeds the resulting
//! event log to the Atomic Broadcast checker, and classifies the run:
//!
//! * [`Outcome::Consistent`] — every checked property held and the whole
//!   schedule actually fired;
//! * [`Outcome::Vacuous`] — consistent, but part of the schedule never
//!   applied (a position the geometry lacks, an occurrence the traffic
//!   never reached) — **not** evidence of robustness;
//! * [`Outcome::Violation`] — a broken property, graded by the checker's
//!   [`Verdict`] (double reception / omission / validity loss);
//! * [`Outcome::CheckerPanic`] — the simulator or checker itself blew up,
//!   which is always a finding (panics are caught, never propagated).

use crate::schedule::Schedule;
use majorcan_abcast::{trace_from_can_events, Verdict};
use majorcan_campaign::ProtocolSpec;
use majorcan_can::{StandardCan, Variant};
use majorcan_core::{MajorCan, MinorCan};
use majorcan_faults::{run_script, ScriptedFaults};
use majorcan_hlp::{trace_from_hlp_events, EdCan, HlpLayer, HlpNode, RelCan, TotCan};
use majorcan_sim::{NodeId, Simulator};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Bit budget for one link-layer schedule evaluation (matches the
/// scripted-trial budget of the bench interpreter).
pub const LINK_BUDGET: u64 = 5_000;

/// Bit budget for one higher-level-protocol evaluation (CONFIRM/ACCEPT
/// rounds and timeout recovery need more bus time than a bare frame).
pub const HLP_BUDGET: u64 = 8_000;

/// The evaluation budget appropriate for `target`.
pub fn budget_for(target: ProtocolSpec) -> u64 {
    if target.is_hlp() {
        HLP_BUDGET
    } else {
        LINK_BUDGET
    }
}

/// The classification of one schedule evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// All checked properties held; the schedule fully applied.
    Consistent,
    /// All checked properties held, but `unfired` disturbances never
    /// applied — the schedule did not test what it claims to test.
    Vacuous {
        /// Number of scripted disturbances that never fired.
        unfired: usize,
    },
    /// A broken Atomic Broadcast property (never
    /// [`Verdict::Consistent`]).
    Violation(Verdict),
    /// The simulator or checker panicked; the payload message is kept.
    CheckerPanic(String),
}

impl Outcome {
    /// Stable token for counters and corpus files: `consistent`,
    /// `vacuous`, the checker's verdict tokens (`double` / `omission` /
    /// `validity`), or `panic`.
    pub fn token(&self) -> &'static str {
        match self {
            Outcome::Consistent => "consistent",
            Outcome::Vacuous { .. } => "vacuous",
            Outcome::Violation(v) => v.token(),
            Outcome::CheckerPanic(_) => "panic",
        }
    }

    /// `true` for the outcomes the falsifier hunts: property violations
    /// and checker panics.
    pub fn is_finding(&self) -> bool {
        matches!(self, Outcome::Violation(_) | Outcome::CheckerPanic(_))
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn classify(verdict: Verdict, unfired: usize) -> Outcome {
    match (verdict, unfired) {
        (Verdict::Consistent, 0) => Outcome::Consistent,
        (Verdict::Consistent, n) => Outcome::Vacuous { unfired: n },
        (v, _) => Outcome::Violation(v),
    }
}

fn link<V: Variant>(variant: &V, schedule: &Schedule, n_nodes: usize, budget: u64) -> Outcome {
    let run = run_script(variant, schedule.to_vec(), n_nodes, budget);
    let verdict = trace_from_can_events(&run.events, n_nodes)
        .check()
        .verdict();
    classify(verdict, run.remaining())
}

fn hlp<L: HlpLayer, F: Fn() -> L>(
    make: F,
    schedule: &Schedule,
    n_nodes: usize,
    budget: u64,
) -> Outcome {
    let mut sim = Simulator::new(ScriptedFaults::new(schedule.to_vec()));
    for i in 0..n_nodes {
        sim.attach(HlpNode::new(make(), i));
    }
    sim.node_mut(NodeId(0)).broadcast(&[0x5A]);
    sim.run(budget);
    let unfired = sim.channel().unfired().len();
    let verdict = trace_from_hlp_events(sim.events(), n_nodes)
        .check()
        .verdict();
    classify(verdict, unfired)
}

fn evaluate_inner(
    target: ProtocolSpec,
    schedule: &Schedule,
    n_nodes: usize,
    budget: u64,
) -> Outcome {
    match target {
        ProtocolSpec::StandardCan => link(&StandardCan, schedule, n_nodes, budget),
        ProtocolSpec::MinorCan => link(&MinorCan, schedule, n_nodes, budget),
        ProtocolSpec::MajorCan { m } => {
            let variant = MajorCan::new(m)
                .unwrap_or_else(|e| panic!("invalid MajorCAN tolerance for oracle: {e}"));
            link(&variant, schedule, n_nodes, budget)
        }
        ProtocolSpec::EdCan => hlp(EdCan::new, schedule, n_nodes, budget),
        ProtocolSpec::RelCan => hlp(RelCan::new, schedule, n_nodes, budget),
        ProtocolSpec::TotCan => hlp(TotCan::new, schedule, n_nodes, budget),
    }
}

/// Evaluates `schedule` against `target` for `budget` bit times and
/// classifies the run. Panics inside the simulator or checker are caught
/// and reported as [`Outcome::CheckerPanic`] — the oracle itself never
/// unwinds.
pub fn evaluate(target: ProtocolSpec, schedule: &Schedule, n_nodes: usize, budget: u64) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| {
        evaluate_inner(target, schedule, n_nodes, budget)
    })) {
        Ok(outcome) => outcome,
        Err(payload) => Outcome::CheckerPanic(panic_text(payload)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majorcan_can::Field;
    use majorcan_faults::{Disturbance, Scenario};

    fn sched(ds: Vec<Disturbance>) -> Schedule {
        Schedule::new(ds)
    }

    #[test]
    fn clean_schedule_is_consistent_everywhere() {
        for target in [
            ProtocolSpec::StandardCan,
            ProtocolSpec::MinorCan,
            ProtocolSpec::MajorCan { m: 5 },
            ProtocolSpec::EdCan,
            ProtocolSpec::RelCan,
            ProtocolSpec::TotCan,
        ] {
            let outcome = evaluate(target, &sched(vec![]), 3, budget_for(target));
            assert_eq!(outcome, Outcome::Consistent, "{target}");
        }
    }

    #[test]
    fn fig1b_is_a_double_reception_on_can_only() {
        let s = sched(Scenario::fig1b().disturbances);
        assert_eq!(
            evaluate(ProtocolSpec::StandardCan, &s, 3, LINK_BUDGET),
            Outcome::Violation(Verdict::DoubleReception)
        );
        assert_eq!(
            evaluate(ProtocolSpec::MinorCan, &s, 3, LINK_BUDGET),
            Outcome::Consistent
        );
        assert_eq!(
            evaluate(ProtocolSpec::MajorCan { m: 5 }, &s, 3, LINK_BUDGET),
            Outcome::Consistent
        );
    }

    #[test]
    fn fig3a_breaks_can_minorcan_and_the_tx_bound_hlps() {
        let s = sched(Scenario::fig3a().disturbances);
        for target in [ProtocolSpec::StandardCan, ProtocolSpec::MinorCan] {
            assert_eq!(
                evaluate(target, &s, 3, LINK_BUDGET),
                Outcome::Violation(Verdict::Omission),
                "{target}"
            );
        }
        assert_eq!(
            evaluate(ProtocolSpec::MajorCan { m: 5 }, &s, 3, LINK_BUDGET),
            Outcome::Consistent
        );
        // EDCAN recovers (every receiver retransmits); RELCAN and TOTCAN
        // only act when the transmitter fails — Section 4's verdict.
        assert_eq!(
            evaluate(ProtocolSpec::EdCan, &s, 3, HLP_BUDGET),
            Outcome::Consistent
        );
        for target in [ProtocolSpec::RelCan, ProtocolSpec::TotCan] {
            assert!(
                matches!(
                    evaluate(target, &s, 3, HLP_BUDGET),
                    Outcome::Violation(Verdict::Omission)
                ),
                "{target}"
            );
        }
    }

    #[test]
    fn unfired_schedules_classify_as_vacuous_not_consistent() {
        // A MajorCAN-only position under standard CAN never fires.
        let s = sched(vec![Disturbance::first(1, Field::AgreementHold, 13)]);
        assert_eq!(
            evaluate(ProtocolSpec::StandardCan, &s, 3, LINK_BUDGET),
            Outcome::Vacuous { unfired: 1 }
        );
        assert_eq!(
            evaluate(ProtocolSpec::StandardCan, &s, 3, LINK_BUDGET).token(),
            "vacuous"
        );
    }

    #[test]
    fn oracle_contains_panics() {
        // m = 2 is rejected by MajorCan::new — the oracle must catch the
        // panic and classify, not unwind into the caller.
        let outcome = evaluate(
            ProtocolSpec::MajorCan { m: 2 },
            &sched(vec![]),
            3,
            LINK_BUDGET,
        );
        assert!(outcome.is_finding());
        match outcome {
            Outcome::CheckerPanic(msg) => {
                assert!(msg.contains("invalid MajorCAN tolerance"), "{msg}")
            }
            other => panic!("expected CheckerPanic, got {other:?}"),
        }
    }
}
